//! Static plan verifier and access-pattern linter for the SWOLE engine.
//!
//! The engine lowers every composed physical plan into a neutral [`ir::Program`]
//! (tables, foreign keys, and per-operator expressions, artifacts, strategy
//! references, and allocation sites), then runs it through up to four passes:
//!
//! 1. **Schema/type soundness** ([`passes::check_schema`]) — every referenced
//!    column exists with a verifier-visible type, dictionary columns only reach
//!    dictionary-capable predicates, and every `Param` slot is bound.
//! 2. **Domain discipline** ([`passes::check_domains`]) — selection vectors,
//!    value/key masks, and positional bitmaps are produced before consumed,
//!    sized to the correct table/FK domain, and never escape the tile/morsel
//!    scope they were built in.
//! 3. **Access-pattern signatures** ([`passes::check_signatures`]) — the
//!    per-attribute sequential/gather/conditional signature derived from the
//!    composed kernel spec ([`swole_codegen::access`]) must agree with the
//!    pattern the cost model assumed when pricing the strategy, and the plan
//!    must carry the cost term that priced it.
//! 4. **Resource accounting** ([`passes::check_resources`]) — every allocation
//!    site reachable from the plan charges the memory gauge, and every
//!    heap-materialized artifact has a covering allocation site.
//!
//! [`VerifyLevel::Structural`] runs passes 1–2; [`VerifyLevel::Full`] runs all
//! four. Verification happens once per plan fingerprint at plan time — never
//! per morsel — so `Off` has zero execution-path overhead.
//!
//! A fifth, certification pass ([`bounds`]) runs abstract interpretation over
//! the same IR to derive a [`PlanCertificate`]: sound upper bounds on rows,
//! bytes, and hash-table growth per operator, plus value-range proofs of
//! which arithmetic sites cannot overflow. The engine enforces certificates
//! at admission time.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bounds;
pub mod ir;
pub mod passes;

pub use bounds::{certify, BoundsCtx, ColumnProfile, OpBounds, PlanCertificate, TableProfile};

use std::fmt;

use ir::{ArtifactKind, Program, Scope};

/// How much static verification the engine performs at plan time.
///
/// Ordered: `Off < Structural < Full`. A cached plan remembers the strongest
/// level it has passed, so raising the session level re-verifies cache hits
/// exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum VerifyLevel {
    /// No verification.
    #[default]
    Off,
    /// Passes 1–2: schema/type soundness and artifact domain discipline.
    Structural,
    /// All four passes, including access-signature and resource-accounting
    /// cross-checks against the cost model and codegen spec.
    Full,
}

impl VerifyLevel {
    /// The default level for the current build profile: `Structural` in debug
    /// and test builds, `Off` in release builds.
    #[must_use]
    pub fn default_for_build() -> Self {
        if cfg!(debug_assertions) {
            VerifyLevel::Structural
        } else {
            VerifyLevel::Off
        }
    }
}

impl fmt::Display for VerifyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VerifyLevel::Off => "off",
            VerifyLevel::Structural => "structural",
            VerifyLevel::Full => "full",
        };
        f.write_str(s)
    }
}

/// A verification failure: what went wrong ([`VerifyErrorKind`]) and where in
/// the plan it was detected (`path`, e.g. `/semijoin-agg/build(supplier)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Plan-path provenance of the rejected construct.
    pub path: String,
    /// The violated invariant.
    pub kind: VerifyErrorKind,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.kind, self.path)
    }
}

/// The specific invariant a [`VerifyError`] reports as violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyErrorKind {
    /// An expression references a column the operator's table does not have.
    UnknownColumn {
        /// Table the operator scans.
        table: String,
        /// Missing column name.
        column: String,
    },
    /// A column reached a context its verifier-visible type does not support
    /// (e.g. a dictionary column used as an arithmetic/aggregate input).
    TypeMismatch {
        /// Table owning the column.
        table: String,
        /// Offending column.
        column: String,
        /// The context that rejected it (e.g. "arithmetic", "aggregate input").
        context: String,
    },
    /// A `LIKE`/`IN`-style dictionary predicate was applied to a column that
    /// is not dictionary-encoded.
    NonDictPredicate {
        /// Table owning the column.
        table: String,
        /// Offending column.
        column: String,
    },
    /// A parameter placeholder survived to the physical plan unbound.
    UnboundParam {
        /// Zero-based parameter ordinal.
        ordinal: usize,
    },
    /// An operator imports an artifact no earlier operator exports.
    ConsumedBeforeProduced {
        /// Artifact kind the importer asked for.
        kind: ArtifactKind,
        /// Domain table the importer expected it over.
        table: String,
    },
    /// An artifact's row domain disagrees with the table/FK domain it is
    /// indexed by (e.g. a positional bitmap shorter than the FK parent).
    DomainMismatch {
        /// Artifact kind.
        kind: ArtifactKind,
        /// Domain table the artifact is declared over.
        table: String,
        /// Rows the consumer's domain requires.
        expected_rows: usize,
        /// Rows the artifact actually covers.
        found_rows: usize,
    },
    /// A tile/morsel-scoped artifact escapes its operator (the PR 1
    /// determinism contract: masks and selection vectors never cross
    /// tile/morsel boundaries).
    ScopeViolation {
        /// Artifact kind.
        kind: ArtifactKind,
        /// Scope the artifact was declared with.
        scope: Scope,
    },
    /// A probe imports through a foreign key the catalog does not declare.
    MissingFk {
        /// Child (probe-side) table.
        child: String,
        /// FK column on the child.
        fk_col: String,
        /// Parent (build-side) table.
        parent: String,
    },
    /// The access signature derived from the composed kernel spec disagrees
    /// with the pattern the strategy declared / the cost model assumed.
    SignatureMismatch {
        /// Operator name.
        op: String,
        /// Which attribute stream disagreed (predicate, aggregate input,
        /// group key, or structure).
        attribute: String,
        /// Pattern the strategy/cost model declared.
        declared: String,
        /// Pattern derived from the kernel spec.
        derived: String,
    },
    /// The plan does not carry the cost term that priced the chosen strategy.
    CostTermMismatch {
        /// Operator name.
        op: String,
        /// Strategy the plan committed to.
        strategy: String,
        /// Cost term the verifier expected to find.
        expected_term: String,
    },
    /// An allocation site reachable from the plan does not charge the memory
    /// gauge, or a heap-materialized artifact has no covering site.
    UnchargedAllocation {
        /// Operator name.
        op: String,
        /// Allocation site (or artifact) lacking a gauge charge.
        site: String,
    },
}

impl fmt::Display for VerifyErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyErrorKind::UnknownColumn { table, column } => {
                write!(f, "unknown column {table}.{column}")
            }
            VerifyErrorKind::TypeMismatch { table, column, context } => {
                write!(f, "column {table}.{column} is not valid as {context}")
            }
            VerifyErrorKind::NonDictPredicate { table, column } => {
                write!(f, "dictionary predicate on non-dictionary column {table}.{column}")
            }
            VerifyErrorKind::UnboundParam { ordinal } => {
                write!(f, "parameter ${} is unbound", ordinal.wrapping_add(1))
            }
            VerifyErrorKind::ConsumedBeforeProduced { kind, table } => {
                write!(f, "{kind} over {table} consumed before produced")
            }
            VerifyErrorKind::DomainMismatch { kind, table, expected_rows, found_rows } => write!(
                f,
                "{kind} over {table} covers {found_rows} rows but its domain requires {expected_rows}"
            ),
            VerifyErrorKind::ScopeViolation { kind, scope } => {
                write!(f, "{scope}-scoped {kind} crosses its operator boundary")
            }
            VerifyErrorKind::MissingFk { child, fk_col, parent } => {
                write!(f, "no foreign key {child}.{fk_col} -> {parent} in catalog")
            }
            VerifyErrorKind::SignatureMismatch { op, attribute, declared, derived } => write!(
                f,
                "{op}: {attribute} access declared {declared} but kernel spec derives {derived}"
            ),
            VerifyErrorKind::CostTermMismatch { op, strategy, expected_term } => write!(
                f,
                "{op}: strategy {strategy} priced by missing cost term \"{expected_term}\""
            ),
            VerifyErrorKind::UnchargedAllocation { op, site } => {
                write!(f, "{op}: allocation site \"{site}\" does not charge the memory gauge")
            }
        }
    }
}

/// Summary of a successful verification run, suitable for `EXPLAIN VERIFY`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Level the program was verified at.
    pub level: VerifyLevel,
    /// Operators examined.
    pub ops: usize,
    /// Expressions type-checked by pass 1.
    pub exprs: usize,
    /// Artifacts whose domains pass 2 validated.
    pub artifacts: usize,
    /// Allocation sites pass 4 confirmed gauge-charged (0 below `Full`).
    pub allocs: usize,
    /// Human-readable per-pass summary lines.
    pub lines: Vec<String>,
}

/// Verify `program` at `level`.
///
/// Returns a [`VerifyReport`] on success or the first [`VerifyError`]
/// encountered, in pass order. At [`VerifyLevel::Off`] nothing is checked and
/// an empty report is returned.
pub fn verify(program: &Program, level: VerifyLevel) -> Result<VerifyReport, VerifyError> {
    let mut report = VerifyReport {
        level,
        ops: program.ops.len(),
        exprs: 0,
        artifacts: 0,
        allocs: 0,
        lines: Vec::new(),
    };
    if level == VerifyLevel::Off {
        report.ops = 0;
        return Ok(report);
    }
    let schema = passes::check_schema(program)?;
    report.exprs = schema.exprs;
    report.lines.push(format!(
        "pass 1 schema: {} expr(s), {} column ref(s) sound across {} table(s)",
        schema.exprs,
        schema.column_refs,
        program.tables.len()
    ));
    let domains = passes::check_domains(program)?;
    report.artifacts = domains.artifacts;
    report.lines.push(format!(
        "pass 2 domains: {} artifact(s) produced-before-consumed, {} cross-op import(s) aligned",
        domains.artifacts, domains.imports
    ));
    if level == VerifyLevel::Full {
        let sigs = passes::check_signatures(program)?;
        report.lines.push(format!(
            "pass 3 signatures: {} strategy signature(s) match kernel spec + cost terms",
            sigs.checked
        ));
        let res = passes::check_resources(program)?;
        report.allocs = res.sites;
        report.lines.push(format!(
            "pass 4 resources: {}/{} allocation site(s) gauge-charged, {} artifact(s) covered",
            res.sites, res.sites, res.covered_artifacts
        ));
    }
    Ok(report)
}
