//! Neutral verification IR.
//!
//! The engine lowers a composed physical plan into a [`Program`]: the tables
//! and foreign keys it touches, plus one [`Op`] per pipeline stage carrying
//! its expressions, the pullup artifacts it produces/consumes, the strategy it
//! committed to, and its allocation sites. The IR is deliberately independent
//! of the planner's internal `Shape` so ill-formed programs can be constructed
//! directly in tests.

use std::fmt;

use swole_codegen::access::AccessSig;
use swole_cost::{AggStrategy, GroupJoinStrategy, SemiJoinStrategy, WindowStrategy};

/// Verifier-visible column type, collapsed from the storage layer's
/// physical types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    /// Any signed integer width (i8/i16/i32/i64), including decimals and
    /// dates stored as scaled/epoch integers.
    Int,
    /// Unsigned 32-bit (raw FK key columns).
    U32,
    /// Dictionary-encoded string codes.
    Dict,
}

impl fmt::Display for ColType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColType::Int => "int",
            ColType::U32 => "u32",
            ColType::Dict => "dict",
        };
        f.write_str(s)
    }
}

/// A column declaration inside a [`TableDecl`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDecl {
    /// Column name.
    pub name: String,
    /// Verifier-visible type.
    pub ty: ColType,
}

/// A table the program touches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDecl {
    /// Table name.
    pub name: String,
    /// Row count at plan time (the domain of masks/bitmaps over this table).
    pub rows: usize,
    /// Column declarations.
    pub columns: Vec<ColumnDecl>,
}

impl TableDecl {
    /// Look up a column's type by name.
    #[must_use]
    pub fn col_type(&self, name: &str) -> Option<ColType> {
        self.columns.iter().find(|c| c.name == name).map(|c| c.ty)
    }
}

/// A foreign-key edge the program probes through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FkDecl {
    /// Child (probe-side) table.
    pub child: String,
    /// FK column on the child.
    pub fk_col: String,
    /// Parent (build-side) table.
    pub parent: String,
    /// Child row count.
    pub child_rows: usize,
    /// Parent row count — the domain positional artifacts must be sized to.
    pub parent_rows: usize,
}

/// A reference to a foreign-key edge, used by [`Import`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FkRef {
    /// Child (probe-side) table.
    pub child: String,
    /// FK column on the child.
    pub fk_col: String,
    /// Parent (build-side) table.
    pub parent: String,
}

/// Arithmetic operator carried by [`VExpr::Arith`] — the bounds pass needs
/// the operator to run interval arithmetic; the structural passes ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// Expression tree as the verifier sees it: enough structure for column,
/// type, and binding checks without the planner's evaluation semantics,
/// plus literal values and arithmetic operators for value-range analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VExpr {
    /// Column reference (resolved against the operator's table).
    Col(String),
    /// Literal constant (the value feeds the bounds pass's range analysis).
    Lit(i64),
    /// Unbound parameter placeholder (always an error by plan time).
    Param(usize),
    /// Dictionary predicate (`LIKE`, `IN (...)`) over a column; the column
    /// must be dictionary-encoded.
    DictPredicate(String),
    /// Comparison over sub-expressions.
    Cmp(Vec<VExpr>),
    /// Arithmetic over sub-expressions (dictionary codes are not valid here).
    Arith(ArithOp, Vec<VExpr>),
    /// Boolean connective over sub-expressions.
    Bool(Vec<VExpr>),
    /// CASE expression: conditions and branch values interleaved.
    Case(Vec<VExpr>),
}

/// The role an expression plays in its operator, which determines the type
/// contexts pass 1 enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExprRole {
    /// Filter predicate (boolean context).
    Predicate,
    /// Aggregate input (numeric context — dictionary codes rejected).
    AggInput,
    /// Group-by key (any column type).
    GroupKey,
}

/// An expression bound to its role in an operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundExpr {
    /// Role in the operator.
    pub role: ExprRole,
    /// The expression tree.
    pub expr: VExpr,
}

/// The kinds of pullup artifacts operators materialize and exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// Dense index list of qualifying lanes (hybrid strategy prepass).
    SelectionVector,
    /// 0/1 multiplier mask over values (value-masking strategy).
    ValueMask,
    /// Mask folded into the aggregation key (key-masking strategy).
    KeyMask,
    /// Bit-per-parent-row qualifying bitmap (positional semijoin).
    PositionalBitmap,
    /// Hash set of qualifying build keys (hash semijoin).
    KeySet,
}

impl fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArtifactKind::SelectionVector => "selection vector",
            ArtifactKind::ValueMask => "value mask",
            ArtifactKind::KeyMask => "key mask",
            ArtifactKind::PositionalBitmap => "positional bitmap",
            ArtifactKind::KeySet => "key set",
        };
        f.write_str(s)
    }
}

/// The lifetime/visibility scope of an artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Lives within one tile of one worker; may never cross operators.
    Tile,
    /// Lives within one morsel of one worker; may never cross operators.
    Morsel,
    /// Materialized once per plan; the only scope allowed to cross operators.
    Plan,
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scope::Tile => "tile",
            Scope::Morsel => "morsel",
            Scope::Plan => "plan",
        };
        f.write_str(s)
    }
}

/// A pullup artifact an operator materializes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// Kind of artifact.
    pub kind: ArtifactKind,
    /// Table whose row positions form the artifact's domain.
    pub table: String,
    /// Rows the artifact covers.
    pub rows: usize,
    /// Lifetime scope.
    pub scope: Scope,
}

/// An artifact an operator consumes from an earlier operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Import {
    /// Kind of artifact expected.
    pub kind: ArtifactKind,
    /// Domain table the artifact must cover.
    pub table: String,
    /// FK edge the consumer indexes the artifact through, if positional.
    pub via_fk: Option<FkRef>,
}

/// A heap allocation site reachable from the operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alloc {
    /// Site name (e.g. "worker-scratch", "positional-bitmap").
    pub site: String,
    /// Whether the site charges the engine's `MemGauge` before allocating.
    pub charged: bool,
}

/// Which composed-kernel strategy an operator committed to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategyRef {
    /// Scan-aggregate (scalar or grouped) under an aggregation strategy.
    Agg {
        /// Chosen aggregation strategy.
        strategy: AggStrategy,
        /// Whether the operator aggregates by group key.
        grouped: bool,
    },
    /// Build side of a semijoin.
    SemiJoinBuild(SemiJoinStrategy),
    /// Probe side of a semijoin.
    SemiJoinProbe {
        /// Chosen semijoin strategy.
        strategy: SemiJoinStrategy,
        /// Whether the probe folds the membership test into a value mask
        /// (predicate pullup) instead of a selection vector.
        probe_masked: bool,
    },
    /// Probe side of a groupjoin (or its eager-aggregation alternative).
    GroupJoin(GroupJoinStrategy),
    /// Build side of a groupjoin (mask materialization only).
    GroupJoinBuild,
    /// Window operator over sorted qualifying rows.
    Window {
        /// Chosen frame-state strategy.
        strategy: WindowStrategy,
    },
    /// ORDER BY post-operator (result re-ordering).
    Sort,
    /// LIMIT post-operator (prefix truncation).
    Limit,
}

/// One pipeline stage of the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Op {
    /// Operator name (e.g. "groupby-agg(lineitem)").
    pub name: String,
    /// Plan-path provenance for error messages (e.g. "/semijoin-agg/probe").
    pub path: String,
    /// Table the operator scans.
    pub table: String,
    /// Rows the operator scans.
    pub rows: usize,
    /// Expressions evaluated by the operator, tagged with their role.
    pub exprs: Vec<BoundExpr>,
    /// Strategy the operator committed to, if it composes kernels.
    pub strategy: Option<StrategyRef>,
    /// Declared access signature override. `None` means "as the cost model
    /// assumes for the strategy's cost term" — the normal lowering; tests use
    /// `Some` to simulate a drifted declaration.
    pub declared: Option<AccessSig>,
    /// Cost terms the plan carries for this operator (may be empty for
    /// operators the model does not price, e.g. forced min/max strategies).
    pub cost_terms: Vec<String>,
    /// Artifacts materialized and consumed only within this operator.
    pub locals: Vec<Artifact>,
    /// Artifacts materialized here for later operators (must be plan-scoped).
    pub exports: Vec<Artifact>,
    /// Artifacts consumed from earlier operators.
    pub imports: Vec<Import>,
    /// Heap allocation sites reachable from this operator.
    pub allocs: Vec<Alloc>,
    /// Columns the operator materializes per qualifying row (window phase 2:
    /// partition key + order keys + projected columns + function inputs).
    /// `None` for operators that materialize no per-row columns.
    pub mat_cols: Option<usize>,
    /// Number of aggregate accumulators the operator maintains (sizes
    /// per-worker scratch and hash-table payloads in the bounds pass).
    /// `None` for non-aggregating operators.
    pub n_aggs: Option<usize>,
}

impl Op {
    /// A minimal well-formed operator over `table`, for building programs
    /// incrementally (used by the engine lowering and by tests).
    #[must_use]
    pub fn new(name: &str, path: &str, table: &str, rows: usize) -> Self {
        Op {
            name: name.to_string(),
            path: path.to_string(),
            table: table.to_string(),
            rows,
            exprs: Vec::new(),
            strategy: None,
            declared: None,
            cost_terms: Vec::new(),
            locals: Vec::new(),
            exports: Vec::new(),
            imports: Vec::new(),
            allocs: Vec::new(),
            mat_cols: None,
            n_aggs: None,
        }
    }
}

/// A complete lowered plan: the unit of verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Tables the plan touches.
    pub tables: Vec<TableDecl>,
    /// Foreign-key edges the plan probes through.
    pub fks: Vec<FkDecl>,
    /// Pipeline stages in execution order.
    pub ops: Vec<Op>,
    /// Tile width tile-scoped artifacts must be sized to.
    pub tile_rows: usize,
}

impl Program {
    /// Look up a table declaration by name.
    #[must_use]
    pub fn table(&self, name: &str) -> Option<&TableDecl> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Look up a foreign-key declaration by (child, fk_col, parent).
    #[must_use]
    pub fn fk(&self, child: &str, fk_col: &str, parent: &str) -> Option<&FkDecl> {
        self.fks
            .iter()
            .find(|f| f.child == child && f.fk_col == fk_col && f.parent == parent)
    }
}
