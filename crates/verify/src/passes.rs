//! The four verification passes.
//!
//! Each pass takes a lowered [`Program`] and returns a small summary on
//! success or the first [`VerifyError`] in operator order. Pass 3 is where
//! "access-aware" becomes checkable: the signature derived from the composed
//! kernel spec (`swole_codegen::access`) is compared against an independent
//! encoding of what the cost model assumed when pricing the strategy
//! ([`modelled_signature`]), so drift in either layer is caught.

use swole_codegen::access::{self, Access, AccessSig};
use swole_cost::{AggStrategy, GroupJoinStrategy, WindowStrategy};

use crate::ir::{Artifact, ArtifactKind, ExprRole, Op, Program, Scope, StrategyRef, VExpr};
use crate::{VerifyError, VerifyErrorKind};

/// Pass 1 summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemaSummary {
    /// Expressions walked.
    pub exprs: usize,
    /// Column references resolved.
    pub column_refs: usize,
}

/// Pass 2 summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainSummary {
    /// Artifacts (locals + exports) whose domains were validated.
    pub artifacts: usize,
    /// Cross-operator imports matched to an earlier export.
    pub imports: usize,
}

/// Pass 3 summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignatureSummary {
    /// Operators whose strategy signature was checked.
    pub checked: usize,
}

/// Pass 4 summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceSummary {
    /// Allocation sites confirmed gauge-charged.
    pub sites: usize,
    /// Artifacts matched to a covering allocation site.
    pub covered_artifacts: usize,
}

fn err(path: &str, kind: VerifyErrorKind) -> VerifyError {
    VerifyError {
        path: path.to_string(),
        kind,
    }
}

/// Pass 1: schema/type soundness.
///
/// Every column referenced by an operator's expressions must exist on the
/// operator's table; dictionary predicates (`LIKE`/`IN`) may only target
/// dictionary-encoded columns; dictionary codes may not flow into arithmetic
/// or aggregate-input contexts; and no `Param` placeholder may survive.
pub fn check_schema(program: &Program) -> Result<SchemaSummary, VerifyError> {
    let mut summary = SchemaSummary {
        exprs: 0,
        column_refs: 0,
    };
    for op in &program.ops {
        let table = program.table(&op.table).ok_or_else(|| {
            err(
                &op.path,
                VerifyErrorKind::UnknownColumn {
                    table: op.table.clone(),
                    column: "<table missing from program>".to_string(),
                },
            )
        })?;
        for bound in &op.exprs {
            summary.exprs = summary.exprs.wrapping_add(1);
            let numeric = matches!(bound.role, ExprRole::AggInput);
            walk_expr(&bound.expr, op, table, numeric, &mut summary.column_refs)?;
        }
    }
    Ok(summary)
}

fn walk_expr(
    expr: &VExpr,
    op: &Op,
    table: &crate::ir::TableDecl,
    numeric: bool,
    column_refs: &mut usize,
) -> Result<(), VerifyError> {
    match expr {
        VExpr::Lit(_) => Ok(()),
        VExpr::Param(ordinal) => Err(err(
            &op.path,
            VerifyErrorKind::UnboundParam { ordinal: *ordinal },
        )),
        VExpr::Col(name) => {
            *column_refs = column_refs.wrapping_add(1);
            let ty = table.col_type(name).ok_or_else(|| {
                err(
                    &op.path,
                    VerifyErrorKind::UnknownColumn {
                        table: op.table.clone(),
                        column: name.clone(),
                    },
                )
            })?;
            if numeric && ty == crate::ir::ColType::Dict {
                return Err(err(
                    &op.path,
                    VerifyErrorKind::TypeMismatch {
                        table: op.table.clone(),
                        column: name.clone(),
                        context: "an arithmetic/aggregate input".to_string(),
                    },
                ));
            }
            Ok(())
        }
        VExpr::DictPredicate(name) => {
            *column_refs = column_refs.wrapping_add(1);
            let ty = table.col_type(name).ok_or_else(|| {
                err(
                    &op.path,
                    VerifyErrorKind::UnknownColumn {
                        table: op.table.clone(),
                        column: name.clone(),
                    },
                )
            })?;
            if ty != crate::ir::ColType::Dict {
                return Err(err(
                    &op.path,
                    VerifyErrorKind::NonDictPredicate {
                        table: op.table.clone(),
                        column: name.clone(),
                    },
                ));
            }
            Ok(())
        }
        VExpr::Arith(_, children) => {
            for c in children {
                walk_expr(c, op, table, true, column_refs)?;
            }
            Ok(())
        }
        VExpr::Cmp(children) | VExpr::Bool(children) | VExpr::Case(children) => {
            for c in children {
                walk_expr(c, op, table, false, column_refs)?;
            }
            Ok(())
        }
    }
}

/// Pass 2: domain discipline.
///
/// Artifacts must be produced before consumed, sized to the table/FK domain
/// that indexes them, and only plan-scoped artifacts may cross operator
/// boundaries (tile/morsel artifacts are worker-private by the determinism
/// contract).
pub fn check_domains(program: &Program) -> Result<DomainSummary, VerifyError> {
    let mut summary = DomainSummary {
        artifacts: 0,
        imports: 0,
    };
    let mut exported: Vec<&Artifact> = Vec::new();
    for op in &program.ops {
        // Imports resolve against exports of strictly earlier operators.
        for import in &op.imports {
            let found = exported
                .iter()
                .find(|a| a.kind == import.kind && a.table == import.table)
                .copied()
                .ok_or_else(|| {
                    err(
                        &op.path,
                        VerifyErrorKind::ConsumedBeforeProduced {
                            kind: import.kind,
                            table: import.table.clone(),
                        },
                    )
                })?;
            if let Some(fk_ref) = &import.via_fk {
                let fk = program
                    .fk(&fk_ref.child, &fk_ref.fk_col, &fk_ref.parent)
                    .ok_or_else(|| {
                        err(
                            &op.path,
                            VerifyErrorKind::MissingFk {
                                child: fk_ref.child.clone(),
                                fk_col: fk_ref.fk_col.clone(),
                                parent: fk_ref.parent.clone(),
                            },
                        )
                    })?;
                // Positional artifacts are indexed by FK target position, so
                // they must cover exactly the parent domain.
                if found.rows != fk.parent_rows {
                    return Err(err(
                        &op.path,
                        VerifyErrorKind::DomainMismatch {
                            kind: found.kind,
                            table: found.table.clone(),
                            expected_rows: fk.parent_rows,
                            found_rows: found.rows,
                        },
                    ));
                }
            }
            summary.imports = summary.imports.wrapping_add(1);
        }
        for artifact in &op.locals {
            check_local(program, op, artifact)?;
            summary.artifacts = summary.artifacts.wrapping_add(1);
        }
        for artifact in &op.exports {
            if artifact.scope != Scope::Plan {
                return Err(err(
                    &op.path,
                    VerifyErrorKind::ScopeViolation {
                        kind: artifact.kind,
                        scope: artifact.scope,
                    },
                ));
            }
            let decl = program.table(&artifact.table).ok_or_else(|| {
                err(
                    &op.path,
                    VerifyErrorKind::DomainMismatch {
                        kind: artifact.kind,
                        table: artifact.table.clone(),
                        expected_rows: 0,
                        found_rows: artifact.rows,
                    },
                )
            })?;
            if artifact.rows != decl.rows {
                return Err(err(
                    &op.path,
                    VerifyErrorKind::DomainMismatch {
                        kind: artifact.kind,
                        table: artifact.table.clone(),
                        expected_rows: decl.rows,
                        found_rows: artifact.rows,
                    },
                ));
            }
            summary.artifacts = summary.artifacts.wrapping_add(1);
            exported.push(artifact);
        }
    }
    Ok(summary)
}

fn check_local(program: &Program, op: &Op, artifact: &Artifact) -> Result<(), VerifyError> {
    // A local artifact's domain is the operator's own scan table.
    if artifact.table != op.table {
        return Err(err(
            &op.path,
            VerifyErrorKind::DomainMismatch {
                kind: artifact.kind,
                table: artifact.table.clone(),
                expected_rows: op.rows,
                found_rows: artifact.rows,
            },
        ));
    }
    let expected = match artifact.scope {
        Scope::Tile => program.tile_rows,
        // Morsel-scoped artifacts cover at most the operator's rows; the
        // lowering never emits them today but hand-built programs may.
        Scope::Morsel => {
            if artifact.rows > op.rows {
                return Err(err(
                    &op.path,
                    VerifyErrorKind::DomainMismatch {
                        kind: artifact.kind,
                        table: artifact.table.clone(),
                        expected_rows: op.rows,
                        found_rows: artifact.rows,
                    },
                ));
            }
            return Ok(());
        }
        Scope::Plan => program.table(&op.table).map_or(op.rows, |t| t.rows),
    };
    if artifact.rows != expected {
        return Err(err(
            &op.path,
            VerifyErrorKind::DomainMismatch {
                kind: artifact.kind,
                table: artifact.table.clone(),
                expected_rows: expected,
                found_rows: artifact.rows,
            },
        ));
    }
    Ok(())
}

/// The access signature the cost model assumes for a strategy — an
/// independent encoding of the patterns each pricing formula charges for
/// (`swole_cost::model`). Pass 3 compares this against the signature derived
/// from the composed kernel spec; if either layer drifts, verification fails.
#[must_use]
pub fn modelled_signature(strategy: &StrategyRef) -> AccessSig {
    match strategy {
        // est_hybrid prices a sequential predicate prepass plus conditional
        // (selection-vector-indirected) aggregate reads; est_value_masking
        // prices sequential reads of every lane with wasted multiply lanes;
        // grouped key-masking folds the mask into a sequentially-read key.
        // Scalar key-masking executes on the hybrid path.
        StrategyRef::Agg { strategy, grouped } => match (*strategy, *grouped) {
            (AggStrategy::Hybrid, g) | (AggStrategy::KeyMasking, g @ false) => AccessSig {
                predicate: Some(Access::Sequential),
                agg_input: Some(Access::Conditional),
                group_key: if g { Some(Access::Conditional) } else { None },
                structure: None,
            },
            (AggStrategy::ValueMasking, g) => AccessSig {
                predicate: Some(Access::Sequential),
                agg_input: Some(Access::Sequential),
                group_key: if g { Some(Access::Sequential) } else { None },
                structure: None,
            },
            (AggStrategy::KeyMasking, true) => AccessSig {
                predicate: Some(Access::Sequential),
                agg_input: Some(Access::Sequential),
                group_key: Some(Access::Sequential),
                structure: None,
            },
        },
        // Build cost: sequential filter scan; hash inserts are random
        // (gather) while bitmap construction is sequential from the mask
        // (unconditional) or conditional through a selection vector.
        StrategyRef::SemiJoinBuild(s) => AccessSig {
            predicate: Some(Access::Sequential),
            agg_input: None,
            group_key: None,
            structure: Some(match s {
                swole_cost::SemiJoinStrategy::Hash => Access::Gather,
                swole_cost::SemiJoinStrategy::PositionalBitmap(b) => match b {
                    swole_cost::BitmapBuild::Unconditional => Access::Sequential,
                    swole_cost::BitmapBuild::SelectionVector => Access::Conditional,
                },
            }),
        },
        // Probe cost: sequential local predicate, a gather per lane into the
        // membership structure (hash table or bitmap word), then masked
        // (sequential) or selection-vector (conditional) aggregation.
        StrategyRef::SemiJoinProbe {
            strategy: _,
            probe_masked,
        } => AccessSig {
            predicate: Some(Access::Sequential),
            agg_input: Some(if *probe_masked {
                Access::Sequential
            } else {
                Access::Conditional
            }),
            group_key: None,
            structure: Some(Access::Gather),
        },
        // Groupjoin gathers the build-side mask+entry per probe row and
        // aggregates only qualifying rows; eager aggregation aggregates every
        // probe row (sequential) and filters groups post-merge.
        StrategyRef::GroupJoin(g) => AccessSig {
            predicate: None,
            agg_input: Some(match g {
                GroupJoinStrategy::GroupJoin => Access::Conditional,
                GroupJoinStrategy::EagerAggregation => Access::Sequential,
            }),
            group_key: None,
            structure: Some(Access::Gather),
        },
        // Groupjoin build materializes the qualifying mask sequentially.
        StrategyRef::GroupJoinBuild => AccessSig {
            predicate: Some(Access::Sequential),
            agg_input: None,
            group_key: None,
            structure: None,
        },
        // Window frames: the sequential frame scan walks the sorted run once
        // with running accumulators (sequential function-input reads), while
        // conditional re-evaluation re-reads each output row's frame through
        // row offsets (conditional reads). Partition/order keys are compared
        // per row-boundary either way (conditional — only on run edges).
        StrategyRef::Window { strategy } => AccessSig {
            predicate: Some(Access::Sequential),
            agg_input: Some(match strategy {
                WindowStrategy::SequentialFrameScan => Access::Sequential,
                WindowStrategy::ConditionalReeval => Access::Conditional,
            }),
            group_key: Some(Access::Conditional),
            structure: None,
        },
        // Sort reorders materialized result rows by key comparison only.
        StrategyRef::Sort => AccessSig {
            predicate: None,
            agg_input: None,
            group_key: Some(Access::Conditional),
            structure: None,
        },
        // Limit truncates the result prefix; it touches no table data.
        StrategyRef::Limit => AccessSig {
            predicate: None,
            agg_input: None,
            group_key: None,
            structure: None,
        },
    }
}

/// The cost term that priced a strategy, if the model prices it at all.
#[must_use]
pub fn expected_cost_term(strategy: &StrategyRef) -> Option<&'static str> {
    match strategy {
        // Scalar key masking executes on the hybrid path (there is no key
        // to mask without a group-by), so the hybrid term prices it.
        StrategyRef::Agg {
            strategy: AggStrategy::KeyMasking,
            grouped: false,
        } => Some(AggStrategy::Hybrid.cost_term()),
        StrategyRef::Agg { strategy, .. } => Some(strategy.cost_term()),
        StrategyRef::GroupJoin(g) => Some(g.cost_term()),
        StrategyRef::Window { strategy } => Some(strategy.cost_term()),
        StrategyRef::Sort => Some("sort.rows"),
        StrategyRef::Limit => Some("limit.rows"),
        // Semijoin build/probe costs are folded into the chooser profile and
        // carry no plan-level term today.
        StrategyRef::SemiJoinBuild(_)
        | StrategyRef::SemiJoinProbe { .. }
        | StrategyRef::GroupJoinBuild => None,
    }
}

fn derived_signature(strategy: &StrategyRef) -> AccessSig {
    match strategy {
        StrategyRef::Agg { strategy, grouped } => access::agg_signature(*strategy, *grouped),
        StrategyRef::SemiJoinBuild(s) => access::semijoin_build_signature(*s),
        StrategyRef::SemiJoinProbe {
            strategy,
            probe_masked,
        } => access::semijoin_probe_signature(*strategy, *probe_masked),
        StrategyRef::GroupJoin(g) => access::groupjoin_probe_signature(*g),
        StrategyRef::GroupJoinBuild => access::groupjoin_build_signature(),
        StrategyRef::Window { strategy } => access::window_signature(*strategy),
        StrategyRef::Sort => access::sort_signature(),
        StrategyRef::Limit => access::limit_signature(),
    }
}

fn fmt_access(a: Option<Access>) -> String {
    match a {
        None => "none".to_string(),
        Some(a) => a.to_string(),
    }
}

/// Pass 3: access-pattern signatures.
///
/// For each operator with a committed strategy, the signature derived from
/// the composed kernel spec must match the declared one (the cost-model
/// assumption by default, or an explicit [`Op::declared`] override), and the
/// plan must carry the cost term that priced the strategy.
pub fn check_signatures(program: &Program) -> Result<SignatureSummary, VerifyError> {
    let mut summary = SignatureSummary { checked: 0 };
    for op in &program.ops {
        let Some(strategy) = &op.strategy else {
            continue;
        };
        let derived = derived_signature(strategy);
        let declared = op
            .declared
            .clone()
            .unwrap_or_else(|| modelled_signature(strategy));
        for (attribute, d, k) in [
            ("predicate", declared.predicate, derived.predicate),
            ("aggregate input", declared.agg_input, derived.agg_input),
            ("group key", declared.group_key, derived.group_key),
            ("structure", declared.structure, derived.structure),
        ] {
            if d != k {
                return Err(err(
                    &op.path,
                    VerifyErrorKind::SignatureMismatch {
                        op: op.name.clone(),
                        attribute: attribute.to_string(),
                        declared: fmt_access(d),
                        derived: fmt_access(k),
                    },
                ));
            }
        }
        if let Some(term) = expected_cost_term(strategy) {
            if !op.cost_terms.is_empty() && !op.cost_terms.iter().any(|t| t == term) {
                return Err(err(
                    &op.path,
                    VerifyErrorKind::CostTermMismatch {
                        op: op.name.clone(),
                        strategy: strategy_label(strategy).to_string(),
                        expected_term: term.to_string(),
                    },
                ));
            }
        }
        summary.checked = summary.checked.wrapping_add(1);
    }
    Ok(summary)
}

fn strategy_label(strategy: &StrategyRef) -> &'static str {
    match strategy {
        StrategyRef::Agg { strategy, .. } => strategy.name(),
        StrategyRef::SemiJoinBuild(s) | StrategyRef::SemiJoinProbe { strategy: s, .. } => s.name(),
        StrategyRef::GroupJoin(g) => g.name(),
        StrategyRef::GroupJoinBuild => "groupjoin-build",
        StrategyRef::Window { strategy } => strategy.name(),
        StrategyRef::Sort => "sort",
        StrategyRef::Limit => "limit",
    }
}

/// Pass 4: resource accounting coverage.
///
/// Every allocation site reachable from the plan must charge the `MemGauge`,
/// and every materialized artifact must have a covering allocation site (so
/// no pullup artifact is budget-invisible).
pub fn check_resources(program: &Program) -> Result<ResourceSummary, VerifyError> {
    let mut summary = ResourceSummary {
        sites: 0,
        covered_artifacts: 0,
    };
    for op in &program.ops {
        for alloc in &op.allocs {
            if !alloc.charged {
                return Err(err(
                    &op.path,
                    VerifyErrorKind::UnchargedAllocation {
                        op: op.name.clone(),
                        site: alloc.site.clone(),
                    },
                ));
            }
            summary.sites = summary.sites.wrapping_add(1);
        }
        for artifact in op.locals.iter().chain(&op.exports) {
            let needle = match (artifact.scope, artifact.kind) {
                // Tile/morsel artifacts live in pre-charged worker scratch.
                (Scope::Tile | Scope::Morsel, _) => "scratch",
                (Scope::Plan, ArtifactKind::SelectionVector) => "selection",
                (Scope::Plan, ArtifactKind::ValueMask | ArtifactKind::KeyMask) => "mask",
                (Scope::Plan, ArtifactKind::PositionalBitmap) => "bitmap",
                (Scope::Plan, ArtifactKind::KeySet) => "key-set",
            };
            if !op.allocs.iter().any(|a| a.site.contains(needle)) {
                return Err(err(
                    &op.path,
                    VerifyErrorKind::UnchargedAllocation {
                        op: op.name.clone(),
                        site: format!("{} ({})", artifact.kind, needle),
                    },
                ));
            }
            summary.covered_artifacts = summary.covered_artifacts.wrapping_add(1);
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{
        Alloc, ArithOp, Artifact, BoundExpr, ColType, ColumnDecl, FkDecl, FkRef, Import, TableDecl,
    };
    use crate::{verify, VerifyLevel};
    use swole_cost::{BitmapBuild, SemiJoinStrategy};

    const TILE: usize = 1024;

    fn table(name: &str, rows: usize, cols: &[(&str, ColType)]) -> TableDecl {
        TableDecl {
            name: name.to_string(),
            rows,
            columns: cols
                .iter()
                .map(|(n, t)| ColumnDecl {
                    name: (*n).to_string(),
                    ty: *t,
                })
                .collect(),
        }
    }

    /// A representative well-formed program: bitmap semijoin build over
    /// `supplier` exporting a positional bitmap, probed from `lineitem`
    /// through `l_suppkey` with a masked probe.
    fn semijoin_program() -> Program {
        let build_rows = 5_000;
        let probe_rows = 60_000;
        let mut build = Op::new(
            "semijoin-build(supplier)",
            "/semijoin-agg/build",
            "supplier",
            build_rows,
        );
        build.exprs.push(BoundExpr {
            role: ExprRole::Predicate,
            expr: VExpr::Cmp(vec![VExpr::Col("s_nationkey".into()), VExpr::Lit(15)]),
        });
        build.strategy = Some(StrategyRef::SemiJoinBuild(
            SemiJoinStrategy::PositionalBitmap(BitmapBuild::Unconditional),
        ));
        build.locals.push(Artifact {
            kind: ArtifactKind::ValueMask,
            table: "supplier".into(),
            rows: build_rows,
            scope: Scope::Plan,
        });
        build.exports.push(Artifact {
            kind: ArtifactKind::PositionalBitmap,
            table: "supplier".into(),
            rows: build_rows,
            scope: Scope::Plan,
        });
        build.allocs.push(Alloc {
            site: "build-mask".into(),
            charged: true,
        });
        build.allocs.push(Alloc {
            site: "positional-bitmap".into(),
            charged: true,
        });

        let mut probe = Op::new(
            "semijoin-probe(lineitem)",
            "/semijoin-agg/probe",
            "lineitem",
            probe_rows,
        );
        probe.exprs.push(BoundExpr {
            role: ExprRole::Predicate,
            expr: VExpr::Cmp(vec![VExpr::Col("l_quantity".into()), VExpr::Lit(24)]),
        });
        probe.exprs.push(BoundExpr {
            role: ExprRole::AggInput,
            expr: VExpr::Arith(
                ArithOp::Mul,
                vec![
                    VExpr::Col("l_extendedprice".into()),
                    VExpr::Col("l_discount".into()),
                ],
            ),
        });
        probe.strategy = Some(StrategyRef::SemiJoinProbe {
            strategy: SemiJoinStrategy::PositionalBitmap(BitmapBuild::Unconditional),
            probe_masked: true,
        });
        probe.imports.push(Import {
            kind: ArtifactKind::PositionalBitmap,
            table: "supplier".into(),
            via_fk: Some(FkRef {
                child: "lineitem".into(),
                fk_col: "l_suppkey".into(),
                parent: "supplier".into(),
            }),
        });
        probe.locals.push(Artifact {
            kind: ArtifactKind::ValueMask,
            table: "lineitem".into(),
            rows: TILE,
            scope: Scope::Tile,
        });
        probe.allocs.push(Alloc {
            site: "worker-scratch".into(),
            charged: true,
        });

        Program {
            tables: vec![
                table(
                    "lineitem",
                    probe_rows,
                    &[
                        ("l_quantity", ColType::Int),
                        ("l_extendedprice", ColType::Int),
                        ("l_discount", ColType::Int),
                        ("l_suppkey", ColType::U32),
                        ("l_comment", ColType::Dict),
                    ],
                ),
                table("supplier", build_rows, &[("s_nationkey", ColType::Int)]),
            ],
            fks: vec![FkDecl {
                child: "lineitem".into(),
                fk_col: "l_suppkey".into(),
                parent: "supplier".into(),
                child_rows: probe_rows,
                parent_rows: build_rows,
            }],
            ops: vec![build, probe],
            tile_rows: TILE,
        }
    }

    #[test]
    fn well_formed_program_passes_full() {
        let p = semijoin_program();
        let report = verify(&p, VerifyLevel::Full).expect("well-formed program must verify");
        assert_eq!(report.ops, 2);
        assert!(report.exprs >= 3);
        assert!(report.artifacts >= 3);
        assert_eq!(report.allocs, 3);
        assert_eq!(report.lines.len(), 4);
    }

    #[test]
    fn off_level_checks_nothing() {
        let mut p = semijoin_program();
        p.ops[1].imports.clear(); // would fail pass 4 artifact coverage? no — break pass 1 instead
        p.ops[0].exprs[0] = BoundExpr {
            role: ExprRole::Predicate,
            expr: VExpr::Col("nope".into()),
        };
        let report = verify(&p, VerifyLevel::Off).expect("off level never rejects");
        assert_eq!(report.ops, 0);
        assert!(report.lines.is_empty());
    }

    #[test]
    fn rejects_unknown_column() {
        let mut p = semijoin_program();
        p.ops[1].exprs[0] = BoundExpr {
            role: ExprRole::Predicate,
            expr: VExpr::Cmp(vec![VExpr::Col("l_ghost".into()), VExpr::Lit(1)]),
        };
        let e = verify(&p, VerifyLevel::Structural).unwrap_err();
        assert_eq!(
            e.kind,
            VerifyErrorKind::UnknownColumn {
                table: "lineitem".into(),
                column: "l_ghost".into()
            }
        );
        assert_eq!(e.path, "/semijoin-agg/probe");
    }

    #[test]
    fn rejects_unbound_param() {
        let mut p = semijoin_program();
        p.ops[0].exprs[0] = BoundExpr {
            role: ExprRole::Predicate,
            expr: VExpr::Cmp(vec![VExpr::Col("s_nationkey".into()), VExpr::Param(2)]),
        };
        let e = verify(&p, VerifyLevel::Structural).unwrap_err();
        assert_eq!(e.kind, VerifyErrorKind::UnboundParam { ordinal: 2 });
    }

    #[test]
    fn rejects_dict_column_as_aggregate_input() {
        let mut p = semijoin_program();
        p.ops[1].exprs[1] = BoundExpr {
            role: ExprRole::AggInput,
            expr: VExpr::Col("l_comment".into()),
        };
        let e = verify(&p, VerifyLevel::Structural).unwrap_err();
        assert!(matches!(
            e.kind,
            VerifyErrorKind::TypeMismatch { ref column, .. } if column == "l_comment"
        ));
    }

    #[test]
    fn rejects_dict_predicate_on_plain_column() {
        let mut p = semijoin_program();
        p.ops[1].exprs[0] = BoundExpr {
            role: ExprRole::Predicate,
            expr: VExpr::DictPredicate("l_quantity".into()),
        };
        let e = verify(&p, VerifyLevel::Structural).unwrap_err();
        assert_eq!(
            e.kind,
            VerifyErrorKind::NonDictPredicate {
                table: "lineitem".into(),
                column: "l_quantity".into()
            }
        );
    }

    #[test]
    fn rejects_consumed_before_produced() {
        let mut p = semijoin_program();
        p.ops[0].exports.clear();
        let e = verify(&p, VerifyLevel::Structural).unwrap_err();
        assert_eq!(
            e.kind,
            VerifyErrorKind::ConsumedBeforeProduced {
                kind: ArtifactKind::PositionalBitmap,
                table: "supplier".into()
            }
        );
    }

    #[test]
    fn rejects_wrong_mask_domain() {
        let mut p = semijoin_program();
        // Build mask sized to the probe table instead of the build table.
        p.ops[0].locals[0].rows = 60_000;
        let e = verify(&p, VerifyLevel::Structural).unwrap_err();
        assert_eq!(
            e.kind,
            VerifyErrorKind::DomainMismatch {
                kind: ArtifactKind::ValueMask,
                table: "supplier".into(),
                expected_rows: 5_000,
                found_rows: 60_000,
            }
        );
    }

    #[test]
    fn rejects_bitmap_fk_length_mismatch() {
        let mut p = semijoin_program();
        // Bitmap covers fewer rows than the FK parent domain: probing
        // through l_suppkey would index past the end.
        p.ops[0].exports[0].rows = 4_096;
        p.tables[1].rows = 4_096; // keep the export's own domain consistent
        p.ops[0].rows = 4_096;
        p.ops[0].locals[0].rows = 4_096;
        let e = verify(&p, VerifyLevel::Structural).unwrap_err();
        assert_eq!(
            e.kind,
            VerifyErrorKind::DomainMismatch {
                kind: ArtifactKind::PositionalBitmap,
                table: "supplier".into(),
                expected_rows: 5_000,
                found_rows: 4_096,
            }
        );
        assert_eq!(e.path, "/semijoin-agg/probe");
    }

    #[test]
    fn rejects_tile_artifact_crossing_operator_boundary() {
        let mut p = semijoin_program();
        p.ops[0].exports[0].scope = Scope::Tile;
        let e = verify(&p, VerifyLevel::Structural).unwrap_err();
        assert_eq!(
            e.kind,
            VerifyErrorKind::ScopeViolation {
                kind: ArtifactKind::PositionalBitmap,
                scope: Scope::Tile
            }
        );
    }

    #[test]
    fn rejects_missing_fk() {
        let mut p = semijoin_program();
        p.fks.clear();
        let e = verify(&p, VerifyLevel::Structural).unwrap_err();
        assert_eq!(
            e.kind,
            VerifyErrorKind::MissingFk {
                child: "lineitem".into(),
                fk_col: "l_suppkey".into(),
                parent: "supplier".into()
            }
        );
    }

    #[test]
    fn rejects_drifted_declared_signature() {
        let mut p = semijoin_program();
        // Declare the masked probe as if it aggregated conditionally — the
        // kernel spec derives sequential (masked multiply), so they disagree.
        let mut declared = modelled_signature(p.ops[1].strategy.as_ref().unwrap());
        declared.agg_input = Some(Access::Conditional);
        p.ops[1].declared = Some(declared);
        let e = verify(&p, VerifyLevel::Full).unwrap_err();
        assert!(matches!(
            e.kind,
            VerifyErrorKind::SignatureMismatch { ref attribute, .. } if attribute == "aggregate input"
        ));
        // Structural level does not run pass 3.
        assert!(verify(&p, VerifyLevel::Structural).is_ok());
    }

    #[test]
    fn rejects_missing_cost_term() {
        let mut p = semijoin_program();
        let mut agg = Op::new("agg(lineitem)", "/scan-agg", "lineitem", 60_000);
        agg.exprs.push(BoundExpr {
            role: ExprRole::AggInput,
            expr: VExpr::Col("l_quantity".into()),
        });
        agg.strategy = Some(StrategyRef::Agg {
            strategy: AggStrategy::Hybrid,
            grouped: false,
        });
        agg.cost_terms = vec!["agg.value-masking".into()]; // wrong term for the committed strategy
        agg.locals.push(Artifact {
            kind: ArtifactKind::SelectionVector,
            table: "lineitem".into(),
            rows: TILE,
            scope: Scope::Tile,
        });
        agg.allocs.push(Alloc {
            site: "worker-scratch".into(),
            charged: true,
        });
        p.ops = vec![agg];
        let e = verify(&p, VerifyLevel::Full).unwrap_err();
        assert_eq!(
            e.kind,
            VerifyErrorKind::CostTermMismatch {
                op: "agg(lineitem)".into(),
                strategy: "hybrid".into(),
                expected_term: "agg.hybrid".into(),
            }
        );
    }

    #[test]
    fn rejects_uncharged_allocation() {
        let mut p = semijoin_program();
        p.ops[0].allocs[1].charged = false;
        let e = verify(&p, VerifyLevel::Full).unwrap_err();
        assert_eq!(
            e.kind,
            VerifyErrorKind::UnchargedAllocation {
                op: "semijoin-build(supplier)".into(),
                site: "positional-bitmap".into(),
            }
        );
        // Structural level does not run pass 4.
        assert!(verify(&p, VerifyLevel::Structural).is_ok());
    }

    #[test]
    fn rejects_artifact_without_covering_allocation() {
        let mut p = semijoin_program();
        p.ops[1].allocs.clear(); // tile mask now has no scratch site
        let e = verify(&p, VerifyLevel::Full).unwrap_err();
        assert!(
            matches!(e.kind, VerifyErrorKind::UnchargedAllocation { ref site, .. }
            if site.contains("scratch"))
        );
    }

    #[test]
    fn modelled_and_derived_signatures_agree_for_all_strategies() {
        let mut refs: Vec<StrategyRef> = Vec::new();
        for s in [
            AggStrategy::Hybrid,
            AggStrategy::ValueMasking,
            AggStrategy::KeyMasking,
        ] {
            for grouped in [false, true] {
                refs.push(StrategyRef::Agg {
                    strategy: s,
                    grouped,
                });
            }
        }
        for s in [
            SemiJoinStrategy::Hash,
            SemiJoinStrategy::PositionalBitmap(BitmapBuild::Unconditional),
            SemiJoinStrategy::PositionalBitmap(BitmapBuild::SelectionVector),
        ] {
            refs.push(StrategyRef::SemiJoinBuild(s));
            for probe_masked in [false, true] {
                refs.push(StrategyRef::SemiJoinProbe {
                    strategy: s,
                    probe_masked,
                });
            }
        }
        refs.push(StrategyRef::GroupJoin(GroupJoinStrategy::GroupJoin));
        refs.push(StrategyRef::GroupJoin(GroupJoinStrategy::EagerAggregation));
        refs.push(StrategyRef::GroupJoinBuild);
        for w in [
            WindowStrategy::SequentialFrameScan,
            WindowStrategy::ConditionalReeval,
        ] {
            refs.push(StrategyRef::Window { strategy: w });
        }
        refs.push(StrategyRef::Sort);
        refs.push(StrategyRef::Limit);
        for r in refs {
            assert_eq!(
                modelled_signature(&r),
                derived_signature(&r),
                "cost-model assumption drifted from kernel spec for {r:?}"
            );
        }
    }
}
