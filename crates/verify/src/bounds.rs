//! Pass 5 (certification): abstract interpretation over the verification IR.
//!
//! Where passes 1–4 check that a lowered [`Program`] is *well-formed* (columns
//! exist, artifacts are domain-sized, allocation sites charge the gauge), this
//! pass computes *how much* the plan can charge: a sound per-operator upper
//! bound on rows, bytes, and hash-table growth, folded into a
//! [`PlanCertificate`] the engine can compare against a memory budget before
//! the query is admitted.
//!
//! Two abstract domains drive the analysis:
//!
//! - A **cardinality domain** over operator outputs: scalar aggregates
//!   produce one row, grouped aggregates at most `min(rows, ndv(key))` groups
//!   (exact NDV from a fresh statistics snapshot when available, the scanned
//!   row count otherwise), semijoin/multijoin probes one row, window scans at
//!   most their input rows. Every materialized artifact and hash-table
//!   capacity is a monotone function of these cardinalities and the table
//!   domains declared in the IR, so the bytes bound is a closed-form
//!   evaluation — no fixpoint is needed (the IR is a DAG in execution order).
//! - An **interval domain** over expression values: each [`VExpr`] node is
//!   evaluated to a `[lo, hi]` interval (column statistics when fresh, the
//!   column type's domain otherwise), with the *widening rule* that any
//!   arithmetic result escaping the `i64` range is widened to ⊤ (the full
//!   `i64` range) and the site recorded as not provably overflow-safe.
//!   Aggregate inputs additionally model the accumulator: a sum over at most
//!   `rows` values of magnitude `m` is provably safe iff `rows · m ≤ i64::MAX`.
//!
//! Soundness argument: every byte bound here mirrors a charge site in the
//! engine (`crates/plan/src/engine.rs`) with the operator's row count, worker
//! count, and hash-table growth discipline substituted by their maxima, and
//! each formula is checked against the kernel sizing functions by a
//! drift-guard test in the engine crate. Charges are never released
//! mid-query, so the sum of per-operator bounds dominates the gauge peak.

use std::fmt;

use swole_cost::{BitmapBuild, SemiJoinStrategy};

use crate::ir::{
    ArithOp, BoundExpr, ColType, ExprRole, Op, Program, StrategyRef, TableDecl, VExpr,
};

// ---------------------------------------------------------------------------
// Inputs: statistics profiles
// ---------------------------------------------------------------------------

/// Value-range and distinct-count facts about one column, taken from a
/// *fresh* statistics snapshot. `min`/`max` are exact by the statistics
/// contract; `ndv` is present only when the distinct count is exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnProfile {
    /// Column name.
    pub name: String,
    /// Exact minimum value (dictionary columns: minimum code).
    pub min: i64,
    /// Exact maximum value (dictionary columns: maximum code).
    pub max: i64,
    /// Exact number of distinct values, when known exactly.
    pub ndv: Option<u64>,
}

/// Fresh per-table statistics handed to the bounds pass. The caller is
/// responsible for freshness: a profile must describe the same table
/// generation the certificate will be cached under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableProfile {
    /// Table name.
    pub table: String,
    /// Generation of the table contents the profile describes.
    pub generation: u64,
    /// Per-column facts.
    pub columns: Vec<ColumnProfile>,
}

impl TableProfile {
    fn column(&self, name: &str) -> Option<&ColumnProfile> {
        self.columns.iter().find(|c| c.name == name)
    }
}

/// Everything the bounds pass needs beyond the [`Program`] itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundsCtx {
    /// Maximum workers that can run the plan's morsels concurrently
    /// (scoped executor: the per-query thread count; pool: the pool size).
    pub workers: usize,
    /// Fresh statistics profiles for the program's tables. Tables without a
    /// profile fall back to their declared domains (type ranges, row counts).
    pub profiles: Vec<TableProfile>,
    /// Bytes the data-centric fallback interpreter would charge on a retry
    /// (the engine charges `plan_rows * 8` up front; charges from the failed
    /// primary attempt are *not* released first, so the peak bound must
    /// reserve for both).
    pub fallback_bytes: u64,
}

impl BoundsCtx {
    /// A context with no statistics: every bound falls back to table
    /// domains and type ranges.
    #[must_use]
    pub fn without_stats(workers: usize) -> BoundsCtx {
        BoundsCtx {
            workers,
            profiles: Vec::new(),
            fallback_bytes: 0,
        }
    }

    fn profile(&self, table: &str) -> Option<&TableProfile> {
        self.profiles.iter().find(|p| p.table == table)
    }
}

// ---------------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------------

/// Per-operator slice of the certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpBounds {
    /// Operator name.
    pub op: String,
    /// Plan-path provenance.
    pub path: String,
    /// Rows the operator scans.
    pub rows_scanned: u64,
    /// Upper bound on the operator's output cardinality.
    pub out_rows_bound: u64,
    /// Bytes charged once per plan (masks, bitmaps, selection vectors,
    /// materialized window columns, sort permutations).
    pub plan_bytes_bound: u64,
    /// Bytes charged per worker (tile scratch), already multiplied by the
    /// worker count.
    pub worker_bytes_bound: u64,
    /// Hash-table bytes including the growth discipline's worst case
    /// (initial capacity doubled until the key bound fits), across workers.
    pub ht_bytes_bound: u64,
    /// Arithmetic sites (operators + aggregate accumulators) examined.
    pub arith_sites: u32,
    /// Of those, sites the interval analysis proves cannot overflow `i64`.
    pub overflow_safe_sites: u32,
}

impl OpBounds {
    /// Total bytes this operator can charge.
    #[must_use]
    pub fn bytes_bound(&self) -> u64 {
        self.plan_bytes_bound
            .saturating_add(self.worker_bytes_bound)
            .saturating_add(self.ht_bytes_bound)
    }
}

impl fmt::Display for OpBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: rows<={}, out<={}, bytes<={} (plan {} + worker {} + ht {}), overflow-safe {}/{}",
            self.path,
            self.rows_scanned,
            self.out_rows_bound,
            self.bytes_bound(),
            self.plan_bytes_bound,
            self.worker_bytes_bound,
            self.ht_bytes_bound,
            self.overflow_safe_sites,
            self.arith_sites,
        )
    }
}

/// The typed certificate attached to every verified plan: a sound upper
/// bound on what execution can charge the memory gauge, plus the overflow
/// verdicts of the value-range analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanCertificate {
    /// Peak bytes the query can charge, including the data-centric fallback
    /// reserve (a failed primary attempt's charges are not released before
    /// the fallback charges its own).
    pub peak_bytes_bound: u64,
    /// Peak bytes of the primary (composed-kernel) attempt alone.
    pub primary_bytes_bound: u64,
    /// Fallback interpreter reserve folded into `peak_bytes_bound`.
    pub fallback_bytes: u64,
    /// Per-operator breakdown, in execution order.
    pub per_op_bounds: Vec<OpBounds>,
    /// Arithmetic sites examined across all operators.
    pub arith_sites: u32,
    /// Sites proven unable to overflow `i64`.
    pub overflow_safe_sites: u32,
    /// Worker count the bounds were computed for.
    pub workers: u64,
    /// `(table, generation)` pairs of the statistics snapshots consulted —
    /// the certificate is valid only while every listed generation is
    /// current (the plan cache enforces this with the same generation check
    /// that invalidates cached plans).
    pub stats_generations: Vec<(String, u64)>,
    /// Human-readable summary lines for `EXPLAIN VERIFY`.
    pub lines: Vec<String>,
}

impl PlanCertificate {
    /// `true` when every bound is finite (no saturation to `u64::MAX`).
    /// The corpus CI gate requires this for every supported plan.
    #[must_use]
    pub fn is_bounded(&self) -> bool {
        self.peak_bytes_bound < u64::MAX
    }

    /// `true` when every arithmetic site in the plan is proven safe.
    #[must_use]
    pub fn all_sites_overflow_safe(&self) -> bool {
        self.overflow_safe_sites == self.arith_sites
    }
}

// ---------------------------------------------------------------------------
// Interval domain
// ---------------------------------------------------------------------------

/// A closed interval over `i64` values, carried in `i128` so single-step
/// arithmetic on in-range endpoints can never wrap. Invariant: after every
/// operation the interval is widened back into the `i64` range (⊤), so
/// nested expressions stay single-step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Iv {
    lo: i128,
    hi: i128,
}

const I64_LO: i128 = i64::MIN as i128;
const I64_HI: i128 = i64::MAX as i128;
const TOP: Iv = Iv {
    lo: I64_LO,
    hi: I64_HI,
};
const BOOL: Iv = Iv { lo: 0, hi: 1 };

impl Iv {
    fn point(v: i64) -> Iv {
        Iv {
            lo: v as i128,
            hi: v as i128,
        }
    }

    fn range(lo: i64, hi: i64) -> Iv {
        Iv {
            lo: lo.min(hi) as i128,
            hi: lo.max(hi) as i128,
        }
    }

    fn hull(self, other: Iv) -> Iv {
        Iv {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    fn fits_i64(self) -> bool {
        self.lo >= I64_LO && self.hi <= I64_HI
    }

    /// Widening: clamp an out-of-range result to ⊤. Returns the widened
    /// interval and whether widening was needed (the overflow verdict).
    fn widen(self) -> (Iv, bool) {
        if self.fits_i64() {
            (self, true)
        } else {
            (TOP, false)
        }
    }

    fn max_abs(self) -> i128 {
        self.lo.abs().max(self.hi.abs())
    }
}

/// One arithmetic step over exact `i128` endpoints. Endpoints are within the
/// `i64` range by the widening invariant, so none of these can wrap `i128`.
fn arith(op: ArithOp, a: Iv, b: Iv) -> (Iv, bool) {
    match op {
        ArithOp::Add => Iv {
            lo: a.lo + b.lo,
            hi: a.hi + b.hi,
        }
        .widen(),
        ArithOp::Sub => Iv {
            lo: a.lo - b.hi,
            hi: a.hi - b.lo,
        }
        .widen(),
        ArithOp::Mul => {
            let corners = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi];
            Iv {
                lo: *corners.iter().min().expect("non-empty"),
                hi: *corners.iter().max().expect("non-empty"),
            }
            .widen()
        }
        ArithOp::Div => {
            // A divisor interval containing zero means a runtime
            // divide-by-zero is possible: not provably safe, result ⊤.
            if b.lo <= 0 && b.hi >= 0 {
                return (TOP, false);
            }
            // i64::MIN / -1 is the one non-zero-divisor overflow.
            if a.lo == I64_LO && b.lo <= -1 && b.hi >= -1 {
                return (TOP, false);
            }
            let corners = [a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi];
            Iv {
                lo: *corners.iter().min().expect("non-empty"),
                hi: *corners.iter().max().expect("non-empty"),
            }
            .widen()
        }
    }
}

/// Tally of arithmetic sites walked and how many were proven safe.
#[derive(Debug, Clone, Copy, Default)]
struct SiteTally {
    sites: u32,
    safe: u32,
}

/// Evaluate `expr` to an interval, recording an overflow verdict per
/// arithmetic node into `tally`.
fn eval_expr(
    expr: &VExpr,
    decl: Option<&TableDecl>,
    profile: Option<&TableProfile>,
    tally: &mut SiteTally,
) -> Iv {
    match expr {
        VExpr::Lit(v) => Iv::point(*v),
        VExpr::Param(_) => TOP,
        VExpr::Col(name) => column_interval(name, decl, profile),
        // Predicate-shaped nodes evaluate to 0/1 regardless of operands;
        // their operand sub-trees are still walked for arithmetic sites.
        VExpr::DictPredicate(_) => BOOL,
        VExpr::Cmp(children) | VExpr::Bool(children) => {
            for c in children {
                eval_expr(c, decl, profile, tally);
            }
            BOOL
        }
        VExpr::Case(children) => {
            // Lowered CASE is [when, then, otherwise]: the value is the hull
            // of the branch values; the condition contributes only sites.
            if let [when, then, otherwise] = children.as_slice() {
                eval_expr(when, decl, profile, tally);
                let t = eval_expr(then, decl, profile, tally);
                let o = eval_expr(otherwise, decl, profile, tally);
                t.hull(o)
            } else {
                for c in children {
                    eval_expr(c, decl, profile, tally);
                }
                TOP
            }
        }
        VExpr::Arith(op, children) => {
            tally.sites += 1;
            let mut it = children.iter();
            let Some(first) = it.next() else {
                tally.safe += 1;
                return Iv::point(0);
            };
            let mut acc = eval_expr(first, decl, profile, tally);
            let mut safe = true;
            for c in it {
                let rhs = eval_expr(c, decl, profile, tally);
                let (next, step_safe) = arith(*op, acc, rhs);
                acc = next;
                safe &= step_safe;
            }
            if safe {
                tally.safe += 1;
            }
            acc
        }
    }
}

fn column_interval(name: &str, decl: Option<&TableDecl>, profile: Option<&TableProfile>) -> Iv {
    if let Some(c) = profile.and_then(|p| p.column(name)) {
        return Iv::range(c.min, c.max);
    }
    match decl.and_then(|d| d.col_type(name)) {
        Some(ColType::U32) => Iv {
            lo: 0,
            hi: u32::MAX as i128,
        },
        _ => TOP,
    }
}

// ---------------------------------------------------------------------------
// Sizing formulas (mirror swole_kernels + engine charge sites; the engine
// crate carries a drift-guard test comparing these against the real sizing
// functions)
// ---------------------------------------------------------------------------

fn next_pow2(x: u64) -> u64 {
    x.max(1).checked_next_power_of_two().unwrap_or(u64::MAX)
}

/// `AggTable::with_capacity` initial capacity for an expected key count.
fn agg_table_cap0(expected: u64) -> u64 {
    next_pow2(expected.max(4).saturating_mul(2))
}

/// Final capacity after growth: the table doubles whenever
/// `(len + 1) * 2 > cap`, so `keys` occupants force capacity to the first
/// power of two at or above `2 * keys + 2` (never shrinking below `cap0`).
fn grown_cap(cap0: u64, keys: u64) -> u64 {
    cap0.max(next_pow2(keys.saturating_mul(2).saturating_add(2)))
}

/// `AggTable::size_bytes` at a given capacity.
fn agg_table_bytes(cap: u64, n_aggs: u64) -> u64 {
    cap.saturating_mul(8)
        .saturating_add(
            cap.saturating_add(1)
                .saturating_mul(n_aggs)
                .saturating_mul(8),
        )
        .saturating_add(cap)
}

/// Total `KeySet` charge for up to `n` inserted keys: initial capacity for
/// an expected `n/2 + 4`, grown until `n` occupants fit.
fn key_set_bytes(n: u64) -> u64 {
    let cap0 = agg_table_cap0(n / 2 + 4);
    grown_cap(cap0, n).saturating_mul(8)
}

/// `ScalarAcc::scratch_bytes`: tile cmp mask + selection vector + value
/// buffer, plus one accumulator per aggregate.
fn scalar_scratch(tile: u64, n_aggs: u64) -> u64 {
    tile.saturating_mul(1 + 4 + 8)
        .saturating_add(n_aggs.saturating_mul(8))
}

/// `GroupAcc::scratch_bytes`: scalar scratch plus the tile key buffer and
/// per-lane aggregate staging.
fn group_scratch(tile: u64, n_aggs: u64) -> u64 {
    tile.saturating_mul(1 + 4 + 8 + 8)
        .saturating_add(n_aggs.saturating_mul(8).saturating_mul(tile))
}

/// `GroupJoinAcc::scratch_bytes`: per-lane aggregate staging only.
fn groupjoin_scratch(tile: u64, n_aggs: u64) -> u64 {
    n_aggs.saturating_mul(8).saturating_mul(tile)
}

fn bitmap_bytes(rows: u64) -> u64 {
    rows.div_ceil(64).saturating_mul(8)
}

// ---------------------------------------------------------------------------
// The pass
// ---------------------------------------------------------------------------

/// Exact distinct-count bound for `table.column`, when a fresh profile
/// knows one.
fn exact_ndv(ctx: &BoundsCtx, table: &str, column: &str) -> Option<u64> {
    ctx.profile(table)?.column(column)?.ndv
}

/// The grouped-key cardinality bound: exact NDV when fresh statistics know
/// it, otherwise the scanned row count (every row its own group).
fn group_keys_bound(ctx: &BoundsCtx, table: &str, key: Option<&str>, rows: u64) -> u64 {
    match key.and_then(|k| exact_ndv(ctx, table, k)) {
        Some(ndv) => ndv.min(rows),
        None => rows,
    }
}

fn group_key_column(op: &Op) -> Option<&str> {
    op.exprs.iter().find_map(|b| match (&b.role, &b.expr) {
        (ExprRole::GroupKey, VExpr::Col(c)) => Some(c.as_str()),
        _ => None,
    })
}

fn n_aggs_of(op: &Op) -> u64 {
    match op.n_aggs {
        Some(n) => n as u64,
        // Hand-built programs without the annotation: every aggregate has
        // at least its input expression (COUNT(*) lowers to none, so the
        // engine always annotates).
        None => op
            .exprs
            .iter()
            .filter(|b| matches!(b.role, ExprRole::AggInput))
            .count()
            .max(1) as u64,
    }
}

/// Value-range analysis for one operator: walk every bound expression,
/// then model each aggregate input's accumulator (a sum of at most
/// `rows` addends).
fn analyze_overflow(
    op: &Op,
    decl: Option<&TableDecl>,
    profile: Option<&TableProfile>,
) -> SiteTally {
    let mut tally = SiteTally::default();
    for BoundExpr { role, expr } in &op.exprs {
        let iv = eval_expr(expr, decl, profile, &mut tally);
        if matches!(role, ExprRole::AggInput) {
            // Accumulator site: SUM over up to `rows` values. Safe iff the
            // worst-case magnitude times the row bound stays within i64.
            tally.sites += 1;
            let rows = op.rows as i128;
            if iv
                .max_abs()
                .checked_mul(rows)
                .is_some_and(|total| total <= I64_HI)
            {
                tally.safe += 1;
            }
        }
    }
    tally
}

/// Derive the certificate for a lowered program.
///
/// Infallible by construction: every bound saturates rather than failing,
/// and [`PlanCertificate::is_bounded`] reports whether saturation occurred
/// (the corpus gate requires it never does on the supported surface).
#[must_use]
pub fn certify(program: &Program, ctx: &BoundsCtx) -> PlanCertificate {
    let workers = ctx.workers.max(1) as u64;
    let tile = program.tile_rows as u64;
    let mut per_op = Vec::with_capacity(program.ops.len());
    // Output cardinality of the most recent core operator, for sizing the
    // Sort post-operator's selection vector.
    let mut last_out: u64 = 0;
    for op in &program.ops {
        let decl = program.table(&op.table);
        let profile = ctx.profile(&op.table);
        let rows = op.rows as u64;
        let n_aggs = n_aggs_of(op);
        let mut b = OpBounds {
            op: op.name.clone(),
            path: op.path.clone(),
            rows_scanned: rows,
            out_rows_bound: rows,
            plan_bytes_bound: 0,
            worker_bytes_bound: 0,
            ht_bytes_bound: 0,
            arith_sites: 0,
            overflow_safe_sites: 0,
        };
        let tally = analyze_overflow(op, decl, profile);
        b.arith_sites = tally.sites;
        b.overflow_safe_sites = tally.safe;
        match &op.strategy {
            Some(StrategyRef::Agg { grouped, .. }) => {
                if *grouped {
                    let keys = group_keys_bound(ctx, &op.table, group_key_column(op), rows);
                    b.out_rows_bound = keys;
                    b.worker_bytes_bound = workers.saturating_mul(group_scratch(tile, n_aggs));
                    let cap = grown_cap(agg_table_cap0(64), keys);
                    b.ht_bytes_bound = workers.saturating_mul(agg_table_bytes(cap, n_aggs));
                } else {
                    b.out_rows_bound = 1;
                    b.worker_bytes_bound = workers.saturating_mul(scalar_scratch(tile, n_aggs));
                }
                last_out = b.out_rows_bound;
            }
            Some(StrategyRef::SemiJoinBuild(s)) => {
                // Qualifying mask over the whole build domain, plus the
                // membership structure the probe imports.
                b.plan_bytes_bound = rows;
                match s {
                    SemiJoinStrategy::Hash => {
                        b.ht_bytes_bound = key_set_bytes(rows);
                    }
                    SemiJoinStrategy::PositionalBitmap(bmb) => {
                        if *bmb == BitmapBuild::SelectionVector {
                            b.plan_bytes_bound =
                                b.plan_bytes_bound.saturating_add(rows.saturating_mul(4));
                        }
                        b.plan_bytes_bound = b.plan_bytes_bound.saturating_add(bitmap_bytes(rows));
                    }
                }
            }
            Some(StrategyRef::SemiJoinProbe { .. }) => {
                b.out_rows_bound = 1;
                let mut per_worker = scalar_scratch(tile, n_aggs);
                if op.path.starts_with("/multijoin") {
                    // The multijoin probe narrows a per-worker edge cursor
                    // (16 bytes per edge) alongside its scalar scratch.
                    per_worker =
                        per_worker.saturating_add((op.imports.len() as u64).saturating_mul(16));
                }
                b.worker_bytes_bound = workers.saturating_mul(per_worker);
                last_out = b.out_rows_bound;
            }
            Some(StrategyRef::GroupJoinBuild) => {
                // Chain-edge / groupjoin build: only the qualifying mask.
                b.plan_bytes_bound = rows;
            }
            Some(StrategyRef::GroupJoin(_)) => {
                let key = group_key_column(op);
                let parent_rows = key
                    .and_then(|k| {
                        program
                            .fks
                            .iter()
                            .find(|f| f.child == op.table && f.fk_col == k)
                    })
                    .map_or(rows, |f| f.parent_rows as u64);
                let keys = match key.and_then(|k| exact_ndv(ctx, &op.table, k)) {
                    Some(ndv) => ndv.min(parent_rows),
                    None => parent_rows,
                };
                b.out_rows_bound = keys;
                b.worker_bytes_bound = workers.saturating_mul(groupjoin_scratch(tile, n_aggs));
                let cap = grown_cap(agg_table_cap0((parent_rows / 2).max(16)), keys);
                b.ht_bytes_bound = workers.saturating_mul(agg_table_bytes(cap, n_aggs));
                last_out = b.out_rows_bound;
            }
            Some(StrategyRef::Window { .. }) => {
                // Phase 1: plan-scoped selection vector + per-worker tile
                // mask. Phase 2: materialized columns for qualifying rows.
                let mat_cols = op.mat_cols.unwrap_or(1 + op.exprs.len()) as u64;
                b.plan_bytes_bound = rows
                    .saturating_mul(4)
                    .saturating_add(rows.saturating_mul(8).saturating_mul(mat_cols));
                b.worker_bytes_bound = workers.saturating_mul(tile);
                last_out = rows;
            }
            Some(StrategyRef::Sort) => {
                b.out_rows_bound = last_out;
                b.plan_bytes_bound = last_out.saturating_mul(4);
            }
            Some(StrategyRef::Limit) => {
                b.out_rows_bound = last_out;
            }
            None => {}
        }
        per_op.push(b);
    }
    let primary = per_op
        .iter()
        .fold(0u64, |acc, b| acc.saturating_add(b.bytes_bound()));
    let peak = primary.saturating_add(ctx.fallback_bytes);
    let arith_sites = per_op.iter().map(|b| b.arith_sites).sum();
    let overflow_safe_sites = per_op.iter().map(|b| b.overflow_safe_sites).sum();
    let stats_generations: Vec<(String, u64)> = program
        .tables
        .iter()
        .filter_map(|t| ctx.profile(&t.name).map(|p| (t.name.clone(), p.generation)))
        .collect();
    let mut lines = vec![
        format!(
            "bounds: peak <= {peak} B across {} operator(s) at {workers} worker(s) \
             (primary {primary} B + fallback reserve {} B)",
            per_op.len(),
            ctx.fallback_bytes
        ),
        format!(
            "bounds: {overflow_safe_sites}/{arith_sites} arithmetic site(s) proven overflow-safe"
        ),
    ];
    lines.extend(per_op.iter().map(|b| format!("bounds[{b}]")));
    PlanCertificate {
        peak_bytes_bound: peak,
        primary_bytes_bound: primary,
        fallback_bytes: ctx.fallback_bytes,
        per_op_bounds: per_op,
        arith_sites,
        overflow_safe_sites,
        workers,
        stats_generations,
        lines,
    }
}

// ---------------------------------------------------------------------------
// Sizing-formula accessors for the engine's drift-guard test
// ---------------------------------------------------------------------------

/// Kernel-sizing formulas re-exported for cross-crate drift tests: the
/// engine asserts these agree with the real `swole_kernels` sizing
/// functions, so a kernel layout change cannot silently unsound the bounds.
pub mod sizing {
    /// Initial `AggTable` capacity for an expected key count.
    #[must_use]
    pub fn agg_table_cap0(expected: u64) -> u64 {
        super::agg_table_cap0(expected)
    }
    /// Capacity after growth to hold `keys` occupants.
    #[must_use]
    pub fn grown_cap(cap0: u64, keys: u64) -> u64 {
        super::grown_cap(cap0, keys)
    }
    /// `AggTable::size_bytes` at a capacity.
    #[must_use]
    pub fn agg_table_bytes(cap: u64, n_aggs: u64) -> u64 {
        super::agg_table_bytes(cap, n_aggs)
    }
    /// Total `KeySet` charge for up to `n` inserted keys.
    #[must_use]
    pub fn key_set_bytes(n: u64) -> u64 {
        super::key_set_bytes(n)
    }
    /// `ScalarAcc::scratch_bytes` equivalent.
    #[must_use]
    pub fn scalar_scratch(tile: u64, n_aggs: u64) -> u64 {
        super::scalar_scratch(tile, n_aggs)
    }
    /// `GroupAcc::scratch_bytes` equivalent.
    #[must_use]
    pub fn group_scratch(tile: u64, n_aggs: u64) -> u64 {
        super::group_scratch(tile, n_aggs)
    }
    /// `GroupJoinAcc::scratch_bytes` equivalent.
    #[must_use]
    pub fn groupjoin_scratch(tile: u64, n_aggs: u64) -> u64 {
        super::groupjoin_scratch(tile, n_aggs)
    }
    /// Positional bitmap bytes over a parent domain.
    #[must_use]
    pub fn bitmap_bytes(rows: u64) -> u64 {
        super::bitmap_bytes(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Alloc, Artifact, ArtifactKind, ColumnDecl, FkDecl, Scope};
    use swole_cost::AggStrategy;

    const TILE: usize = 1024;

    fn table(name: &str, rows: usize, cols: &[(&str, ColType)]) -> TableDecl {
        TableDecl {
            name: name.to_string(),
            rows,
            columns: cols
                .iter()
                .map(|(n, t)| ColumnDecl {
                    name: (*n).to_string(),
                    ty: *t,
                })
                .collect(),
        }
    }

    fn grouped_agg_program(rows: usize) -> Program {
        let mut op = Op::new("groupby-agg(t)", "/scan-agg", "t", rows);
        op.exprs.push(BoundExpr {
            role: ExprRole::Predicate,
            expr: VExpr::Cmp(vec![VExpr::Col("v".into()), VExpr::Lit(10)]),
        });
        op.exprs.push(BoundExpr {
            role: ExprRole::AggInput,
            expr: VExpr::Col("v".into()),
        });
        op.exprs.push(BoundExpr {
            role: ExprRole::GroupKey,
            expr: VExpr::Col("g".into()),
        });
        op.strategy = Some(StrategyRef::Agg {
            strategy: AggStrategy::Hybrid,
            grouped: true,
        });
        op.n_aggs = Some(1);
        op.locals.push(Artifact {
            kind: ArtifactKind::ValueMask,
            table: "t".into(),
            rows: TILE,
            scope: Scope::Tile,
        });
        op.allocs.push(Alloc {
            site: "worker-scratch".into(),
            charged: true,
        });
        op.allocs.push(Alloc {
            site: "agg-table".into(),
            charged: true,
        });
        Program {
            tables: vec![table(
                "t",
                rows,
                &[("v", ColType::Int), ("g", ColType::Int)],
            )],
            fks: Vec::new(),
            ops: vec![op],
            tile_rows: TILE,
        }
    }

    fn profile_with_ndv(ndv: u64) -> TableProfile {
        TableProfile {
            table: "t".into(),
            generation: 1,
            columns: vec![
                ColumnProfile {
                    name: "v".into(),
                    min: 0,
                    max: 100,
                    ndv: None,
                },
                ColumnProfile {
                    name: "g".into(),
                    min: 0,
                    max: ndv as i64 - 1,
                    ndv: Some(ndv),
                },
            ],
        }
    }

    #[test]
    fn exact_ndv_tightens_grouped_hash_table_bound() {
        let p = grouped_agg_program(100_000);
        let loose = certify(&p, &BoundsCtx::without_stats(2));
        let tight = certify(
            &p,
            &BoundsCtx {
                workers: 2,
                profiles: vec![profile_with_ndv(8)],
                fallback_bytes: 0,
            },
        );
        assert!(loose.is_bounded() && tight.is_bounded());
        // 8 groups fit the initial 128-slot table; 100k groups force growth.
        assert!(
            tight.peak_bytes_bound < loose.peak_bytes_bound,
            "ndv=8 bound {} must beat ndv-unknown bound {}",
            tight.peak_bytes_bound,
            loose.peak_bytes_bound
        );
        assert_eq!(tight.per_op_bounds[0].out_rows_bound, 8);
        assert_eq!(loose.per_op_bounds[0].out_rows_bound, 100_000);
        assert_eq!(tight.stats_generations, vec![("t".to_string(), 1)]);
    }

    #[test]
    fn bounds_scale_with_worker_count() {
        let p = grouped_agg_program(10_000);
        let w1 = certify(&p, &BoundsCtx::without_stats(1));
        let w8 = certify(&p, &BoundsCtx::without_stats(8));
        assert!(w8.peak_bytes_bound > w1.peak_bytes_bound);
        assert_eq!(
            w8.per_op_bounds[0].worker_bytes_bound,
            8 * w1.per_op_bounds[0].worker_bytes_bound
        );
    }

    #[test]
    fn stats_bounded_column_proves_sum_overflow_safe() {
        let p = grouped_agg_program(100_000);
        // |v| <= 100 over 100k rows: 10^7 << i64::MAX — provably safe.
        let cert = certify(
            &p,
            &BoundsCtx {
                workers: 1,
                profiles: vec![profile_with_ndv(8)],
                fallback_bytes: 0,
            },
        );
        assert_eq!(cert.arith_sites, 1, "one accumulator site");
        assert_eq!(cert.overflow_safe_sites, 1);
        assert!(cert.all_sites_overflow_safe());
        // Without statistics the column is ⊤ and nothing is provable.
        let blind = certify(&p, &BoundsCtx::without_stats(1));
        assert_eq!(blind.overflow_safe_sites, 0);
    }

    #[test]
    fn interval_arithmetic_widens_on_i64_escape() {
        let mut tally = SiteTally::default();
        // (i64::MAX) + 1 escapes: widened to ⊤, not safe.
        let e = VExpr::Arith(ArithOp::Add, vec![VExpr::Lit(i64::MAX), VExpr::Lit(1)]);
        let iv = eval_expr(&e, None, None, &mut tally);
        assert_eq!(iv, TOP);
        assert_eq!((tally.sites, tally.safe), (1, 0));

        // 3 * 4 stays exact and safe.
        let mut tally = SiteTally::default();
        let e = VExpr::Arith(ArithOp::Mul, vec![VExpr::Lit(3), VExpr::Lit(4)]);
        let iv = eval_expr(&e, None, None, &mut tally);
        assert_eq!((iv.lo, iv.hi), (12, 12));
        assert_eq!((tally.sites, tally.safe), (1, 1));
    }

    #[test]
    fn division_by_interval_containing_zero_is_never_safe() {
        let mut tally = SiteTally::default();
        let decl = table("t", 10, &[("d", ColType::Int)]);
        let profile = TableProfile {
            table: "t".into(),
            generation: 0,
            columns: vec![ColumnProfile {
                name: "d".into(),
                min: -1,
                max: 1,
                ndv: None,
            }],
        };
        let e = VExpr::Arith(ArithOp::Div, vec![VExpr::Lit(100), VExpr::Col("d".into())]);
        eval_expr(&e, Some(&decl), Some(&profile), &mut tally);
        assert_eq!((tally.sites, tally.safe), (1, 0));
    }

    #[test]
    fn semijoin_hash_build_bound_covers_grown_key_set() {
        let rows = 5_000usize;
        let mut build = Op::new("semijoin-build(s)", "/semijoin-agg/build", "s", rows);
        build.strategy = Some(StrategyRef::SemiJoinBuild(SemiJoinStrategy::Hash));
        let p = Program {
            tables: vec![table("s", rows, &[("k", ColType::Int)])],
            fks: Vec::new(),
            ops: vec![build],
            tile_rows: TILE,
        };
        let cert = certify(&p, &BoundsCtx::without_stats(4));
        let b = &cert.per_op_bounds[0];
        // Mask byte per row + final key-set capacity (pow2 >= 2n+2) * 8.
        assert_eq!(b.plan_bytes_bound, rows as u64);
        assert_eq!(b.ht_bytes_bound, key_set_bytes(rows as u64));
        assert!(b.ht_bytes_bound >= (2 * rows as u64) * 8);
    }

    #[test]
    fn groupjoin_probe_keys_bounded_by_fk_parent_domain() {
        let (probe_rows, build_rows) = (60_000usize, 500usize);
        let mut op = Op::new("probe-agg(c)", "/groupjoin-agg/probe", "c", probe_rows);
        op.exprs.push(BoundExpr {
            role: ExprRole::AggInput,
            expr: VExpr::Col("v".into()),
        });
        op.exprs.push(BoundExpr {
            role: ExprRole::GroupKey,
            expr: VExpr::Col("fk".into()),
        });
        op.strategy = Some(StrategyRef::GroupJoin(
            swole_cost::GroupJoinStrategy::GroupJoin,
        ));
        op.n_aggs = Some(1);
        let p = Program {
            tables: vec![
                table(
                    "c",
                    probe_rows,
                    &[("v", ColType::Int), ("fk", ColType::U32)],
                ),
                table("par", build_rows, &[("x", ColType::Int)]),
            ],
            fks: vec![FkDecl {
                child: "c".into(),
                fk_col: "fk".into(),
                parent: "par".into(),
                child_rows: probe_rows,
                parent_rows: build_rows,
            }],
            ops: vec![op],
            tile_rows: TILE,
        };
        let cert = certify(&p, &BoundsCtx::without_stats(1));
        // Groups cannot exceed the FK parent domain, not the probe rows.
        assert_eq!(cert.per_op_bounds[0].out_rows_bound, build_rows as u64);
    }

    #[test]
    fn sort_bound_follows_core_output_cardinality() {
        let mut p = grouped_agg_program(100_000);
        let mut sort = Op::new("sort(t)", "/post/sort", "t", 100_000);
        sort.strategy = Some(StrategyRef::Sort);
        p.ops.push(sort);
        let cert = certify(
            &p,
            &BoundsCtx {
                workers: 1,
                profiles: vec![profile_with_ndv(8)],
                fallback_bytes: 0,
            },
        );
        // The sort permutation covers at most the 8 group rows, not the
        // 100k scanned rows.
        assert_eq!(cert.per_op_bounds[1].out_rows_bound, 8);
        assert_eq!(cert.per_op_bounds[1].plan_bytes_bound, 8 * 4);
    }

    #[test]
    fn fallback_reserve_is_added_to_peak() {
        let p = grouped_agg_program(1_000);
        let without = certify(&p, &BoundsCtx::without_stats(1));
        let with = certify(
            &p,
            &BoundsCtx {
                workers: 1,
                profiles: Vec::new(),
                fallback_bytes: 8_000,
            },
        );
        assert_eq!(with.peak_bytes_bound, without.peak_bytes_bound + 8_000);
        assert_eq!(with.primary_bytes_bound, without.primary_bytes_bound);
    }

    #[test]
    fn certificate_lines_render_summary_and_per_op() {
        let p = grouped_agg_program(1_000);
        let cert = certify(&p, &BoundsCtx::without_stats(2));
        assert!(cert.lines[0].contains("peak <="));
        assert!(cert.lines[1].contains("arithmetic site(s)"));
        assert!(cert.lines.iter().any(|l| l.contains("/scan-agg")));
    }
}
