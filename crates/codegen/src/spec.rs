//! Query-shape descriptors the emitters render.

use std::fmt;

/// Comparison operator in a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        })
    }
}

/// `select sum(<agg>) from <rel> where <pred_col> <op> <lit>` — the Fig. 1
/// example shape. `agg_expr` is the aggregated expression over column names
/// (e.g. `"a"` or `"a * x"`).
#[derive(Debug, Clone)]
pub struct ScalarAggSpec {
    /// Relation (row count variable in the emitted code).
    pub rel: String,
    /// Aggregated expression, column names only.
    pub agg_expr: String,
    /// Predicate column.
    pub pred_col: String,
    /// Predicate comparison.
    pub op: CmpOp,
    /// Predicate literal.
    pub lit: i64,
}

impl ScalarAggSpec {
    /// The paper's running example: `select sum(a) from R where x < 13`.
    pub fn paper_example() -> ScalarAggSpec {
        ScalarAggSpec {
            rel: "R".into(),
            agg_expr: "a".into(),
            pred_col: "x".into(),
            op: CmpOp::Lt,
            lit: 13,
        }
    }

    /// The repeated-reference example of Fig. 5:
    /// `select sum(a * x) from R where x < 13`.
    pub fn repeated_reference_example() -> ScalarAggSpec {
        ScalarAggSpec {
            agg_expr: "a * x".into(),
            ..ScalarAggSpec::paper_example()
        }
    }

    /// SQL rendering (for doc output).
    pub fn sql(&self) -> String {
        format!(
            "select sum({}) from {} where {} {} {}",
            self.agg_expr, self.rel, self.pred_col, self.op, self.lit
        )
    }
}

/// `select <key>, sum(<agg>) from <rel> where ... group by <key>` — the
/// § III-B shape.
#[derive(Debug, Clone)]
pub struct GroupByAggSpec {
    /// The underlying scalar shape.
    pub scalar: ScalarAggSpec,
    /// Group-by key column.
    pub key_col: String,
}

impl GroupByAggSpec {
    /// The paper's § III-B example:
    /// `select c, sum(a) from R where x < 13 group by c`.
    pub fn paper_example() -> GroupByAggSpec {
        GroupByAggSpec {
            scalar: ScalarAggSpec::paper_example(),
            key_col: "c".into(),
        }
    }

    /// SQL rendering.
    pub fn sql(&self) -> String {
        format!(
            "select {}, sum({}) from {} where {} {} {} group by {}",
            self.key_col,
            self.scalar.agg_expr,
            self.scalar.rel,
            self.scalar.pred_col,
            self.scalar.op,
            self.scalar.lit,
            self.key_col
        )
    }
}

/// `select sum(R.<agg>) from R, S where R.<fk> = S.<pk> and S.<pred> ...` —
/// the § III-D semijoin shape.
#[derive(Debug, Clone)]
pub struct SemiJoinSpec {
    /// Probe relation.
    pub probe_rel: String,
    /// Build relation.
    pub build_rel: String,
    /// Foreign-key column on the probe side.
    pub fk_col: String,
    /// Primary-key column on the build side.
    pub pk_col: String,
    /// Aggregated probe-side column.
    pub agg_col: String,
    /// Build-side predicate column.
    pub pred_col: String,
    /// Build-side predicate comparison.
    pub op: CmpOp,
    /// Build-side predicate literal.
    pub lit: i64,
}

impl SemiJoinSpec {
    /// The paper's § III-D example:
    /// `select sum(R.a) from R, S where R.fk = S.pk and S.x < 13`.
    pub fn paper_example() -> SemiJoinSpec {
        SemiJoinSpec {
            probe_rel: "R".into(),
            build_rel: "S".into(),
            fk_col: "fk".into(),
            pk_col: "pk".into(),
            agg_col: "a".into(),
            pred_col: "x".into(),
            op: CmpOp::Lt,
            lit: 13,
        }
    }
}

/// `select R.<fk>, sum(R.<agg>) from R, S where R.<fk> = S.<pk> and
/// S.<pred> ... group by R.<fk>` — the § III-E groupjoin shape.
#[derive(Debug, Clone)]
pub struct GroupJoinSpec {
    /// The underlying semijoin shape (join keys + build predicate).
    pub join: SemiJoinSpec,
}

impl GroupJoinSpec {
    /// The paper's § III-E example.
    pub fn paper_example() -> GroupJoinSpec {
        GroupJoinSpec {
            join: SemiJoinSpec::paper_example(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_rendering() {
        assert_eq!(
            ScalarAggSpec::paper_example().sql(),
            "select sum(a) from R where x < 13"
        );
        assert_eq!(
            GroupByAggSpec::paper_example().sql(),
            "select c, sum(a) from R where x < 13 group by c"
        );
    }

    #[test]
    fn cmp_op_display() {
        assert_eq!(CmpOp::Le.to_string(), "<=");
        assert_eq!(CmpOp::Ne.to_string(), "!=");
    }
}
