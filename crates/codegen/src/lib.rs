//! # swole-codegen — C source emitters for every strategy
//!
//! The paper is about *generated code*; its figures show the C each
//! strategy produces. This crate emits that C text for the canonical query
//! shapes so the generated-code structure is inspectable, diffable and
//! golden-tested:
//!
//! * Fig. 1 — data-centric, hybrid, ROF for `select sum(a) from R where x < 13`
//! * Fig. 3 — value masking for the same query
//! * Fig. 4 — value masking and key masking for the group-by variant
//! * Fig. 5 — value masking vs access merging for repeated references
//! * section III-D — positional-bitmap semijoin (before/after rewrite)
//! * section III-E — groupjoin vs eager aggregation (before/after rewrite)
//!
//! The execution engine does not compile this text (see DESIGN.md section 2:
//! the kernels in `swole-kernels` are the compiled form); the emitters exist
//! so the reproduction keeps the paper's artifact — code — first-class.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod access;
mod emit;
mod spec;

pub use emit::{
    emit_access_merging, emit_bitmap_semijoin, emit_datacentric, emit_eager_aggregation,
    emit_groupby_key_masking, emit_groupby_value_masking, emit_groupjoin, emit_hash_semijoin,
    emit_hybrid, emit_rof, emit_value_masking,
};
pub use spec::{CmpOp, GroupByAggSpec, GroupJoinSpec, ScalarAggSpec, SemiJoinSpec};
