//! Access-pattern signatures derived from the composed kernel specs.
//!
//! SWOLE's claim (PAPER.md §III) is that strategy choice is really a choice
//! of *memory access pattern* per attribute stream: sequential scans,
//! position gathers, or conditional (selection-dependent) reads. The
//! emitters in this crate make those patterns visible as C text; this module
//! makes them *queryable*, so the static verifier (`swole-verify`) can
//! cross-check an operator's declared pattern against the kernel that will
//! actually run.
//!
//! Each `*_signature` function is the single source of truth for "what does
//! this strategy's composed kernel do per attribute", and the unit tests
//! below pin every signature to the emitted C it summarizes (e.g. value
//! masking derives a *sequential* aggregate input because the emitted loop
//! is `sum += (a[i+j]) * cmp[j]` — no branch, no indirection).

use std::fmt;

use swole_cost::{AggStrategy, BitmapBuild, GroupJoinStrategy, SemiJoinStrategy};

/// How a kernel touches one attribute stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Every position in order: `a[i+j]` under a dense loop.
    Sequential,
    /// Data-dependent positions: `bitmap_get(bm, fk_index[i])`,
    /// `ht_find(ht, fk[i])`.
    Gather,
    /// Only selected positions, via branch or selection vector:
    /// `a[idx[j]]`, `if (...) sum += a[i]`.
    Conditional,
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Access::Sequential => "sequential",
            Access::Gather => "gather",
            Access::Conditional => "conditional",
        };
        f.write_str(s)
    }
}

/// Per-operator access signature: one [`Access`] per attribute stream the
/// composed kernel reads or writes, `None` where the stream does not exist
/// for the shape (e.g. no group key in a scalar aggregate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessSig {
    /// Predicate input columns.
    pub predicate: Option<Access>,
    /// Aggregate input columns.
    pub agg_input: Option<Access>,
    /// Group-key column.
    pub group_key: Option<Access>,
    /// Auxiliary structure (hash table, bitmap, aggregate table) accesses.
    pub structure: Option<Access>,
}

/// Signature of a scan-aggregate under `strategy`.
///
/// Scalar key masking has no key to mask, so the engine executes it on the
/// hybrid path; its signature is the hybrid one.
#[must_use]
pub fn agg_signature(strategy: AggStrategy, grouped: bool) -> AccessSig {
    match (strategy, grouped) {
        // emit_hybrid: sequential `cmp[j] = pred` prepass, then
        // `sum += a[idx[j]]` — aggregate inputs read through the selection
        // vector (conditional). Grouped hybrid gathers the key the same way.
        (AggStrategy::Hybrid, g) | (AggStrategy::KeyMasking, g @ false) => AccessSig {
            predicate: Some(Access::Sequential),
            agg_input: Some(Access::Conditional),
            group_key: if g { Some(Access::Conditional) } else { None },
            structure: None,
        },
        // emit_value_masking / emit_groupby_value_masking: every lane read in
        // order, `sum += (a[i+j]) * cmp[j]` and `ht_lookup(ht, c[i+j])` — all
        // streams sequential (wasted lanes are the price the model charges).
        (AggStrategy::ValueMasking, g) => AccessSig {
            predicate: Some(Access::Sequential),
            agg_input: Some(Access::Sequential),
            group_key: if g { Some(Access::Sequential) } else { None },
            structure: None,
        },
        // emit_groupby_key_masking: `key[j] = (pred) ? c[i+j] : NULL_KEY`
        // then `e->sum += a[i+j]` — key and value both sequential; filtering
        // rides the key, not the accesses.
        (AggStrategy::KeyMasking, true) => AccessSig {
            predicate: Some(Access::Sequential),
            agg_input: Some(Access::Sequential),
            group_key: Some(Access::Sequential),
            structure: None,
        },
    }
}

/// Signature of a semijoin build under `strategy`.
#[must_use]
pub fn semijoin_build_signature(strategy: SemiJoinStrategy) -> AccessSig {
    AccessSig {
        predicate: Some(Access::Sequential),
        agg_input: None,
        group_key: None,
        structure: Some(match strategy {
            // emit_hash_semijoin build loop: `ht_insert(ht, pk[i])` — hashed
            // (random) placement.
            SemiJoinStrategy::Hash => Access::Gather,
            // emit_bitmap_semijoin build loop: `bitmap_assign(bm, i, pred)` —
            // position i in order, branch-free.
            SemiJoinStrategy::PositionalBitmap(BitmapBuild::Unconditional) => Access::Sequential,
            // Selection-vector build sets only qualifying bits.
            SemiJoinStrategy::PositionalBitmap(BitmapBuild::SelectionVector) => Access::Conditional,
        }),
    }
}

/// Signature of a semijoin probe under `strategy`.
///
/// `probe_masked` is the predicate-pullup variant: the membership bit is
/// multiplied into the aggregate (`sum += a[i] * bitmap_get(...)`), keeping
/// the aggregate input sequential; the unmasked variant compacts through a
/// selection vector first, making it conditional. Either way the membership
/// structure itself is a gather through the FK positions.
#[must_use]
pub fn semijoin_probe_signature(strategy: SemiJoinStrategy, probe_masked: bool) -> AccessSig {
    let _ = strategy; // hash table and bitmap probes are both gathers
    AccessSig {
        predicate: Some(Access::Sequential),
        agg_input: Some(if probe_masked {
            Access::Sequential
        } else {
            Access::Conditional
        }),
        group_key: None,
        structure: Some(Access::Gather),
    }
}

/// Signature of a groupjoin probe under `strategy`.
#[must_use]
pub fn groupjoin_probe_signature(strategy: GroupJoinStrategy) -> AccessSig {
    AccessSig {
        predicate: None,
        agg_input: Some(match strategy {
            // emit_groupjoin: `if ((e = ht_find(...))) e->sum += a[i]` — only
            // rows whose parent qualified contribute.
            GroupJoinStrategy::GroupJoin => Access::Conditional,
            // emit_eager_aggregation: `e->sum += a[i]` for every row, with
            // non-qualifying groups deleted afterwards.
            GroupJoinStrategy::EagerAggregation => Access::Sequential,
        }),
        group_key: None,
        // Both variants gather the per-group entry through the FK value.
        structure: Some(Access::Gather),
    }
}

/// Signature of the groupjoin build stage (qualifying-mask materialization).
#[must_use]
pub fn groupjoin_build_signature() -> AccessSig {
    AccessSig {
        predicate: Some(Access::Sequential),
        agg_input: None,
        group_key: None,
        structure: None,
    }
}

/// Signature of a window operator under `strategy`.
///
/// The filter prepass is a sequential mask evaluation either way, and the
/// partition/order keys are gathered through the sorted selection vector.
/// The strategies differ on the frame inputs: the sequential frame scan
/// reads each sorted value exactly once (`state += v[pos]` as `pos`
/// advances), re-evaluation re-reads frame rows conditionally for every
/// output row (`for f in frame { acc += v[f] }`).
#[must_use]
pub fn window_signature(strategy: swole_cost::WindowStrategy) -> AccessSig {
    AccessSig {
        predicate: Some(Access::Sequential),
        agg_input: Some(match strategy {
            swole_cost::WindowStrategy::SequentialFrameScan => Access::Sequential,
            swole_cost::WindowStrategy::ConditionalReeval => Access::Conditional,
        }),
        group_key: Some(Access::Conditional),
        structure: None,
    }
}

/// Signature of the ORDER BY post-operator: result rows are re-read through
/// the sort permutation (conditional, order-dependent positions).
#[must_use]
pub fn sort_signature() -> AccessSig {
    AccessSig {
        predicate: None,
        agg_input: None,
        group_key: Some(Access::Conditional),
        structure: None,
    }
}

/// Signature of the LIMIT post-operator: a sequential prefix truncation.
#[must_use]
pub fn limit_signature() -> AccessSig {
    AccessSig {
        predicate: None,
        agg_input: None,
        group_key: None,
        structure: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{GroupByAggSpec, GroupJoinSpec, ScalarAggSpec, SemiJoinSpec};
    use crate::{
        emit_bitmap_semijoin, emit_eager_aggregation, emit_groupby_key_masking,
        emit_groupby_value_masking, emit_groupjoin, emit_hash_semijoin, emit_hybrid,
        emit_value_masking,
    };

    // Each test pins a signature to the emitted C it summarizes, so a change
    // to either the emitter or the signature table breaks loudly.

    #[test]
    fn hybrid_signature_matches_emitted_c() {
        let sig = agg_signature(AggStrategy::Hybrid, false);
        let c = emit_hybrid(&ScalarAggSpec::paper_example());
        assert!(
            c.contains("cmp[j] = x[i+j] < 13;"),
            "sequential predicate prepass"
        );
        assert_eq!(sig.predicate, Some(Access::Sequential));
        assert!(
            c.contains("sum += a[idx[j]];"),
            "selection-vector indirection"
        );
        assert_eq!(sig.agg_input, Some(Access::Conditional));
        assert_eq!(sig.group_key, None);
    }

    #[test]
    fn value_masking_signature_matches_emitted_c() {
        let sig = agg_signature(AggStrategy::ValueMasking, false);
        let c = emit_value_masking(&ScalarAggSpec::paper_example());
        assert!(
            c.contains("sum += (a[i+j]) * cmp[j];"),
            "masked sequential aggregate"
        );
        assert!(!c.contains("idx"), "no selection vector");
        assert_eq!(sig.agg_input, Some(Access::Sequential));
        let g = emit_groupby_value_masking(&GroupByAggSpec::paper_example());
        assert!(g.contains("ht_lookup(ht, c[i+j])"), "key read sequentially");
        assert_eq!(
            agg_signature(AggStrategy::ValueMasking, true).group_key,
            Some(Access::Sequential)
        );
    }

    #[test]
    fn key_masking_signature_matches_emitted_c() {
        let sig = agg_signature(AggStrategy::KeyMasking, true);
        let c = emit_groupby_key_masking(&GroupByAggSpec::paper_example());
        assert!(c.contains("key[j] = (x[i+j] < 13) ? c[i+j] : NULL_KEY;"));
        assert!(
            c.contains("e->sum += a[i+j];"),
            "value stays unmasked and sequential"
        );
        assert_eq!(sig.agg_input, Some(Access::Sequential));
        assert_eq!(sig.group_key, Some(Access::Sequential));
        // Scalar key masking has no key to mask: the engine runs the hybrid
        // kernel, so the signatures must agree.
        assert_eq!(
            agg_signature(AggStrategy::KeyMasking, false),
            agg_signature(AggStrategy::Hybrid, false)
        );
    }

    #[test]
    fn semijoin_signatures_match_emitted_c() {
        let c = emit_bitmap_semijoin(&SemiJoinSpec::paper_example());
        assert!(
            c.contains("bitmap_assign(bm, i, x[i] < 13);"),
            "sequential build"
        );
        assert_eq!(
            semijoin_build_signature(SemiJoinStrategy::PositionalBitmap(
                BitmapBuild::Unconditional
            ))
            .structure,
            Some(Access::Sequential)
        );
        assert!(
            c.contains("sum += a[i] * bitmap_get(bm, fk_index[i]);"),
            "masked probe: sequential aggregate, gathered bitmap"
        );
        let masked = semijoin_probe_signature(
            SemiJoinStrategy::PositionalBitmap(BitmapBuild::Unconditional),
            true,
        );
        assert_eq!(masked.agg_input, Some(Access::Sequential));
        assert_eq!(masked.structure, Some(Access::Gather));

        let h = emit_hash_semijoin(&SemiJoinSpec::paper_example());
        assert!(
            h.contains("ht_insert(ht, pk[i]);"),
            "hashed build placement"
        );
        assert_eq!(
            semijoin_build_signature(SemiJoinStrategy::Hash).structure,
            Some(Access::Gather)
        );
        assert!(h.contains("if (ht_find(ht, fk[i]))"), "branching probe");
        assert_eq!(
            semijoin_probe_signature(SemiJoinStrategy::Hash, false).agg_input,
            Some(Access::Conditional)
        );
    }

    #[test]
    fn groupjoin_signatures_match_emitted_c() {
        let g = emit_groupjoin(&GroupJoinSpec::paper_example());
        assert!(
            g.contains("if ((e = ht_find(ht, fk[i])))"),
            "conditional aggregate"
        );
        assert_eq!(
            groupjoin_probe_signature(GroupJoinStrategy::GroupJoin).agg_input,
            Some(Access::Conditional)
        );
        let e = emit_eager_aggregation(&GroupJoinSpec::paper_example());
        assert!(
            e.contains("e = ht_lookup(ht, fk[i]);"),
            "every row aggregated"
        );
        assert_eq!(
            groupjoin_probe_signature(GroupJoinStrategy::EagerAggregation).agg_input,
            Some(Access::Sequential)
        );
    }
}
