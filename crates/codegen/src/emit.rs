//! The emitters.
//!
//! Each function renders the C a strategy would generate for the given
//! query shape, structured exactly like the corresponding figure in the
//! paper (loop nesting, temporary names `cmp`/`idx`/`tmp`, `TILE` tiling).

// Sub-expressions are pre-rendered with nested `format!` so each template
// stays a single readable block matching its figure.
#![allow(clippy::format_in_format_args)]

use crate::spec::{GroupByAggSpec, GroupJoinSpec, ScalarAggSpec, SemiJoinSpec};

/// Rewrite a column-name expression into per-row C by appending `[idx]` to
/// every identifier: `"a * x"` with idx `"i+j"` becomes `"a[i+j] * x[i+j]"`.
fn index_expr(expr: &str, idx: &str) -> String {
    let mut out = String::with_capacity(expr.len() * 2);
    let bytes = expr.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            out.push_str(&expr[start..i]);
            out.push('[');
            out.push_str(idx);
            out.push(']');
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

/// Fig. 1 (top): the data-centric strategy — one loop, one branch.
pub fn emit_datacentric(q: &ScalarAggSpec) -> String {
    format!(
        "// data-centric: {sql}\n\
         sum = 0;\n\
         for (i = 0; i < {rel}; i++) {{\n\
         \x20   if ({pred})\n\
         \x20       sum += {agg};\n\
         }}\n",
        sql = q.sql(),
        rel = q.rel,
        pred = format!("{}[i] {} {}", q.pred_col, q.op, q.lit),
        agg = index_expr(&q.agg_expr, "i"),
    )
}

/// Fig. 1 (middle): the hybrid strategy — tiled prepass, selection vector,
/// gather aggregation.
pub fn emit_hybrid(q: &ScalarAggSpec) -> String {
    format!(
        "// hybrid: {sql}\n\
         sum = 0;\n\
         for (i = 0; i < {rel}; i += TILE) {{\n\
         \x20   len = {rel} - i < TILE ? {rel} - i : TILE;\n\
         \x20   for (j = 0; j < len; j++)\n\
         \x20       cmp[j] = {pred};\n\
         \x20   k = 0;\n\
         \x20   for (j = 0; j < len; j++) {{\n\
         \x20       idx[k] = i + j;\n\
         \x20       k += cmp[j];\n\
         \x20   }}\n\
         \x20   for (j = 0; j < k; j++)\n\
         \x20       sum += {agg};\n\
         }}\n",
        sql = q.sql(),
        rel = q.rel,
        pred = format!("{}[i+j] {} {}", q.pred_col, q.op, q.lit),
        agg = index_expr(&q.agg_expr, "idx[j]"),
    )
}

/// Fig. 1 (bottom): relaxed operator fusion — fill a **full** selection
/// vector before aggregating, so the aggregation loop (almost always) runs
/// a fixed number of iterations.
pub fn emit_rof(q: &ScalarAggSpec) -> String {
    format!(
        "// ROF: {sql}\n\
         sum = 0;\n\
         i = 0;\n\
         while (i < {rel}) {{\n\
         \x20   k = 0;\n\
         \x20   while (i < {rel} && k < TILE) {{\n\
         \x20       idx[k] = i;\n\
         \x20       k += {pred};\n\
         \x20       i++;\n\
         \x20   }}\n\
         \x20   for (j = 0; j < k; j++)\n\
         \x20       sum += {agg};\n\
         }}\n",
        sql = q.sql(),
        rel = q.rel,
        pred = format!("{}[i] {} {}", q.pred_col, q.op, q.lit),
        agg = index_expr(&q.agg_expr, "idx[j]"),
    )
}

/// Fig. 3: **value masking** — unconditional sequential aggregation, result
/// multiplied by the predicate outcome.
pub fn emit_value_masking(q: &ScalarAggSpec) -> String {
    format!(
        "// SWOLE value masking: {sql}\n\
         sum = 0;\n\
         for (i = 0; i < {rel}; i += TILE) {{\n\
         \x20   len = {rel} - i < TILE ? {rel} - i : TILE;\n\
         \x20   for (j = 0; j < len; j++)\n\
         \x20       cmp[j] = {pred};\n\
         \x20   for (j = 0; j < len; j++)\n\
         \x20       sum += ({agg}) * cmp[j];\n\
         }}\n",
        sql = q.sql(),
        rel = q.rel,
        pred = format!("{}[i+j] {} {}", q.pred_col, q.op, q.lit),
        agg = index_expr(&q.agg_expr, "i+j"),
    )
}

/// Fig. 5 (bottom): **access merging** — the predicate attribute is read
/// once, its value fused with the predicate result into `tmp`.
///
/// Requires that `q.agg_expr` references the predicate column (that is what
/// makes the access redundant); the other aggregate inputs multiply `tmp` in
/// the second loop.
pub fn emit_access_merging(q: &ScalarAggSpec) -> String {
    let others: Vec<&str> = q
        .agg_expr
        .split('*')
        .map(str::trim)
        .filter(|c| *c != q.pred_col)
        .collect();
    let second = if others.is_empty() {
        "tmp[j] * tmp[j]".to_string()
    } else {
        format!("{}[i+j] * tmp[j]", others.join("[i+j] * "))
    };
    format!(
        "// SWOLE access merging: {sql}\n\
         sum = 0;\n\
         for (i = 0; i < {rel}; i += TILE) {{\n\
         \x20   len = {rel} - i < TILE ? {rel} - i : TILE;\n\
         \x20   for (j = 0; j < len; j++)\n\
         \x20       tmp[j] = {col}[i+j] * ({col}[i+j] {op} {lit});\n\
         \x20   for (j = 0; j < len; j++)\n\
         \x20       sum += {second};\n\
         }}\n",
        sql = q.sql(),
        rel = q.rel,
        col = q.pred_col,
        op = q.op,
        lit = q.lit,
        second = second,
    )
}

/// Fig. 4 (top): value masking for group-by aggregation — every tuple looks
/// up its real key; the value is masked and the valid flag maintained.
pub fn emit_groupby_value_masking(q: &GroupByAggSpec) -> String {
    let s = &q.scalar;
    format!(
        "// SWOLE value masking (group-by): {sql}\n\
         for (i = 0; i < {rel}; i += TILE) {{\n\
         \x20   len = {rel} - i < TILE ? {rel} - i : TILE;\n\
         \x20   for (j = 0; j < len; j++)\n\
         \x20       cmp[j] = {pred};\n\
         \x20   for (j = 0; j < len; j++) {{\n\
         \x20       e = ht_lookup(ht, {key}[i+j]);\n\
         \x20       e->sum += ({agg}) * cmp[j];\n\
         \x20       e->valid |= cmp[j];\n\
         \x20   }}\n\
         }}\n",
        sql = q.sql(),
        rel = s.rel,
        pred = format!("{}[i+j] {} {}", s.pred_col, s.op, s.lit),
        key = q.key_col,
        agg = index_expr(&s.agg_expr, "i+j"),
    )
}

/// Fig. 4 (bottom): **key masking** — the predicate result masks the
/// *key*; filtered tuples route to the throwaway entry and the value stays
/// unmasked.
pub fn emit_groupby_key_masking(q: &GroupByAggSpec) -> String {
    let s = &q.scalar;
    format!(
        "// SWOLE key masking (group-by): {sql}\n\
         for (i = 0; i < {rel}; i += TILE) {{\n\
         \x20   len = {rel} - i < TILE ? {rel} - i : TILE;\n\
         \x20   for (j = 0; j < len; j++)\n\
         \x20       key[j] = ({pred}) ? {key}[i+j] : NULL_KEY;\n\
         \x20   for (j = 0; j < len; j++) {{\n\
         \x20       e = ht_lookup(ht, key[j]);\n\
         \x20       e->sum += {agg};\n\
         \x20   }}\n\
         }}\n",
        sql = q.sql(),
        rel = s.rel,
        pred = format!("{}[i+j] {} {}", s.pred_col, s.op, s.lit),
        key = q.key_col,
        agg = index_expr(&s.agg_expr, "i+j"),
    )
}

/// § III-D "original version": hash semijoin — build a key set from
/// qualifying build-side tuples, probe it per probe-side tuple.
pub fn emit_hash_semijoin(q: &SemiJoinSpec) -> String {
    format!(
        "// hash semijoin: sum({p}.{a}) for {p}.{fk} = {b}.{pk}, {b}.{x} {op} {lit}\n\
         for (i = 0; i < {b}; i++) {{\n\
         \x20   if ({x}[i] {op} {lit})\n\
         \x20       ht_insert(ht, {pk}[i]);\n\
         }}\n\
         sum = 0;\n\
         for (i = 0; i < {p}; i++) {{\n\
         \x20   if (ht_find(ht, {fk}[i]))\n\
         \x20       sum += {a}[i];\n\
         }}\n",
        p = q.probe_rel,
        b = q.build_rel,
        fk = q.fk_col,
        pk = q.pk_col,
        a = q.agg_col,
        x = q.pred_col,
        op = q.op,
        lit = q.lit,
    )
}

/// § III-D "bitmap version": **positional-bitmap semijoin** — sequential
/// build over the build side, positional probe through the FK index.
pub fn emit_bitmap_semijoin(q: &SemiJoinSpec) -> String {
    format!(
        "// SWOLE bitmap semijoin: sum({p}.{a}) for {p}.{fk} = {b}.{pk}, {b}.{x} {op} {lit}\n\
         for (i = 0; i < {b}; i++)\n\
         \x20   bitmap_assign(bm, i, {x}[i] {op} {lit});\n\
         sum = 0;\n\
         for (i = 0; i < {p}; i++)\n\
         \x20   sum += {a}[i] * bitmap_get(bm, fk_index[i]);\n",
        p = q.probe_rel,
        b = q.build_rel,
        fk = q.fk_col,
        pk = q.pk_col,
        a = q.agg_col,
        x = q.pred_col,
        op = q.op,
        lit = q.lit,
    )
}

/// § III-E "original version": the groupjoin — filtered build on S, lookup
/// + aggregate per R tuple.
pub fn emit_groupjoin(q: &GroupJoinSpec) -> String {
    let j = &q.join;
    format!(
        "// groupjoin: {p}.{fk}, sum({p}.{a}) group by {p}.{fk}, {b}.{x} {op} {lit}\n\
         for (i = 0; i < {b}; i++) {{\n\
         \x20   if ({x}[i] {op} {lit})\n\
         \x20       ht_insert(ht, {pk}[i]);\n\
         }}\n\
         for (i = 0; i < {p}; i++) {{\n\
         \x20   if ((e = ht_find(ht, {fk}[i])))\n\
         \x20       e->sum += {a}[i];\n\
         }}\n",
        p = j.probe_rel,
        b = j.build_rel,
        fk = j.fk_col,
        pk = j.pk_col,
        a = j.agg_col,
        x = j.pred_col,
        op = j.op,
        lit = j.lit,
    )
}

/// § III-E "eager aggregation version": unconditional aggregation of R
/// grouped by the FK, then deletion of non-qualifying keys with the
/// **inverted** predicate.
pub fn emit_eager_aggregation(q: &GroupJoinSpec) -> String {
    let j = &q.join;
    let inverted = match j.op {
        crate::spec::CmpOp::Lt => ">=",
        crate::spec::CmpOp::Le => ">",
        crate::spec::CmpOp::Gt => "<=",
        crate::spec::CmpOp::Ge => "<",
        crate::spec::CmpOp::Eq => "!=",
        crate::spec::CmpOp::Ne => "==",
    };
    format!(
        "// SWOLE eager aggregation: {p}.{fk}, sum({p}.{a}) group by {p}.{fk}, {b}.{x} {op} {lit}\n\
         for (i = 0; i < {p}; i++) {{\n\
         \x20   e = ht_lookup(ht, {fk}[i]);\n\
         \x20   e->sum += {a}[i];\n\
         }}\n\
         for (i = 0; i < {b}; i++) {{\n\
         \x20   if ({x}[i] {inv} {lit})   // inverted predicate\n\
         \x20       ht_delete(ht, {pk}[i]);\n\
         }}\n",
        p = j.probe_rel,
        b = j.build_rel,
        fk = j.fk_col,
        pk = j.pk_col,
        a = j.agg_col,
        x = j.pred_col,
        op = j.op,
        lit = j.lit,
        inv = inverted,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CmpOp;

    #[test]
    fn index_expr_rewrites_identifiers() {
        assert_eq!(index_expr("a", "i"), "a[i]");
        assert_eq!(index_expr("a * x", "i+j"), "a[i+j] * x[i+j]");
        assert_eq!(index_expr("a*b", "idx[j]"), "a[idx[j]]*b[idx[j]]");
    }

    #[test]
    fn datacentric_matches_fig1() {
        let c = emit_datacentric(&ScalarAggSpec::paper_example());
        assert_eq!(
            c,
            "// data-centric: select sum(a) from R where x < 13\n\
             sum = 0;\n\
             for (i = 0; i < R; i++) {\n\
             \x20   if (x[i] < 13)\n\
             \x20       sum += a[i];\n\
             }\n"
        );
    }

    #[test]
    fn hybrid_has_three_inner_loops() {
        let c = emit_hybrid(&ScalarAggSpec::paper_example());
        assert_eq!(c.matches("for (j = 0;").count(), 3);
        assert!(c.contains("cmp[j] = x[i+j] < 13;"));
        assert!(c.contains("k += cmp[j];"), "no-branch selection vector");
        assert!(c.contains("sum += a[idx[j]];"));
    }

    #[test]
    fn rof_fills_full_selection_vector() {
        let c = emit_rof(&ScalarAggSpec::paper_example());
        assert!(c.contains("while (i < R && k < TILE)"));
        assert!(c.contains("sum += a[idx[j]];"));
    }

    #[test]
    fn value_masking_matches_fig3() {
        let c = emit_value_masking(&ScalarAggSpec::paper_example());
        assert!(c.contains("cmp[j] = x[i+j] < 13;"));
        assert!(c.contains("sum += (a[i+j]) * cmp[j];"), "{c}");
        assert!(!c.contains("idx"), "no selection vector in value masking");
    }

    #[test]
    fn access_merging_reads_shared_attr_once() {
        let c = emit_access_merging(&ScalarAggSpec::repeated_reference_example());
        assert!(c.contains("tmp[j] = x[i+j] * (x[i+j] < 13);"), "{c}");
        assert!(c.contains("sum += a[i+j] * tmp[j];"), "{c}");
        // x appears in exactly one loop (the merge), twice in that statement.
        assert_eq!(c.matches("x[i+j]").count(), 2);
    }

    #[test]
    fn access_merging_both_operands_shared() {
        let q = ScalarAggSpec {
            agg_expr: "x * x".into(),
            ..ScalarAggSpec::paper_example()
        };
        let c = emit_access_merging(&q);
        assert!(c.contains("sum += tmp[j] * tmp[j];"), "{c}");
    }

    #[test]
    fn groupby_value_masking_matches_fig4_top() {
        let c = emit_groupby_value_masking(&GroupByAggSpec::paper_example());
        assert!(c.contains("e = ht_lookup(ht, c[i+j]);"), "{c}");
        assert!(c.contains("e->sum += (a[i+j]) * cmp[j];"));
        assert!(c.contains("e->valid |= cmp[j];"), "bookkeeping flag");
    }

    #[test]
    fn groupby_key_masking_matches_fig4_bottom() {
        let c = emit_groupby_key_masking(&GroupByAggSpec::paper_example());
        assert!(
            c.contains("key[j] = (x[i+j] < 13) ? c[i+j] : NULL_KEY;"),
            "{c}"
        );
        assert!(c.contains("e->sum += a[i+j];"), "value not masked");
        assert!(!c.contains("valid"), "no bookkeeping needed");
    }

    #[test]
    fn bitmap_semijoin_is_branch_free() {
        let c = emit_bitmap_semijoin(&SemiJoinSpec::paper_example());
        assert!(c.contains("bitmap_assign(bm, i, x[i] < 13);"));
        assert!(c.contains("sum += a[i] * bitmap_get(bm, fk_index[i]);"));
        assert!(!c.contains("if ("), "no branches");
        let h = emit_hash_semijoin(&SemiJoinSpec::paper_example());
        assert!(h.contains("ht_insert") && h.contains("ht_find"));
    }

    #[test]
    fn eager_aggregation_inverts_predicate() {
        let c = emit_eager_aggregation(&GroupJoinSpec::paper_example());
        assert!(c.contains("x[i] >= 13"), "inverted: {c}");
        assert!(c.contains("ht_delete(ht, pk[i]);"));
        let g = emit_groupjoin(&GroupJoinSpec::paper_example());
        assert!(g.contains("if (x[i] < 13)"));
    }

    #[test]
    fn all_inversions() {
        for (op, inv) in [
            (CmpOp::Lt, ">="),
            (CmpOp::Le, ">"),
            (CmpOp::Gt, "<="),
            (CmpOp::Ge, "<"),
            (CmpOp::Eq, "!="),
            (CmpOp::Ne, "=="),
        ] {
            let q = GroupJoinSpec {
                join: SemiJoinSpec {
                    op,
                    ..SemiJoinSpec::paper_example()
                },
            };
            assert!(
                emit_eager_aggregation(&q).contains(&format!("x[i] {inv} 13")),
                "{op:?}"
            );
        }
    }
}
