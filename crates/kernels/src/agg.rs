//! Scalar-aggregation kernels (no group-by key).
//!
//! Realises the strategies of Fig. 1 and the SWOLE rewrites of Figs. 3 and 5
//! for queries shaped like `select sum(a OP b) from R where <pred>`:
//!
//! * data-centric — one loop, branch per tuple (`s_trav_cr` access pattern);
//! * hybrid — aggregate through a selection vector (conditional reads);
//! * **value masking** (§ III-A) — aggregate every tuple sequentially and
//!   multiply by the 0/1 predicate result;
//! * **access merging** (§ III-C) — fuse the predicate result into the value
//!   of the shared attribute so it is read once.

// Tile-loop kernels: index arithmetic is bounded by slice lengths
// (debug_assert'd) and accumulators follow the paper's convention of
// unchecked 64-bit adds (overflow is detected once per tile by the
// engine, not per lane; dev/test profiles carry overflow checks).
#![allow(clippy::arithmetic_side_effects)]

use crate::AsI64;

/// A binary arithmetic operator applied inside an aggregate expression
/// (the `[OP]` substitution parameter of microbenchmark Q1).
///
/// All arithmetic is explicitly wrapping, so debug and release builds (and
/// builds with `-C overflow-checks=on`) compute bit-identical results;
/// [`BinOp::apply_checked`] additionally reports wraparound for the
/// overflow-detecting kernel variants.
pub trait BinOp {
    /// Apply the operator to widened operands (wrapping on overflow).
    fn apply(a: i64, b: i64) -> i64;
    /// Apply the operator, reporting whether the result wrapped.
    fn apply_checked(a: i64, b: i64) -> (i64, bool);
    /// Name used by codegen / reporting.
    const NAME: &'static str;
    /// `true` if the operation is expensive enough to be compute-bound
    /// (drives the `comp` term of the cost models).
    const COMPUTE_BOUND: bool;
}

/// Multiplication — the memory-bound configuration (Fig. 8a).
pub struct Mul;
impl BinOp for Mul {
    #[inline(always)]
    fn apply(a: i64, b: i64) -> i64 {
        a.wrapping_mul(b)
    }
    #[inline(always)]
    fn apply_checked(a: i64, b: i64) -> (i64, bool) {
        a.overflowing_mul(b)
    }
    const NAME: &'static str = "*";
    const COMPUTE_BOUND: bool = false;
}

/// Division — the compute-bound configuration (Fig. 8b).
///
/// Callers must guarantee non-zero divisors: masked strategies evaluate the
/// division for *every* tuple (that is the point of the pullup) and only
/// mask the result. Division by zero still panics — in the engine that
/// panic is contained by the worker isolation domain and triggers the
/// data-centric retry.
pub struct Div;
impl BinOp for Div {
    #[inline(always)]
    fn apply(a: i64, b: i64) -> i64 {
        a.wrapping_div(b)
    }
    #[inline(always)]
    fn apply_checked(a: i64, b: i64) -> (i64, bool) {
        a.overflowing_div(b)
    }
    const NAME: &'static str = "/";
    const COMPUTE_BOUND: bool = true;
}

/// Data-centric aggregation: branch per tuple, conditional access of the
/// aggregation inputs (the `if (x[i] < 13) sum += a[i]` loop of Fig. 1).
#[inline]
pub fn sum_op_datacentric<A: AsI64, B: AsI64, O: BinOp>(
    a: &[A],
    b: &[B],
    pred: impl Fn(usize) -> bool,
) -> i64 {
    assert_eq!(a.len(), b.len());
    let mut sum = 0i64;
    for j in 0..a.len() {
        if pred(j) {
            sum = sum.wrapping_add(O::apply(a[j].widen(), b[j].widen()));
        }
    }
    sum
}

/// Hybrid aggregation: gather the aggregation inputs through a selection
/// vector of global row ids (the third inner loop of Fig. 1's hybrid
/// fragment) — a conditional-read access pattern.
#[inline]
pub fn sum_op_gather<A: AsI64, B: AsI64, O: BinOp>(a: &[A], b: &[B], idx: &[u32]) -> i64 {
    assert_eq!(a.len(), b.len());
    let mut sum = 0i64;
    for &j in idx {
        let j = j as usize;
        sum = sum.wrapping_add(O::apply(a[j].widen(), b[j].widen()));
    }
    sum
}

/// **Value masking** (Fig. 3): unconditionally read the aggregation inputs
/// sequentially and multiply the result by the 0/1 predicate outcome —
/// `sum += (a[i+j] OP b[i+j]) * cmp[j]`.
#[inline]
pub fn sum_op_masked<A: AsI64, B: AsI64, O: BinOp>(a: &[A], b: &[B], cmp: &[u8]) -> i64 {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), cmp.len());
    let mut sum = 0i64;
    for j in 0..a.len() {
        // The 0/1 mask product cannot overflow; the op and the running sum
        // wrap explicitly.
        sum = sum.wrapping_add(O::apply(a[j].widen(), b[j].widen()) * cmp[j] as i64);
    }
    sum
}

/// Value masking with overflow detection: identical accumulation to
/// [`sum_op_masked`], but reports whether any *qualifying* tuple's operator
/// application, or the running sum, wrapped around `i64`. Wraparound in
/// masked-out (wasted-work) tuples is ignored — it cannot affect the
/// result.
#[inline]
pub fn sum_op_masked_checked<A: AsI64, B: AsI64, O: BinOp>(
    a: &[A],
    b: &[B],
    cmp: &[u8],
) -> (i64, bool) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), cmp.len());
    let mut sum = 0i64;
    let mut overflow = false;
    for j in 0..a.len() {
        let (v, op_wrapped) = O::apply_checked(a[j].widen(), b[j].widen());
        let (s, sum_wrapped) = sum.overflowing_add(v * cmp[j] as i64);
        sum = s;
        overflow |= (op_wrapped & (cmp[j] != 0)) | sum_wrapped;
    }
    (sum, overflow)
}

/// **Access merging**, first loop (Fig. 5 bottom): fuse the predicate result
/// into the shared attribute's value — `tmp[j] = x[j] * (x[j] < lit)` — so
/// the attribute is accessed exactly once.
#[inline]
pub fn merge_lt<T: AsI64 + PartialOrd + Copy>(x: &[T], lit: T, tmp: &mut [i64]) {
    assert_eq!(x.len(), tmp.len());
    for (t, &v) in tmp.iter_mut().zip(x) {
        // 0/1 mask product: cannot overflow.
        *t = v.widen() * (v < lit) as i64;
    }
}

/// Access merging with an externally computed mask (used when the predicate
/// has additional conjuncts beyond the shared attribute):
/// `tmp[j] = x[j] * cmp[j]`.
#[inline]
pub fn mask_values<T: AsI64>(x: &[T], cmp: &[u8], tmp: &mut [i64]) {
    assert_eq!(x.len(), cmp.len());
    assert_eq!(x.len(), tmp.len());
    for ((t, &v), &c) in tmp.iter_mut().zip(x).zip(cmp) {
        *t = v.widen() * c as i64;
    }
}

/// Access merging, second loop: `sum += a[j] * tmp[j]` (Fig. 5 bottom).
#[inline]
pub fn sum_product_tmp<A: AsI64>(a: &[A], tmp: &[i64]) -> i64 {
    assert_eq!(a.len(), tmp.len());
    let mut sum = 0i64;
    for (&av, &t) in a.iter().zip(tmp) {
        sum = sum.wrapping_add(av.widen().wrapping_mul(t));
    }
    sum
}

/// Access merging when **both** aggregate inputs are the predicate attribute
/// (microbenchmark Q3's `sum(r_x * r_x)` configuration): `sum += tmp[j] *
/// tmp[j]`, valid because `tmp = x * cmp` and `cmp² = cmp`.
#[inline]
pub fn sum_square_tmp(tmp: &[i64]) -> i64 {
    let mut sum = 0i64;
    for &t in tmp {
        sum = sum.wrapping_add(t.wrapping_mul(t));
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{predicate, selvec, tiles};

    fn reference<O: BinOp>(x: &[i32], lit: i32, a: &[i32], b: &[i32]) -> i64 {
        (0..x.len())
            .filter(|&j| x[j] < lit)
            .map(|j| O::apply(a[j] as i64, b[j] as i64))
            .sum()
    }

    fn mk_data(n: usize) -> (Vec<i32>, Vec<i32>, Vec<i32>) {
        let mut state = 7u64;
        let mut next = move |m: i64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as i64 % m) as i32
        };
        let x: Vec<i32> = (0..n).map(|_| next(100)).collect();
        let a: Vec<i32> = (0..n).map(|_| next(50) + 1).collect();
        let b: Vec<i32> = (0..n).map(|_| next(50) + 1).collect();
        (x, a, b)
    }

    #[test]
    fn all_strategies_agree_mul() {
        let (x, a, b) = mk_data(3000);
        let lit = 37;
        let expected = reference::<Mul>(&x, lit, &a, &b);

        // data-centric
        let dc = sum_op_datacentric::<_, _, Mul>(&a, &b, |j| x[j] < lit);
        assert_eq!(dc, expected);

        // hybrid: tiled prepass + selvec + gather
        let mut hybrid = 0i64;
        let mut cmp = [0u8; crate::TILE];
        let mut idx = [0u32; crate::TILE];
        for (start, len) in tiles(x.len()) {
            predicate::cmp_lt(&x[start..start + len], lit, &mut cmp[..len]);
            let k = selvec::fill_nobranch(&cmp[..len], start as u32, &mut idx[..len]);
            hybrid += sum_op_gather::<_, _, Mul>(&a, &b, &idx[..k]);
        }
        assert_eq!(hybrid, expected);

        // value masking
        let mut vm = 0i64;
        for (start, len) in tiles(x.len()) {
            predicate::cmp_lt(&x[start..start + len], lit, &mut cmp[..len]);
            vm += sum_op_masked::<_, _, Mul>(
                &a[start..start + len],
                &b[start..start + len],
                &cmp[..len],
            );
        }
        assert_eq!(vm, expected);
    }

    #[test]
    fn all_strategies_agree_div() {
        let (x, a, b) = mk_data(2000);
        let lit = 80;
        let expected = reference::<Div>(&x, lit, &a, &b);
        let dc = sum_op_datacentric::<_, _, Div>(&a, &b, |j| x[j] < lit);
        assert_eq!(dc, expected);
        let mut cmp = vec![0u8; x.len()];
        predicate::cmp_lt(&x, lit, &mut cmp);
        let vm = sum_op_masked::<_, _, Div>(&a, &b, &cmp);
        assert_eq!(vm, expected);
    }

    #[test]
    fn access_merging_agrees_one_shared_attr() {
        // sum(x * a) where x < lit: merged tmp = x * cmp; sum += a * tmp.
        let (x, a, _) = mk_data(2000);
        let lit = 55;
        let expected: i64 = (0..x.len())
            .filter(|&j| x[j] < lit)
            .map(|j| x[j] as i64 * a[j] as i64)
            .sum();
        let mut tmp = vec![0i64; x.len()];
        merge_lt(&x, lit, &mut tmp);
        assert_eq!(sum_product_tmp(&a, &tmp), expected);
    }

    #[test]
    fn access_merging_agrees_both_shared() {
        // sum(x * x) where x < lit.
        let (x, _, _) = mk_data(2000);
        let lit = 55;
        let expected: i64 = (0..x.len())
            .filter(|&j| x[j] < lit)
            .map(|j| x[j] as i64 * x[j] as i64)
            .sum();
        let mut tmp = vec![0i64; x.len()];
        merge_lt(&x, lit, &mut tmp);
        assert_eq!(sum_square_tmp(&tmp), expected);
    }

    #[test]
    fn mask_values_matches_merge_for_single_conjunct() {
        let (x, _, _) = mk_data(500);
        let mut cmp = vec![0u8; x.len()];
        predicate::cmp_lt(&x, 20, &mut cmp);
        let mut via_mask = vec![0i64; x.len()];
        mask_values(&x, &cmp, &mut via_mask);
        let mut via_merge = vec![0i64; x.len()];
        merge_lt(&x, 20, &mut via_merge);
        assert_eq!(via_mask, via_merge);
    }

    #[test]
    fn masked_checked_agrees_and_detects_overflow() {
        // Agrees with the unchecked kernel when nothing overflows.
        let (x, a, b) = mk_data(1000);
        let mut cmp = vec![0u8; x.len()];
        predicate::cmp_lt(&x, 42, &mut cmp);
        let (sum, ovf) = sum_op_masked_checked::<_, _, Mul>(&a, &b, &cmp);
        assert!(!ovf);
        assert_eq!(sum, sum_op_masked::<_, _, Mul>(&a, &b, &cmp));
        // Overflow in a qualifying tuple is detected...
        let big = [i64::MAX, 1];
        let two = [2i64, 1];
        let (_, ovf) = sum_op_masked_checked::<_, _, Mul>(&big, &two, &[1, 1]);
        assert!(ovf);
        // ...but wasted-work overflow in a masked-out tuple is not.
        let (sum, ovf) = sum_op_masked_checked::<_, _, Mul>(&big, &two, &[0, 1]);
        assert!(!ovf);
        assert_eq!(sum, 1);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(sum_op_masked::<i32, i32, Mul>(&[], &[], &[]), 0);
        assert_eq!(sum_op_gather::<i32, i32, Mul>(&[], &[], &[]), 0);
        assert_eq!(sum_op_datacentric::<i32, i32, Mul>(&[], &[], |_| true), 0);
    }

    #[test]
    fn selectivity_extremes() {
        let (x, a, b) = mk_data(1000);
        let mut cmp = vec![0u8; x.len()];
        predicate::cmp_lt(&x, 0, &mut cmp); // selects nothing
        assert_eq!(sum_op_masked::<_, _, Mul>(&a, &b, &cmp), 0);
        predicate::cmp_lt(&x, 100, &mut cmp); // selects everything
        let all: i64 = a
            .iter()
            .zip(&b)
            .map(|(&av, &bv)| av as i64 * bv as i64)
            .sum();
        assert_eq!(sum_op_masked::<_, _, Mul>(&a, &b, &cmp), all);
    }
}
