//! Prepass predicate-evaluation kernels.
//!
//! These are the "first inner loop" of the hybrid / ROF / SWOLE strategies
//! (Fig. 1): evaluate a predicate over a tile and store the 0/1 result in a
//! `cmp` byte array. Removing the control dependency lets the compiler SIMD-
//! vectorize the comparison, which is the hybrid strategy's prepass
//! technique. Conjunctions multiply/AND masks; disjunctions OR them.

/// `out[j] = (data[j] < lit)` over one tile.
#[inline]
pub fn cmp_lt<T: Copy + PartialOrd>(data: &[T], lit: T, out: &mut [u8]) {
    assert_eq!(data.len(), out.len());
    for (o, &d) in out.iter_mut().zip(data) {
        *o = (d < lit) as u8;
    }
}

/// `out[j] = (data[j] <= lit)` over one tile.
#[inline]
pub fn cmp_le<T: Copy + PartialOrd>(data: &[T], lit: T, out: &mut [u8]) {
    assert_eq!(data.len(), out.len());
    for (o, &d) in out.iter_mut().zip(data) {
        *o = (d <= lit) as u8;
    }
}

/// `out[j] = (data[j] > lit)` over one tile.
#[inline]
pub fn cmp_gt<T: Copy + PartialOrd>(data: &[T], lit: T, out: &mut [u8]) {
    assert_eq!(data.len(), out.len());
    for (o, &d) in out.iter_mut().zip(data) {
        *o = (d > lit) as u8;
    }
}

/// `out[j] = (data[j] >= lit)` over one tile.
#[inline]
pub fn cmp_ge<T: Copy + PartialOrd>(data: &[T], lit: T, out: &mut [u8]) {
    assert_eq!(data.len(), out.len());
    for (o, &d) in out.iter_mut().zip(data) {
        *o = (d >= lit) as u8;
    }
}

/// `out[j] = (data[j] == lit)` over one tile.
#[inline]
pub fn cmp_eq<T: Copy + PartialEq>(data: &[T], lit: T, out: &mut [u8]) {
    assert_eq!(data.len(), out.len());
    for (o, &d) in out.iter_mut().zip(data) {
        *o = (d == lit) as u8;
    }
}

/// `out[j] = (data[j] != lit)` over one tile.
#[inline]
pub fn cmp_ne<T: Copy + PartialEq>(data: &[T], lit: T, out: &mut [u8]) {
    assert_eq!(data.len(), out.len());
    for (o, &d) in out.iter_mut().zip(data) {
        *o = (d != lit) as u8;
    }
}

/// `out[j] = (lo <= data[j] && data[j] <= hi)` over one tile (SQL `BETWEEN`).
#[inline]
pub fn cmp_between<T: Copy + PartialOrd>(data: &[T], lo: T, hi: T, out: &mut [u8]) {
    assert_eq!(data.len(), out.len());
    for (o, &d) in out.iter_mut().zip(data) {
        *o = (d >= lo && d <= hi) as u8;
    }
}

/// `out[j] = (a[j] < b[j])` — column-vs-column comparison (e.g. Q4's
/// `l_commitdate < l_receiptdate`).
#[inline]
pub fn cmp_lt_cols<T: Copy + PartialOrd>(a: &[T], b: &[T], out: &mut [u8]) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), out.len());
    for ((o, &av), &bv) in out.iter_mut().zip(a).zip(b) {
        *o = (av < bv) as u8;
    }
}

/// `acc[j] &= other[j]` — conjoin a second predicate's mask.
#[inline]
pub fn and_into(acc: &mut [u8], other: &[u8]) {
    assert_eq!(acc.len(), other.len());
    for (a, &o) in acc.iter_mut().zip(other) {
        *a &= o;
    }
}

/// `acc[j] |= other[j]` — disjoin a second predicate's mask.
#[inline]
pub fn or_into(acc: &mut [u8], other: &[u8]) {
    assert_eq!(acc.len(), other.len());
    for (a, &o) in acc.iter_mut().zip(other) {
        *a |= o;
    }
}

/// `acc[j] = 1 - acc[j]` — negate a mask (e.g. the inverted deletion
/// predicate of eager aggregation, § III-E).
#[inline]
pub fn not_inplace(acc: &mut [u8]) {
    for a in acc.iter_mut() {
        *a ^= 1;
    }
}

/// `out[j] = table[codes[j]]` — membership of dictionary codes in a
/// precomputed match table.
///
/// String predicates (LIKE, IN over strings) are evaluated once per
/// dictionary entry into `table`; the per-row loop is then this sequential
/// integer lookup into a tiny cached table.
#[inline]
pub fn in_code_table(codes: &[u32], table: &[bool], out: &mut [u8]) {
    assert_eq!(codes.len(), out.len());
    for (o, &c) in out.iter_mut().zip(codes) {
        *o = table[c as usize] as u8;
    }
}

/// Count set entries in a mask (selectivity observation, feeds the cost
/// model's adaptive decisions).
#[inline]
pub fn mask_count(cmp: &[u8]) -> usize {
    cmp.iter().map(|&c| c as usize).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_comparisons_agree_with_scalar() {
        let data: Vec<i32> = vec![-3, 0, 5, 13, 13, 20];
        let mut out = vec![0u8; data.len()];
        cmp_lt(&data, 13, &mut out);
        assert_eq!(out, [1, 1, 1, 0, 0, 0]);
        cmp_le(&data, 13, &mut out);
        assert_eq!(out, [1, 1, 1, 1, 1, 0]);
        cmp_gt(&data, 0, &mut out);
        assert_eq!(out, [0, 0, 1, 1, 1, 1]);
        cmp_ge(&data, 0, &mut out);
        assert_eq!(out, [0, 1, 1, 1, 1, 1]);
        cmp_eq(&data, 13, &mut out);
        assert_eq!(out, [0, 0, 0, 1, 1, 0]);
        cmp_ne(&data, 13, &mut out);
        assert_eq!(out, [1, 1, 1, 0, 0, 1]);
        cmp_between(&data, 0, 13, &mut out);
        assert_eq!(out, [0, 1, 1, 1, 1, 0]);
    }

    #[test]
    fn boolean_combinators() {
        let mut acc = vec![1u8, 1, 0, 0];
        and_into(&mut acc, &[1, 0, 1, 0]);
        assert_eq!(acc, [1, 0, 0, 0]);
        or_into(&mut acc, &[0, 0, 1, 0]);
        assert_eq!(acc, [1, 0, 1, 0]);
        not_inplace(&mut acc);
        assert_eq!(acc, [0, 1, 0, 1]);
    }

    #[test]
    fn dict_membership() {
        let codes = vec![0u32, 2, 1, 2];
        let table = vec![true, false, true];
        let mut out = vec![0u8; 4];
        in_code_table(&codes, &table, &mut out);
        assert_eq!(out, [1, 1, 0, 1]);
    }

    #[test]
    fn mask_count_counts() {
        assert_eq!(mask_count(&[1, 0, 1, 1, 0]), 3);
        assert_eq!(mask_count(&[]), 0);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_is_a_bug() {
        let mut out = vec![0u8; 3];
        cmp_lt(&[1, 2], 5, &mut out);
    }
}
