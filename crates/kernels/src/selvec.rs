//! Selection-vector construction kernels.
//!
//! The hybrid strategy's "second inner loop" (Fig. 1): convert a tile's
//! `cmp` mask into a selection vector of qualifying row offsets. Two
//! variants exist because (per Ross [31], cited in § II-A) the predicated
//! no-branch form avoids branch mispredictions at intermediate
//! selectivities while a branching form can win at the extremes — the
//! `ablations` bench measures the trade-off.

// Tile-loop kernels: index arithmetic is bounded by slice lengths
// (debug_assert'd) and accumulators follow the paper's convention of
// unchecked 64-bit adds (overflow is detected once per tile by the
// engine, not per lane; dev/test profiles carry overflow checks).
#![allow(clippy::arithmetic_side_effects)]

/// No-branch (predicated) construction: `idx[k] = j; k += cmp[j]`.
///
/// Replaces the control dependency with a data dependency; the store happens
/// unconditionally and the cursor advances by the mask value.
#[inline]
pub fn fill_nobranch(cmp: &[u8], base: u32, idx: &mut [u32]) -> usize {
    debug_assert!(idx.len() >= cmp.len());
    let mut k = 0usize;
    for (j, &c) in cmp.iter().enumerate() {
        idx[k] = base + j as u32;
        k += c as usize;
    }
    k
}

/// Branching construction: only store when the predicate passed.
#[inline]
pub fn fill_branch(cmp: &[u8], base: u32, idx: &mut [u32]) -> usize {
    debug_assert!(idx.len() >= cmp.len());
    let mut k = 0usize;
    for (j, &c) in cmp.iter().enumerate() {
        if c != 0 {
            idx[k] = base + j as u32;
            k += 1;
        }
    }
    k
}

/// ROF-style construction (§ II-A.3): append into a caller-owned vector that
/// accumulates a **full** selection vector across tiles, so downstream
/// operators almost always run fixed-trip-count loops.
#[inline]
pub fn append_nobranch(cmp: &[u8], base: u32, idx: &mut Vec<u32>) {
    let start = idx.len();
    // Extend to full width (the resize is a memset over reserved capacity,
    // amortized away by Vec's doubling), write predicated, then trim to the
    // qualifying count.
    idx.resize(start + cmp.len(), 0);
    let k = fill_nobranch(cmp, base, &mut idx[start..]);
    idx.truncate(start + k);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(cmp: &[u8], base: u32) -> Vec<u32> {
        cmp.iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(j, _)| base + j as u32)
            .collect()
    }

    #[test]
    fn nobranch_matches_reference() {
        let cmp = vec![1u8, 0, 0, 1, 1, 0, 1];
        let mut idx = vec![0u32; cmp.len()];
        let k = fill_nobranch(&cmp, 100, &mut idx);
        assert_eq!(&idx[..k], reference(&cmp, 100).as_slice());
    }

    #[test]
    fn branch_matches_reference() {
        let cmp = vec![0u8, 0, 1, 0, 1];
        let mut idx = vec![0u32; cmp.len()];
        let k = fill_branch(&cmp, 7, &mut idx);
        assert_eq!(&idx[..k], reference(&cmp, 7).as_slice());
    }

    #[test]
    fn variants_agree_on_random_masks() {
        let mut state = 99u64;
        for _ in 0..50 {
            let cmp: Vec<u8> = (0..257)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    ((state >> 62) & 1) as u8
                })
                .collect();
            let mut a = vec![0u32; cmp.len()];
            let mut b = vec![0u32; cmp.len()];
            let ka = fill_nobranch(&cmp, 0, &mut a);
            let kb = fill_branch(&cmp, 0, &mut b);
            assert_eq!(&a[..ka], &b[..kb]);
        }
    }

    #[test]
    fn append_accumulates_across_tiles() {
        let mut idx = Vec::new();
        append_nobranch(&[1, 0, 1], 0, &mut idx);
        append_nobranch(&[0, 1], 3, &mut idx);
        assert_eq!(idx, vec![0, 2, 4]);
    }

    #[test]
    fn all_zero_and_all_one_masks() {
        let mut idx = vec![0u32; 4];
        assert_eq!(fill_nobranch(&[0; 4], 0, &mut idx), 0);
        assert_eq!(fill_nobranch(&[1; 4], 10, &mut idx), 4);
        assert_eq!(&idx[..], &[10, 11, 12, 13]);
    }
}
