//! Group-by aggregation kernels (paper § III-B, Fig. 4).
//!
//! For queries shaped like
//! `select c, sum(a OP b) from R where <pred> group by c`:
//!
//! * data-centric / hybrid — filter first, then a hash-table lookup per
//!   qualifying tuple (conditional reads of `c`, `a`, `b`);
//! * **value masking** (Fig. 4 top) — unconditionally look up every tuple's
//!   real key and add the masked value, with valid-flag bookkeeping;
//! * **key masking** (Fig. 4 bottom) — mask the *key* to [`NULL_KEY`] so
//!   filtered tuples hit the single throwaway entry (cached when the
//!   predicate often fails), and the value needs no masking.
//!
//! All accumulation goes through [`AggTable::add`], which uses explicit
//! wrapping arithmetic (identical results in debug and release) and records
//! wraparound in the table's sticky overflow flag
//! ([`AggTable::overflow_detected`]); the operator applications themselves
//! wrap via [`BinOp::apply`]. Masked strategies aggregate filtered tuples
//! too, so a detected overflow may be wasted-work noise — callers decide
//! whether to re-run data-centric.

// Tile-loop kernels: index arithmetic is bounded by slice lengths
// (debug_assert'd) and accumulators follow the paper's convention of
// unchecked 64-bit adds (overflow is detected once per tile by the
// engine, not per lane; dev/test profiles carry overflow checks).
#![allow(clippy::arithmetic_side_effects)]

use crate::agg::BinOp;
use crate::AsI64;
use swole_ht::{AggTable, NULL_KEY};

/// Data-centric group-by: branch per tuple, lookup only for qualifying rows.
#[inline]
pub fn groupby_datacentric<K: AsI64, A: AsI64, B: AsI64, O: BinOp>(
    keys: &[K],
    a: &[A],
    b: &[B],
    pred: impl Fn(usize) -> bool,
    ht: &mut AggTable,
) {
    assert_eq!(keys.len(), a.len());
    assert_eq!(keys.len(), b.len());
    for j in 0..keys.len() {
        if pred(j) {
            let off = ht.entry(keys[j].widen());
            ht.add(off, 0, O::apply(a[j].widen(), b[j].widen()));
            ht.set_valid(off);
        }
    }
}

/// Hybrid group-by: lookups driven by a selection vector of global row ids.
#[inline]
pub fn groupby_gather<K: AsI64, A: AsI64, B: AsI64, O: BinOp>(
    keys: &[K],
    a: &[A],
    b: &[B],
    idx: &[u32],
    ht: &mut AggTable,
) {
    assert_eq!(keys.len(), a.len());
    assert_eq!(keys.len(), b.len());
    for &j in idx {
        let j = j as usize;
        let off = ht.entry(keys[j].widen());
        ht.add(off, 0, O::apply(a[j].widen(), b[j].widen()));
        ht.set_valid(off);
    }
}

/// **Value masking** group-by (Fig. 4 top): every tuple — qualifying or not
/// — looks up its *real* key sequentially; the added value is masked to 0
/// and the valid flag records whether any real update happened.
#[inline]
pub fn groupby_value_masked<K: AsI64, A: AsI64, B: AsI64, O: BinOp>(
    keys: &[K],
    a: &[A],
    b: &[B],
    cmp: &[u8],
    ht: &mut AggTable,
) {
    assert_eq!(keys.len(), a.len());
    assert_eq!(keys.len(), b.len());
    assert_eq!(keys.len(), cmp.len());
    for j in 0..keys.len() {
        let off = ht.entry(keys[j].widen());
        ht.add(off, 0, O::apply(a[j].widen(), b[j].widen()) * cmp[j] as i64);
        ht.or_valid(off, cmp[j]);
    }
}

/// **Key masking**, first loop (Fig. 4 bottom): store the real key where the
/// predicate passed and [`NULL_KEY`] otherwise — a sequential, branch-free
/// write of the masked key vector (`(key & m) | (NULL_KEY & !m)` with an
/// all-ones/all-zeros mask, so selectivity cannot cause mispredictions).
#[inline]
pub fn mask_keys<K: AsI64>(keys: &[K], cmp: &[u8], out: &mut [i64]) {
    assert_eq!(keys.len(), cmp.len());
    assert_eq!(keys.len(), out.len());
    for ((o, &k), &c) in out.iter_mut().zip(keys).zip(cmp) {
        let m = -((c & 1) as i64); // 0 or -1
        *o = (k.widen() & m) | (NULL_KEY & !m);
    }
}

/// **Key masking**, second loop (Fig. 4 bottom): aggregate *every* tuple —
/// masked keys land on the throwaway entry, so the value is **not** masked
/// and no valid-flag bookkeeping is needed.
#[inline]
pub fn groupby_key_masked<A: AsI64, B: AsI64, O: BinOp>(
    masked_keys: &[i64],
    a: &[A],
    b: &[B],
    ht: &mut AggTable,
) {
    assert_eq!(masked_keys.len(), a.len());
    assert_eq!(masked_keys.len(), b.len());
    for j in 0..masked_keys.len() {
        let off = ht.entry(masked_keys[j]);
        ht.add(off, 0, O::apply(a[j].widen(), b[j].widen()));
        ht.set_valid(off);
    }
}

/// Collect a finished group-by table into sorted `(key, sum)` rows,
/// honouring the valid flags (so value masking's bookkeeping excludes
/// entries that only ever received masked updates) and excluding the
/// throwaway entry.
pub fn collect_groups(ht: &AggTable) -> Vec<(i64, i64)> {
    let mut rows: Vec<(i64, i64)> = ht
        .iter()
        .filter(|&(_, _, valid)| valid)
        .map(|(k, state, _)| (k, state[0]))
        .collect();
    rows.sort_unstable();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::Mul;
    use crate::{predicate, selvec, tiles, TILE};
    use std::collections::BTreeMap;

    fn mk_data(n: usize, key_card: i32) -> (Vec<i32>, Vec<i32>, Vec<i32>, Vec<i32>) {
        let mut state = 42u64;
        let mut next = move |m: i32| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % m as u64) as i32
        };
        let c: Vec<i32> = (0..n).map(|_| next(key_card)).collect();
        let x: Vec<i32> = (0..n).map(|_| next(100)).collect();
        let a: Vec<i32> = (0..n).map(|_| next(20) + 1).collect();
        let b: Vec<i32> = (0..n).map(|_| next(20) + 1).collect();
        (c, x, a, b)
    }

    fn reference(c: &[i32], x: &[i32], a: &[i32], b: &[i32], lit: i32) -> Vec<(i64, i64)> {
        let mut groups: BTreeMap<i64, i64> = BTreeMap::new();
        for j in 0..c.len() {
            if x[j] < lit {
                *groups.entry(c[j] as i64).or_insert(0) += a[j] as i64 * b[j] as i64;
            }
        }
        groups.into_iter().collect()
    }

    #[test]
    fn all_four_strategies_agree() {
        for key_card in [3i32, 64, 1000] {
            for lit in [0i32, 13, 50, 100] {
                let (c, x, a, b) = mk_data(5000, key_card);
                let expected = reference(&c, &x, &a, &b, lit);

                // data-centric
                let mut ht = AggTable::with_capacity(1, 64);
                groupby_datacentric::<_, _, _, Mul>(&c, &a, &b, |j| x[j] < lit, &mut ht);
                assert_eq!(
                    collect_groups(&ht),
                    expected,
                    "dc card={key_card} lit={lit}"
                );

                // hybrid
                let mut ht = AggTable::with_capacity(1, 64);
                let mut cmp = [0u8; TILE];
                let mut idx = [0u32; TILE];
                for (s, l) in tiles(c.len()) {
                    predicate::cmp_lt(&x[s..s + l], lit, &mut cmp[..l]);
                    let k = selvec::fill_nobranch(&cmp[..l], s as u32, &mut idx[..l]);
                    groupby_gather::<_, _, _, Mul>(&c, &a, &b, &idx[..k], &mut ht);
                }
                assert_eq!(
                    collect_groups(&ht),
                    expected,
                    "hy card={key_card} lit={lit}"
                );

                // value masking
                let mut ht = AggTable::with_capacity(1, 64);
                for (s, l) in tiles(c.len()) {
                    predicate::cmp_lt(&x[s..s + l], lit, &mut cmp[..l]);
                    groupby_value_masked::<_, _, _, Mul>(
                        &c[s..s + l],
                        &a[s..s + l],
                        &b[s..s + l],
                        &cmp[..l],
                        &mut ht,
                    );
                }
                assert_eq!(
                    collect_groups(&ht),
                    expected,
                    "vm card={key_card} lit={lit}"
                );

                // key masking
                let mut ht = AggTable::with_capacity(1, 64);
                let mut mk = [0i64; TILE];
                for (s, l) in tiles(c.len()) {
                    predicate::cmp_lt(&x[s..s + l], lit, &mut cmp[..l]);
                    mask_keys(&c[s..s + l], &cmp[..l], &mut mk[..l]);
                    groupby_key_masked::<_, _, Mul>(&mk[..l], &a[s..s + l], &b[s..s + l], &mut ht);
                }
                assert_eq!(
                    collect_groups(&ht),
                    expected,
                    "km card={key_card} lit={lit}"
                );
            }
        }
    }

    #[test]
    fn value_masking_excludes_never_valid_groups() {
        // Group 9 never passes the predicate; VM touches its entry with
        // masked updates only, so the valid flag must keep it out.
        let c = vec![9i32, 9, 1, 1];
        let x = vec![99i32, 99, 0, 0];
        let a = vec![1i32; 4];
        let b = vec![1i32; 4];
        let mut cmp = vec![0u8; 4];
        predicate::cmp_lt(&x, 50, &mut cmp);
        let mut ht = AggTable::with_capacity(1, 8);
        groupby_value_masked::<_, _, _, Mul>(&c, &a, &b, &cmp, &mut ht);
        assert_eq!(collect_groups(&ht), vec![(1, 2)]);
    }

    #[test]
    fn key_masking_routes_filtered_to_throwaway() {
        let c = vec![5i32, 6, 5];
        let cmp = vec![1u8, 0, 1];
        let a = vec![10i32, 10, 10];
        let b = vec![1i32, 1, 1];
        let mut mk = vec![0i64; 3];
        mask_keys(&c, &cmp, &mut mk);
        assert_eq!(mk, vec![5, NULL_KEY, 5]);
        let mut ht = AggTable::with_capacity(1, 8);
        groupby_key_masked::<_, _, Mul>(&mk, &a, &b, &mut ht);
        assert_eq!(collect_groups(&ht), vec![(5, 20)]);
        // The filtered tuple's (unmasked) value landed on the throwaway.
        assert_eq!(ht.null_state(), &[10]);
    }
}
