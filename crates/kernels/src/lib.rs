//! # swole-kernels — the generated-code loop bodies
//!
//! This crate contains the loop bodies each code-generation strategy emits,
//! as tight monomorphized Rust functions. Composition of these kernels into
//! a per-query pipeline *is* the "code generation" step of this
//! reproduction (see DESIGN.md § 2 for the substitution rationale): Rust
//! generics + inlining give the same specialised machine loops the paper
//! obtains by emitting C, while `swole-codegen` renders the equivalent C
//! text for inspection.
//!
//! Kernel families and the strategies they realise:
//!
//! | module       | strategy / technique                                      |
//! |--------------|-----------------------------------------------------------|
//! | [`predicate`] | prepass predicate evaluation (hybrid/ROF/SWOLE, Fig. 1)  |
//! | [`selvec`]    | selection-vector construction, branch & no-branch [31]   |
//! | [`agg`]       | aggregation: data-centric, hybrid gather, **value masking** (§ III-A), **access merging** (§ III-C), ROF |
//! | [`groupby`]   | group-by aggregation: data-centric, hybrid, **value masking**, **key masking** (§ III-B) |
//! | [`join`]      | joins: hash (semi)join baselines, **positional-bitmap semijoin** (§ III-D), groupjoin, **eager aggregation** (§ III-E) |
//!
//! Every kernel that operates on a tile takes plain slices so the compiler
//! sees exact trip counts and can auto-vectorize the branch-free loops; the
//! tile length is [`TILE`] = 1024 values, matching the paper's vector size.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::arithmetic_side_effects)]

pub mod agg;
pub mod counters;
pub mod groupby;
pub mod join;
pub mod predicate;
pub mod selvec;

pub use counters::AccessCounters;

/// Number of tuples processed per tile ("we use a vector size of 1024, as
/// suggested by other recent studies" — paper § IV).
pub const TILE: usize = 1024;

/// Iterate over `(start, len)` tile bounds covering `0..n` in [`TILE`]-sized
/// chunks (the final tile may be shorter — the `len = R - i < TILE ? ...`
/// pattern in every pseudocode fragment of the paper).
pub fn tiles(n: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..n).step_by(TILE).map(move |start| {
        let len = TILE.min(n.saturating_sub(start));
        (start, len)
    })
}

/// Default rows per morsel: 64 tiles. Large enough that claiming a morsel
/// (one atomic increment) is noise, small enough that a skewed tail still
/// load-balances across workers.
pub const MORSEL_ROWS: usize = 64 * TILE;

/// Iterate over `(start, len)` morsel bounds covering `0..n`.
///
/// Every morsel length is a multiple of [`TILE`] except possibly the last,
/// so tile-local stack buffers (`[0u8; TILE]`) keep working inside a morsel
/// and morsel boundaries stay 64-bit-aligned for direct bitmap-word writes
/// (`TILE` is a multiple of 64). `morsel_rows` is rounded up to a whole
/// number of tiles.
pub fn morsels(n: usize, morsel_rows: usize) -> impl Iterator<Item = (usize, usize)> {
    let step = morsel_rows.div_ceil(TILE).max(1).saturating_mul(TILE);
    (0..n).step_by(step).map(move |start| {
        let len = step.min(n.saturating_sub(start));
        (start, len)
    })
}

/// Iterate over `(start, len)` tile bounds covering the morsel
/// `start..start + len` — [`tiles`] shifted to a sub-range, for workers
/// that process one claimed morsel at a time.
pub fn tiles_in(start: usize, len: usize) -> impl Iterator<Item = (usize, usize)> {
    tiles(len).map(move |(s, l)| (start.saturating_add(s), l))
}

/// Integer types a column kernel can widen to `i64` accumulators.
///
/// The paper stores all aggregates as 64-bit integers without per-row
/// overflow checks; kernels widen on read.
pub trait AsI64: Copy {
    /// Widen to `i64`.
    fn widen(self) -> i64;
}

macro_rules! impl_as_i64 {
    ($($t:ty),*) => {$(
        impl AsI64 for $t {
            #[inline(always)]
            fn widen(self) -> i64 {
                self as i64
            }
        }
    )*};
}
impl_as_i64!(i8, i16, i32, i64, u8, u16, u32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_cover_exactly() {
        let mut covered = 0usize;
        let mut last_end = 0usize;
        for (start, len) in tiles(2500) {
            assert_eq!(start, last_end);
            assert!(len <= TILE && len > 0);
            covered += len;
            last_end = start + len;
        }
        assert_eq!(covered, 2500);
    }

    #[test]
    fn tiles_exact_multiple() {
        let all: Vec<_> = tiles(TILE * 3).collect();
        assert_eq!(all, vec![(0, TILE), (TILE, TILE), (2 * TILE, TILE)]);
    }

    #[test]
    fn tiles_empty_and_tiny() {
        assert_eq!(tiles(0).count(), 0);
        assert_eq!(tiles(1).collect::<Vec<_>>(), vec![(0, 1)]);
    }

    #[test]
    fn morsels_cover_and_tile_align() {
        for n in [0, 1, TILE - 1, TILE, MORSEL_ROWS, MORSEL_ROWS * 3 + 17] {
            let mut covered = 0usize;
            let mut last_end = 0usize;
            for (start, len) in morsels(n, MORSEL_ROWS) {
                assert_eq!(start, last_end);
                assert_eq!(start % TILE, 0, "morsel starts tile-aligned");
                assert!(len > 0);
                covered += len;
                last_end = start + len;
            }
            assert_eq!(covered, n, "n={n}");
        }
        // Odd morsel_rows rounds up to whole tiles.
        let bounds: Vec<_> = morsels(TILE * 4, TILE + 1).collect();
        assert_eq!(bounds, vec![(0, 2 * TILE), (2 * TILE, 2 * TILE)]);
    }

    #[test]
    fn tiles_in_matches_shifted_tiles() {
        let inner: Vec<_> = tiles_in(3 * TILE, 2 * TILE + 5).collect();
        assert_eq!(
            inner,
            vec![(3 * TILE, TILE), (4 * TILE, TILE), (5 * TILE, 5)]
        );
        assert_eq!(
            tiles_in(0, 2500).collect::<Vec<_>>(),
            tiles(2500).collect::<Vec<_>>()
        );
    }

    #[test]
    fn widen_preserves_values() {
        assert_eq!((-1i8).widen(), -1);
        assert_eq!(u32::MAX.widen(), u32::MAX as i64);
        assert_eq!((1i64 << 40).widen(), 1 << 40);
    }
}
