//! Access-pattern counters shared by every kernel caller.
//!
//! The metrics layer (`swole_plan::metrics`) counts what the paper's cost
//! models *predict*: how many tuples a strategy touches sequentially, how
//! many predicate evaluations it performs, and how much of that work is
//! wasted by a pullup (§ III-A: "the additional work performed on
//! non-qualifying tuples"). [`AccessCounters`] is the per-worker
//! accumulator — plain `u64` adds on paths the tile loops already touch, so
//! counting never changes the access pattern being counted.
//!
//! Every field is a sum of per-tile contributions, and tiles partition the
//! input deterministically regardless of which worker claims which morsel,
//! so merged totals are bit-identical at any thread count.

/// Per-worker access-pattern counters, merged by field-wise addition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessCounters {
    /// Tuples the operator scanned (every tuple of every claimed tile).
    pub rows_in: u64,
    /// Tuples that qualified (survived the predicate and/or join).
    pub rows_out: u64,
    /// Predicate evaluations performed (0 when there is no filter).
    pub predicate_evals: u64,
    /// Lanes processed for tuples that did not qualify — the wasted work a
    /// pullup accepts in exchange for sequential access. Zero for early-
    /// filtering (hybrid/data-centric) strategies.
    pub wasted_lanes: u64,
    /// Hash-structure probes issued (aggregation-table entries, key-set
    /// lookups, or bitmap tests, per the operator).
    pub ht_probes: u64,
    /// Morsels this worker claimed.
    pub morsels: u64,
}

impl AccessCounters {
    /// Fold another worker's counters into this one (commutative and
    /// associative, like every accumulator merge in the engine).
    pub fn merge(&mut self, other: &AccessCounters) {
        self.rows_in = self.rows_in.saturating_add(other.rows_in);
        self.rows_out = self.rows_out.saturating_add(other.rows_out);
        self.predicate_evals = self.predicate_evals.saturating_add(other.predicate_evals);
        self.wasted_lanes = self.wasted_lanes.saturating_add(other.wasted_lanes);
        self.ht_probes = self.ht_probes.saturating_add(other.ht_probes);
        self.morsels = self.morsels.saturating_add(other.morsels);
    }

    /// Observed selectivity `rows_out / rows_in`, or `None` before any row
    /// was scanned.
    pub fn observed_selectivity(&self) -> Option<f64> {
        (self.rows_in > 0).then(|| self.rows_out as f64 / self.rows_in as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_fieldwise_addition() {
        let mut a = AccessCounters {
            rows_in: 10,
            rows_out: 4,
            predicate_evals: 10,
            wasted_lanes: 6,
            ht_probes: 10,
            morsels: 1,
        };
        let b = AccessCounters {
            rows_in: 5,
            rows_out: 5,
            predicate_evals: 0,
            wasted_lanes: 0,
            ht_probes: 5,
            morsels: 2,
        };
        a.merge(&b);
        assert_eq!(
            a,
            AccessCounters {
                rows_in: 15,
                rows_out: 9,
                predicate_evals: 10,
                wasted_lanes: 6,
                ht_probes: 15,
                morsels: 3,
            }
        );
    }

    #[test]
    fn merge_order_is_invisible() {
        let parts = [
            AccessCounters {
                rows_in: 7,
                rows_out: 3,
                ..Default::default()
            },
            AccessCounters {
                rows_in: 2,
                rows_out: 2,
                ..Default::default()
            },
            AccessCounters {
                rows_in: 11,
                rows_out: 0,
                ..Default::default()
            },
        ];
        let mut fwd = AccessCounters::default();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = AccessCounters::default();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev);
    }

    #[test]
    fn observed_selectivity_handles_empty() {
        assert_eq!(AccessCounters::default().observed_selectivity(), None);
        let c = AccessCounters {
            rows_in: 8,
            rows_out: 2,
            ..Default::default()
        };
        assert_eq!(c.observed_selectivity(), Some(0.25));
    }
}
