//! Join, semijoin, groupjoin and eager-aggregation kernels
//! (paper §§ III-D, III-E).
//!
//! The baselines build/probe hash structures ([`swole_ht::KeySet`],
//! [`swole_ht::AggTable`]); the SWOLE variants replace them with
//! **positional bitmaps** probed through the foreign-key index, or reverse
//! build and probe sides entirely with **eager aggregation**.

// Tile-loop kernels: index arithmetic is bounded by slice lengths
// (debug_assert'd) and accumulators follow the paper's convention of
// unchecked 64-bit adds (overflow is detected once per tile by the
// engine, not per lane; dev/test profiles carry overflow checks).
#![allow(clippy::arithmetic_side_effects)]

use crate::agg::BinOp;
use crate::AsI64;
use swole_bitmap::PositionalBitmap;
use swole_ht::{AggTable, KeySet};

/// Build the baseline semijoin structure: a key set containing every
/// build-side key whose row satisfies `pred` (data-centric form — branch per
/// tuple).
#[inline]
#[allow(clippy::needless_range_loop)] // indexed loop mirrors the paper's C form
pub fn build_keyset_datacentric<K: AsI64>(keys: &[K], pred: impl Fn(usize) -> bool) -> KeySet {
    let mut set = KeySet::with_capacity(keys.len() / 2 + 4);
    for j in 0..keys.len() {
        if pred(j) {
            set.insert(keys[j].widen());
        }
    }
    set
}

/// Build the baseline semijoin key set through a selection vector (hybrid
/// form).
#[inline]
pub fn build_keyset_gather<K: AsI64>(keys: &[K], idx: &[u32], set: &mut KeySet) {
    for &j in idx {
        set.insert(keys[j as usize].widen());
    }
}

/// Probe-side sum for the baseline hash semijoin, data-centric form:
/// `if pred(j) && set.contains(fk[j]) { sum += a OP b }`.
#[inline]
pub fn semijoin_sum_hash_datacentric<K: AsI64, A: AsI64, B: AsI64, O: BinOp>(
    fk: &[K],
    a: &[A],
    b: &[B],
    pred: impl Fn(usize) -> bool,
    set: &KeySet,
) -> i64 {
    assert_eq!(fk.len(), a.len());
    assert_eq!(fk.len(), b.len());
    let mut sum = 0i64;
    for j in 0..fk.len() {
        if pred(j) && set.contains(fk[j].widen()) {
            sum += O::apply(a[j].widen(), b[j].widen());
        }
    }
    sum
}

/// Probe-side sum for the baseline hash semijoin, hybrid form: lookups only
/// for rows in the selection vector.
#[inline]
pub fn semijoin_sum_hash_gather<K: AsI64, A: AsI64, B: AsI64, O: BinOp>(
    fk: &[K],
    a: &[A],
    b: &[B],
    idx: &[u32],
    set: &KeySet,
) -> i64 {
    assert_eq!(fk.len(), a.len());
    assert_eq!(fk.len(), b.len());
    let mut sum = 0i64;
    for &j in idx {
        let j = j as usize;
        if set.contains(fk[j].widen()) {
            sum += O::apply(a[j].widen(), b[j].widen());
        }
    }
    sum
}

/// **Bitmap semijoin probe, fully masked** (§ III-D): for every probe tuple,
/// fetch the build-side bit positionally via the FK index and combine it
/// with the probe-side predicate mask — all accesses sequential or into the
/// cache-resident bitmap:
/// `sum += (a OP b) * (cmp[j] & bitmap[fk_pos[j]])`.
#[inline]
pub fn semijoin_sum_bitmap_masked<A: AsI64, B: AsI64, O: BinOp>(
    fk_pos: &[u32],
    a: &[A],
    b: &[B],
    cmp: &[u8],
    bitmap: &PositionalBitmap,
) -> i64 {
    assert_eq!(fk_pos.len(), a.len());
    assert_eq!(fk_pos.len(), b.len());
    assert_eq!(fk_pos.len(), cmp.len());
    let mut sum = 0i64;
    for j in 0..fk_pos.len() {
        let bit = bitmap.get_bit(fk_pos[j] as usize) as i64;
        sum += O::apply(a[j].widen(), b[j].widen()) * (cmp[j] as i64 & bit);
    }
    sum
}

/// Bitmap semijoin probe through a selection vector: used when the
/// probe-side predicate is selective enough that the value-masking cost
/// model prefers early filtering of the probe side.
#[inline]
pub fn semijoin_sum_bitmap_gather<A: AsI64, B: AsI64, O: BinOp>(
    fk_pos: &[u32],
    a: &[A],
    b: &[B],
    idx: &[u32],
    bitmap: &PositionalBitmap,
) -> i64 {
    assert_eq!(fk_pos.len(), a.len());
    assert_eq!(fk_pos.len(), b.len());
    let mut sum = 0i64;
    for &j in idx {
        let j = j as usize;
        let bit = bitmap.get_bit(fk_pos[j] as usize) as i64;
        sum += O::apply(a[j].widen(), b[j].widen()) * bit;
    }
    sum
}

/// Baseline groupjoin probe (§ III-E, "original version"): the hash table
/// was built from qualifying build-side keys with zeroed states; every probe
/// tuple looks up its FK and, on a match, updates the aggregate.
#[inline]
pub fn groupjoin_probe<K: AsI64, A: AsI64, B: AsI64, O: BinOp>(
    fk: &[K],
    a: &[A],
    b: &[B],
    ht: &mut AggTable,
) {
    assert_eq!(fk.len(), a.len());
    assert_eq!(fk.len(), b.len());
    for j in 0..fk.len() {
        if let Some(off) = ht.find(fk[j].widen()) {
            ht.add(off, 0, O::apply(a[j].widen(), b[j].widen()));
            ht.set_valid(off);
        }
    }
}

/// **Eager aggregation**, build phase (§ III-E): unconditionally aggregate
/// *every* probe-side tuple grouped by its join/group key — sequential reads
/// of all inputs, wasted work for keys later discarded.
#[inline]
pub fn eager_aggregate<K: AsI64, A: AsI64, B: AsI64, O: BinOp>(
    fk: &[K],
    a: &[A],
    b: &[B],
    ht: &mut AggTable,
) {
    assert_eq!(fk.len(), a.len());
    assert_eq!(fk.len(), b.len());
    for j in 0..fk.len() {
        let off = ht.entry(fk[j].widen());
        ht.add(off, 0, O::apply(a[j].widen(), b[j].widen()));
        ht.set_valid(off);
    }
}

/// **Eager aggregation**, deletion phase: scan the former build side and
/// delete every key whose (inverted) predicate marks it non-qualifying —
/// "note that the predicate has been inverted in the rewritten version to
/// perform the deletion".
#[inline]
pub fn delete_nonqualifying<K: AsI64>(pk: &[K], inverted_cmp: &[u8], ht: &mut AggTable) {
    assert_eq!(pk.len(), inverted_cmp.len());
    for j in 0..pk.len() {
        if inverted_cmp[j] != 0 {
            ht.delete(pk[j].widen());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::Mul;
    use crate::groupby::collect_groups;
    use crate::{predicate, selvec};
    use std::collections::BTreeMap;

    struct Data {
        s_x: Vec<i32>,
        r_fk: Vec<u32>,
        r_x: Vec<i32>,
        r_a: Vec<i32>,
        r_b: Vec<i32>,
    }

    fn mk_data(n_r: usize, n_s: usize) -> Data {
        let mut state = 5u64;
        let mut next = move |m: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) % m
        };
        Data {
            s_x: (0..n_s).map(|_| next(100) as i32).collect(),
            r_fk: (0..n_r).map(|_| next(n_s as u64) as u32).collect(),
            r_x: (0..n_r).map(|_| next(100) as i32).collect(),
            r_a: (0..n_r).map(|_| next(10) as i32 + 1).collect(),
            r_b: (0..n_r).map(|_| next(10) as i32 + 1).collect(),
        }
    }

    /// Reference semijoin aggregate: sum(a*b) over R rows whose FK's S row
    /// passes the S predicate and which pass the R predicate.
    fn reference_semijoin(d: &Data, sel_r: i32, sel_s: i32) -> i64 {
        (0..d.r_fk.len())
            .filter(|&j| d.r_x[j] < sel_r && d.s_x[d.r_fk[j] as usize] < sel_s)
            .map(|j| d.r_a[j] as i64 * d.r_b[j] as i64)
            .sum()
    }

    #[test]
    fn hash_and_bitmap_semijoins_agree() {
        let d = mk_data(4000, 100);
        for (sel_r, sel_s) in [(10, 90), (90, 10), (50, 50), (0, 100), (100, 0)] {
            let expected = reference_semijoin(&d, sel_r, sel_s);

            // Baseline: data-centric hash semijoin. S keys are positions.
            let s_keys: Vec<u32> = (0..d.s_x.len() as u32).collect();
            let set = build_keyset_datacentric(&s_keys, |j| d.s_x[j] < sel_s);
            let dc = semijoin_sum_hash_datacentric::<_, _, _, Mul>(
                &d.r_fk,
                &d.r_a,
                &d.r_b,
                |j| d.r_x[j] < sel_r,
                &set,
            );
            assert_eq!(dc, expected, "dc {sel_r}/{sel_s}");

            // Baseline: hybrid with selection vectors on both sides.
            let mut cmp_s = vec![0u8; d.s_x.len()];
            predicate::cmp_lt(&d.s_x, sel_s, &mut cmp_s);
            let mut idx_s = vec![0u32; d.s_x.len()];
            let k = selvec::fill_nobranch(&cmp_s, 0, &mut idx_s);
            let mut set = KeySet::with_capacity(k);
            build_keyset_gather(&s_keys, &idx_s[..k], &mut set);
            let mut cmp_r = vec![0u8; d.r_x.len()];
            predicate::cmp_lt(&d.r_x, sel_r, &mut cmp_r);
            let mut idx_r = vec![0u32; d.r_x.len()];
            let k = selvec::fill_nobranch(&cmp_r, 0, &mut idx_r);
            let hy = semijoin_sum_hash_gather::<_, _, _, Mul>(
                &d.r_fk,
                &d.r_a,
                &d.r_b,
                &idx_r[..k],
                &set,
            );
            assert_eq!(hy, expected, "hybrid {sel_r}/{sel_s}");

            // SWOLE: positional bitmap, masked probe.
            let bm = PositionalBitmap::from_predicate_bytes(&cmp_s);
            let masked =
                semijoin_sum_bitmap_masked::<_, _, Mul>(&d.r_fk, &d.r_a, &d.r_b, &cmp_r, &bm);
            assert_eq!(masked, expected, "bitmap-masked {sel_r}/{sel_s}");

            // SWOLE: positional bitmap, selection-vector probe.
            let gathered =
                semijoin_sum_bitmap_gather::<_, _, Mul>(&d.r_fk, &d.r_a, &d.r_b, &idx_r[..k], &bm);
            assert_eq!(gathered, expected, "bitmap-gather {sel_r}/{sel_s}");
        }
    }

    /// Reference groupjoin: sum(a*b) per fk whose S row passes the pred.
    fn reference_groupjoin(d: &Data, sel_s: i32) -> Vec<(i64, i64)> {
        let mut groups: BTreeMap<i64, i64> = BTreeMap::new();
        for j in 0..d.r_fk.len() {
            if d.s_x[d.r_fk[j] as usize] < sel_s {
                *groups.entry(d.r_fk[j] as i64).or_insert(0) += d.r_a[j] as i64 * d.r_b[j] as i64;
            }
        }
        groups.into_iter().collect()
    }

    #[test]
    fn groupjoin_and_eager_aggregation_agree() {
        let d = mk_data(4000, 64);
        for sel_s in [0, 25, 50, 100] {
            let expected = reference_groupjoin(&d, sel_s);

            // Baseline groupjoin: build from qualifying S keys, probe R.
            let mut ht = AggTable::with_capacity(1, 64);
            for (pk, &sx) in d.s_x.iter().enumerate() {
                if sx < sel_s {
                    ht.entry(pk as i64);
                }
            }
            groupjoin_probe::<_, _, _, Mul>(&d.r_fk, &d.r_a, &d.r_b, &mut ht);
            assert_eq!(collect_groups(&ht), expected, "groupjoin sel={sel_s}");

            // SWOLE eager aggregation: aggregate all of R, then delete
            // non-qualifying S keys with the inverted predicate.
            let mut ht = AggTable::with_capacity(1, 64);
            eager_aggregate::<_, _, _, Mul>(&d.r_fk, &d.r_a, &d.r_b, &mut ht);
            let mut inv = vec![0u8; d.s_x.len()];
            predicate::cmp_ge(&d.s_x, sel_s, &mut inv); // inverted: s_x >= sel
            let s_keys: Vec<u32> = (0..d.s_x.len() as u32).collect();
            delete_nonqualifying(&s_keys, &inv, &mut ht);
            assert_eq!(collect_groups(&ht), expected, "eager sel={sel_s}");
        }
    }

    #[test]
    fn eager_aggregation_handles_fk_gaps() {
        // Keys present in S but never referenced by R must not appear;
        // deletion of an absent key is a no-op.
        let d = Data {
            s_x: vec![0, 99, 0, 99],
            r_fk: vec![0, 0, 1],
            r_x: vec![0; 3],
            r_a: vec![2, 3, 4],
            r_b: vec![1, 1, 1],
        };
        let mut ht = AggTable::with_capacity(1, 8);
        eager_aggregate::<_, _, _, Mul>(&d.r_fk, &d.r_a, &d.r_b, &mut ht);
        let mut inv = vec![0u8; 4];
        predicate::cmp_ge(&d.s_x, 50, &mut inv);
        let s_keys: Vec<u32> = (0..4).collect();
        delete_nonqualifying(&s_keys, &inv, &mut ht);
        // Only fk=0 survives (s_x[1]=99 deletes key 1; keys 2,3 never in ht).
        assert_eq!(collect_groups(&ht), vec![(0, 5)]);
    }
}
