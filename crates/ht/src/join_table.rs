//! Equijoin hash table.

// Open-addressing invariant: every probe index is produced by
// `slot_for` (high bits of the hash shifted down to the power-of-two
// capacity) or by `& (capacity - 1)` wrap-around, so slot indexing is
// in-bounds by construction and probe arithmetic is bounded by the
// capacity (dev/test profiles carry overflow checks).
#![allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]

use crate::hash::{hash_i64, slot_for};

/// A multimap from `i64` join keys to `u32` row ids, built once on the build
/// side of a hash join and probed for every probe-side tuple.
///
/// Bucket-chained layout: a power-of-two `heads` directory plus per-entry
/// `next` links, all in flat arrays. Probing a key whose bucket is cold costs
/// one cache miss for the head and one per chain entry — the access pattern
/// whose cost the paper's `ht_lookup` term models, and which the positional
/// bitmap technique (§ III-D) eliminates for FK joins.
#[derive(Debug, Clone)]
pub struct JoinTable {
    heads: Vec<u32>,
    next: Vec<u32>,
    keys: Vec<i64>,
    rows: Vec<u32>,
    cap_log2: u32,
}

/// End-of-chain sentinel.
const NONE: u32 = u32::MAX;

impl JoinTable {
    /// Create a table expecting `expected_entries` insertions.
    pub fn with_capacity(expected_entries: usize) -> JoinTable {
        let cap_log2 = expected_entries.max(4).next_power_of_two().trailing_zeros();
        JoinTable {
            heads: vec![NONE; 1 << cap_log2],
            next: Vec::with_capacity(expected_entries),
            keys: Vec::with_capacity(expected_entries),
            rows: Vec::with_capacity(expected_entries),
            cap_log2,
        }
    }

    /// Build directly from a key column (row id = position).
    pub fn build(keys: &[i64]) -> JoinTable {
        let mut t = JoinTable::with_capacity(keys.len());
        for (row, &k) in keys.iter().enumerate() {
            t.insert(k, row as u32);
        }
        t
    }

    /// Insert a `(key, row)` pair.
    #[inline]
    pub fn insert(&mut self, key: i64, row: u32) {
        if self.keys.len() >= self.heads.len() {
            self.grow();
        }
        let slot = slot_for(hash_i64(key), self.cap_log2);
        let id = self.keys.len() as u32;
        self.keys.push(key);
        self.rows.push(row);
        self.next.push(self.heads[slot]);
        self.heads[slot] = id;
    }

    fn grow(&mut self) {
        self.cap_log2 += 1;
        self.heads = vec![NONE; 1 << self.cap_log2];
        for id in 0..self.keys.len() {
            let slot = slot_for(hash_i64(self.keys[id]), self.cap_log2);
            self.next[id] = self.heads[slot];
            self.heads[slot] = id as u32;
        }
    }

    /// Iterate over the row ids stored under `key`.
    #[inline]
    pub fn probe(&self, key: i64) -> ProbeIter<'_> {
        let slot = slot_for(hash_i64(key), self.cap_log2);
        ProbeIter {
            table: self,
            key,
            cursor: self.heads[slot],
        }
    }

    /// First matching row id, if any (enough for PK-FK joins where the build
    /// side is unique).
    #[inline]
    pub fn probe_first(&self, key: i64) -> Option<u32> {
        self.probe(key).next()
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` if nothing was inserted.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Approximate payload bytes (for the cost model).
    pub fn size_bytes(&self) -> usize {
        self.heads.len() * 4 + self.keys.len() * (8 + 4 + 4)
    }
}

/// Iterator over row ids matching one probe key.
pub struct ProbeIter<'a> {
    table: &'a JoinTable,
    key: i64,
    cursor: u32,
}

impl Iterator for ProbeIter<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        while self.cursor != NONE {
            let id = self.cursor as usize;
            self.cursor = self.table.next[id];
            if self.table.keys[id] == self.key {
                return Some(self.table.rows[id]);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_probe_unique_keys() {
        let t = JoinTable::build(&[10, 20, 30]);
        assert_eq!(t.probe_first(20), Some(1));
        assert_eq!(t.probe_first(40), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn duplicate_keys_yield_all_rows() {
        let t = JoinTable::build(&[5, 7, 5, 5, 7]);
        let mut rows: Vec<u32> = t.probe(5).collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![0, 2, 3]);
        let mut rows: Vec<u32> = t.probe(7).collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![1, 4]);
    }

    #[test]
    fn growth_keeps_all_entries() {
        let rows = if cfg!(miri) { 500u32 } else { 10_000u32 };
        let mut t = JoinTable::with_capacity(4);
        for row in 0..rows {
            t.insert((row % 97) as i64, row);
        }
        for k in 0..97i64 {
            let n = t.probe(k).count();
            let expected = (0..rows).filter(|r| (r % 97) as i64 == k).count();
            assert_eq!(n, expected, "key {k}");
        }
    }

    #[test]
    fn negative_and_extreme_keys() {
        let t = JoinTable::build(&[-1, i64::MAX, i64::MIN, 0]);
        assert_eq!(t.probe_first(-1), Some(0));
        assert_eq!(t.probe_first(i64::MAX), Some(1));
        assert_eq!(t.probe_first(i64::MIN), Some(2));
        assert_eq!(t.probe_first(0), Some(3));
    }
}
