//! Integer hashing.

/// Fibonacci-multiplicative hash of an `i64` key.
///
/// `key * 2^64/phi`, keeping the high bits (callers shift/mask down to their
/// capacity). This is the classic one-multiply integer hash used by
/// hand-tuned engines: a single `imul` per key, good dispersion of the high
/// bits even for sequential keys.
#[inline(always)]
pub fn hash_i64(key: i64) -> u64 {
    (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Reduce a hash to a slot index for a power-of-two capacity, using the
/// high bits (the well-mixed ones for a multiplicative hash).
#[inline(always)]
// `capacity_log2` is the log2 of a usize capacity, so it is ≤ 64 and the
// shift amount cannot underflow (a 0-capacity table is never constructed).
#[allow(clippy::arithmetic_side_effects)]
pub(crate) fn slot_for(hash: u64, capacity_log2: u32) -> usize {
    (hash >> (64 - capacity_log2)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_i64(42), hash_i64(42));
        assert_ne!(hash_i64(42), hash_i64(43));
    }

    #[test]
    fn sequential_keys_spread_over_slots() {
        // Sequential keys must not pile into a handful of slots: count
        // distinct slots for 1024 sequential keys in a 1024-slot table.
        let mut seen = std::collections::HashSet::new();
        for k in 0..1024i64 {
            seen.insert(slot_for(hash_i64(k), 10));
        }
        assert!(seen.len() > 600, "poor dispersion: {} slots", seen.len());
    }

    #[test]
    fn slot_is_in_range() {
        for k in [-5i64, 0, 1, i64::MAX, i64::MIN + 7] {
            assert!(slot_for(hash_i64(k), 4) < 16);
        }
    }
}
