//! # swole-ht — hash tables built for access-aware query execution
//!
//! From-scratch open-addressing hash tables with exactly the features the
//! SWOLE techniques (paper § III) need and nothing else:
//!
//! * [`AggTable`] — group-by aggregation states keyed by `i64`, with
//!   * a reserved **throwaway entry** addressed by [`NULL_KEY`] so the key
//!     masking technique (§ III-B) can route filtered tuples to a single
//!     always-cached slot,
//!   * per-entry **valid flags** so the value masking technique (§ III-B)
//!     can "set a flag during insertion to differentiate between masked
//!     entries and actual 0 values",
//!   * **deletion** (backward-shift or tombstone) so eager aggregation
//!     (§ III-E) can remove non-qualifying aggregates after the fact;
//! * [`JoinTable`] — an equijoin multimap from `i64` keys to row ids;
//! * [`KeySet`] — a membership set used by the hash-based semijoin
//!   baselines that positional bitmaps replace.
//!
//! All tables use power-of-two capacities, linear probing, and a
//! Fibonacci-multiplicative hash ([`hash_i64`]) — the same cheap integer
//! hashing a hand-tuned C implementation would use. Uniformly distributed
//! keys (the paper's stated worst case for caching) therefore spread evenly,
//! and a lookup in a table larger than cache is almost certainly a miss,
//! which is precisely the regime the cost models reason about.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::arithmetic_side_effects, clippy::indexing_slicing)]

mod agg_table;
mod hash;
mod join_table;
mod key_set;

pub use agg_table::{AggTable, DeletePolicy, HtCounters, MergeOp, NULL_KEY};
pub use hash::hash_i64;
pub use join_table::JoinTable;
pub use key_set::KeySet;
