//! Group-by aggregation hash table.

// Open-addressing invariant: every probe index is produced by
// `slot_for` (high bits of the hash shifted down to the power-of-two
// capacity) or by `& (capacity - 1)` wrap-around, so slot indexing is
// in-bounds by construction and probe arithmetic is bounded by the
// capacity (dev/test profiles carry overflow checks).
#![allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]

use crate::hash::{hash_i64, slot_for};

/// The key that key masking (§ III-B) stores for filtered tuples.
///
/// It is an ordinary hashable key — the throwaway is a *normal entry in the
/// hash table* (§ III-B: "maps to the throwaway entry in the hash table"),
/// so routing a masked tuple to it takes the same branch-free probe as any
/// other key and the entry stays cached because it is touched constantly.
/// [`AggTable::iter`] and [`AggTable::len`] exclude it; read its state with
/// [`AggTable::null_state`].
pub const NULL_KEY: i64 = i64::MIN + 1;

/// Sentinel marking an empty slot. Real group keys may not take this value
/// (or [`NULL_KEY`] / [`TOMBSTONE`]); all workloads in this repo use small
/// non-negative keys, and [`AggTable::entry`] debug-asserts it.
const EMPTY: i64 = i64::MIN;

/// Sentinel marking a deleted slot under [`DeletePolicy::Tombstone`].
const TOMBSTONE: i64 = i64::MIN + 2;

/// How one aggregate slot combines across two partial tables in
/// [`AggTable::merge_from`].
///
/// Sum and count states merge by addition; min/max states merge by the
/// matching comparison. All three are commutative and associative over
/// `i64`, which is what makes morsel-parallel aggregation deterministic:
/// the merged table is identical no matter how rows were partitioned
/// across threads or in which order partials merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOp {
    /// `state += other` (sum and count aggregates).
    Add,
    /// `state = state.min(other)`.
    Min,
    /// `state = state.max(other)`.
    Max,
}

/// Lifetime access counters for a hash table, read via
/// [`AggTable::counters`] (or `KeySet::counters`).
///
/// Counting happens on the mutation path only (`entry`, `insert`, `grow`),
/// as plain `u64` adds on cache lines the probe loop already owns — cheap
/// enough to stay always-on. `probes` and `inserts` are properties of the
/// update stream, but `probe_steps`, `resizes`, and `bytes_allocated`
/// depend on insertion *order* and table occupancy, so for thread-local
/// tables they vary with how rows were partitioned across workers: the
/// metrics layer reports them as indicative, not deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HtCounters {
    /// Find-or-insert operations issued.
    pub probes: u64,
    /// Extra slots walked past the home slot (linear-probe collisions).
    pub probe_steps: u64,
    /// Keys newly inserted (first touch of a distinct key).
    pub inserts: u64,
    /// Capacity doublings.
    pub resizes: u64,
    /// Cumulative bytes allocated, including the initial arrays and every
    /// regrow (old arrays are freed, so this is traffic, not residency).
    pub bytes_allocated: u64,
}

impl HtCounters {
    /// Fold another table's counters into this one (summing per-worker
    /// partial tables for reporting).
    pub fn merge(&mut self, other: &HtCounters) {
        self.probes += other.probes;
        self.probe_steps += other.probe_steps;
        self.inserts += other.inserts;
        self.resizes += other.resizes;
        self.bytes_allocated += other.bytes_allocated;
    }
}

/// How [`AggTable::delete`] removes entries.
///
/// Eager aggregation (§ III-E) deletes every key filtered by the join; the
/// two classic linear-probing deletion strategies trade probe-sequence
/// health against deletion cost. `ablations` benches both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeletePolicy {
    /// Shift the following probe-sequence entries backwards. Slightly more
    /// work per delete, but keeps probe sequences short forever.
    #[default]
    BackwardShift,
    /// Mark the slot with a tombstone. O(1) delete, but lookups must skip
    /// tombstones until the next rehash.
    Tombstone,
}

/// An open-addressing hash table from `i64` group keys to fixed-width
/// aggregate state (`n_aggs` `i64` slots per key).
///
/// Layout: parallel `keys` / `valid` arrays of `capacity` slots plus a flat
/// `states` array of `(capacity + 1) * n_aggs` values. State offset 0 is the
/// **throwaway entry** for [`NULL_KEY`]; slot `s` owns offset
/// `(s + 1) * n_aggs`. [`AggTable::entry`] hands out state offsets so the hot
/// update loop is `states[off + k] += v` with no further indirection.
#[derive(Debug, Clone)]
pub struct AggTable {
    keys: Vec<i64>,
    states: Vec<i64>,
    valid: Vec<u8>,
    n_aggs: usize,
    cap_log2: u32,
    len: usize,
    tombstones: usize,
    policy: DeletePolicy,
    /// Sticky flag set when any additive update or merge wrapped around
    /// `i64` — see [`AggTable::overflow_detected`].
    overflowed: bool,
    counters: HtCounters,
}

impl AggTable {
    /// Create a table with room for roughly `expected_keys` distinct keys
    /// before the first grow, each carrying `n_aggs` aggregate values.
    pub fn with_capacity(n_aggs: usize, expected_keys: usize) -> AggTable {
        assert!(n_aggs > 0, "need at least one aggregate slot");
        // Size for a max load factor of 50% so probe sequences stay short
        // even with uniform (worst-case, per the paper) keys.
        let cap_log2 = (expected_keys.max(4) * 2)
            .next_power_of_two()
            .trailing_zeros();
        let mut t = AggTable {
            keys: vec![EMPTY; 1 << cap_log2],
            states: vec![0; ((1 << cap_log2) + 1) * n_aggs],
            valid: vec![0; 1 << cap_log2],
            n_aggs,
            cap_log2,
            len: 0,
            tombstones: 0,
            policy: DeletePolicy::default(),
            overflowed: false,
            counters: HtCounters::default(),
        };
        t.counters.bytes_allocated = t.size_bytes() as u64;
        t
    }

    /// Select the deletion strategy (defaults to backward shift).
    pub fn with_delete_policy(mut self, policy: DeletePolicy) -> AggTable {
        self.policy = policy;
        self
    }

    /// Number of distinct real keys currently stored (the throwaway entry is
    /// never counted).
    pub fn len(&self) -> usize {
        self.len - self.find(NULL_KEY).is_some() as usize
    }

    /// `true` if no real keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        1 << self.cap_log2
    }

    /// Aggregate slots per key.
    pub fn n_aggs(&self) -> usize {
        self.n_aggs
    }

    /// Approximate payload size in bytes — what the cost model compares
    /// against cache sizes to price `ht_lookup`.
    pub fn size_bytes(&self) -> usize {
        self.keys.len() * 8 + self.states.len() * 8 + self.valid.len()
    }

    /// Find or insert `key`, returning its state offset into
    /// [`AggTable::states`]. [`NULL_KEY`] maps to the throwaway entry.
    ///
    /// Offsets are invalidated by any subsequent insert (the table may grow);
    /// the kernels never hold offsets across inserts.
    #[inline]
    pub fn entry(&mut self, key: i64) -> usize {
        debug_assert!(key != EMPTY && key != TOMBSTONE, "reserved key value");
        if (self.len + self.tombstones + 1) * 2 > self.capacity() {
            self.grow();
        }
        let mask = self.capacity() - 1;
        let mut slot = slot_for(hash_i64(key), self.cap_log2);
        let mut first_tombstone = usize::MAX;
        self.counters.probes += 1;
        loop {
            let k = self.keys[slot];
            if k == key {
                return (slot + 1) * self.n_aggs;
            }
            if k == EMPTY {
                let dest = if first_tombstone != usize::MAX {
                    self.tombstones -= 1;
                    first_tombstone
                } else {
                    slot
                };
                self.keys[dest] = key;
                self.len += 1;
                self.counters.inserts += 1;
                let off = (dest + 1) * self.n_aggs;
                self.states[off..off + self.n_aggs].fill(0);
                self.valid[dest] = 0;
                return off;
            }
            if k == TOMBSTONE && first_tombstone == usize::MAX {
                first_tombstone = slot;
            }
            slot = (slot + 1) & mask;
            self.counters.probe_steps += 1;
        }
    }

    /// Find `key` without inserting. Returns its state offset, or `None`.
    #[inline]
    pub fn find(&self, key: i64) -> Option<usize> {
        let mask = self.capacity() - 1;
        let mut slot = slot_for(hash_i64(key), self.cap_log2);
        loop {
            let k = self.keys[slot];
            if k == key {
                return Some((slot + 1) * self.n_aggs);
            }
            if k == EMPTY {
                return None;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Mutable access to the flat state array (hot update loops index it
    /// directly with offsets from [`AggTable::entry`]).
    #[inline(always)]
    pub fn states_mut(&mut self) -> &mut [i64] {
        &mut self.states
    }

    /// Shared access to the flat state array.
    #[inline(always)]
    pub fn states(&self) -> &[i64] {
        &self.states
    }

    /// Add `v` to aggregate slot `agg` of the entry at `offset`.
    ///
    /// Uses explicit wrapping arithmetic — identical semantics in debug and
    /// release builds — and records wraparound in a sticky flag readable
    /// via [`AggTable::overflow_detected`]. Callers decide whether a
    /// detected overflow is real or wasted-work noise (masked strategies
    /// aggregate filtered tuples too) and typically re-run data-centric.
    #[inline(always)]
    pub fn add(&mut self, offset: usize, agg: usize, v: i64) {
        debug_assert!(agg < self.n_aggs);
        let (sum, wrapped) = self.states[offset + agg].overflowing_add(v);
        self.states[offset + agg] = sum;
        self.overflowed |= wrapped;
    }

    /// `true` if any [`AggTable::add`] or [`AggTable::merge_from`] addition
    /// has wrapped around `i64` since the table was created (the flag also
    /// propagates from merged-in partials).
    #[inline]
    pub fn overflow_detected(&self) -> bool {
        self.overflowed
    }

    /// OR `flag` (0 or 1) into the valid bit of the entry at `offset`.
    ///
    /// Value masking bookkeeping (§ III-B): every tuple — masked or not —
    /// touches its real group entry, so a flag distinguishes entries that
    /// only ever received masked (zero) updates from real groups whose
    /// aggregate happens to be zero. (The throwaway entry's flag is
    /// irrelevant: [`AggTable::iter`] always excludes it.)
    #[inline(always)]
    pub fn or_valid(&mut self, offset: usize, flag: u8) {
        self.valid[offset / self.n_aggs - 1] |= flag;
    }

    /// Mark the entry at `offset` valid unconditionally (used by strategies
    /// that only touch entries for qualifying tuples).
    #[inline(always)]
    pub fn set_valid(&mut self, offset: usize) {
        self.valid[offset / self.n_aggs - 1] = 1;
    }

    /// Read the valid flag of the entry at `offset` (the throwaway entry is
    /// never valid).
    #[inline(always)]
    pub fn is_valid(&self, offset: usize) -> bool {
        self.valid[offset / self.n_aggs - 1] != 0
    }

    /// Delete `key`, returning `true` if it was present. [`NULL_KEY`] clears
    /// the throwaway state instead.
    pub fn delete(&mut self, key: i64) -> bool {
        let mask = self.capacity() - 1;
        let mut slot = slot_for(hash_i64(key), self.cap_log2);
        loop {
            let k = self.keys[slot];
            if k == key {
                match self.policy {
                    DeletePolicy::Tombstone => {
                        self.keys[slot] = TOMBSTONE;
                        self.tombstones += 1;
                    }
                    DeletePolicy::BackwardShift => self.backward_shift(slot),
                }
                self.len -= 1;
                return true;
            }
            if k == EMPTY {
                return false;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Backward-shift deletion: walk the cluster after `hole`, moving back
    /// any entry whose home slot means it is reachable through `hole`.
    fn backward_shift(&mut self, mut hole: usize) {
        let mask = self.capacity() - 1;
        self.keys[hole] = EMPTY;
        let mut probe = (hole + 1) & mask;
        loop {
            let k = self.keys[probe];
            if k == EMPTY {
                return;
            }
            if k != TOMBSTONE {
                let home = slot_for(hash_i64(k), self.cap_log2);
                // `probe` is reachable from `home`; if `hole` lies on the
                // cyclic path home..=probe the entry must move back into it.
                let dist_hole = hole.wrapping_sub(home) & mask;
                let dist_probe = probe.wrapping_sub(home) & mask;
                if dist_hole <= dist_probe {
                    self.keys[hole] = k;
                    self.valid[hole] = self.valid[probe];
                    let (src, dst) = ((probe + 1) * self.n_aggs, (hole + 1) * self.n_aggs);
                    for a in 0..self.n_aggs {
                        self.states[dst + a] = self.states[src + a];
                    }
                    self.keys[probe] = EMPTY;
                    hole = probe;
                }
            }
            probe = (probe + 1) & mask;
        }
    }

    /// Lifetime access counters (probes, collisions, inserts, regrows,
    /// allocation traffic). See [`HtCounters`] for which fields are
    /// partition-order-dependent.
    pub fn counters(&self) -> HtCounters {
        self.counters
    }

    fn grow(&mut self) {
        let old_keys = std::mem::take(&mut self.keys);
        let old_states = std::mem::take(&mut self.states);
        let old_valid = std::mem::take(&mut self.valid);
        self.cap_log2 += 1;
        let cap = 1 << self.cap_log2;
        self.keys = vec![EMPTY; cap];
        self.states = vec![0; (cap + 1) * self.n_aggs];
        self.valid = vec![0; cap];
        self.len = 0;
        self.tombstones = 0;
        self.counters.resizes += 1;
        self.counters.bytes_allocated += self.size_bytes() as u64;
        let mask = cap - 1;
        for (slot, &k) in old_keys.iter().enumerate() {
            if k == EMPTY || k == TOMBSTONE {
                continue;
            }
            let mut s = slot_for(hash_i64(k), self.cap_log2);
            while self.keys[s] != EMPTY {
                s = (s + 1) & mask;
            }
            self.keys[s] = k;
            self.valid[s] = old_valid[slot];
            let (src, dst) = ((slot + 1) * self.n_aggs, (s + 1) * self.n_aggs);
            self.states[dst..dst + self.n_aggs]
                .copy_from_slice(&old_states[src..src + self.n_aggs]);
            self.len += 1;
        }
    }

    /// Iterate over live real entries as `(key, state, valid)`. The
    /// throwaway entry is excluded; use [`AggTable::null_state`] for it.
    pub fn iter(&self) -> impl Iterator<Item = (i64, &[i64], bool)> {
        self.keys.iter().enumerate().filter_map(move |(slot, &k)| {
            if k == EMPTY || k == TOMBSTONE || k == NULL_KEY {
                None
            } else {
                let off = (slot + 1) * self.n_aggs;
                Some((
                    k,
                    &self.states[off..off + self.n_aggs],
                    self.valid[slot] != 0,
                ))
            }
        })
    }

    /// Merge another partial table into this one, slot `i` combining under
    /// `ops[i]` — the reduction step of morsel-parallel aggregation, where
    /// each worker fills a thread-local table and the partials fold into
    /// one.
    ///
    /// Keys absent from `self` are inserted with `other`'s state and valid
    /// flag. Keys present in both combine per op; valid flags OR. Min/max
    /// slots consult the valid flags (an entry that only ever received
    /// masked updates has no real min/max yet), so merging is safe even for
    /// tables built by masking strategies. The throwaway entry's state
    /// always merges additively — only masked (zero-add) updates ever land
    /// there.
    ///
    /// The result is bit-identical regardless of how rows were partitioned
    /// into partials or the order partials merge, because every op is
    /// commutative and associative over `i64`.
    pub fn merge_from(&mut self, other: &AggTable, ops: &[MergeOp]) {
        assert_eq!(self.n_aggs, other.n_aggs, "incompatible layouts");
        assert_eq!(ops.len(), self.n_aggs, "one MergeOp per aggregate slot");
        self.overflowed |= other.overflowed;
        for (slot, &k) in other.keys.iter().enumerate() {
            if k == EMPTY || k == TOMBSTONE {
                continue;
            }
            let src = (slot + 1) * other.n_aggs;
            if k == NULL_KEY {
                let dst = self.entry(NULL_KEY);
                for i in 0..self.n_aggs {
                    let (sum, wrapped) =
                        self.states[dst + i].overflowing_add(other.states[src + i]);
                    self.states[dst + i] = sum;
                    self.overflowed |= wrapped;
                }
                continue;
            }
            let other_valid = other.valid[slot];
            let existed = self.find(k).is_some();
            let dst = self.entry(k);
            if !existed {
                for i in 0..self.n_aggs {
                    self.states[dst + i] = other.states[src + i];
                }
                self.or_valid(dst, other_valid);
                continue;
            }
            let self_valid = self.is_valid(dst);
            let mut wrapped_any = false;
            for (i, op) in ops.iter().enumerate() {
                let theirs = other.states[src + i];
                let s = &mut self.states[dst + i];
                match op {
                    MergeOp::Add => {
                        let (sum, wrapped) = (*s).overflowing_add(theirs);
                        *s = sum;
                        wrapped_any |= wrapped;
                    }
                    MergeOp::Min | MergeOp::Max => {
                        // A min/max state is only meaningful once its entry
                        // has seen a real (unmasked) update.
                        if other_valid != 0 {
                            *s = if !self_valid {
                                theirs
                            } else if *op == MergeOp::Min {
                                (*s).min(theirs)
                            } else {
                                (*s).max(theirs)
                            };
                        }
                    }
                }
            }
            self.overflowed |= wrapped_any;
            self.or_valid(dst, other_valid);
        }
    }

    /// The throwaway entry's accumulated state (all zeros if no masked
    /// tuple ever landed there — state offset 0 is never written, so it
    /// doubles as the zero default).
    pub fn null_state(&self) -> &[i64] {
        match self.find(NULL_KEY) {
            Some(off) => &self.states[off..off + self.n_aggs],
            None => &self.states[..self.n_aggs],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn insert_update_lookup() {
        let mut t = AggTable::with_capacity(2, 4);
        let off = t.entry(7);
        t.add(off, 0, 10);
        t.add(off, 1, 1);
        let off = t.entry(7);
        t.add(off, 0, 5);
        t.add(off, 1, 1);
        assert_eq!(t.len(), 1);
        let found = t.find(7).unwrap();
        assert_eq!(&t.states()[found..found + 2], &[15, 2]);
        assert!(t.find(8).is_none());
    }

    #[test]
    fn null_key_routes_to_throwaway() {
        let mut t = AggTable::with_capacity(1, 4);
        let off = t.entry(NULL_KEY);
        t.add(off, 0, 99);
        let off2 = t.entry(NULL_KEY);
        assert_eq!(off, off2, "one throwaway entry");
        assert_eq!(t.null_state(), &[99]);
        assert_eq!(t.len(), 0, "throwaway is not a real entry");
        assert_eq!(t.iter().count(), 0);
        // Without any masked tuples, the throwaway state reads as zeros.
        let empty = AggTable::with_capacity(2, 4);
        assert_eq!(empty.null_state(), &[0, 0]);
    }

    #[test]
    fn growth_preserves_everything() {
        let mut t = AggTable::with_capacity(1, 4);
        let null_off = t.entry(NULL_KEY);
        t.add(null_off, 0, -7);
        for k in 0..1000 {
            let off = t.entry(k);
            t.add(off, 0, k * 2);
            t.set_valid(off);
        }
        assert_eq!(t.len(), 1000);
        assert!(t.capacity() >= 2000);
        for k in 0..1000 {
            let off = t.find(k).unwrap();
            assert_eq!(t.states()[off], k * 2);
        }
        assert_eq!(t.null_state(), &[-7]);
        assert!(t.iter().all(|(_, _, v)| v));
    }

    #[test]
    fn valid_flag_bookkeeping() {
        let mut t = AggTable::with_capacity(1, 8);
        let a = t.entry(1);
        t.or_valid(a, 0); // masked update only
        let b = t.entry(2);
        t.or_valid(b, 1); // real update
        let flags: HashMap<i64, bool> = t.iter().map(|(k, _, v)| (k, v)).collect();
        assert!(!flags[&1]);
        assert!(flags[&2]);
    }

    #[test]
    fn delete_backward_shift_keeps_probes_working() {
        let mut t = AggTable::with_capacity(1, 64);
        for k in 0..50 {
            let off = t.entry(k);
            t.add(off, 0, k + 100);
        }
        for k in (0..50).step_by(2) {
            assert!(t.delete(k));
            assert!(!t.delete(k), "double delete must report absence");
        }
        assert_eq!(t.len(), 25);
        for k in 0..50 {
            if k % 2 == 0 {
                assert!(t.find(k).is_none(), "key {k} should be gone");
            } else {
                let off = t.find(k).expect("odd key must survive");
                assert_eq!(t.states()[off], k + 100);
            }
        }
    }

    #[test]
    fn delete_tombstone_keeps_probes_working() {
        let mut t = AggTable::with_capacity(1, 64).with_delete_policy(DeletePolicy::Tombstone);
        for k in 0..50 {
            let off = t.entry(k);
            t.add(off, 0, k);
        }
        for k in 25..50 {
            assert!(t.delete(k));
        }
        for k in 0..25 {
            assert!(t.find(k).is_some());
        }
        for k in 25..50 {
            assert!(t.find(k).is_none());
        }
        // Re-insert reuses tombstones with fresh state.
        let off = t.entry(30);
        assert_eq!(t.states()[off], 0);
        assert_eq!(t.len(), 26);
    }

    #[test]
    fn delete_null_key_clears_throwaway() {
        let mut t = AggTable::with_capacity(1, 4);
        let off = t.entry(NULL_KEY);
        t.add(off, 0, 5);
        assert_eq!(t.null_state(), &[5]);
        assert!(t.delete(NULL_KEY));
        assert!(!t.delete(NULL_KEY));
        assert_eq!(t.null_state(), &[0]);
    }

    #[test]
    fn matches_std_hashmap_under_mixed_ops() {
        // Deterministic pseudo-random op sequence cross-checked against
        // HashMap<i64, i64>.
        let mut t = AggTable::with_capacity(1, 4);
        let mut reference: HashMap<i64, i64> = HashMap::new();
        let mut state = 0x12345678u64;
        // Miri runs this cross-check at a reduced op count (it interprets
        // every memory access; the full count takes minutes there).
        let ops = if cfg!(miri) { 500 } else { 20_000 };
        for _ in 0..ops {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = ((state >> 33) % 257) as i64;
            let op = (state >> 20) % 3;
            match op {
                0 | 1 => {
                    let off = t.entry(key);
                    t.add(off, 0, 1);
                    *reference.entry(key).or_insert(0) += 1;
                }
                _ => {
                    let was = t.delete(key);
                    assert_eq!(was, reference.remove(&key).is_some());
                }
            }
        }
        assert_eq!(t.len(), reference.len());
        let got: HashMap<i64, i64> = t.iter().map(|(k, s, _)| (k, s[0])).collect();
        assert_eq!(got, reference);
    }

    #[test]
    fn agg_table_is_send_and_sync() {
        fn check<T: Send + Sync>() {}
        check::<AggTable>();
    }

    #[test]
    fn merge_from_disjoint_and_overlapping() {
        let mut a = AggTable::with_capacity(2, 4);
        let mut b = AggTable::with_capacity(2, 4);
        for (t, keys) in [(&mut a, [1i64, 2, 3]), (&mut b, [3, 4, 5])] {
            for k in keys {
                let off = t.entry(k);
                t.add(off, 0, k * 10);
                t.add(off, 1, 1);
                t.set_valid(off);
            }
        }
        a.merge_from(&b, &[MergeOp::Add, MergeOp::Add]);
        assert_eq!(a.len(), 5);
        for k in [1i64, 2, 4, 5] {
            let off = a.find(k).unwrap();
            assert_eq!(&a.states()[off..off + 2], &[k * 10, 1]);
        }
        let off = a.find(3).unwrap();
        assert_eq!(&a.states()[off..off + 2], &[60, 2], "overlap adds");
    }

    #[test]
    fn merge_from_min_max_respects_valid_flags() {
        // a: key 1 valid with min=5/max=5; key 2 present but never really
        // updated (masked only).
        let mut a = AggTable::with_capacity(2, 4);
        let off = a.entry(1);
        a.states_mut()[off] = 5;
        a.states_mut()[off + 1] = 5;
        a.set_valid(off);
        let off = a.entry(2);
        a.or_valid(off, 0);
        // b: both keys valid.
        let mut b = AggTable::with_capacity(2, 4);
        for (k, v) in [(1i64, 9i64), (2, 7)] {
            let off = b.entry(k);
            b.states_mut()[off] = v;
            b.states_mut()[off + 1] = v;
            b.set_valid(off);
        }
        a.merge_from(&b, &[MergeOp::Min, MergeOp::Max]);
        let off = a.find(1).unwrap();
        assert_eq!(a.states()[off], 5, "min(5, 9)");
        assert_eq!(a.states()[off + 1], 9, "max(5, 9)");
        let off = a.find(2).unwrap();
        assert_eq!(
            &a.states()[off..off + 2],
            &[7, 7],
            "invalid self state is replaced, not combined"
        );
        assert!(a.is_valid(off));
    }

    #[test]
    fn merge_from_combines_throwaway_states() {
        let mut a = AggTable::with_capacity(1, 4);
        let off = a.entry(NULL_KEY);
        a.add(off, 0, 3);
        let mut b = AggTable::with_capacity(1, 4);
        let off = b.entry(NULL_KEY);
        b.add(off, 0, 4);
        a.merge_from(&b, &[MergeOp::Add]);
        assert_eq!(a.null_state(), &[7]);
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn merge_from_equals_sequential_insertion() {
        // Partition a deterministic pseudo-random update stream across 4
        // partial tables; merging them must equal inserting sequentially.
        let mut sequential = AggTable::with_capacity(2, 4);
        let mut partials: Vec<AggTable> = (0..4).map(|_| AggTable::with_capacity(2, 4)).collect();
        let mut state = 0xDEADBEEFu64;
        let ops = if cfg!(miri) { 400 } else { 10_000 };
        for i in 0..ops {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = ((state >> 33) % 199) as i64;
            let v = ((state >> 13) % 1000) as i64 - 500;
            for t in [&mut sequential, &mut partials[i % 4]] {
                let off = t.entry(key);
                t.add(off, 0, v);
                let fresh = !t.is_valid(off);
                let s = &mut t.states_mut()[off + 1];
                *s = if fresh { v } else { (*s).min(v) };
                t.set_valid(off);
            }
        }
        let mut merged = AggTable::with_capacity(2, 4);
        for p in &partials {
            merged.merge_from(p, &[MergeOp::Add, MergeOp::Min]);
        }
        assert_eq!(merged.len(), sequential.len());
        let mut got: Vec<(i64, Vec<i64>)> =
            merged.iter().map(|(k, s, _)| (k, s.to_vec())).collect();
        let mut want: Vec<(i64, Vec<i64>)> =
            sequential.iter().map(|(k, s, _)| (k, s.to_vec())).collect();
        got.sort();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn overflow_is_detected_and_sticky() {
        let mut t = AggTable::with_capacity(1, 4);
        let off = t.entry(1);
        t.add(off, 0, i64::MAX);
        assert!(!t.overflow_detected());
        t.add(off, 0, 1);
        assert!(t.overflow_detected(), "wraparound must set the flag");
        assert_eq!(t.states()[off], i64::MIN, "wrapping semantics");
        // The flag propagates into tables the partial is merged into.
        let mut dst = AggTable::with_capacity(1, 4);
        dst.merge_from(&t, &[MergeOp::Add]);
        assert!(dst.overflow_detected());
        // A merge whose addition itself wraps is also detected.
        let mut a = AggTable::with_capacity(1, 4);
        let off = a.entry(9);
        a.add(off, 0, i64::MAX);
        let b = a.clone();
        assert!(!a.overflow_detected());
        a.merge_from(&b, &[MergeOp::Add]);
        assert!(a.overflow_detected());
    }

    #[test]
    fn size_bytes_grows_with_capacity() {
        let small = AggTable::with_capacity(1, 4).size_bytes();
        let large = AggTable::with_capacity(1, 4096).size_bytes();
        assert!(large > small * 100);
    }
}
