//! Hash set of join keys.

// Open-addressing invariant: every probe index is produced by
// `slot_for` (high bits of the hash shifted down to the power-of-two
// capacity) or by `& (capacity - 1)` wrap-around, so slot indexing is
// in-bounds by construction and probe arithmetic is bounded by the
// capacity (dev/test profiles carry overflow checks).
#![allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]

use crate::hash::{hash_i64, slot_for};

/// An open-addressing set of `i64` keys.
///
/// This is the data structure the **baseline** (data-centric / hybrid)
/// semijoin implementations build and probe; the SWOLE positional bitmap
/// (§ III-D) replaces it for FK semijoins. Keeping it minimal and fast keeps
/// the comparison honest.
#[derive(Debug, Clone)]
pub struct KeySet {
    keys: Vec<i64>,
    cap_log2: u32,
    len: usize,
}

const EMPTY: i64 = i64::MIN;

impl KeySet {
    /// Create a set expecting roughly `expected_keys` inserts.
    pub fn with_capacity(expected_keys: usize) -> KeySet {
        let cap_log2 = (expected_keys.max(4) * 2)
            .next_power_of_two()
            .trailing_zeros();
        KeySet {
            keys: vec![EMPTY; 1 << cap_log2],
            cap_log2,
            len: 0,
        }
    }

    /// Insert `key`; returns `true` if it was newly added.
    #[inline]
    pub fn insert(&mut self, key: i64) -> bool {
        debug_assert!(key != EMPTY, "reserved key value");
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut slot = slot_for(hash_i64(key), self.cap_log2);
        loop {
            let k = self.keys[slot];
            if k == key {
                return false;
            }
            if k == EMPTY {
                self.keys[slot] = key;
                self.len += 1;
                return true;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Membership test — the per-probe-tuple operation of a hash semijoin.
    #[inline]
    pub fn contains(&self, key: i64) -> bool {
        let mask = self.keys.len() - 1;
        let mut slot = slot_for(hash_i64(key), self.cap_log2);
        loop {
            let k = self.keys[slot];
            if k == key {
                return true;
            }
            if k == EMPTY {
                return false;
            }
            slot = (slot + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let old = std::mem::take(&mut self.keys);
        self.cap_log2 += 1;
        self.keys = vec![EMPTY; 1 << self.cap_log2];
        self.len = 0;
        for k in old {
            if k != EMPTY {
                self.insert(k);
            }
        }
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate payload bytes (for the cost model).
    pub fn size_bytes(&self) -> usize {
        self.keys.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = KeySet::with_capacity(4);
        assert!(s.insert(10));
        assert!(!s.insert(10));
        assert!(s.insert(-3));
        assert!(s.contains(10));
        assert!(s.contains(-3));
        assert!(!s.contains(11));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn growth_retains_members() {
        let n = if cfg!(miri) { 300i64 } else { 5000i64 };
        let mut s = KeySet::with_capacity(2);
        for k in 0..n {
            s.insert(k * 3);
        }
        assert_eq!(s.len(), n as usize);
        for k in 0..n {
            assert!(s.contains(k * 3));
            assert!(!s.contains(k * 3 + 1));
        }
    }

    #[test]
    fn empty_set() {
        let s = KeySet::with_capacity(8);
        assert!(s.is_empty());
        assert!(!s.contains(0));
    }
}
