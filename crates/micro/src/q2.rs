//! Microbenchmark Q2 (Fig. 9): group-by aggregation, key masking.
//!
//! ```sql
//! select r_c, sum(r_a * r_b) from R where r_x < [SEL] and r_y = 1 group by r_c
//! ```
//!
//! The group-key cardinality |r_c| sweeps {10, 1 K, 100 K, 10 M} across
//! Figs. 9a–9d; `SEL` sweeps 0–100.

use crate::RTable;
use swole_cost::comp::{simple_agg_comp, ArithOp};
use swole_cost::{choose::choose_agg, AggProfile, AggStrategy, CostParams};
use swole_ht::AggTable;
use swole_kernels::agg::Mul;
use swole_kernels::{groupby, predicate, selvec, tiles, TILE};

/// Evaluate the two-conjunct predicate into `cmp` for one tile.
#[inline]
fn prepass(r: &RTable, start: usize, len: usize, sel: i8, cmp: &mut [u8], tmp: &mut [u8]) {
    predicate::cmp_lt(&r.x[start..start + len], sel, &mut cmp[..len]);
    predicate::cmp_eq(&r.y[start..start + len], 1, &mut tmp[..len]);
    predicate::and_into(&mut cmp[..len], &tmp[..len]);
}

fn table_for(r: &RTable) -> AggTable {
    // Size the table from the key column's observed maximum (dense keys in
    // this workload); real systems would use catalog statistics.
    let card = r.c.iter().copied().max().unwrap_or(0) as usize + 1;
    AggTable::with_capacity(1, card)
}

/// Data-centric strategy: branch, then lookup for qualifying tuples only.
pub fn datacentric(r: &RTable, sel: i8) -> AggTable {
    let mut ht = table_for(r);
    let (x, y) = (&r.x[..], &r.y[..]);
    groupby::groupby_datacentric::<_, _, _, Mul>(
        &r.c,
        &r.a,
        &r.b,
        |j| x[j] < sel && y[j] == 1,
        &mut ht,
    );
    ht
}

/// Hybrid strategy: prepass + selection vector + gathered lookups.
pub fn hybrid(r: &RTable, sel: i8) -> AggTable {
    let mut ht = table_for(r);
    let mut cmp = [0u8; TILE];
    let mut tmp = [0u8; TILE];
    let mut idx = [0u32; TILE];
    for (start, len) in tiles(r.len()) {
        prepass(r, start, len, sel, &mut cmp, &mut tmp);
        let k = selvec::fill_nobranch(&cmp[..len], start as u32, &mut idx[..len]);
        groupby::groupby_gather::<_, _, _, Mul>(&r.c, &r.a, &r.b, &idx[..k], &mut ht);
    }
    ht
}

/// SWOLE value masking (Fig. 4 top): unconditional lookups of real keys,
/// masked values, valid-flag bookkeeping.
pub fn value_masking(r: &RTable, sel: i8) -> AggTable {
    let mut ht = table_for(r);
    let mut cmp = [0u8; TILE];
    let mut tmp = [0u8; TILE];
    for (start, len) in tiles(r.len()) {
        prepass(r, start, len, sel, &mut cmp, &mut tmp);
        groupby::groupby_value_masked::<_, _, _, Mul>(
            &r.c[start..start + len],
            &r.a[start..start + len],
            &r.b[start..start + len],
            &cmp[..len],
            &mut ht,
        );
    }
    ht
}

/// SWOLE key masking (Fig. 4 bottom): masked keys route filtered tuples to
/// the throwaway entry; values stay unmasked.
pub fn key_masking(r: &RTable, sel: i8) -> AggTable {
    let mut ht = table_for(r);
    let mut cmp = [0u8; TILE];
    let mut tmp = [0u8; TILE];
    let mut masked = [0i64; TILE];
    for (start, len) in tiles(r.len()) {
        prepass(r, start, len, sel, &mut cmp, &mut tmp);
        groupby::mask_keys(&r.c[start..start + len], &cmp[..len], &mut masked[..len]);
        groupby::groupby_key_masked::<_, _, Mul>(
            &masked[..len],
            &r.a[start..start + len],
            &r.b[start..start + len],
            &mut ht,
        );
    }
    ht
}

/// SWOLE with the cost model in the loop: returns the table and decision.
pub fn swole(
    r: &RTable,
    sel: i8,
    key_cardinality: usize,
    params: &CostParams,
) -> (AggTable, AggStrategy) {
    let profile = AggProfile {
        rows: r.len(),
        selectivity: (sel.clamp(0, 100) as f64) / 100.0,
        comp: simple_agg_comp(ArithOp::Mul),
        n_cols: 3, // key + two aggregate inputs
        group_keys: Some(key_cardinality),
        n_aggs: 1,
    };
    let choice = choose_agg(params, &profile);
    let ht = match choice.strategy {
        AggStrategy::Hybrid => hybrid(r, sel),
        AggStrategy::ValueMasking => value_masking(r, sel),
        AggStrategy::KeyMasking => key_masking(r, sel),
    };
    (ht, choice.strategy)
}

/// Order-independent checksum over the valid groups — what benches compare
/// so result verification never sorts a 10 M-group table inside the timed
/// region.
pub fn checksum(ht: &AggTable) -> (usize, i64) {
    let mut count = 0usize;
    let mut sum = 0i64;
    for (key, state, valid) in ht.iter() {
        if valid {
            count += 1;
            sum = sum.wrapping_add(key.wrapping_mul(31).wrapping_add(state[0]));
        }
    }
    (count, sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, MicroParams};
    use std::collections::BTreeMap;
    use swole_kernels::groupby::collect_groups;

    fn db(card: usize) -> crate::MicroDb {
        generate(MicroParams {
            r_rows: 20_000,
            s_rows: 10,
            r_c_cardinality: card,
            seed: 21,
        })
    }

    fn reference(r: &RTable, sel: i8) -> Vec<(i64, i64)> {
        let mut groups: BTreeMap<i64, i64> = BTreeMap::new();
        for j in 0..r.len() {
            if r.x[j] < sel && r.y[j] == 1 {
                *groups.entry(r.c[j] as i64).or_insert(0) += r.a[j] as i64 * r.b[j] as i64;
            }
        }
        groups.into_iter().collect()
    }

    #[test]
    fn all_strategies_agree_across_cardinalities() {
        for card in [10usize, 512, 4096] {
            let db = db(card);
            for sel in [0i8, 13, 50, 100] {
                let expected = reference(&db.r, sel);
                assert_eq!(collect_groups(&datacentric(&db.r, sel)), expected);
                assert_eq!(collect_groups(&hybrid(&db.r, sel)), expected);
                assert_eq!(collect_groups(&value_masking(&db.r, sel)), expected);
                assert_eq!(collect_groups(&key_masking(&db.r, sel)), expected);
            }
        }
    }

    #[test]
    fn swole_entry_matches_and_explains() {
        let db = db(64);
        let p = CostParams::default();
        let (ht, strat) = swole(&db.r, 60, 64, &p);
        assert_eq!(collect_groups(&ht), reference(&db.r, 60));
        // Small table at decent selectivity → a masking strategy (Fig. 9a).
        assert_ne!(strat, AggStrategy::Hybrid);
    }

    #[test]
    fn checksum_is_order_independent_and_valid_only() {
        let db = db(32);
        let a = checksum(&value_masking(&db.r, 40));
        let b = checksum(&key_masking(&db.r, 40));
        let c = checksum(&hybrid(&db.r, 40));
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert!(a.0 > 0);
    }

    #[test]
    fn zero_selectivity_produces_no_groups() {
        let db = db(32);
        assert_eq!(checksum(&key_masking(&db.r, 0)).0, 0);
        assert_eq!(checksum(&value_masking(&db.r, 0)).0, 0);
    }
}
