//! Microbenchmark Q3 (Fig. 10): repeated references, access merging.
//!
//! ```sql
//! select sum(r_x * [COL]) from R where r_x < [SEL] and r_y = 1
//! ```
//!
//! `COL` = `r_a` reuses one attribute (`r_x` appears in the predicate and
//! the aggregate — Fig. 10a); `COL` = `r_x` reuses both aggregate operands
//! (Fig. 10b).

// Indexed tile loops below deliberately mirror the paper's C kernels.
#![allow(clippy::needless_range_loop)]

use crate::RTable;
use swole_cost::CostParams;
use swole_kernels::agg::{self, Mul};
use swole_kernels::{predicate, selvec, tiles, TILE};

/// Which column substitutes `[COL]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Q3Col {
    /// `sum(r_x * r_a)` — one shared attribute (Fig. 10a).
    A,
    /// `sum(r_x * r_x)` — both operands shared (Fig. 10b).
    X,
}

#[inline]
fn prepass(r: &RTable, start: usize, len: usize, sel: i8, cmp: &mut [u8], tmp: &mut [u8]) {
    predicate::cmp_lt(&r.x[start..start + len], sel, &mut cmp[..len]);
    predicate::cmp_eq(&r.y[start..start + len], 1, &mut tmp[..len]);
    predicate::and_into(&mut cmp[..len], &tmp[..len]);
}

/// Data-centric strategy.
pub fn datacentric(r: &RTable, col: Q3Col, sel: i8) -> i64 {
    let (x, y) = (&r.x[..], &r.y[..]);
    match col {
        Q3Col::A => agg::sum_op_datacentric::<_, _, Mul>(&r.x, &r.a, |j| x[j] < sel && y[j] == 1),
        Q3Col::X => agg::sum_op_datacentric::<_, _, Mul>(&r.x, &r.x, |j| x[j] < sel && y[j] == 1),
    }
}

/// Hybrid strategy (selection vector, conditional re-read of `r_x`).
pub fn hybrid(r: &RTable, col: Q3Col, sel: i8) -> i64 {
    let mut cmp = [0u8; TILE];
    let mut tmp = [0u8; TILE];
    let mut idx = [0u32; TILE];
    let mut sum = 0i64;
    for (start, len) in tiles(r.len()) {
        prepass(r, start, len, sel, &mut cmp, &mut tmp);
        let k = selvec::fill_nobranch(&cmp[..len], start as u32, &mut idx[..len]);
        sum += match col {
            Q3Col::A => agg::sum_op_gather::<_, _, Mul>(&r.x, &r.a, &idx[..k]),
            Q3Col::X => agg::sum_op_gather::<_, _, Mul>(&r.x, &r.x, &idx[..k]),
        };
    }
    sum
}

/// SWOLE value masking **without** merging: sequential, but `r_x` is still
/// accessed twice (once by the predicate, once by the aggregate) — the
/// Fig. 5-top baseline that access merging improves on.
pub fn value_masking(r: &RTable, col: Q3Col, sel: i8) -> i64 {
    let mut cmp = [0u8; TILE];
    let mut tmp = [0u8; TILE];
    let mut sum = 0i64;
    for (start, len) in tiles(r.len()) {
        prepass(r, start, len, sel, &mut cmp, &mut tmp);
        let xs = &r.x[start..start + len];
        sum += match col {
            Q3Col::A => {
                let av = &r.a[start..start + len];
                // sum += (x * a) * cmp — x re-read in the aggregation loop.
                let mut s = 0i64;
                for j in 0..len {
                    s += (xs[j] as i64 * av[j] as i64) * cmp[j] as i64;
                }
                s
            }
            Q3Col::X => {
                let mut s = 0i64;
                for j in 0..len {
                    s += (xs[j] as i64 * xs[j] as i64) * cmp[j] as i64;
                }
                s
            }
        };
    }
    sum
}

/// SWOLE access merging (§ III-C, Fig. 5 bottom): fuse the predicate result
/// into the value of `r_x` so each attribute is read exactly once.
pub fn access_merging(r: &RTable, col: Q3Col, sel: i8) -> i64 {
    let mut cmp = [0u8; TILE];
    let mut tmp8 = [0u8; TILE];
    let mut tmp = [0i64; TILE];
    let mut sum = 0i64;
    for (start, len) in tiles(r.len()) {
        // The r_y = 1 conjunct keeps a (tiny) prepass; the r_x comparison is
        // fused into the masked value.
        predicate::cmp_eq(&r.y[start..start + len], 1, &mut cmp[..len]);
        predicate::cmp_lt(&r.x[start..start + len], sel, &mut tmp8[..len]);
        predicate::and_into(&mut cmp[..len], &tmp8[..len]);
        agg::mask_values(&r.x[start..start + len], &cmp[..len], &mut tmp[..len]);
        sum += match col {
            Q3Col::A => agg::sum_product_tmp(&r.a[start..start + len], &tmp[..len]),
            Q3Col::X => agg::sum_square_tmp(&tmp[..len]),
        };
    }
    sum
}

/// Value masking with **full-column** (untiled) intermediate
/// materialization: the `cmp` array covers all of R, so the shared
/// attribute streams from memory twice — once for the predicate pass and
/// once for the aggregation pass. With TILE-sized intermediates both passes
/// hit cache and the redundant access is nearly free; untiled execution
/// exposes the redundant-stream cost that access merging removes (the
/// regime where the paper's 1.9× shows up). Measured in `ablations`.
pub fn value_masking_untiled(r: &RTable, col: Q3Col, sel: i8) -> i64 {
    let n = r.len();
    let mut cmp = vec![0u8; n];
    let mut tmp = vec![0u8; n];
    predicate::cmp_lt(&r.x, sel, &mut cmp);
    predicate::cmp_eq(&r.y, 1, &mut tmp);
    predicate::and_into(&mut cmp, &tmp);
    let mut sum = 0i64;
    match col {
        Q3Col::A => {
            for j in 0..n {
                sum += (r.x[j] as i64 * r.a[j] as i64) * cmp[j] as i64;
            }
        }
        Q3Col::X => {
            for j in 0..n {
                sum += (r.x[j] as i64 * r.x[j] as i64) * cmp[j] as i64;
            }
        }
    }
    sum
}

/// Access merging with full-column (untiled) intermediates — the merged
/// counterpart of [`value_masking_untiled`]: `r_x` streams exactly once.
pub fn access_merging_untiled(r: &RTable, col: Q3Col, sel: i8) -> i64 {
    let n = r.len();
    let mut cmp = vec![0u8; n];
    let mut tmp8 = vec![0u8; n];
    predicate::cmp_eq(&r.y, 1, &mut cmp);
    predicate::cmp_lt(&r.x, sel, &mut tmp8);
    predicate::and_into(&mut cmp, &tmp8);
    let mut tmp = vec![0i64; n];
    agg::mask_values(&r.x, &cmp, &mut tmp);
    match col {
        Q3Col::A => agg::sum_product_tmp(&r.a, &tmp),
        Q3Col::X => agg::sum_square_tmp(&tmp),
    }
}

/// SWOLE entry: access merging is "always better if it can be applied"
/// (Fig. 2) and Q3 always has the repeated reference, so no cost decision
/// is needed here.
pub fn swole(r: &RTable, col: Q3Col, sel: i8, _params: &CostParams) -> i64 {
    access_merging(r, col, sel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, MicroParams};

    fn db() -> crate::MicroDb {
        generate(MicroParams {
            r_rows: 12_345,
            s_rows: 10,
            r_c_cardinality: 4,
            seed: 31,
        })
    }

    fn reference(r: &RTable, col: Q3Col, sel: i8) -> i64 {
        (0..r.len())
            .filter(|&j| r.x[j] < sel && r.y[j] == 1)
            .map(|j| {
                let other = match col {
                    Q3Col::A => r.a[j] as i64,
                    Q3Col::X => r.x[j] as i64,
                };
                r.x[j] as i64 * other
            })
            .sum()
    }

    #[test]
    fn strategies_agree_both_configs() {
        let db = db();
        for col in [Q3Col::A, Q3Col::X] {
            for sel in [0i8, 13, 50, 99, 100] {
                let expected = reference(&db.r, col, sel);
                assert_eq!(datacentric(&db.r, col, sel), expected, "{col:?}/{sel}");
                assert_eq!(hybrid(&db.r, col, sel), expected, "{col:?}/{sel}");
                assert_eq!(value_masking(&db.r, col, sel), expected, "{col:?}/{sel}");
                assert_eq!(access_merging(&db.r, col, sel), expected, "{col:?}/{sel}");
                assert_eq!(
                    swole(&db.r, col, sel, &CostParams::default()),
                    expected,
                    "{col:?}/{sel}"
                );
                assert_eq!(value_masking_untiled(&db.r, col, sel), expected);
                assert_eq!(access_merging_untiled(&db.r, col, sel), expected);
            }
        }
    }
}
