//! Microbenchmark Q4 (Fig. 11): FK join / semijoin, positional bitmaps.
//!
//! ```sql
//! select sum(r_a * r_b) from R, S
//! where r_fk = s_pk and r_x < [SEL1] and s_x < [SEL2]
//! ```
//!
//! `s_pk` is unique, so the equijoin reduces to a semijoin for aggregation
//! purposes. Fig. 11 sweeps one selectivity with the other fixed at 10 % /
//! 90 % (|S| = 1 M in the paper).

use crate::{MicroDb, RTable, STable};
use swole_bitmap::PositionalBitmap;
use swole_cost::{
    choose::choose_semijoin, BitmapBuild, CostParams, SemiJoinProfile, SemiJoinStrategy,
};
use swole_ht::KeySet;
use swole_kernels::agg::Mul;
use swole_kernels::{join, predicate, selvec, tiles, TILE};

/// Data-centric strategy: branchy build of a hash key set over S, branchy
/// probe per R tuple.
pub fn datacentric(r: &RTable, s: &STable, sel1: i8, sel2: i8) -> i64 {
    let s_keys: Vec<u32> = (0..s.len() as u32).collect();
    let sx = &s.x[..];
    let set = join::build_keyset_datacentric(&s_keys, |j| sx[j] < sel2);
    let rx = &r.x[..];
    join::semijoin_sum_hash_datacentric::<_, _, _, Mul>(&r.fk, &r.a, &r.b, |j| rx[j] < sel1, &set)
}

/// Hybrid strategy: prepass + selection vectors on both sides, hash probes
/// for selected R tuples.
pub fn hybrid(r: &RTable, s: &STable, sel1: i8, sel2: i8) -> i64 {
    // Build side.
    let mut set = KeySet::with_capacity(s.len() / 2 + 4);
    let mut cmp = [0u8; TILE];
    let mut idx = [0u32; TILE];
    let s_keys: Vec<u32> = (0..s.len() as u32).collect();
    for (start, len) in tiles(s.len()) {
        predicate::cmp_lt(&s.x[start..start + len], sel2, &mut cmp[..len]);
        let k = selvec::fill_nobranch(&cmp[..len], start as u32, &mut idx[..len]);
        join::build_keyset_gather(&s_keys, &idx[..k], &mut set);
    }
    // Probe side.
    let mut sum = 0i64;
    for (start, len) in tiles(r.len()) {
        predicate::cmp_lt(&r.x[start..start + len], sel1, &mut cmp[..len]);
        let k = selvec::fill_nobranch(&cmp[..len], start as u32, &mut idx[..len]);
        sum += join::semijoin_sum_hash_gather::<_, _, _, Mul>(&r.fk, &r.a, &r.b, &idx[..k], &set);
    }
    sum
}

/// Build the positional bitmap over S with the requested variant (§ III-D).
pub fn build_bitmap(s: &STable, sel2: i8, build: BitmapBuild) -> PositionalBitmap {
    match build {
        BitmapBuild::Unconditional => {
            let mut cmp = vec![0u8; s.len()];
            predicate::cmp_lt(&s.x, sel2, &mut cmp);
            PositionalBitmap::from_predicate_bytes(&cmp)
        }
        BitmapBuild::SelectionVector => {
            let mut cmp = [0u8; TILE];
            let mut idx = Vec::new();
            for (start, len) in tiles(s.len()) {
                predicate::cmp_lt(&s.x[start..start + len], sel2, &mut cmp[..len]);
                selvec::append_nobranch(&cmp[..len], start as u32, &mut idx);
            }
            PositionalBitmap::from_selection(s.len(), &idx)
        }
    }
}

/// SWOLE positional-bitmap semijoin with a fully masked probe: sequential
/// scan of R, bitmap bit fetched through the FK index, predicate and bit
/// multiplied into the aggregate.
pub fn bitmap_masked(db: &MicroDb, sel1: i8, sel2: i8, build: BitmapBuild) -> i64 {
    let bm = build_bitmap(&db.s, sel2, build);
    let r = &db.r;
    let pos = db.fk_index.positions();
    let mut cmp = [0u8; TILE];
    let mut sum = 0i64;
    for (start, len) in tiles(r.len()) {
        predicate::cmp_lt(&r.x[start..start + len], sel1, &mut cmp[..len]);
        sum += join::semijoin_sum_bitmap_masked::<_, _, Mul>(
            &pos[start..start + len],
            &r.a[start..start + len],
            &r.b[start..start + len],
            &cmp[..len],
            &bm,
        );
    }
    sum
}

/// SWOLE bitmap semijoin probing through an R-side selection vector (for
/// very selective R predicates).
pub fn bitmap_gather(db: &MicroDb, sel1: i8, sel2: i8, build: BitmapBuild) -> i64 {
    let bm = build_bitmap(&db.s, sel2, build);
    let r = &db.r;
    let pos = db.fk_index.positions();
    let mut cmp = [0u8; TILE];
    let mut idx = [0u32; TILE];
    let mut sum = 0i64;
    for (start, len) in tiles(r.len()) {
        predicate::cmp_lt(&r.x[start..start + len], sel1, &mut cmp[..len]);
        let k = selvec::fill_nobranch(&cmp[..len], start as u32, &mut idx[..len]);
        sum += join::semijoin_sum_bitmap_gather::<_, _, Mul>(pos, &r.a, &r.b, &idx[..k], &bm);
    }
    sum
}

/// SWOLE entry: the chooser picks the bitmap build variant from the S-side
/// selectivity (Fig. 2 says the bitmap itself is always better when the FK
/// index exists); the probe uses the masked form unless the R predicate is
/// very selective.
pub fn swole(db: &MicroDb, sel1: i8, sel2: i8, params: &CostParams) -> (i64, SemiJoinStrategy) {
    let choice = choose_semijoin(
        params,
        &SemiJoinProfile {
            build_rows: db.s.len(),
            build_selectivity: (sel2.clamp(0, 100) as f64) / 100.0,
            has_fk_index: true,
        },
    );
    let result = match choice.strategy {
        SemiJoinStrategy::Hash => hybrid(&db.r, &db.s, sel1, sel2),
        SemiJoinStrategy::PositionalBitmap(build) => {
            // Same VM-style decision on the probe side.
            if (sel1 as f64) / 100.0 < 0.125 {
                bitmap_gather(db, sel1, sel2, build)
            } else {
                bitmap_masked(db, sel1, sel2, build)
            }
        }
    };
    (result, choice.strategy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, MicroParams};

    fn db() -> MicroDb {
        generate(MicroParams {
            r_rows: 15_000,
            s_rows: 512,
            r_c_cardinality: 4,
            seed: 41,
        })
    }

    fn reference(db: &MicroDb, sel1: i8, sel2: i8) -> i64 {
        let r = &db.r;
        (0..r.len())
            .filter(|&j| r.x[j] < sel1 && db.s.x[r.fk[j] as usize] < sel2)
            .map(|j| r.a[j] as i64 * r.b[j] as i64)
            .sum()
    }

    #[test]
    fn all_strategies_agree() {
        let db = db();
        for (sel1, sel2) in [(10, 90), (90, 10), (50, 50), (0, 50), (50, 0), (100, 100)] {
            let expected = reference(&db, sel1, sel2);
            assert_eq!(datacentric(&db.r, &db.s, sel1, sel2), expected);
            assert_eq!(hybrid(&db.r, &db.s, sel1, sel2), expected);
            for build in [BitmapBuild::Unconditional, BitmapBuild::SelectionVector] {
                assert_eq!(bitmap_masked(&db, sel1, sel2, build), expected);
                assert_eq!(bitmap_gather(&db, sel1, sel2, build), expected);
            }
            let (res, strat) = swole(&db, sel1, sel2, &CostParams::default());
            assert_eq!(res, expected);
            assert!(matches!(strat, SemiJoinStrategy::PositionalBitmap(_)));
        }
    }

    #[test]
    fn build_variants_produce_identical_bitmaps() {
        let db = db();
        for sel2 in [0i8, 13, 77, 100] {
            let a = build_bitmap(&db.s, sel2, BitmapBuild::Unconditional);
            let b = build_bitmap(&db.s, sel2, BitmapBuild::SelectionVector);
            assert_eq!(a, b, "sel2={sel2}");
        }
    }
}
