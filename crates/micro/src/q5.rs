//! Microbenchmark Q5 (Fig. 12): groupjoin, eager aggregation.
//!
//! ```sql
//! select r_fk, sum(r_a * r_b) from R, S
//! where r_fk = s_pk and s_x < [SEL] group by r_fk
//! ```
//!
//! No predicate on R — "the worst case for our approach; that is, we will
//! need to unconditionally aggregate all tuples in R". |S| ∈ {1 K, 1 M}.

use crate::{RTable, STable};
use swole_cost::comp::{simple_agg_comp, ArithOp};
use swole_cost::{choose::choose_groupjoin, CostParams, GroupJoinProfile, GroupJoinStrategy};
use swole_ht::AggTable;
use swole_kernels::agg::Mul;
use swole_kernels::{join, predicate, selvec, tiles, TILE};

/// Data-centric groupjoin: branchy filtered build over S, per-R-tuple
/// lookup with a match branch.
pub fn groupjoin_datacentric(r: &RTable, s: &STable, sel: i8) -> AggTable {
    let mut ht = AggTable::with_capacity(1, s.len() / 2 + 4);
    for (pk, &sx) in s.x.iter().enumerate() {
        if sx < sel {
            ht.entry(pk as i64);
        }
    }
    join::groupjoin_probe::<_, _, _, Mul>(&r.fk, &r.a, &r.b, &mut ht);
    ht
}

/// Hybrid groupjoin: prepass + selection vector for the build, identical
/// probe (the probe has no predicate to vectorize).
pub fn groupjoin_hybrid(r: &RTable, s: &STable, sel: i8) -> AggTable {
    let mut ht = AggTable::with_capacity(1, s.len() / 2 + 4);
    let mut cmp = [0u8; TILE];
    let mut idx = [0u32; TILE];
    for (start, len) in tiles(s.len()) {
        predicate::cmp_lt(&s.x[start..start + len], sel, &mut cmp[..len]);
        let k = selvec::fill_nobranch(&cmp[..len], start as u32, &mut idx[..len]);
        for &pk in &idx[..k] {
            ht.entry(pk as i64);
        }
    }
    join::groupjoin_probe::<_, _, _, Mul>(&r.fk, &r.a, &r.b, &mut ht);
    ht
}

/// SWOLE eager aggregation (§ III-E): unconditionally aggregate all of R
/// grouped by `r_fk`, then delete the S keys failing the (inverted)
/// predicate.
pub fn eager_aggregation(r: &RTable, s: &STable, sel: i8) -> AggTable {
    let mut ht = AggTable::with_capacity(1, s.len());
    join::eager_aggregate::<_, _, _, Mul>(&r.fk, &r.a, &r.b, &mut ht);
    let s_keys: Vec<u32> = (0..s.len() as u32).collect();
    let mut inv = [0u8; TILE];
    for (start, len) in tiles(s.len()) {
        // Inverted predicate: delete keys with s_x >= sel.
        predicate::cmp_ge(&s.x[start..start + len], sel, &mut inv[..len]);
        join::delete_nonqualifying(&s_keys[start..start + len], &inv[..len], &mut ht);
    }
    ht
}

/// SWOLE entry: the groupjoin cost model (§ III-E) picks between the
/// traditional groupjoin and eager aggregation.
pub fn swole(
    r: &RTable,
    s: &STable,
    sel: i8,
    params: &CostParams,
) -> (AggTable, GroupJoinStrategy) {
    let s_sel = (sel.clamp(0, 100) as f64) / 100.0;
    let choice = choose_groupjoin(
        params,
        &GroupJoinProfile {
            r_rows: r.len(),
            r_selectivity: 1.0, // no predicate on R
            s_rows: s.len(),
            s_selectivity: s_sel,
            join_match_prob: s_sel, // uniform FKs: match prob = σ_S
            group_keys: s.len(),
            comp: simple_agg_comp(ArithOp::Mul),
            n_aggs: 1,
        },
    );
    let ht = match choice.strategy {
        GroupJoinStrategy::GroupJoin => groupjoin_hybrid(r, s, sel),
        GroupJoinStrategy::EagerAggregation => eager_aggregation(r, s, sel),
    };
    (ht, choice.strategy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, MicroParams};
    use std::collections::BTreeMap;
    use swole_kernels::groupby::collect_groups;

    fn db(s_rows: usize) -> crate::MicroDb {
        generate(MicroParams {
            r_rows: 20_000,
            s_rows,
            r_c_cardinality: 4,
            seed: 51,
        })
    }

    fn reference(r: &RTable, s: &STable, sel: i8) -> Vec<(i64, i64)> {
        let mut groups: BTreeMap<i64, i64> = BTreeMap::new();
        for j in 0..r.len() {
            if s.x[r.fk[j] as usize] < sel {
                *groups.entry(r.fk[j] as i64).or_insert(0) += r.a[j] as i64 * r.b[j] as i64;
            }
        }
        groups.into_iter().collect()
    }

    #[test]
    fn all_strategies_agree() {
        for s_rows in [64usize, 1024] {
            let db = db(s_rows);
            for sel in [0i8, 13, 50, 100] {
                let expected = reference(&db.r, &db.s, sel);
                assert_eq!(
                    collect_groups(&groupjoin_datacentric(&db.r, &db.s, sel)),
                    expected,
                    "dc |S|={s_rows} sel={sel}"
                );
                assert_eq!(
                    collect_groups(&groupjoin_hybrid(&db.r, &db.s, sel)),
                    expected,
                    "hy |S|={s_rows} sel={sel}"
                );
                assert_eq!(
                    collect_groups(&eager_aggregation(&db.r, &db.s, sel)),
                    expected,
                    "ea |S|={s_rows} sel={sel}"
                );
                let (ht, _) = swole(&db.r, &db.s, sel, &CostParams::default());
                assert_eq!(
                    collect_groups(&ht),
                    expected,
                    "swole |S|={s_rows} sel={sel}"
                );
            }
        }
    }

    #[test]
    fn groupjoin_marks_all_surviving_entries_valid() {
        // Keys with zero matching R rows remain in the table with a zero
        // state but no valid flag — collect_groups excludes them, matching
        // SQL inner-join semantics where unmatched S keys produce no row.
        let db = db(256);
        let ht = groupjoin_datacentric(&db.r, &db.s, 50);
        let groups = collect_groups(&ht);
        let expected = reference(&db.r, &db.s, 50);
        assert_eq!(groups, expected);
    }

    #[test]
    fn swole_picks_eager_for_small_s() {
        let db = db(64);
        let (_, strat) = swole(&db.r, &db.s, 50, &CostParams::default());
        assert_eq!(strat, GroupJoinStrategy::EagerAggregation, "Fig. 12a");
    }
}
