//! Microbenchmark Q1 (Fig. 8): scalar aggregation, value masking.
//!
//! ```sql
//! select sum(r_a [OP] r_b) from R where r_x < [SEL] and r_y = 1
//! ```
//!
//! `OP` ∈ {`*` (memory-bound, Fig. 8a), `/` (compute-bound, Fig. 8b)};
//! `SEL` sweeps 0–100 along the x-axis.

use crate::RTable;
use swole_cost::comp::{simple_agg_comp, ArithOp};
use swole_cost::{choose::choose_agg, AggProfile, AggStrategy, CostParams};
use swole_kernels::agg::{self, BinOp, Div, Mul};
use swole_kernels::{predicate, selvec, tiles, TILE};

/// Data-centric strategy: single loop, branch per tuple.
pub fn datacentric<O: BinOp>(r: &RTable, sel: i8) -> i64 {
    let (x, y) = (&r.x[..], &r.y[..]);
    agg::sum_op_datacentric::<_, _, O>(&r.a, &r.b, |j| x[j] < sel && y[j] == 1)
}

/// Hybrid strategy: tiled prepass over both conjuncts, no-branch selection
/// vector, gather aggregation.
pub fn hybrid<O: BinOp>(r: &RTable, sel: i8) -> i64 {
    let mut cmp = [0u8; TILE];
    let mut cmp2 = [0u8; TILE];
    let mut idx = [0u32; TILE];
    let mut sum = 0i64;
    for (start, len) in tiles(r.len()) {
        predicate::cmp_lt(&r.x[start..start + len], sel, &mut cmp[..len]);
        predicate::cmp_eq(&r.y[start..start + len], 1, &mut cmp2[..len]);
        predicate::and_into(&mut cmp[..len], &cmp2[..len]);
        let k = selvec::fill_nobranch(&cmp[..len], start as u32, &mut idx[..len]);
        sum += agg::sum_op_gather::<_, _, O>(&r.a, &r.b, &idx[..k]);
    }
    sum
}

/// SWOLE value masking (§ III-A): unconditional sequential aggregation with
/// masked results.
pub fn value_masking<O: BinOp>(r: &RTable, sel: i8) -> i64 {
    let mut cmp = [0u8; TILE];
    let mut cmp2 = [0u8; TILE];
    let mut sum = 0i64;
    for (start, len) in tiles(r.len()) {
        predicate::cmp_lt(&r.x[start..start + len], sel, &mut cmp[..len]);
        predicate::cmp_eq(&r.y[start..start + len], 1, &mut cmp2[..len]);
        predicate::and_into(&mut cmp[..len], &cmp2[..len]);
        sum += agg::sum_op_masked::<_, _, O>(
            &r.a[start..start + len],
            &r.b[start..start + len],
            &cmp[..len],
        );
    }
    sum
}

/// ROF (relaxed operator fusion, § II-A.3): fill a **full** selection
/// vector across tile boundaries before aggregating, so the aggregation
/// loop (almost always) runs a fixed number of iterations. The paper
/// excluded ROF from its evaluation (its relative runtimes matched or
/// trailed hybrid, and the testbed lacked AVX2); it is included here for
/// completeness and measured in the `ablations` bench.
pub fn rof<O: BinOp>(r: &RTable, sel: i8) -> i64 {
    let mut cmp = [0u8; TILE];
    let mut cmp2 = [0u8; TILE];
    let mut idx: Vec<u32> = Vec::with_capacity(2 * TILE);
    let mut cursor = 0usize;
    let mut sum = 0i64;
    for (start, len) in tiles(r.len()) {
        predicate::cmp_lt(&r.x[start..start + len], sel, &mut cmp[..len]);
        predicate::cmp_eq(&r.y[start..start + len], 1, &mut cmp2[..len]);
        predicate::and_into(&mut cmp[..len], &cmp2[..len]);
        selvec::append_nobranch(&cmp[..len], start as u32, &mut idx);
        // Drain in full-TILE chunks: fixed-trip-count aggregation loops.
        while idx.len() - cursor >= TILE {
            sum += agg::sum_op_gather::<_, _, O>(&r.a, &r.b, &idx[cursor..cursor + TILE]);
            cursor += TILE;
        }
        if cursor >= TILE {
            idx.drain(..cursor);
            cursor = 0;
        }
    }
    sum + agg::sum_op_gather::<_, _, O>(&r.a, &r.b, &idx[cursor..])
}

/// SWOLE with the cost model in the loop: profile the query, let the
/// chooser pick, run the winner. Returns the result and the decision.
pub fn swole<O: BinOp>(r: &RTable, sel: i8, params: &CostParams) -> (i64, AggStrategy) {
    let profile = AggProfile {
        rows: r.len(),
        selectivity: (sel.clamp(0, 100) as f64) / 100.0,
        comp: simple_agg_comp(if O::COMPUTE_BOUND {
            ArithOp::Div
        } else {
            ArithOp::Mul
        }),
        n_cols: 2,
        group_keys: None,
        n_aggs: 1,
    };
    let choice = choose_agg(params, &profile);
    let result = match choice.strategy {
        AggStrategy::ValueMasking => value_masking::<O>(r, sel),
        // Key masking is inapplicable without a group key; the chooser
        // never returns it for `group_keys: None`.
        AggStrategy::Hybrid | AggStrategy::KeyMasking => hybrid::<O>(r, sel),
    };
    (result, choice.strategy)
}

/// Convenience monomorphizations for benches.
pub fn datacentric_mul(r: &RTable, sel: i8) -> i64 {
    datacentric::<Mul>(r, sel)
}
/// See [`datacentric_mul`].
pub fn hybrid_mul(r: &RTable, sel: i8) -> i64 {
    hybrid::<Mul>(r, sel)
}
/// See [`datacentric_mul`].
pub fn value_masking_mul(r: &RTable, sel: i8) -> i64 {
    value_masking::<Mul>(r, sel)
}
/// See [`datacentric_mul`].
pub fn datacentric_div(r: &RTable, sel: i8) -> i64 {
    datacentric::<Div>(r, sel)
}
/// See [`datacentric_mul`].
pub fn hybrid_div(r: &RTable, sel: i8) -> i64 {
    hybrid::<Div>(r, sel)
}
/// See [`datacentric_mul`].
pub fn value_masking_div(r: &RTable, sel: i8) -> i64 {
    value_masking::<Div>(r, sel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, MicroParams};

    fn db() -> crate::MicroDb {
        generate(MicroParams {
            r_rows: 10_000,
            s_rows: 100,
            r_c_cardinality: 16,
            seed: 11,
        })
    }

    fn reference<O: BinOp>(r: &RTable, sel: i8) -> i64 {
        (0..r.len())
            .filter(|&j| r.x[j] < sel && r.y[j] == 1)
            .map(|j| O::apply(r.a[j] as i64, r.b[j] as i64))
            .sum()
    }

    #[test]
    fn strategies_agree_mul() {
        let db = db();
        for sel in [0i8, 1, 13, 50, 99, 100] {
            let expected = reference::<Mul>(&db.r, sel);
            assert_eq!(datacentric::<Mul>(&db.r, sel), expected, "dc sel={sel}");
            assert_eq!(hybrid::<Mul>(&db.r, sel), expected, "hy sel={sel}");
            assert_eq!(value_masking::<Mul>(&db.r, sel), expected, "vm sel={sel}");
        }
    }

    #[test]
    fn strategies_agree_div() {
        let db = db();
        for sel in [0i8, 25, 75, 100] {
            let expected = reference::<Div>(&db.r, sel);
            assert_eq!(datacentric::<Div>(&db.r, sel), expected);
            assert_eq!(hybrid::<Div>(&db.r, sel), expected);
            assert_eq!(value_masking::<Div>(&db.r, sel), expected);
        }
    }

    #[test]
    fn rof_matches_reference() {
        let db = db();
        for sel in [0i8, 13, 50, 99, 100] {
            assert_eq!(
                rof::<Mul>(&db.r, sel),
                reference::<Mul>(&db.r, sel),
                "sel={sel}"
            );
            assert_eq!(
                rof::<Div>(&db.r, sel),
                reference::<Div>(&db.r, sel),
                "sel={sel}"
            );
        }
    }

    #[test]
    fn swole_entry_matches_and_picks_sensibly() {
        let db = db();
        let p = CostParams::default();
        let (res, strat) = swole::<Mul>(&db.r, 50, &p);
        assert_eq!(res, reference::<Mul>(&db.r, 50));
        assert_eq!(strat, AggStrategy::ValueMasking, "Fig. 8a mid-selectivity");
        let (res, strat) = swole::<Div>(&db.r, 50, &p);
        assert_eq!(res, reference::<Div>(&db.r, 50));
        assert_eq!(strat, AggStrategy::Hybrid, "Fig. 8b compute-bound");
    }

    #[test]
    fn empty_table() {
        let empty = RTable {
            a: vec![],
            b: vec![],
            c: vec![],
            x: vec![],
            y: vec![],
            fk: vec![],
        };
        assert_eq!(datacentric::<Mul>(&empty, 50), 0);
        assert_eq!(hybrid::<Mul>(&empty, 50), 0);
        assert_eq!(value_masking::<Mul>(&empty, 50), 0);
    }
}
