//! # swole-micro — the paper's microbenchmark (§ IV-B, Fig. 7)
//!
//! Schema (Fig. 7a, reconstructed — see DESIGN.md § 3 for the documented
//! assumptions):
//!
//! * `R` (100 M rows in the paper; configurable here): value columns
//!   `r_a`, `r_b`; predicate columns `r_x` (uniform `[0, 100)`, so
//!   `r_x < SEL` selects `SEL`%) and `r_y` (constant 1 — the `r_y = 1`
//!   conjunct forces a second predicate-column read without changing
//!   selectivity); group key `r_c` with cardinality ∈ {10, 1 K, 100 K,
//!   10 M}; foreign key `r_fk` into `S`.
//! * `S` (1 K or 1 M rows): dense primary key `s_pk = 0..|S|` and predicate
//!   column `s_x` (uniform `[0, 100)`).
//!
//! All values are uniform — "the worst case for operations that use a hash
//! table ... a lookup in a large hash table with uniformly distributed
//! values will almost certainly result in a cache miss".
//!
//! Queries (Fig. 7b) each exist in every applicable strategy:
//!
//! | query | shape | figure | strategies |
//! |-------|-------|--------|------------|
//! | [`q1`] | scalar agg, `OP` ∈ {`*`, `/`} | Fig. 8 | data-centric, hybrid, value masking |
//! | [`q2`] | group-by agg, \|r_c\| swept | Fig. 9 | + key masking |
//! | [`q3`] | repeated references | Fig. 10 | + access merging |
//! | [`q4`] | FK join, both selectivities swept | Fig. 11 | data-centric, hybrid, positional bitmap |
//! | [`q5`] | groupjoin | Fig. 12 | data-centric, hybrid, eager aggregation |
//!
//! Every query also has a `*_swole` entry point that consults the
//! `swole-cost` chooser, returning the decision with the result.

#![warn(missing_docs)]

pub mod q1;
pub mod q2;
pub mod q3;
pub mod q4;
pub mod q5;
mod schema;

pub use schema::{generate, MicroDb, MicroParams, RTable, STable};
