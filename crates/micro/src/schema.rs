//! Microbenchmark schema and generator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use swole_storage::FkIndex;

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct MicroParams {
    /// Rows in `R` (paper: 100 M).
    pub r_rows: usize,
    /// Rows in `S` (paper: 1 K or 1 M).
    pub s_rows: usize,
    /// Cardinality of the group key `r_c` (paper: 10, 1 K, 100 K, 10 M).
    pub r_c_cardinality: usize,
    /// RNG seed — generation is fully deterministic per seed.
    pub seed: u64,
}

impl Default for MicroParams {
    fn default() -> MicroParams {
        MicroParams {
            r_rows: 1 << 20,
            s_rows: 1 << 10,
            r_c_cardinality: 1 << 10,
            seed: 0x5301E,
        }
    }
}

impl MicroParams {
    /// Read `SWOLE_R_ROWS` / `SWOLE_S_ROWS` from the environment, falling
    /// back to the defaults, so benches can scale toward the paper's sizes
    /// without recompiling.
    pub fn from_env() -> MicroParams {
        let mut p = MicroParams::default();
        if let Some(n) = read_env("SWOLE_R_ROWS") {
            p.r_rows = n;
        }
        if let Some(n) = read_env("SWOLE_S_ROWS") {
            p.s_rows = n;
        }
        p
    }
}

fn read_env(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.parse().ok()
}

/// The fact table `R` of Fig. 7a. Columns are plain vectors so the
/// hand-coded strategies borrow slices directly, exactly like the paper's
/// hand-written C.
#[derive(Debug, Clone)]
pub struct RTable {
    /// Aggregation input, uniform `[1, 50]` (never zero: masked strategies
    /// evaluate `a / b` for every tuple).
    pub a: Vec<i32>,
    /// Aggregation input, uniform `[1, 50]`.
    pub b: Vec<i32>,
    /// Group-by key, uniform `[0, r_c_cardinality)`.
    pub c: Vec<i32>,
    /// Selectivity column, uniform `[0, 100)`.
    pub x: Vec<i8>,
    /// Constant 1 (the `r_y = 1` conjunct).
    pub y: Vec<i8>,
    /// Foreign key into `S`, uniform — also the positional FK index, since
    /// `s_pk` is dense.
    pub fk: Vec<u32>,
}

impl RTable {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// The dimension table `S` of Fig. 7a. `s_pk` is the dense row id.
#[derive(Debug, Clone)]
pub struct STable {
    /// Predicate column, uniform `[0, 100)`.
    pub x: Vec<i8>,
}

impl STable {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// A generated microbenchmark database.
#[derive(Debug, Clone)]
pub struct MicroDb {
    /// The fact table.
    pub r: RTable,
    /// The dimension table.
    pub s: STable,
    /// The foreign-key (positional) index `R.fk → S` position — required by
    /// referential integrity, exploited by positional bitmaps (§ III-D).
    pub fk_index: FkIndex,
    /// The parameters that generated this database.
    pub params: MicroParams,
}

/// Generate a microbenchmark database.
pub fn generate(params: MicroParams) -> MicroDb {
    assert!(params.s_rows > 0, "S must not be empty (FK target)");
    assert!(params.r_c_cardinality > 0);
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let n = params.r_rows;
    let r = RTable {
        a: (0..n).map(|_| rng.gen_range(1..=50)).collect(),
        b: (0..n).map(|_| rng.gen_range(1..=50)).collect(),
        c: (0..n)
            .map(|_| rng.gen_range(0..params.r_c_cardinality as i32))
            .collect(),
        x: (0..n).map(|_| rng.gen_range(0..100)).collect(),
        y: vec![1; n],
        fk: (0..n)
            .map(|_| rng.gen_range(0..params.s_rows as u32))
            .collect(),
    };
    let s = STable {
        x: (0..params.s_rows).map(|_| rng.gen_range(0..100)).collect(),
    };
    let fk_index = FkIndex::from_dense(r.fk.clone(), params.s_rows);
    MicroDb {
        r,
        s,
        fk_index,
        params,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = MicroParams {
            r_rows: 1000,
            s_rows: 50,
            r_c_cardinality: 8,
            seed: 7,
        };
        let a = generate(p);
        let b = generate(p);
        assert_eq!(a.r.x, b.r.x);
        assert_eq!(a.r.fk, b.r.fk);
        assert_eq!(a.s.x, b.s.x);
    }

    #[test]
    fn value_domains_hold() {
        let db = generate(MicroParams {
            r_rows: 5000,
            s_rows: 100,
            r_c_cardinality: 16,
            seed: 1,
        });
        assert!(db.r.a.iter().all(|&v| (1..=50).contains(&v)));
        assert!(db.r.b.iter().all(|&v| v >= 1), "divisor must be nonzero");
        assert!(db.r.c.iter().all(|&v| (0..16).contains(&v)));
        assert!(db.r.x.iter().all(|&v| (0..100).contains(&v)));
        assert!(db.r.y.iter().all(|&v| v == 1));
        assert!(db.r.fk.iter().all(|&v| v < 100));
        assert!(db.s.x.iter().all(|&v| (0..100).contains(&v)));
        assert_eq!(db.fk_index.parent_len(), 100);
        assert_eq!(db.fk_index.len(), 5000);
    }

    #[test]
    fn selectivity_tracks_sel_parameter() {
        let db = generate(MicroParams {
            r_rows: 100_000,
            s_rows: 10,
            r_c_cardinality: 4,
            seed: 2,
        });
        for sel in [0i8, 25, 50, 75, 100] {
            let frac = db.r.x.iter().filter(|&&v| v < sel).count() as f64 / db.r.len() as f64;
            assert!(
                (frac - sel as f64 / 100.0).abs() < 0.01,
                "sel={sel} frac={frac}"
            );
        }
    }

    #[test]
    fn seeds_differ() {
        let a = generate(MicroParams {
            r_rows: 100,
            s_rows: 10,
            r_c_cardinality: 4,
            seed: 1,
        });
        let b = generate(MicroParams {
            r_rows: 100,
            s_rows: 10,
            r_c_cardinality: 4,
            seed: 2,
        });
        assert_ne!(a.r.x, b.r.x);
    }
}
