//! Offline drop-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges, and [`Rng::gen_bool`].
//!
//! The build container has no access to crates.io, so the workspace
//! replaces the real crate with this path shim (see the workspace
//! `Cargo.toml`). The generator is xoshiro256++ seeded through SplitMix64 —
//! deterministic per seed, statistically fine for synthetic data
//! generation, and **not** a reproduction of the real `SmallRng` stream:
//! datasets generated for a given seed differ from ones generated with the
//! upstream crate. Nothing in-repo depends on the exact stream, only on
//! determinism.

#![warn(missing_docs)]

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a `u64` seed (the only constructor used in-repo).
pub trait SeedableRng: Sized {
    /// Deterministically derive a generator from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`lo..hi` or `lo..=hi`).
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Named like the upstream module so `use rand::rngs::SmallRng` resolves.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 stream to fill the state, per the xoshiro authors'
            // recommendation; guards against the all-zero state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next() | 1],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1_000_000), b.gen_range(0i64..1_000_000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same: Vec<i64> = (0..16).map(|_| c.gen_range(0i64..1_000_000)).collect();
        let mut a2 = SmallRng::seed_from_u64(42);
        let other: Vec<i64> = (0..16).map(|_| a2.gen_range(0i64..1_000_000)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i8 = rng.gen_range(-5..100);
            assert!((-5..100).contains(&v));
            let w: u32 = rng.gen_range(1..=50);
            assert!((1..=50).contains(&w));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn all_values_reachable() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((0.22..0.28).contains(&rate), "rate={rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
