//! Offline drop-in for the slice of the `criterion` 0.5 API the `swole-bench`
//! harnesses use: `Criterion::benchmark_group`, group knobs
//! (`sample_size`/`measurement_time`/`warm_up_time`), `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! The build container cannot reach crates.io, so the workspace points the
//! `criterion` dependency at this path shim. It is a measuring harness, not a
//! statistics engine: each benchmark runs a short warm-up, then timed batches
//! for roughly `measurement_time`, and prints the median per-iteration time.
//! Output format is plain `name ... <median> ns/iter`, not criterion's report.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level handle passed to every `criterion_group!` target function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(800),
            _marker: std::marker::PhantomData,
        }
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _marker: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total budget for the timed phase of each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Untimed warm-up budget before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Run a benchmark identified by a plain name.
    pub fn bench_function<S: Display, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Run a benchmark identified by a [`BenchmarkId`], passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finish the group. Only terminates the visual block; dropping works too.
    pub fn finish(self) {}

    fn run(&self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        let median = b.median_ns();
        println!("{}/{} ... {} ns/iter", self.name, label, median);
    }
}

/// Identifies one benchmark within a group: `function_name/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter value into an id.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id with only a parameter value (no function-name prefix).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<u128>,
}

impl Bencher {
    /// Time `routine`, called repeatedly in batches until the measurement
    /// budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also used to size the timed batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() / warm_iters as u128;

        // Pick a batch size so sample_size batches roughly fill the budget.
        let budget = self.measurement_time.as_nanos();
        let batch =
            (budget / (per_iter.max(1) * self.sample_size as u128)).clamp(1, 1 << 20) as u64;

        self.samples_ns.clear();
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples_ns.push(t.elapsed().as_nanos() / batch as u128);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    fn median_ns(&mut self) -> u128 {
        if self.samples_ns.is_empty() {
            return 0;
        }
        self.samples_ns.sort_unstable();
        self.samples_ns[self.samples_ns.len() / 2]
    }
}

/// Bundle target functions into a named group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running each group produced by [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_smoke");
        g.sample_size(3);
        g.measurement_time(Duration::from_millis(5));
        g.warm_up_time(Duration::from_millis(1));
        let mut calls = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7i32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert!(calls > 0);
    }
}
