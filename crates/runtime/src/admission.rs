//! Admission control: a bounded, priority-ordered gate in front of
//! execution.
//!
//! A server multiplexing one worker pool across many clients needs to say
//! *no* early: past the concurrency limit, queries wait in a bounded queue
//! ordered by [`Priority`] class (FIFO within a class); past the queue
//! bound, or once a query's deadline can no longer be met, admission fails
//! immediately with a typed [`AdmissionError`] instead of letting work
//! pile up invisibly.
//!
//! Admission hands out RAII [`AdmissionPermit`]s: dropping the permit —
//! normal return, error, or panic unwinding — frees the slot and wakes the
//! best queued waiter.

use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::faults;

/// Scheduling/admission priority class. Higher classes are admitted first
/// and their stages are drained first by the shared pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Background work: bulk jobs, maintenance scans.
    Low,
    /// The default class.
    #[default]
    Normal,
    /// Latency-sensitive interactive queries.
    High,
}

/// Why admission rejected a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// All execution slots are busy and the wait queue is at capacity.
    QueueFull {
        /// Configured concurrent-execution slots.
        max_concurrent: usize,
        /// Configured wait-queue bound.
        queue_depth: usize,
    },
    /// The query's deadline expired before an execution slot freed up;
    /// running it would only waste the slot.
    DeadlineBeforeStart,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull {
                max_concurrent,
                queue_depth,
            } => write!(
                f,
                "all {max_concurrent} execution slots busy and the wait \
                 queue ({queue_depth} deep) is full"
            ),
            AdmissionError::DeadlineBeforeStart => {
                write!(f, "deadline expired while waiting for an execution slot")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Configuration for an [`AdmissionController`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Queries allowed to execute simultaneously (at least 1).
    pub max_concurrent: usize,
    /// Queries allowed to wait for a slot before new arrivals are
    /// rejected with [`AdmissionError::QueueFull`]. `0` means reject the
    /// moment all slots are busy.
    pub queue_depth: usize,
}

impl AdmissionConfig {
    /// `max_concurrent` execution slots with a default 64-deep wait queue.
    pub fn new(max_concurrent: usize) -> AdmissionConfig {
        AdmissionConfig {
            max_concurrent: max_concurrent.max(1),
            queue_depth: 64,
        }
    }

    /// Override the wait-queue bound.
    pub fn queue_depth(mut self, depth: usize) -> AdmissionConfig {
        self.queue_depth = depth;
        self
    }
}

struct Ticket {
    priority: Priority,
    seq: u64,
}

#[derive(Default)]
struct AdmitState {
    running: usize,
    queued: Vec<Ticket>,
    next_seq: u64,
}

impl AdmitState {
    /// The queued ticket that should be admitted next: highest priority,
    /// then earliest arrival.
    fn head(&self) -> Option<u64> {
        self.queued
            .iter()
            .max_by_key(|t| (t.priority, std::cmp::Reverse(t.seq)))
            .map(|t| t.seq)
    }

    fn remove(&mut self, seq: u64) {
        self.queued.retain(|t| t.seq != seq);
    }
}

/// The admission gate. Shared (via `Arc`) between the engine front door
/// and every outstanding [`AdmissionPermit`].
pub struct AdmissionController {
    cfg: AdmissionConfig,
    state: Mutex<AdmitState>,
    cv: Condvar,
}

impl AdmissionController {
    /// A controller enforcing `cfg`.
    pub fn new(cfg: AdmissionConfig) -> AdmissionController {
        AdmissionController {
            cfg,
            state: Mutex::new(AdmitState::default()),
            cv: Condvar::new(),
        }
    }

    /// The configured limits.
    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    /// `(running, queued)` for observability and tests.
    pub fn in_flight(&self) -> (usize, usize) {
        let st = self.state.lock().expect("admission state");
        (st.running, st.queued.len())
    }

    /// Wait for an execution slot. Returns immediately when one is free
    /// (and no higher-claim query is queued); otherwise joins the bounded
    /// wait queue. Fails fast when the queue is full or when `deadline`
    /// expires before a slot frees up — a query that cannot start before
    /// its deadline is rejected rather than admitted to die.
    pub fn admit(
        self: &Arc<Self>,
        priority: Priority,
        deadline: Option<Instant>,
    ) -> Result<AdmissionPermit, AdmissionError> {
        let mut st = self.state.lock().expect("admission state");
        if st.running < self.cfg.max_concurrent && st.queued.is_empty() {
            st.running += 1;
            return Ok(AdmissionPermit {
                ctrl: Arc::clone(self),
            });
        }
        if deadline.is_some_and(|d| faults::now() >= d) {
            return Err(AdmissionError::DeadlineBeforeStart);
        }
        if st.queued.len() >= self.cfg.queue_depth {
            return Err(AdmissionError::QueueFull {
                max_concurrent: self.cfg.max_concurrent,
                queue_depth: self.cfg.queue_depth,
            });
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.queued.push(Ticket { priority, seq });
        loop {
            if st.running < self.cfg.max_concurrent && st.head() == Some(seq) {
                st.remove(seq);
                st.running += 1;
                // More slots may be free for the next head.
                self.cv.notify_all();
                return Ok(AdmissionPermit {
                    ctrl: Arc::clone(self),
                });
            }
            st = match deadline {
                Some(d) => {
                    let now = faults::now();
                    if now >= d {
                        st.remove(seq);
                        // Our departure may unblock a lower-priority head.
                        self.cv.notify_all();
                        return Err(AdmissionError::DeadlineBeforeStart);
                    }
                    let (guard, _) = self.cv.wait_timeout(st, d - now).expect("admission state");
                    guard
                }
                None => self.cv.wait(st).expect("admission state"),
            };
        }
    }
}

/// RAII execution slot handed out by [`AdmissionController::admit`].
/// Dropping it frees the slot and wakes the best queued waiter.
pub struct AdmissionPermit {
    ctrl: Arc<AdmissionController>,
}

impl fmt::Debug for AdmissionPermit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdmissionPermit").finish_non_exhaustive()
    }
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        let mut st = self.ctrl.state.lock().expect("admission state");
        st.running = st.running.saturating_sub(1);
        drop(st);
        self.ctrl.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn slots_are_bounded_and_queue_rejects_when_full() {
        let ctrl = Arc::new(AdmissionController::new(
            AdmissionConfig::new(1).queue_depth(0),
        ));
        let held = ctrl.admit(Priority::Normal, None).expect("first in");
        let err = ctrl
            .admit(Priority::Normal, None)
            .expect_err("no slot, no queue");
        assert_eq!(
            err,
            AdmissionError::QueueFull {
                max_concurrent: 1,
                queue_depth: 0,
            }
        );
        drop(held);
        let _second = ctrl.admit(Priority::Normal, None).expect("slot freed");
    }

    #[test]
    fn expired_deadline_is_rejected_without_queueing() {
        let ctrl = Arc::new(AdmissionController::new(
            AdmissionConfig::new(1).queue_depth(8),
        ));
        let _held = ctrl.admit(Priority::Normal, None).expect("first in");
        let past = Instant::now() - Duration::from_millis(1);
        let err = ctrl
            .admit(Priority::Normal, Some(past))
            .expect_err("deadline already gone");
        assert_eq!(err, AdmissionError::DeadlineBeforeStart);
        assert_eq!(ctrl.in_flight(), (1, 0), "rejected query must not linger");
    }

    #[test]
    fn queued_deadline_expires_while_waiting() {
        let ctrl = Arc::new(AdmissionController::new(
            AdmissionConfig::new(1).queue_depth(8),
        ));
        let _held = ctrl.admit(Priority::Normal, None).expect("first in");
        let soon = Instant::now() + Duration::from_millis(20);
        let err = ctrl
            .admit(Priority::Normal, Some(soon))
            .expect_err("slot never frees");
        assert_eq!(err, AdmissionError::DeadlineBeforeStart);
        assert_eq!(ctrl.in_flight(), (1, 0));
    }

    #[test]
    fn higher_priority_waiters_are_admitted_first() {
        let ctrl = Arc::new(AdmissionController::new(
            AdmissionConfig::new(1).queue_depth(8),
        ));
        let held = ctrl.admit(Priority::Normal, None).expect("first in");
        let order = Arc::new(Mutex::new(Vec::new()));
        let spawn = |prio: Priority, tag: &'static str| {
            let ctrl = Arc::clone(&ctrl);
            let order = Arc::clone(&order);
            std::thread::spawn(move || {
                let permit = ctrl.admit(prio, None).expect("eventually admitted");
                order.lock().expect("order").push(tag);
                // Hold briefly so admission order is observable.
                std::thread::sleep(Duration::from_millis(5));
                drop(permit);
            })
        };
        let low = spawn(Priority::Low, "low");
        // Make sure the low-priority ticket is queued first.
        while ctrl.in_flight().1 < 1 {
            std::thread::yield_now();
        }
        let high = spawn(Priority::High, "high");
        while ctrl.in_flight().1 < 2 {
            std::thread::yield_now();
        }
        drop(held);
        low.join().expect("low waiter");
        high.join().expect("high waiter");
        assert_eq!(*order.lock().expect("order"), vec!["high", "low"]);
    }
}
