//! Admission control: a bounded, priority-ordered gate in front of
//! execution.
//!
//! A server multiplexing one worker pool across many clients needs to say
//! *no* early: past the concurrency limit, queries wait in a bounded queue
//! ordered by [`Priority`] class (FIFO within a class); past the queue
//! bound, or once a query's deadline can no longer be met, admission fails
//! immediately with a typed [`AdmissionError`] instead of letting work
//! pile up invisibly.
//!
//! Admission hands out RAII [`AdmissionPermit`]s: dropping the permit —
//! normal return, error, or panic unwinding — frees the slot and wakes the
//! best queued waiter.
//!
//! Two server-protection mechanisms sit on top of the bounded queue:
//!
//! - **Load shedding** ([`AdmissionConfig::shed_after`]): each permit drop
//!   records its service time; when a new arrival's *predicted* queue wait
//!   (queue position ahead of it × observed P99 service time ÷ slots)
//!   exceeds the shed threshold, it is rejected immediately with
//!   [`AdmissionError::Overloaded`], which carries a structured
//!   retry-after hint — better an honest early `503` than a doomed wait.
//! - **Priority aging** ([`AdmissionConfig::aging_limit`]): a waiter that
//!   has been passed over by `aging_limit` admissions is treated as
//!   [`Priority::High`] from then on, so sustained high-priority load can
//!   delay `Low` work but never starve it (bounded wait).

use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::faults;

/// Sliding window of recent service times backing the P99 estimate.
const SERVICE_WINDOW: usize = 64;

/// Scheduling/admission priority class. Higher classes are admitted first
/// and their stages are drained first by the shared pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Background work: bulk jobs, maintenance scans.
    Low,
    /// The default class.
    #[default]
    Normal,
    /// Latency-sensitive interactive queries.
    High,
}

/// Why admission rejected a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// All execution slots are busy and the wait queue is at capacity.
    QueueFull {
        /// Configured concurrent-execution slots.
        max_concurrent: usize,
        /// Configured wait-queue bound.
        queue_depth: usize,
    },
    /// The query's deadline expired before an execution slot freed up;
    /// running it would only waste the slot.
    DeadlineBeforeStart,
    /// Load shedding: the predicted queue wait exceeded the configured
    /// shed threshold ([`AdmissionConfig::shed_after`]), so the query was
    /// rejected immediately instead of queueing to time out. Clients
    /// should back off for roughly `retry_after_ms` before retrying.
    Overloaded {
        /// Predicted queue wait at arrival, in milliseconds (queue
        /// position × observed P99 service time ÷ execution slots).
        predicted_wait_ms: u64,
        /// Structured retry hint: the observed P99 service time, i.e. how
        /// long one queue position takes to drain per slot.
        retry_after_ms: u64,
    },
    /// The engine is shutting down and no longer admits queries. Not
    /// retryable against this server instance.
    Shutdown,
    /// The plan's statically proven peak-memory bound exceeds the budget
    /// that would govern it, so execution could only end in a mid-flight
    /// `BudgetExceeded`; the query is rejected before queueing instead.
    /// Not retryable without raising the budget or shrinking the query.
    BudgetInfeasible {
        /// Proven peak bytes the plan can charge (its certificate bound).
        bound: u64,
        /// Effective budget in bytes (the tighter of the per-query limit
        /// and the global memory pool).
        budget: u64,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull {
                max_concurrent,
                queue_depth,
            } => write!(
                f,
                "all {max_concurrent} execution slots busy and the wait \
                 queue ({queue_depth} deep) is full"
            ),
            AdmissionError::DeadlineBeforeStart => {
                write!(f, "deadline expired while waiting for an execution slot")
            }
            AdmissionError::Overloaded {
                predicted_wait_ms,
                retry_after_ms,
            } => write!(
                f,
                "overloaded: predicted queue wait {predicted_wait_ms} ms \
                 exceeds the shed threshold; retry after {retry_after_ms} ms"
            ),
            AdmissionError::Shutdown => {
                write!(f, "the engine is shutting down and admits no new queries")
            }
            AdmissionError::BudgetInfeasible { bound, budget } => write!(
                f,
                "proven plan memory bound {bound} B exceeds the available \
                 budget {budget} B"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Configuration for an [`AdmissionController`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Queries allowed to execute simultaneously (at least 1).
    pub max_concurrent: usize,
    /// Queries allowed to wait for a slot before new arrivals are
    /// rejected with [`AdmissionError::QueueFull`]. `0` means reject the
    /// moment all slots are busy.
    pub queue_depth: usize,
    /// Load-shedding threshold: reject an arrival whose predicted queue
    /// wait (queue length ahead × observed P99 service time ÷
    /// `max_concurrent`) exceeds this, with
    /// [`AdmissionError::Overloaded`]. `None` (the default) never sheds.
    /// Shedding needs observed service times, so a cold controller always
    /// queues.
    pub shed_after: Option<Duration>,
    /// Anti-starvation bound: a waiter passed over by this many admissions
    /// is treated as [`Priority::High`] from then on, so its total wait is
    /// bounded by `aging_limit` service times even under sustained
    /// higher-priority load. `0` disables aging (strict priority order).
    pub aging_limit: u64,
}

impl AdmissionConfig {
    /// `max_concurrent` execution slots with a default 64-deep wait queue,
    /// no shed threshold, and priority aging after 64 passed-over
    /// admissions.
    pub fn new(max_concurrent: usize) -> AdmissionConfig {
        AdmissionConfig {
            max_concurrent: max_concurrent.max(1),
            queue_depth: 64,
            shed_after: None,
            aging_limit: 64,
        }
    }

    /// Override the wait-queue bound.
    pub fn queue_depth(mut self, depth: usize) -> AdmissionConfig {
        self.queue_depth = depth;
        self
    }

    /// Shed arrivals whose predicted queue wait exceeds `wait`.
    pub fn shed_after(mut self, wait: Duration) -> AdmissionConfig {
        self.shed_after = Some(wait);
        self
    }

    /// Override the anti-starvation aging bound (`0` disables aging).
    pub fn aging_limit(mut self, passed_over: u64) -> AdmissionConfig {
        self.aging_limit = passed_over;
        self
    }
}

struct Ticket {
    priority: Priority,
    seq: u64,
    /// Value of `AdmitState::admitted` when this ticket queued; the
    /// difference against the current count is how many admissions have
    /// passed it over (the aging clock).
    admitted_at_arrival: u64,
}

#[derive(Default)]
struct AdmitState {
    running: usize,
    queued: Vec<Ticket>,
    next_seq: u64,
    /// Total admissions granted over the controller's lifetime (drives
    /// priority aging).
    admitted: u64,
    /// Ring buffer of the last [`SERVICE_WINDOW`] service times, in
    /// microseconds (drives the shed policy's P99 estimate).
    service_us: Vec<u64>,
    /// Next write position in `service_us` once it is full.
    service_at: usize,
    /// Set by [`AdmissionController::close`]: reject everything.
    closed: bool,
}

impl AdmitState {
    /// The queued ticket that should be admitted next: highest *effective*
    /// priority (aged waiters count as [`Priority::High`]), then earliest
    /// arrival.
    fn head(&self, aging_limit: u64) -> Option<u64> {
        self.queued
            .iter()
            .max_by_key(|t| {
                (
                    self.effective_priority(t, aging_limit),
                    std::cmp::Reverse(t.seq),
                )
            })
            .map(|t| t.seq)
    }

    /// A ticket's priority after aging: boosted to `High` once
    /// `aging_limit` admissions have passed it over.
    fn effective_priority(&self, t: &Ticket, aging_limit: u64) -> Priority {
        if aging_limit > 0 && self.admitted.saturating_sub(t.admitted_at_arrival) >= aging_limit {
            Priority::High
        } else {
            t.priority
        }
    }

    fn remove(&mut self, seq: u64) {
        self.queued.retain(|t| t.seq != seq);
    }

    /// Record one completed execution's service time.
    fn record_service(&mut self, took: Duration) {
        let us = took.as_micros().min(u64::MAX as u128) as u64;
        if self.service_us.len() < SERVICE_WINDOW {
            self.service_us.push(us);
        } else {
            self.service_us[self.service_at] = us;
            self.service_at = (self.service_at + 1) % SERVICE_WINDOW;
        }
    }

    /// P99 of the recorded service times (microseconds); `None` until at
    /// least one execution completed.
    fn p99_service_us(&self) -> Option<u64> {
        if self.service_us.is_empty() {
            return None;
        }
        let mut sorted = self.service_us.clone();
        sorted.sort_unstable();
        let idx = (sorted.len().saturating_sub(1)) * 99 / 100;
        Some(sorted[idx])
    }
}

/// The admission gate. Shared (via `Arc`) between the engine front door
/// and every outstanding [`AdmissionPermit`].
pub struct AdmissionController {
    cfg: AdmissionConfig,
    state: Mutex<AdmitState>,
    cv: Condvar,
}

impl AdmissionController {
    /// A controller enforcing `cfg`.
    pub fn new(cfg: AdmissionConfig) -> AdmissionController {
        AdmissionController {
            cfg,
            state: Mutex::new(AdmitState::default()),
            cv: Condvar::new(),
        }
    }

    /// The configured limits.
    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    /// `(running, queued)` for observability and tests.
    pub fn in_flight(&self) -> (usize, usize) {
        let st = self.state.lock().expect("admission state");
        (st.running, st.queued.len())
    }

    /// The observed P99 service time feeding the shed policy, once at
    /// least one execution has completed.
    pub fn observed_p99(&self) -> Option<Duration> {
        let st = self.state.lock().expect("admission state");
        st.p99_service_us().map(Duration::from_micros)
    }

    /// Stop admitting: every queued waiter is woken and rejected with
    /// [`AdmissionError::Shutdown`], and every later [`admit`] call fails
    /// the same way. Permits already granted stay valid until dropped.
    /// Idempotent.
    ///
    /// [`admit`]: AdmissionController::admit
    pub fn close(&self) {
        let mut st = self.state.lock().expect("admission state");
        st.closed = true;
        drop(st);
        self.cv.notify_all();
    }

    /// `true` once [`AdmissionController::close`] ran.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("admission state").closed
    }

    /// Wait for an execution slot. Returns immediately when one is free
    /// (and no higher-claim query is queued); otherwise joins the bounded
    /// wait queue. Fails fast when the controller is closed, when the
    /// queue is full, when the shed policy predicts a hopeless wait, or
    /// when `deadline` expires before a slot frees up — a query that
    /// cannot start before its deadline is rejected rather than admitted
    /// to die.
    pub fn admit(
        self: &Arc<Self>,
        priority: Priority,
        deadline: Option<Instant>,
    ) -> Result<AdmissionPermit, AdmissionError> {
        // Chaos hook: a scheduled admission stall sleeps *before* taking
        // the state lock, so it delays this arrival without blocking
        // permit releases or sibling admissions.
        if let Some(stall) = faults::take_admission_stall() {
            std::thread::sleep(stall);
        }
        let mut st = self.state.lock().expect("admission state");
        if st.closed {
            return Err(AdmissionError::Shutdown);
        }
        if st.running < self.cfg.max_concurrent && st.queued.is_empty() {
            st.running += 1;
            return Ok(self.permit());
        }
        if deadline.is_some_and(|d| faults::now() >= d) {
            return Err(AdmissionError::DeadlineBeforeStart);
        }
        if st.queued.len() >= self.cfg.queue_depth {
            return Err(AdmissionError::QueueFull {
                max_concurrent: self.cfg.max_concurrent,
                queue_depth: self.cfg.queue_depth,
            });
        }
        if let (Some(shed), Some(p99_us)) = (self.cfg.shed_after, st.p99_service_us()) {
            // Everyone already waiting drains ahead of us, one slot-width
            // of P99 at a time; +1 for the queries running right now.
            let positions = (st.queued.len() as u64 + 1).div_ceil(self.cfg.max_concurrent as u64);
            let predicted_us = positions.saturating_mul(p99_us);
            if predicted_us > shed.as_micros().min(u64::MAX as u128) as u64 {
                return Err(AdmissionError::Overloaded {
                    predicted_wait_ms: predicted_us / 1000,
                    retry_after_ms: (p99_us / 1000).max(1),
                });
            }
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        let admitted_at_arrival = st.admitted;
        st.queued.push(Ticket {
            priority,
            seq,
            admitted_at_arrival,
        });
        loop {
            if st.closed {
                st.remove(seq);
                self.cv.notify_all();
                return Err(AdmissionError::Shutdown);
            }
            if st.running < self.cfg.max_concurrent && st.head(self.cfg.aging_limit) == Some(seq) {
                st.remove(seq);
                st.running += 1;
                st.admitted += 1;
                // More slots may be free for the next head.
                self.cv.notify_all();
                return Ok(self.permit());
            }
            st = match deadline {
                Some(d) => {
                    let now = faults::now();
                    if now >= d {
                        st.remove(seq);
                        // Our departure may unblock a lower-priority head.
                        self.cv.notify_all();
                        return Err(AdmissionError::DeadlineBeforeStart);
                    }
                    let (guard, _) = self.cv.wait_timeout(st, d - now).expect("admission state");
                    guard
                }
                None => self.cv.wait(st).expect("admission state"),
            };
        }
    }

    fn permit(self: &Arc<Self>) -> AdmissionPermit {
        AdmissionPermit {
            ctrl: Arc::clone(self),
            admitted_at: Instant::now(),
        }
    }
}

/// RAII execution slot handed out by [`AdmissionController::admit`].
/// Dropping it frees the slot, records the slot's service time for the
/// shed policy's P99 estimate, and wakes the best queued waiter.
pub struct AdmissionPermit {
    ctrl: Arc<AdmissionController>,
    /// When the slot was granted; drop records `elapsed` as one service
    /// time (on the unskewed clock — shedding reasons about real wall
    /// time, not the fault-injected deadline clock).
    admitted_at: Instant,
}

impl fmt::Debug for AdmissionPermit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdmissionPermit").finish_non_exhaustive()
    }
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        let mut st = self.ctrl.state.lock().expect("admission state");
        st.running = st.running.saturating_sub(1);
        st.record_service(self.admitted_at.elapsed());
        drop(st);
        self.ctrl.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn slots_are_bounded_and_queue_rejects_when_full() {
        let ctrl = Arc::new(AdmissionController::new(
            AdmissionConfig::new(1).queue_depth(0),
        ));
        let held = ctrl.admit(Priority::Normal, None).expect("first in");
        let err = ctrl
            .admit(Priority::Normal, None)
            .expect_err("no slot, no queue");
        assert_eq!(
            err,
            AdmissionError::QueueFull {
                max_concurrent: 1,
                queue_depth: 0,
            }
        );
        drop(held);
        let _second = ctrl.admit(Priority::Normal, None).expect("slot freed");
    }

    #[test]
    fn expired_deadline_is_rejected_without_queueing() {
        let ctrl = Arc::new(AdmissionController::new(
            AdmissionConfig::new(1).queue_depth(8),
        ));
        let _held = ctrl.admit(Priority::Normal, None).expect("first in");
        let past = Instant::now() - Duration::from_millis(1);
        let err = ctrl
            .admit(Priority::Normal, Some(past))
            .expect_err("deadline already gone");
        assert_eq!(err, AdmissionError::DeadlineBeforeStart);
        assert_eq!(ctrl.in_flight(), (1, 0), "rejected query must not linger");
    }

    #[test]
    #[cfg_attr(miri, ignore = "waits out a real 20 ms deadline")]
    fn queued_deadline_expires_while_waiting() {
        let ctrl = Arc::new(AdmissionController::new(
            AdmissionConfig::new(1).queue_depth(8),
        ));
        let _held = ctrl.admit(Priority::Normal, None).expect("first in");
        let soon = Instant::now() + Duration::from_millis(20);
        let err = ctrl
            .admit(Priority::Normal, Some(soon))
            .expect_err("slot never frees");
        assert_eq!(err, AdmissionError::DeadlineBeforeStart);
        assert_eq!(ctrl.in_flight(), (1, 0));
    }

    #[test]
    #[cfg_attr(miri, ignore = "admission order observed through real sleeps")]
    fn higher_priority_waiters_are_admitted_first() {
        let ctrl = Arc::new(AdmissionController::new(
            AdmissionConfig::new(1).queue_depth(8),
        ));
        let held = ctrl.admit(Priority::Normal, None).expect("first in");
        let order = Arc::new(Mutex::new(Vec::new()));
        let spawn = |prio: Priority, tag: &'static str| {
            let ctrl = Arc::clone(&ctrl);
            let order = Arc::clone(&order);
            std::thread::spawn(move || {
                let permit = ctrl.admit(prio, None).expect("eventually admitted");
                order.lock().expect("order").push(tag);
                // Hold briefly so admission order is observable.
                std::thread::sleep(Duration::from_millis(5));
                drop(permit);
            })
        };
        let low = spawn(Priority::Low, "low");
        // Make sure the low-priority ticket is queued first.
        while ctrl.in_flight().1 < 1 {
            std::thread::yield_now();
        }
        let high = spawn(Priority::High, "high");
        while ctrl.in_flight().1 < 2 {
            std::thread::yield_now();
        }
        drop(held);
        low.join().expect("low waiter");
        high.join().expect("high waiter");
        assert_eq!(*order.lock().expect("order"), vec!["high", "low"]);
    }

    #[test]
    fn same_priority_admission_is_fifo() {
        let ctrl = Arc::new(AdmissionController::new(
            AdmissionConfig::new(1).queue_depth(8),
        ));
        let held = ctrl.admit(Priority::Normal, None).expect("first in");
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut waiters = Vec::new();
        for tag in 0..4usize {
            let ctrl2 = Arc::clone(&ctrl);
            let order = Arc::clone(&order);
            waiters.push(std::thread::spawn(move || {
                let permit = ctrl2.admit(Priority::Normal, None).expect("admitted");
                order.lock().expect("order").push(tag);
                drop(permit);
            }));
            // Queue strictly one at a time so arrival order is the seq
            // order.
            while ctrl.in_flight().1 < tag + 1 {
                std::thread::yield_now();
            }
        }
        drop(held);
        for w in waiters {
            w.join().expect("waiter");
        }
        assert_eq!(
            *order.lock().expect("order"),
            vec![0, 1, 2, 3],
            "same-priority waiters must drain in arrival order"
        );
    }

    #[test]
    fn low_priority_is_not_starved_under_sustained_high_load() {
        const AGING: u64 = 4;
        let ctrl = Arc::new(AdmissionController::new(
            AdmissionConfig::new(1).queue_depth(32).aging_limit(AGING),
        ));
        let held = ctrl.admit(Priority::High, None).expect("first in");
        let order = Arc::new(Mutex::new(Vec::new()));
        let spawn = |prio: Priority, tag: &'static str| {
            let ctrl = Arc::clone(&ctrl);
            let order = Arc::clone(&order);
            std::thread::spawn(move || {
                let permit = ctrl.admit(prio, None).expect("admitted");
                order.lock().expect("order").push(tag);
                drop(permit);
            })
        };
        // One Low waiter queues first, then sustained High pressure: 12
        // High arrivals all waiting before the slot ever frees.
        let low = spawn(Priority::Low, "low");
        while ctrl.in_flight().1 < 1 {
            std::thread::yield_now();
        }
        let highs: Vec<_> = (0..12).map(|_| spawn(Priority::High, "high")).collect();
        while ctrl.in_flight().1 < 13 {
            std::thread::yield_now();
        }
        drop(held);
        low.join().expect("low waiter");
        for h in highs {
            h.join().expect("high waiter");
        }
        let order = order.lock().expect("order");
        let low_pos = order
            .iter()
            .position(|&t| t == "low")
            .expect("low must be admitted");
        // Bounded wait: after AGING admissions pass it over, the Low
        // waiter counts as High and (being the earliest seq) wins next.
        assert_eq!(
            low_pos, AGING as usize,
            "low must be admitted after exactly {AGING} high admissions: {order:?}"
        );
    }

    #[test]
    #[cfg_attr(miri, ignore = "primes the P99 ring with real service time")]
    fn shed_policy_rejects_with_retry_hint_from_observed_p99() {
        let ctrl = Arc::new(AdmissionController::new(
            AdmissionConfig::new(1)
                .queue_depth(64)
                .shed_after(Duration::from_millis(1)),
        ));
        // Cold controller: no service history, so a busy slot queues
        // rather than sheds. Prime ~10ms of observed service time.
        let priming = ctrl.admit(Priority::Normal, None).expect("primes");
        std::thread::sleep(Duration::from_millis(10));
        drop(priming);
        assert!(ctrl.observed_p99().expect("recorded") >= Duration::from_millis(10));

        let held = ctrl.admit(Priority::Normal, None).expect("slot free");
        let err = ctrl
            .admit(Priority::Normal, None)
            .expect_err("predicted wait >> shed threshold");
        match err {
            AdmissionError::Overloaded {
                predicted_wait_ms,
                retry_after_ms,
            } => {
                assert!(predicted_wait_ms >= 10, "got {predicted_wait_ms}");
                assert!(retry_after_ms >= 10, "got {retry_after_ms}");
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // Shed arrivals never occupy queue space.
        assert_eq!(ctrl.in_flight(), (1, 0));
        drop(held);
        let _ok = ctrl
            .admit(Priority::Normal, None)
            .expect("free slot admits regardless of history");
    }

    #[test]
    fn close_rejects_new_arrivals_and_flushes_waiters() {
        let ctrl = Arc::new(AdmissionController::new(
            AdmissionConfig::new(1).queue_depth(8),
        ));
        let held = ctrl.admit(Priority::Normal, None).expect("first in");
        let waiter = {
            let ctrl = Arc::clone(&ctrl);
            std::thread::spawn(move || ctrl.admit(Priority::Normal, None))
        };
        while ctrl.in_flight().1 < 1 {
            std::thread::yield_now();
        }
        ctrl.close();
        assert!(
            matches!(
                waiter.join().expect("waiter thread"),
                Err(AdmissionError::Shutdown)
            ),
            "queued waiters must flush with the typed shutdown error"
        );
        assert!(
            matches!(
                ctrl.admit(Priority::High, None),
                Err(AdmissionError::Shutdown)
            ),
            "new arrivals must be rejected once closed"
        );
        // The already-granted permit stays valid and still drains cleanly.
        drop(held);
        assert_eq!(ctrl.in_flight(), (0, 0));
    }
}
