//! Fault-injection harness for hardening tests.
//!
//! The hooks here let tests force the failures the execution-hardening
//! layer exists to contain — a worker panic at a chosen morsel index, an
//! allocation failure at a chosen memory charge, or clock skew that makes
//! deadlines fire early — without conditional compilation. Every hook is a
//! process-global that is **disarmed by default** and costs one relaxed
//! atomic load on the hot path, so the harness is always compiled in and
//! release binaries behave identically unless a test arms it.
//!
//! Arming returns a [`FaultGuard`]; dropping the guard disarms every hook,
//! so a panicking test cannot leak a fault into its neighbours. Panic and
//! allocation faults are additionally *one-shot*: they disarm themselves
//! the moment they fire, so the engine's retry-under-fallback path does not
//! re-trip the same fault.
//!
//! Because the hooks are process-global, tests that arm them must not run
//! concurrently with each other; serialize them with a `Mutex` (see
//! `tests/fault_injection.rs` in the workspace root).

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Morsel index at which a worker panic fires (`-1` = disarmed).
static PANIC_AT_MORSEL: AtomicI64 = AtomicI64::new(-1);
/// One-shot flag making the next plan lowered for static verification report
/// an allocation site that skips its memory charge.
static UNCHARGED_ALLOC: AtomicBool = AtomicBool::new(false);
/// Countdown of memory charges until one fails (`-1` = disarmed; the charge
/// observing `0` fails and disarms the hook).
static ALLOC_FAIL_COUNTDOWN: AtomicI64 = AtomicI64::new(-1);
/// Milliseconds added to every deadline-clock read (`0` = no skew).
static CLOCK_SKEW_MS: AtomicU64 = AtomicU64::new(0);

/// RAII guard returned by the `inject_*` functions; disarms **all** fault
/// hooks when dropped.
#[must_use = "faults stay armed only while the guard is alive"]
pub struct FaultGuard {
    _priv: (),
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        disarm_all();
    }
}

/// Disarm every fault hook immediately (also done by [`FaultGuard::drop`]).
pub fn disarm_all() {
    PANIC_AT_MORSEL.store(-1, Ordering::SeqCst);
    ALLOC_FAIL_COUNTDOWN.store(-1, Ordering::SeqCst);
    CLOCK_SKEW_MS.store(0, Ordering::SeqCst);
    UNCHARGED_ALLOC.store(false, Ordering::SeqCst);
}

/// Arm a one-shot worker panic at morsel `index` (zero-based, in claim
/// order). Morsel indices are derived from row offsets, so the same index
/// denotes the same rows at any thread count — and on the shared pool.
pub fn inject_panic_at_morsel(index: usize) -> FaultGuard {
    PANIC_AT_MORSEL.store(index as i64, Ordering::SeqCst);
    FaultGuard { _priv: () }
}

/// Arm a one-shot allocation failure: the `nth` memory charge (zero-based)
/// made through a [`crate::MemGauge`] after this call reports
/// [`crate::RuntimeError::BudgetExceeded`] regardless of the actual budget.
pub fn inject_alloc_failure_at_charge(nth: usize) -> FaultGuard {
    ALLOC_FAIL_COUNTDOWN.store(nth as i64, Ordering::SeqCst);
    FaultGuard { _priv: () }
}

/// Arm a one-shot uncharged-allocation fault: the next plan lowered for
/// static verification presents one allocation site as *not* charging the
/// memory gauge, so a full verification pass must reject it. Exercises the
/// verifier's resource-accounting pass end-to-end through the engine.
pub fn inject_uncharged_alloc() -> FaultGuard {
    UNCHARGED_ALLOC.store(true, Ordering::SeqCst);
    FaultGuard { _priv: () }
}

/// Plan-time hook: `true` exactly once after [`inject_uncharged_alloc`].
/// Consulted by the plan layer when lowering a plan for static
/// verification; not a hot-path hook.
pub fn take_uncharged_alloc() -> bool {
    UNCHARGED_ALLOC.swap(false, Ordering::SeqCst)
}

/// Skew the deadline clock forward by `by`, making in-flight deadlines
/// appear already elapsed. Stays armed until the guard drops.
pub fn inject_clock_skew(by: Duration) -> FaultGuard {
    CLOCK_SKEW_MS.store(by.as_millis() as u64, Ordering::SeqCst);
    FaultGuard { _priv: () }
}

/// Hot-path hook: panic if a one-shot panic is armed for this morsel.
pub(crate) fn maybe_panic_at_morsel(index: usize) {
    let target = PANIC_AT_MORSEL.load(Ordering::Relaxed);
    if target >= 0
        && target as usize == index
        && PANIC_AT_MORSEL
            .compare_exchange(target, -1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    {
        panic!("injected fault: worker panic at morsel {index}");
    }
}

/// Hot-path hook: `true` exactly once, on the charge the countdown reaches.
pub(crate) fn charge_should_fail() -> bool {
    if ALLOC_FAIL_COUNTDOWN.load(Ordering::Relaxed) < 0 {
        return false;
    }
    ALLOC_FAIL_COUNTDOWN
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
            if v < 0 {
                None
            } else {
                Some(v - 1)
            }
        })
        .map(|prev| prev == 0)
        .unwrap_or(false)
}

/// The deadline clock: wall time plus any injected skew.
pub(crate) fn now() -> Instant {
    Instant::now() + Duration::from_millis(CLOCK_SKEW_MS.load(Ordering::Relaxed))
}
