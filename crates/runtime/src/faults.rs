//! Fault-injection harness for hardening tests.
//!
//! The hooks here let tests force the failures the execution-hardening
//! layer exists to contain — a worker panic at a chosen morsel index, an
//! allocation failure at a chosen memory charge, or clock skew that makes
//! deadlines fire early — without conditional compilation. Every hook is a
//! process-global that is **disarmed by default** and costs one relaxed
//! atomic load on the hot path, so the harness is always compiled in and
//! release binaries behave identically unless a test arms it.
//!
//! Arming returns a [`FaultGuard`]; dropping the guard disarms every hook,
//! so a panicking test cannot leak a fault into its neighbours. Panic and
//! allocation faults are additionally *one-shot*: they disarm themselves
//! the moment they fire, so the engine's retry-under-fallback path does not
//! re-trip the same fault.
//!
//! Because the hooks are process-global, tests that arm them must not run
//! concurrently with each other; serialize them with a `Mutex` (see
//! `tests/fault_injection.rs` in the workspace root).
//!
//! ## Chaos schedules
//!
//! The one-shot hooks compose into [`ChaosSchedule`]s: deterministic,
//! LCG-seeded *sequences* of faults — several worker panics, allocation
//! failures at chosen charge indices, admission stalls, and clock-skew
//! jumps fired after chosen morsel counts — armed all at once with
//! [`ChaosSchedule::inject`]. The same seed always produces the same event
//! list, and every event keys off a deterministic index (morsel index =
//! `start / step`, process-wide charge count, process-wide morsel count),
//! so a failing soak run is replayable from its printed seed alone. The
//! hot path stays one relaxed atomic load: schedule state is only
//! consulted while [`schedule_active`] is set.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Morsel index at which a worker panic fires (`-1` = disarmed).
static PANIC_AT_MORSEL: AtomicI64 = AtomicI64::new(-1);
/// One-shot flag making the next plan lowered for static verification report
/// an allocation site that skips its memory charge.
static UNCHARGED_ALLOC: AtomicBool = AtomicBool::new(false);
/// Countdown of memory charges until one fails (`-1` = disarmed; the charge
/// observing `0` fails and disarms the hook).
static ALLOC_FAIL_COUNTDOWN: AtomicI64 = AtomicI64::new(-1);
/// Milliseconds added to every deadline-clock read (`0` = no skew).
static CLOCK_SKEW_MS: AtomicU64 = AtomicU64::new(0);
/// Fast-path flag: `true` while a [`ChaosSchedule`] is armed, so the
/// per-morsel and per-charge hooks only take the schedule lock when a soak
/// test is actually running.
static SCHEDULE_ACTIVE: AtomicBool = AtomicBool::new(false);
/// The armed chaos schedule's mutable state (consumed events are removed).
static SCHEDULE: Mutex<Option<ScheduleState>> = Mutex::new(None);

/// One fault in a [`ChaosSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Panic the worker that claims morsel `morsel` (one-shot per event;
    /// a schedule may carry several at different indices).
    WorkerPanic {
        /// Zero-based morsel index, in claim order within a stage.
        morsel: usize,
    },
    /// Fail the `charge`-th memory charge (zero-based, counted process-wide
    /// from the moment the schedule is armed).
    AllocFailure {
        /// Zero-based charge index.
        charge: usize,
    },
    /// After `after_morsels` morsels have completed process-wide, skew the
    /// deadline clock forward by `ms` milliseconds (cumulative with any
    /// other skew).
    ClockSkew {
        /// Process-wide completed-morsel count that triggers the skew.
        after_morsels: usize,
        /// Milliseconds to add to the deadline clock.
        ms: u64,
    },
    /// Stall the next admission attempt by `ms` milliseconds before it
    /// reaches the controller (one-shot per event).
    AdmissionStall {
        /// Milliseconds the admitting thread sleeps.
        ms: u64,
    },
}

/// Mutable view of an armed schedule; events are removed as they fire.
#[derive(Default)]
struct ScheduleState {
    /// Morsel indices that panic (one entry consumed per firing).
    panics: Vec<usize>,
    /// Charge indices that fail, against `charges_seen`.
    alloc_failures: Vec<usize>,
    /// `(after_morsels, ms)` skew triggers, against `morsels_seen`.
    skews: Vec<(usize, u64)>,
    /// Pending admission-stall durations, consumed FIFO.
    admission_stalls: Vec<u64>,
    /// Memory charges observed since arming.
    charges_seen: usize,
    /// Morsels completed since arming.
    morsels_seen: usize,
}

/// A deterministic, seeded sequence of faults. Generate one with
/// [`ChaosSchedule::from_seed`] (same seed ⇒ same events, forever) or
/// build the event list by hand, then arm it with
/// [`ChaosSchedule::inject`]. Like the one-shot hooks, schedules are
/// process-global: tests arming them must serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSchedule {
    /// The seed this schedule was generated from (0 for hand-built ones).
    pub seed: u64,
    /// The faults, in generation order.
    pub events: Vec<ChaosEvent>,
}

/// Multiplier/increment from Knuth's MMIX LCG — full 2^64 period, and the
/// whole reason a soak failure is replayable from its seed.
fn lcg_next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

impl ChaosSchedule {
    /// Derive a schedule of 2–5 faults from `seed`. Indices are kept small
    /// (morsels < 48, charges < 24, skew ≤ 8 s, stalls ≤ 20 ms) so every
    /// event has a real chance to fire against the soak workload; which
    /// kinds appear, and where, is entirely seed-driven.
    pub fn from_seed(seed: u64) -> ChaosSchedule {
        let mut s = seed ^ 0x9e37_79b9_7f4a_7c15;
        let n_events = 2 + (lcg_next(&mut s) % 4) as usize;
        let events = (0..n_events)
            .map(|_| match lcg_next(&mut s) % 4 {
                0 => ChaosEvent::WorkerPanic {
                    morsel: (lcg_next(&mut s) % 48) as usize,
                },
                1 => ChaosEvent::AllocFailure {
                    charge: (lcg_next(&mut s) % 24) as usize,
                },
                2 => ChaosEvent::ClockSkew {
                    after_morsels: (lcg_next(&mut s) % 64) as usize,
                    ms: 1000 + lcg_next(&mut s) % 7000,
                },
                _ => ChaosEvent::AdmissionStall {
                    ms: 1 + lcg_next(&mut s) % 20,
                },
            })
            .collect();
        ChaosSchedule { seed, events }
    }

    /// Arm every event of this schedule at once. The returned guard disarms
    /// the whole harness (schedule and one-shot hooks) on drop.
    pub fn inject(&self) -> FaultGuard {
        let mut state = ScheduleState::default();
        for ev in &self.events {
            match *ev {
                ChaosEvent::WorkerPanic { morsel } => state.panics.push(morsel),
                ChaosEvent::AllocFailure { charge } => state.alloc_failures.push(charge),
                ChaosEvent::ClockSkew { after_morsels, ms } => {
                    state.skews.push((after_morsels, ms));
                }
                ChaosEvent::AdmissionStall { ms } => state.admission_stalls.push(ms),
            }
        }
        *SCHEDULE.lock().expect("chaos schedule") = Some(state);
        SCHEDULE_ACTIVE.store(true, Ordering::SeqCst);
        FaultGuard { _priv: () }
    }
}

/// `true` while a [`ChaosSchedule`] is armed.
pub fn schedule_active() -> bool {
    SCHEDULE_ACTIVE.load(Ordering::Relaxed)
}

/// RAII guard returned by the `inject_*` functions; disarms **all** fault
/// hooks when dropped.
#[must_use = "faults stay armed only while the guard is alive"]
pub struct FaultGuard {
    _priv: (),
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        disarm_all();
    }
}

/// Disarm every fault hook immediately (also done by [`FaultGuard::drop`]).
pub fn disarm_all() {
    PANIC_AT_MORSEL.store(-1, Ordering::SeqCst);
    ALLOC_FAIL_COUNTDOWN.store(-1, Ordering::SeqCst);
    CLOCK_SKEW_MS.store(0, Ordering::SeqCst);
    UNCHARGED_ALLOC.store(false, Ordering::SeqCst);
    SCHEDULE_ACTIVE.store(false, Ordering::SeqCst);
    *SCHEDULE.lock().expect("chaos schedule") = None;
}

/// Arm a one-shot worker panic at morsel `index` (zero-based, in claim
/// order). Morsel indices are derived from row offsets, so the same index
/// denotes the same rows at any thread count — and on the shared pool.
pub fn inject_panic_at_morsel(index: usize) -> FaultGuard {
    PANIC_AT_MORSEL.store(index as i64, Ordering::SeqCst);
    FaultGuard { _priv: () }
}

/// Arm a one-shot allocation failure: the `nth` memory charge (zero-based)
/// made through a [`crate::MemGauge`] after this call reports
/// [`crate::RuntimeError::BudgetExceeded`] regardless of the actual budget.
pub fn inject_alloc_failure_at_charge(nth: usize) -> FaultGuard {
    ALLOC_FAIL_COUNTDOWN.store(nth as i64, Ordering::SeqCst);
    FaultGuard { _priv: () }
}

/// Arm a one-shot uncharged-allocation fault: the next plan lowered for
/// static verification presents one allocation site as *not* charging the
/// memory gauge, so a full verification pass must reject it. Exercises the
/// verifier's resource-accounting pass end-to-end through the engine.
pub fn inject_uncharged_alloc() -> FaultGuard {
    UNCHARGED_ALLOC.store(true, Ordering::SeqCst);
    FaultGuard { _priv: () }
}

/// Plan-time hook: `true` exactly once after [`inject_uncharged_alloc`].
/// Consulted by the plan layer when lowering a plan for static
/// verification; not a hot-path hook.
pub fn take_uncharged_alloc() -> bool {
    UNCHARGED_ALLOC.swap(false, Ordering::SeqCst)
}

/// Skew the deadline clock forward by `by`, making in-flight deadlines
/// appear already elapsed. Stays armed until the guard drops.
pub fn inject_clock_skew(by: Duration) -> FaultGuard {
    CLOCK_SKEW_MS.store(by.as_millis() as u64, Ordering::SeqCst);
    FaultGuard { _priv: () }
}

/// Hot-path hook: panic if a one-shot panic (or a schedule event) is armed
/// for this morsel.
pub(crate) fn maybe_panic_at_morsel(index: usize) {
    let target = PANIC_AT_MORSEL.load(Ordering::Relaxed);
    if target >= 0
        && target as usize == index
        && PANIC_AT_MORSEL
            .compare_exchange(target, -1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    {
        panic!("injected fault: worker panic at morsel {index}");
    }
    if SCHEDULE_ACTIVE.load(Ordering::Relaxed) {
        let mut fire = false;
        if let Some(state) = SCHEDULE.lock().expect("chaos schedule").as_mut() {
            if let Some(pos) = state.panics.iter().position(|&m| m == index) {
                state.panics.swap_remove(pos);
                fire = true;
            }
        }
        if fire {
            panic!("injected fault: scheduled worker panic at morsel {index}");
        }
    }
}

/// Hot-path hook: `true` exactly once, on the charge the countdown reaches
/// (or on a charge index named by an armed schedule).
pub(crate) fn charge_should_fail() -> bool {
    if SCHEDULE_ACTIVE.load(Ordering::Relaxed) {
        if let Some(state) = SCHEDULE.lock().expect("chaos schedule").as_mut() {
            let seen = state.charges_seen;
            state.charges_seen += 1;
            if let Some(pos) = state.alloc_failures.iter().position(|&c| c == seen) {
                state.alloc_failures.swap_remove(pos);
                return true;
            }
        }
    }
    if ALLOC_FAIL_COUNTDOWN.load(Ordering::Relaxed) < 0 {
        return false;
    }
    ALLOC_FAIL_COUNTDOWN
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
            if v < 0 {
                None
            } else {
                Some(v - 1)
            }
        })
        .map(|prev| prev == 0)
        .unwrap_or(false)
}

/// Progress hook: called once per completed morsel so schedule clock-skew
/// events can fire at deterministic morsel counts. No-op (one relaxed
/// load) unless a schedule is armed.
pub(crate) fn note_morsel_done() {
    if !SCHEDULE_ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    if let Some(state) = SCHEDULE.lock().expect("chaos schedule").as_mut() {
        state.morsels_seen += 1;
        let seen = state.morsels_seen;
        let mut i = 0;
        while i < state.skews.len() {
            if state.skews[i].0 < seen {
                let (_, ms) = state.skews.swap_remove(i);
                CLOCK_SKEW_MS.fetch_add(ms, Ordering::SeqCst);
            } else {
                i += 1;
            }
        }
    }
}

/// Admission hook: take the next scheduled stall duration, if any. The
/// caller sleeps *outside* the admission lock so a stalled arrival cannot
/// block permit releases.
pub(crate) fn take_admission_stall() -> Option<Duration> {
    if !SCHEDULE_ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    SCHEDULE
        .lock()
        .expect("chaos schedule")
        .as_mut()
        .and_then(|state| {
            if state.admission_stalls.is_empty() {
                None
            } else {
                Some(Duration::from_millis(state.admission_stalls.remove(0)))
            }
        })
}

/// The deadline clock: wall time plus any injected skew.
pub(crate) fn now() -> Instant {
    Instant::now() + Duration::from_millis(CLOCK_SKEW_MS.load(Ordering::Relaxed))
}
