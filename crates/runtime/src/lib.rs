//! # swole-runtime — the shared execution runtime
//!
//! The engine-independent half of the executor: everything about *how*
//! morsels get claimed, charged, cancelled, and scheduled, with no
//! knowledge of plans, tables, or SQL. `swole-plan` builds stage closures
//! (scan + fold bodies over tile-aligned morsels) and hands them to an
//! [`Executor`]; this crate decides which threads run them.
//!
//! Two executors share one worker contract:
//!
//! - [`Executor::Scoped`] — the original per-query model: `threads` scoped
//!   workers are spawned for the stage and join before it returns. Zero
//!   cross-query state; `threads == 1` runs inline on the caller.
//! - [`Executor::Pool`] — a fixed [`WorkerPool`] multiplexing morsels from
//!   N concurrent queries. Each stage keeps its own [`MorselQueue`] (so
//!   tile partitioning — and therefore results — are bit-identical to solo
//!   execution); pool workers round-robin across registered stages by
//!   [`Priority`] class, claiming one morsel per visit. The submitting
//!   thread participates too, so a query always makes progress even when
//!   every pool worker is busy elsewhere.
//!
//! [`MorselQueue`] is internal; stages only exist behind the executors.
//!
//! Around the executors sit the three resource-control layers a
//! multi-query server needs:
//!
//! - [`MemGauge`] / [`GlobalMemoryPool`] — hierarchical memory accounting:
//!   per-query gauges draw from one global byte budget under a
//!   [`MemoryPolicy`] (Greedy or FairShare), failing fast with a typed
//!   [`RuntimeError::BudgetExceeded`] instead of OOM-killing the process.
//! - [`AdmissionController`] — a bounded wait queue in front of execution
//!   with priority classes and deadline-aware rejection.
//! - [`ExecCtx`] / [`ExecHandle`] — per-query cancellation, deadlines, and
//!   progress, observed cooperatively at morsel boundaries.
//!
//! The [`faults`] module hosts the process-global fault-injection harness
//! the hardening tests use to force panics, allocation failures, and clock
//! skew through all of the above.

#![warn(missing_docs)]

pub mod admission;
mod ctx;
mod error;
pub mod faults;
mod gauge;
mod pool;

pub use admission::{
    AdmissionConfig, AdmissionController, AdmissionError, AdmissionPermit, Priority,
};
pub use ctx::{charge_or_panic, panic_payload_error, CancelState, ExecCtx, ExecHandle};
pub use error::RuntimeError;
pub use gauge::{GlobalMemoryPool, MemGauge, MemoryPolicy, MemoryPoolStats};
pub use pool::{Executor, WorkerPool};
