//! Per-query execution context: cancellation, deadlines, budgets,
//! progress.
//!
//! One [`ExecCtx`] is created per query and shared (via `Arc`) with every
//! morsel worker. Workers consult it at morsel boundaries (cooperative
//! cancellation — there is no preemption) and charge its gauge before
//! materializing temporaries (masks, bitmaps, hash tables, per-worker
//! scratch). All counters are relaxed atomics; the context adds no
//! synchronization to the tile loops themselves.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::admission::Priority;
use crate::error::RuntimeError;
use crate::faults;
use crate::gauge::{GlobalMemoryPool, MemGauge};

/// Shared cancellation flag behind [`ExecHandle`]. One `CancelState` scopes
/// cancellation: every query started under the same state observes the
/// same flag, and queries under a different state are untouched.
#[derive(Debug, Default)]
pub struct CancelState {
    cancelled: AtomicBool,
}

/// Cancellation token for an engine session.
///
/// Cloneable and sendable, so it can cancel a query running on another
/// thread. Cancellation is cooperative: workers observe it at their next
/// morsel boundary and the query returns [`RuntimeError::Cancelled`] with
/// partial-progress counts.
///
/// The flag is **sticky per scope**: once cancelled, every current *and
/// future* query under the same scope (engine or session) fails until
/// [`ExecHandle::reset`] clears it. It never leaks across scopes — each
/// session carries its own `CancelState`, so cancelling one session does
/// not affect queries admitted on the engine or on other sessions.
#[derive(Debug, Clone)]
pub struct ExecHandle {
    state: Arc<CancelState>,
}

impl ExecHandle {
    /// Wrap a cancel scope in a handle.
    pub fn new(state: Arc<CancelState>) -> ExecHandle {
        ExecHandle { state }
    }

    /// Request cancellation of the scope's in-flight (and future) queries.
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::SeqCst);
    }

    /// `true` once [`ExecHandle::cancel`] has been called (and not reset).
    pub fn is_cancelled(&self) -> bool {
        self.state.cancelled.load(Ordering::SeqCst)
    }

    /// Clear the cancellation flag so the scope accepts queries again.
    pub fn reset(&self) {
        self.state.cancelled.store(false, Ordering::SeqCst);
    }
}

/// Per-query execution context: cancellation, deadline, budget, progress.
///
/// Registers with the global memory pool (if any) on creation and returns
/// its held bytes on drop, so pool accounting is correct even when a query
/// errors out mid-flight.
pub struct ExecCtx {
    cancel: Arc<CancelState>,
    /// Absolute deadline on the (possibly fault-skewed) deadline clock.
    deadline: Option<Instant>,
    /// The query's memory gauge.
    pub gauge: MemGauge,
    priority: Priority,
    global: Option<Arc<GlobalMemoryPool>>,
    /// Set when any worker panics; siblings exit at their next boundary.
    tripped: AtomicBool,
    /// Set by [`ExecCtx::abort`] when engine shutdown hard-aborts the
    /// query; observed at the next morsel boundary as
    /// [`RuntimeError::Shutdown`].
    aborted: AtomicBool,
    morsels_done: AtomicUsize,
    morsels_total: AtomicUsize,
    /// Watchdog window: if no morsel completes for this long, the next
    /// cooperative check fails with [`RuntimeError::Stalled`]. `None`
    /// disables the watchdog (the default).
    stall_window: Option<Duration>,
    /// When the context was created, on the unskewed clock; the heartbeat
    /// below is measured from here.
    started: Instant,
    /// Watchdog heartbeat: milliseconds from `started` (on the possibly
    /// fault-skewed deadline clock) at which the last morsel completed.
    last_progress_ms: AtomicU64,
}

impl ExecCtx {
    /// A context for one query. `deadline` is absolute; compute it from
    /// the query's timeout *before* admission so time spent queued counts
    /// against it.
    pub fn new(
        cancel: Arc<CancelState>,
        deadline: Option<Instant>,
        budget: Option<usize>,
        global: Option<Arc<GlobalMemoryPool>>,
        priority: Priority,
    ) -> ExecCtx {
        if let Some(pool) = &global {
            pool.register();
        }
        ExecCtx {
            cancel,
            deadline,
            gauge: MemGauge::hierarchical(budget, global.clone()),
            priority,
            global,
            tripped: AtomicBool::new(false),
            aborted: AtomicBool::new(false),
            morsels_done: AtomicUsize::new(0),
            morsels_total: AtomicUsize::new(0),
            stall_window: None,
            started: Instant::now(),
            last_progress_ms: AtomicU64::new(0),
        }
    }

    /// Arm the per-query watchdog: if no morsel completes within `window`,
    /// the next cooperative check fails with [`RuntimeError::Stalled`].
    /// The stall clock is the fault-skewable deadline clock, so injected
    /// clock skew exercises the watchdog deterministically. Call before
    /// sharing the context (typically right after [`ExecCtx::new`]).
    pub fn with_stall_window(mut self, window: Option<Duration>) -> ExecCtx {
        self.stall_window = window;
        self
    }

    /// A context with no handle, deadline, or budget (tests, benches).
    pub fn unbounded() -> ExecCtx {
        ExecCtx::new(
            Arc::new(CancelState::default()),
            None,
            None,
            None,
            Priority::Normal,
        )
    }

    /// The cooperative check run at every morsel boundary (and once before
    /// dispatch, so zero-morsel inputs still observe a 0ms deadline).
    /// Precedence when several stop conditions hold at once: shutdown
    /// abort, then cancellation, then a watchdog stall, then deadline
    /// expiry — most-specific first.
    pub fn check(&self) -> Result<(), RuntimeError> {
        if self.aborted.load(Ordering::Relaxed) {
            return Err(RuntimeError::Shutdown {
                morsels_done: self.morsels_done.load(Ordering::Relaxed),
                morsels_total: self.morsels_total.load(Ordering::Relaxed),
            });
        }
        if self.cancel.cancelled.load(Ordering::Relaxed) {
            return Err(RuntimeError::Cancelled {
                morsels_done: self.morsels_done.load(Ordering::Relaxed),
                morsels_total: self.morsels_total.load(Ordering::Relaxed),
            });
        }
        if let Some(window) = self.stall_window {
            let elapsed = faults::now().saturating_duration_since(self.started);
            let last = self.last_progress_ms.load(Ordering::Relaxed);
            let idle_ms = (elapsed.as_millis() as u64).saturating_sub(last);
            if idle_ms > window.as_millis() as u64 {
                return Err(RuntimeError::Stalled {
                    morsels_done: self.morsels_done.load(Ordering::Relaxed),
                    morsels_total: self.morsels_total.load(Ordering::Relaxed),
                    window_ms: window.as_millis() as u64,
                });
            }
        }
        if let Some(deadline) = self.deadline {
            if faults::now() >= deadline {
                return Err(RuntimeError::DeadlineExceeded {
                    morsels_done: self.morsels_done.load(Ordering::Relaxed),
                    morsels_total: self.morsels_total.load(Ordering::Relaxed),
                });
            }
        }
        Ok(())
    }

    /// Mark the context failed so sibling workers stop claiming morsels.
    pub fn trip(&self) {
        self.tripped.store(true, Ordering::SeqCst);
    }

    /// `true` once a worker (or an earlier phase) has failed.
    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
    }

    /// Hard-abort the query for engine shutdown: every worker observes
    /// [`RuntimeError::Shutdown`] at its next morsel boundary. Unlike
    /// [`ExecHandle::cancel`] this is per-query, not per-scope, and cannot
    /// be reset.
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::Relaxed);
    }

    /// Record one fully processed morsel. This is the watchdog heartbeat:
    /// the stall clock restarts from here. The heartbeat is recorded
    /// *before* the chaos harness is notified, so a scheduled clock-skew
    /// event fires strictly after it — making watchdog trips under chaos
    /// deterministic.
    pub fn morsel_done(&self) {
        self.morsels_done.fetch_add(1, Ordering::Relaxed);
        if self.stall_window.is_some() {
            let elapsed = faults::now().saturating_duration_since(self.started);
            self.last_progress_ms
                .fetch_max(elapsed.as_millis() as u64, Ordering::Relaxed);
        }
        faults::note_morsel_done();
    }

    /// Add `n` morsels to the scheduled total (once per stage).
    pub fn add_morsels_total(&self, n: usize) {
        self.morsels_total.fetch_add(n, Ordering::Relaxed);
    }

    /// `(morsels_done, morsels_total)` for progress reporting.
    pub fn progress(&self) -> (usize, usize) {
        (
            self.morsels_done.load(Ordering::Relaxed),
            self.morsels_total.load(Ordering::Relaxed),
        )
    }

    /// The query's admission/scheduling priority class.
    pub fn priority(&self) -> Priority {
        self.priority
    }
}

impl Drop for ExecCtx {
    fn drop(&mut self) {
        if let Some(pool) = &self.global {
            pool.unregister(self.gauge.parent_charged());
        }
    }
}

/// Charge the gauge from a context where returning `Err` is impossible
/// (worker init closures, hash-table growth inside a tile loop). A failed
/// charge panics with the typed error as payload; the worker's
/// `catch_unwind` harness downcasts it back to the original
/// [`RuntimeError`].
pub fn charge_or_panic(gauge: &MemGauge, bytes: usize) {
    if let Err(e) = gauge.try_charge(bytes) {
        std::panic::panic_any(e);
    }
}

/// Convert a caught panic payload back into a typed error. Payloads thrown
/// via `panic_any(RuntimeError)` (budget charges inside infallible code)
/// pass through unchanged; string panics become [`RuntimeError::Panic`].
pub fn panic_payload_error(payload: Box<dyn std::any::Any + Send>) -> RuntimeError {
    if let Some(e) = payload.downcast_ref::<RuntimeError>() {
        return e.clone();
    }
    let msg = if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    };
    RuntimeError::Panic(msg)
}
