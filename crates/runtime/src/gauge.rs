//! Hierarchical memory accounting: per-query gauges under a global budget.
//!
//! Modeled on DataFusion's memory-pool split: a [`GlobalMemoryPool`] owns
//! the server-wide byte budget and a [`MemoryPolicy`] deciding how
//! concurrent queries share it; each query charges a private [`MemGauge`]
//! which forwards every charge to the pool first. A charge that either
//! budget cannot absorb fails with a typed
//! [`RuntimeError::BudgetExceeded`] *before* the allocation happens, so an
//! over-committed server degrades into per-query errors instead of an OOM
//! kill.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::error::RuntimeError;
use crate::faults;

/// How concurrent queries divide the global memory budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoryPolicy {
    /// First come, first served: any query may take any free budget. One
    /// hungry query can starve the others, but total throughput is highest
    /// when queries rarely collide.
    #[default]
    Greedy,
    /// Each of the `n` registered queries may hold at most `budget / n`
    /// bytes. A query that stays under its fair share can never be failed
    /// by a neighbour's appetite.
    FairShare,
}

/// Point-in-time snapshot of a [`GlobalMemoryPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryPoolStats {
    /// Bytes currently charged across all registered queries.
    pub used: usize,
    /// High-water mark of `used` over the pool's lifetime.
    pub peak: usize,
    /// The configured global budget in bytes.
    pub budget: usize,
    /// Queries currently registered (in flight).
    pub active: usize,
    /// The sharing policy.
    pub policy: MemoryPolicy,
}

/// The server-wide memory budget that per-query [`MemGauge`]s draw from.
///
/// The check-then-add is a single atomic `fetch_update`, so `used` can
/// never exceed `budget` — the invariant the armed-fault acceptance tests
/// assert via [`MemoryPoolStats::peak`]. FairShare limits are advisory
/// reads of the registration count (a query racing a register/unregister
/// may see a slightly stale share), but the global cap itself is exact.
#[derive(Debug)]
pub struct GlobalMemoryPool {
    budget: usize,
    policy: MemoryPolicy,
    used: AtomicUsize,
    peak: AtomicUsize,
    active: AtomicUsize,
}

impl GlobalMemoryPool {
    /// A pool with `budget` bytes shared under `policy`.
    pub fn new(budget: usize, policy: MemoryPolicy) -> GlobalMemoryPool {
        GlobalMemoryPool {
            budget,
            policy,
            used: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
        }
    }

    /// Register one more in-flight query (affects FairShare limits).
    pub fn register(&self) {
        self.active.fetch_add(1, Ordering::SeqCst);
    }

    /// Unregister an in-flight query, returning the bytes it still holds.
    pub fn unregister(&self, still_charged: usize) {
        self.release(still_charged);
        self.active.fetch_sub(1, Ordering::SeqCst);
    }

    /// The per-query byte limit under the current policy and registration
    /// count.
    pub fn query_limit(&self) -> usize {
        match self.policy {
            MemoryPolicy::Greedy => self.budget,
            MemoryPolicy::FairShare => self.budget / self.active.load(Ordering::SeqCst).max(1),
        }
    }

    /// Charge `bytes` for a query whose local usage after the charge would
    /// be `query_used_after`. Fails (without charging) if the query would
    /// exceed its policy share or the pool its global budget.
    pub fn try_charge(&self, bytes: usize, query_used_after: usize) -> Result<(), RuntimeError> {
        let limit = self.query_limit();
        if query_used_after > limit {
            return Err(RuntimeError::BudgetExceeded {
                requested: bytes,
                used: query_used_after.saturating_sub(bytes),
                budget: limit,
            });
        }
        let charged = self
            .used
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |used| {
                let after = used.checked_add(bytes)?;
                (after <= self.budget).then_some(after)
            });
        match charged {
            Ok(prev) => {
                self.peak.fetch_max(prev + bytes, Ordering::SeqCst);
                Ok(())
            }
            Err(used) => Err(RuntimeError::BudgetExceeded {
                requested: bytes,
                used,
                budget: self.budget,
            }),
        }
    }

    /// Return previously charged bytes to the pool.
    pub fn release(&self, bytes: usize) {
        let _ = self
            .used
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                Some(v.saturating_sub(bytes))
            });
    }

    /// Snapshot the pool's counters.
    pub fn stats(&self) -> MemoryPoolStats {
        MemoryPoolStats {
            used: self.used.load(Ordering::SeqCst),
            peak: self.peak.load(Ordering::SeqCst),
            budget: self.budget,
            active: self.active.load(Ordering::SeqCst),
            policy: self.policy,
        }
    }
}

/// Byte-accounting gauge enforcing a per-query memory budget.
///
/// The executor charges the gauge at every allocation site that scales with
/// input size — predicate masks, positional bitmaps, key sets, aggregation
/// hash tables (including growth), and per-worker tile scratch. A charge
/// that would push the total past the budget fails with
/// [`RuntimeError::BudgetExceeded`] *before* the allocation happens, so a
/// too-small budget degrades into a typed error instead of an OOM kill.
///
/// A gauge may additionally be attached to a [`GlobalMemoryPool`]
/// ([`MemGauge::hierarchical`]); every charge is then cleared with the pool
/// first, and the pool's share is returned when the owning context drops.
///
/// The gauge lives for one query; execution-path bytes are never released,
/// which overestimates transient peaks but keeps the hot path cheap.
/// Long-lived gauges (the plan cache) pair [`MemGauge::release`] with every
/// successful charge instead.
#[derive(Debug)]
pub struct MemGauge {
    used: AtomicUsize,
    /// `usize::MAX` means unlimited.
    budget: usize,
    global: Option<Arc<GlobalMemoryPool>>,
    /// Bytes successfully forwarded to `global` (released on drop by the
    /// owning [`crate::ExecCtx`]).
    parent_charged: AtomicUsize,
}

impl MemGauge {
    /// A standalone gauge with an optional local budget.
    pub fn new(budget: Option<usize>) -> MemGauge {
        MemGauge::hierarchical(budget, None)
    }

    /// A gauge whose charges are also cleared with a global pool.
    pub fn hierarchical(budget: Option<usize>, global: Option<Arc<GlobalMemoryPool>>) -> MemGauge {
        MemGauge {
            used: AtomicUsize::new(0),
            budget: budget.unwrap_or(usize::MAX),
            global,
            parent_charged: AtomicUsize::new(0),
        }
    }

    /// Charge `bytes` against the budget (and the global pool, if
    /// attached). Fails if either budget would be exceeded, or if the
    /// fault harness has an allocation failure armed for this charge.
    pub fn try_charge(&self, bytes: usize) -> Result<(), RuntimeError> {
        if faults::charge_should_fail() {
            return Err(RuntimeError::BudgetExceeded {
                requested: bytes,
                used: self.used(),
                budget: 0,
            });
        }
        if let Some(global) = &self.global {
            global.try_charge(bytes, self.used().saturating_add(bytes))?;
            self.parent_charged.fetch_add(bytes, Ordering::Relaxed);
        }
        let prev = self.used.fetch_add(bytes, Ordering::Relaxed);
        if prev.saturating_add(bytes) > self.budget {
            return Err(RuntimeError::BudgetExceeded {
                requested: bytes,
                used: prev,
                budget: self.budget,
            });
        }
        Ok(())
    }

    /// Charge `bytes` without consulting the fault-injection harness,
    /// rolling the charge back on failure.
    ///
    /// Long-lived gauges (the plan cache's byte budget) account bytes for
    /// the session's lifetime, not one query; an armed allocation fault is
    /// aimed at execution-path charges and must not be consumed by cache
    /// bookkeeping.
    pub fn try_charge_quiet(&self, bytes: usize) -> Result<(), RuntimeError> {
        if let Some(global) = &self.global {
            global.try_charge(bytes, self.used().saturating_add(bytes))?;
            self.parent_charged.fetch_add(bytes, Ordering::Relaxed);
        }
        let prev = self.used.fetch_add(bytes, Ordering::Relaxed);
        if prev.saturating_add(bytes) > self.budget {
            self.used.fetch_sub(bytes, Ordering::Relaxed);
            self.release_parent(bytes);
            return Err(RuntimeError::BudgetExceeded {
                requested: bytes,
                used: prev,
                budget: self.budget,
            });
        }
        Ok(())
    }

    /// Return previously charged bytes to the budget (cache eviction).
    /// Only meaningful for long-lived gauges that pair every release with
    /// an earlier successful charge.
    pub fn release(&self, bytes: usize) {
        let _ = self
            .used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(bytes))
            });
        self.release_parent(bytes);
    }

    /// Return up to `bytes` to the global pool, clamped to what this gauge
    /// actually forwarded.
    fn release_parent(&self, bytes: usize) {
        let Some(global) = &self.global else { return };
        let prev = self
            .parent_charged
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(bytes))
            })
            .unwrap_or(0);
        global.release(bytes.min(prev));
    }

    /// Bytes charged so far.
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// Bytes currently held against the global pool.
    pub(crate) fn parent_charged(&self) -> usize {
        self.parent_charged.load(Ordering::Relaxed)
    }

    /// The configured budget, if one was set.
    pub fn budget(&self) -> Option<usize> {
        (self.budget != usize::MAX).then_some(self.budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_pool_enforces_global_cap_exactly() {
        let pool = Arc::new(GlobalMemoryPool::new(1000, MemoryPolicy::Greedy));
        let a = MemGauge::hierarchical(None, Some(Arc::clone(&pool)));
        let b = MemGauge::hierarchical(None, Some(Arc::clone(&pool)));
        pool.register();
        pool.register();
        a.try_charge(700).expect("within budget");
        let err = b.try_charge(400).expect_err("would exceed global budget");
        assert!(matches!(
            err,
            RuntimeError::BudgetExceeded { budget: 1000, .. }
        ));
        b.try_charge(300).expect("exactly fills the budget");
        let stats = pool.stats();
        assert_eq!(stats.used, 1000);
        assert_eq!(stats.peak, 1000);
        pool.unregister(a.parent_charged());
        pool.unregister(b.parent_charged());
        assert_eq!(pool.stats().used, 0);
        assert_eq!(pool.stats().peak, 1000, "peak is a high-water mark");
    }

    #[test]
    fn fair_share_limits_each_query_to_its_slice() {
        let pool = Arc::new(GlobalMemoryPool::new(1000, MemoryPolicy::FairShare));
        pool.register();
        pool.register();
        let a = MemGauge::hierarchical(None, Some(Arc::clone(&pool)));
        let err = a.try_charge(600).expect_err("600 > 1000/2 share");
        assert!(matches!(
            err,
            RuntimeError::BudgetExceeded { budget: 500, .. }
        ));
        a.try_charge(500).expect("exactly the fair share");
        // The second query still gets its own slice.
        let b = MemGauge::hierarchical(None, Some(Arc::clone(&pool)));
        b.try_charge(500).expect("second query's share");
        pool.unregister(a.parent_charged());
        // With one query left the share grows back to the full budget.
        assert_eq!(pool.query_limit(), 1000);
        pool.unregister(b.parent_charged());
    }

    #[test]
    fn local_budget_failure_after_global_charge_stays_accounted() {
        let pool = Arc::new(GlobalMemoryPool::new(1000, MemoryPolicy::Greedy));
        pool.register();
        let g = MemGauge::hierarchical(Some(100), Some(Arc::clone(&pool)));
        let err = g.try_charge(200).expect_err("local budget is smaller");
        assert!(matches!(
            err,
            RuntimeError::BudgetExceeded { budget: 100, .. }
        ));
        // Sticky local accounting: the failed charge stays counted, and the
        // matching global share is returned wholesale at unregister.
        assert_eq!(g.used(), 200);
        assert_eq!(g.parent_charged(), 200);
        pool.unregister(g.parent_charged());
        assert_eq!(pool.stats().used, 0);
    }

    #[test]
    fn quiet_charge_rolls_back_both_levels() {
        let pool = Arc::new(GlobalMemoryPool::new(1000, MemoryPolicy::Greedy));
        pool.register();
        let g = MemGauge::hierarchical(Some(100), Some(Arc::clone(&pool)));
        g.try_charge_quiet(300).expect_err("over local budget");
        assert_eq!(g.used(), 0);
        assert_eq!(pool.stats().used, 0);
        g.try_charge_quiet(80).expect("fits");
        g.release(80);
        assert_eq!(g.used(), 0);
        assert_eq!(pool.stats().used, 0);
        pool.unregister(g.parent_charged());
    }
}
