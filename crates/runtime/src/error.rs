//! Typed runtime failures.

use std::fmt;

use crate::admission::AdmissionError;

/// Failures surfaced by the execution runtime. The query layer
/// (`swole-plan`) converts these into its own error type; nothing here
/// knows about plans or SQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The query was cancelled through an [`crate::ExecHandle`].
    Cancelled {
        /// Morsels fully processed before the cancellation took effect.
        morsels_done: usize,
        /// Morsels the execution had scheduled in total.
        morsels_total: usize,
    },
    /// The query's deadline elapsed mid-execution.
    DeadlineExceeded {
        /// Morsels fully processed before the deadline tripped.
        morsels_done: usize,
        /// Morsels the execution had scheduled in total.
        morsels_total: usize,
    },
    /// The query stopped making progress: no morsel completed within the
    /// configured watchdog window ([`crate::ExecCtx::with_stall_window`]),
    /// so the watchdog cancelled it rather than let it wedge a pool slot.
    Stalled {
        /// Morsels fully processed before the stall was detected.
        morsels_done: usize,
        /// Morsels the execution had scheduled in total.
        morsels_total: usize,
        /// The watchdog window that elapsed without progress, in ms.
        window_ms: u64,
    },
    /// The engine began shutting down and hard-aborted this in-flight
    /// query after the drain deadline passed.
    Shutdown {
        /// Morsels fully processed before the abort took effect.
        morsels_done: usize,
        /// Morsels the execution had scheduled in total.
        morsels_total: usize,
    },
    /// A memory charge would push a gauge (or the global pool) past its
    /// budget.
    BudgetExceeded {
        /// Bytes the failing allocation site asked for.
        requested: usize,
        /// Bytes already charged against the failing budget.
        used: usize,
        /// The failing budget in bytes (0 for an injected allocation
        /// failure).
        budget: usize,
    },
    /// The query was rejected before execution started.
    Admission(AdmissionError),
    /// A worker panicked; the panic was contained to the stage and its
    /// message captured here.
    Panic(String),
    /// The stage stopped because an earlier phase of the same query
    /// tripped the context; no error of its own was recorded.
    Stopped,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Cancelled {
                morsels_done,
                morsels_total,
            } => write!(
                f,
                "query cancelled after {morsels_done}/{morsels_total} morsels"
            ),
            RuntimeError::DeadlineExceeded {
                morsels_done,
                morsels_total,
            } => write!(
                f,
                "deadline exceeded after {morsels_done}/{morsels_total} morsels"
            ),
            RuntimeError::BudgetExceeded {
                requested,
                used,
                budget,
            } => write!(
                f,
                "memory budget exceeded: requested {requested} B with {used} B \
                 charged of a {budget} B budget"
            ),
            RuntimeError::Stalled {
                morsels_done,
                morsels_total,
                window_ms,
            } => write!(
                f,
                "query stalled: no morsel completed within {window_ms} ms \
                 ({morsels_done}/{morsels_total} morsels done)"
            ),
            RuntimeError::Shutdown {
                morsels_done,
                morsels_total,
            } => write!(
                f,
                "query aborted by engine shutdown after \
                 {morsels_done}/{morsels_total} morsels"
            ),
            RuntimeError::Admission(e) => write!(f, "admission rejected: {e}"),
            RuntimeError::Panic(msg) => write!(f, "worker panicked: {msg}"),
            RuntimeError::Stopped => {
                write!(f, "execution stopped by an earlier failure")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Pick the most actionable error when several workers failed at once:
/// budget exhaustion identifies the *cause*, a generic panic the symptom,
/// and cancellation/deadline merely the stop request.
pub(crate) fn pick_error(errors: Vec<RuntimeError>) -> RuntimeError {
    let rank = |e: &RuntimeError| match e {
        RuntimeError::BudgetExceeded { .. } => 0,
        RuntimeError::Panic(_) => 1,
        RuntimeError::Admission(_) => 2,
        RuntimeError::Cancelled { .. } => 3,
        RuntimeError::Shutdown { .. } => 4,
        RuntimeError::Stalled { .. } => 5,
        RuntimeError::DeadlineExceeded { .. } => 6,
        RuntimeError::Stopped => 7,
    };
    errors
        .into_iter()
        .min_by_key(rank)
        .unwrap_or_else(|| RuntimeError::Panic("worker failed without an error".into()))
}
