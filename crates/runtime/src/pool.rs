//! Morsel-driven executors: per-query scoped workers and the shared pool.
//!
//! Both executors partition each scan into tile-aligned morsels claimed
//! from a shared atomic counter — classic morsel-driven scheduling: cheap
//! dynamic load balancing, no work queues — and fold rows into
//! **thread-local** accumulators (scalar slots, hash tables, bitmaps). The
//! caller merges the per-worker partials; because every merge (i64 add,
//! min, max, bitmap OR) is commutative and associative, and group-by
//! output is sorted, results are bit-identical at any thread count *and*
//! at any pool concurrency.
//!
//! [`Executor::Scoped`] is the original model: `threads` workers on
//! `std::thread::scope`, joined before the stage returns; `threads == 1`
//! runs the worker body inline on the caller's thread, so single-thread
//! execution has no parallel tax.
//!
//! [`Executor::Pool`] multiplexes morsels from N concurrent queries over a
//! fixed [`WorkerPool`]. Each stage keeps its own private [`MorselQueue`]
//! (identical partitioning to solo execution); pool workers round-robin
//! across registered stages within the highest present [`Priority`] class,
//! claiming **one morsel per visit** so a long scan cannot monopolize the
//! pool. Accumulators live in a per-stage free list: a worker checks one
//! out per morsel and returns it afterwards, so the number of partials
//! stays bounded by the number of threads that ever touched the stage.
//! The submitting thread participates in its own stage, which both bounds
//! latency under load and guarantees progress if the pool is saturated.
//!
//! **Hardening:** every morsel body (and accumulator init) runs under
//! `catch_unwind`. A panic trips the stage's [`ExecCtx`], sibling claims
//! stop at the next boundary, and the panic surfaces as a typed
//! [`RuntimeError`] — the process (and the pool's worker threads) keep
//! running. The same morsel boundary is the cooperative
//! cancellation/deadline check, and the claimed morsel index feeds the
//! fault-injection harness.
//!
//! **Lifecycle:** [`WorkerPool::shutdown`] stops the workers and *joins*
//! them — no detached `swole-pool-*` thread survives a drain. Dropping the
//! pool routes through the same path, so the last engine handle going away
//! can never leak a worker thread.
//!
//! # Memory-ordering contract
//!
//! Every atomic in this module is annotated at its use site; the summary:
//!
//! - **Accumulator/partial data** is never published through an atomic at
//!   all: it moves through `Mutex<Vec<T>>` (`Stage::free`), and scoped
//!   workers hand theirs over via `join()`. The atomics below only gate
//!   *control flow*, which is why most of them can be `Relaxed`.
//! - `MorselQueue::next` — `Relaxed`. A pure claim ticket: `fetch_add` is
//!   atomic at any ordering, so ranges are disjoint; no worker reads data
//!   another worker wrote based on it.
//! - `Stage::outstanding` / `Stage::exhausted` — `Release`/`Acquire`
//!   pairs. These two *are* load-bearing: `maybe_finish` may run on a pool
//!   worker while the submitter sleeps in `wait_done`, and the
//!   done-signalling decision (queue dry **and** nothing mid-flight) must
//!   observe the claim reservations of every other worker. The actual
//!   wake-up then travels through the `done` mutex + condvar.
//! - Pool shutdown — **not an atomic anymore**: a plain `bool` inside the
//!   registry mutex. The flag is only ever read under the same mutex the
//!   workers sleep on (`next_task`), so mutex acquire/release orders it,
//!   and setting it under the lock before `notify_all` closes the classic
//!   missed-wakeup race a lock-free store allowed in principle.
//! - `ExecCtx` flags (`tripped`, cancellation) are `Relaxed`/`SeqCst` in
//!   `ctx.rs`; here they only short-circuit claim loops, never publish
//!   data.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::admission::Priority;
use crate::ctx::{panic_payload_error, ExecCtx};
use crate::error::{pick_error, RuntimeError};
use crate::faults;
use swole_kernels::TILE;

/// A shared dispenser of tile-aligned morsel bounds over `0..n_rows`.
struct MorselQueue {
    next: AtomicUsize,
    n_rows: usize,
    /// Rows per claim; always a whole number of tiles.
    step: usize,
}

impl MorselQueue {
    fn new(n_rows: usize, morsel_rows: usize) -> MorselQueue {
        MorselQueue {
            next: AtomicUsize::new(0),
            n_rows,
            step: morsel_rows.div_ceil(TILE).max(1) * TILE,
        }
    }

    /// Claim the next `(start, len, index)` morsel, or `None` when the scan
    /// is exhausted. The index is `start / step`, so a given index names
    /// the same rows at any thread count — what makes injected faults
    /// deterministic.
    fn claim(&self) -> Option<(usize, usize, usize)> {
        // Relaxed suffices: `fetch_add` hands out disjoint ranges at any
        // ordering, and no cross-thread data depends on *when* a claim
        // becomes visible — claimed rows are read-only table data.
        let start = self.next.fetch_add(self.step, Ordering::Relaxed);
        if start >= self.n_rows {
            return None;
        }
        Some((start, self.step.min(self.n_rows - start), start / self.step))
    }

    fn total(&self) -> usize {
        self.n_rows.div_ceil(self.step)
    }
}

// ---------------------------------------------------------------------------
// Scoped executor (per-query worker threads)
// ---------------------------------------------------------------------------

/// How a scoped worker left its claim loop.
enum Exit<T> {
    /// Queue exhausted; the worker's partial accumulator.
    Done(T),
    /// The worker itself hit a failure (panic, cancellation, deadline,
    /// budget charge).
    Interrupt(RuntimeError),
    /// A sibling tripped the context; this worker stopped early and its
    /// partial is meaningless.
    Stopped,
}

/// Why the claim loop stopped before the queue was exhausted.
enum Stop {
    Interrupt(RuntimeError),
    Sibling,
}

/// One scoped worker: init an accumulator, then claim morsels until the
/// queue is dry, the context trips, or a cooperative check fails. The
/// whole loop — including `init`, so budget charges for worker scratch are
/// covered — runs under `catch_unwind`.
fn run_worker<T, I, B>(ctx: &ExecCtx, queue: &MorselQueue, init: &I, body: &B) -> Exit<T>
where
    I: Fn() -> T,
    B: Fn(&mut T, usize, usize),
{
    let caught = catch_unwind(AssertUnwindSafe(|| -> Result<T, Stop> {
        let mut local = init();
        loop {
            if ctx.tripped() {
                return Err(Stop::Sibling);
            }
            if let Err(e) = ctx.check() {
                return Err(Stop::Interrupt(e));
            }
            let Some((start, len, index)) = queue.claim() else {
                return Ok(local);
            };
            faults::maybe_panic_at_morsel(index);
            body(&mut local, start, len);
            ctx.morsel_done();
        }
    }));
    match caught {
        Ok(Ok(local)) => Exit::Done(local),
        Ok(Err(Stop::Interrupt(e))) => {
            ctx.trip();
            Exit::Interrupt(e)
        }
        Ok(Err(Stop::Sibling)) => Exit::Stopped,
        Err(payload) => {
            ctx.trip();
            Exit::Interrupt(panic_payload_error(payload))
        }
    }
}

fn run_scoped<T, I, B>(
    ctx: &ExecCtx,
    threads: usize,
    queue: &MorselQueue,
    init: &I,
    body: &B,
) -> Result<Vec<T>, RuntimeError>
where
    T: Send,
    I: Fn() -> T + Sync,
    B: Fn(&mut T, usize, usize) + Sync,
{
    let exits: Vec<Exit<T>> = if threads <= 1 {
        vec![run_worker(ctx, queue, init, body)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| scope.spawn(move || run_worker(ctx, queue, init, body)))
                .collect();
            handles
                .into_iter()
                // The worker caught its own panics, so join never fails.
                .map(|h| h.join().unwrap_or(Exit::Stopped))
                .collect()
        })
    };
    let mut partials = Vec::with_capacity(exits.len());
    let mut errors = Vec::new();
    let mut stopped = false;
    for exit in exits {
        match exit {
            Exit::Done(t) => partials.push(t),
            Exit::Interrupt(e) => errors.push(e),
            Exit::Stopped => stopped = true,
        }
    }
    if !errors.is_empty() {
        return Err(pick_error(errors));
    }
    if stopped {
        // Tripped by a failure in an earlier phase of the same query.
        return Err(RuntimeError::Stopped);
    }
    Ok(partials)
}

// ---------------------------------------------------------------------------
// Shared worker pool
// ---------------------------------------------------------------------------

/// A registered unit of pool work: one stage of one query. Pool workers
/// only see this type-erased face; the accumulator type stays with the
/// submitting thread.
trait StageTask: Send + Sync {
    /// Claim and process at most one morsel. `false` means the stage has
    /// no further work for this worker (exhausted, failed, or tripped) and
    /// should be dropped from the registry.
    fn step(&self) -> bool;

    /// Hard-abort the stage for pool shutdown: trip its context so every
    /// participant (including the submitting thread) observes a typed
    /// [`RuntimeError::Shutdown`] at its next morsel boundary.
    fn abort(&self);
}

/// Stage state shared between the submitter and pool workers.
struct Stage<T, I, B> {
    ctx: Arc<ExecCtx>,
    queue: MorselQueue,
    init: I,
    body: B,
    /// Idle accumulators. A worker checks one out per morsel (creating one
    /// via `init` only when the list is empty) and returns it afterwards,
    /// so partial count ≤ distinct threads that ever ran a morsel.
    free: Mutex<Vec<T>>,
    errors: Mutex<Vec<RuntimeError>>,
    /// Morsels currently being processed. Incremented *before* claiming,
    /// so an observer that sees the queue dry and `outstanding == 0` knows
    /// no claimed morsel is still mid-flight.
    outstanding: AtomicUsize,
    exhausted: AtomicBool,
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl<T, I, B> Stage<T, I, B>
where
    T: Send + 'static,
    I: Fn() -> T + Send + Sync + 'static,
    B: Fn(&mut T, usize, usize) + Send + Sync + 'static,
{
    fn new(ctx: Arc<ExecCtx>, queue: MorselQueue, init: I, body: B) -> Stage<T, I, B> {
        Stage {
            ctx,
            queue,
            init,
            body,
            free: Mutex::new(Vec::new()),
            errors: Mutex::new(Vec::new()),
            outstanding: AtomicUsize::new(0),
            exhausted: AtomicBool::new(false),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        }
    }

    fn checkout(&self) -> T {
        if let Some(acc) = self.free.lock().expect("stage free list").pop() {
            return acc;
        }
        (self.init)()
    }

    fn fail(&self, e: RuntimeError) {
        self.ctx.trip();
        self.errors.lock().expect("stage error list").push(e);
        // Release pairs with the Acquire in `maybe_finish`/`step`: a
        // thread that sees `exhausted` also sees the error pushed above
        // (the error Mutex alone would suffice for the data, but the flag
        // must not be visible *before* the trip/push).
        self.exhausted.store(true, Ordering::Release);
        self.maybe_finish();
    }

    /// Signal the submitter once no further morsel can be (or is being)
    /// processed. Safe against late claimers: `outstanding` is raised
    /// before any claim, and the queue is monotonic, so once it reports
    /// dry with `outstanding == 0` no partial can appear afterwards on the
    /// success path.
    fn maybe_finish(&self) {
        // Acquire on both flags: observing `exhausted`/`outstanding == 0`
        // must also observe the accumulator returns (free-list pushes) of
        // the workers that got the stage there, so `finish()` drains
        // complete partials.
        let stop = self.exhausted.load(Ordering::Acquire) || self.ctx.tripped();
        if !stop || self.outstanding.load(Ordering::Acquire) != 0 {
            return;
        }
        let mut done = self.done.lock().expect("stage done flag");
        if !*done {
            *done = true;
            self.done_cv.notify_all();
        }
    }

    fn wait_done(&self) {
        let mut done = self.done.lock().expect("stage done flag");
        while !*done {
            done = self.done_cv.wait(done).expect("stage done flag");
        }
    }

    /// Drain partials and errors (submitter only, after `wait_done`).
    fn finish(&self) -> (Vec<T>, Vec<RuntimeError>) {
        let partials = std::mem::take(&mut *self.free.lock().expect("stage free list"));
        let errors = std::mem::take(&mut *self.errors.lock().expect("stage error list"));
        (partials, errors)
    }
}

impl<T, I, B> StageTask for Stage<T, I, B>
where
    T: Send + 'static,
    I: Fn() -> T + Send + Sync + 'static,
    B: Fn(&mut T, usize, usize) + Send + Sync + 'static,
{
    fn step(&self) -> bool {
        if self.ctx.tripped() || self.exhausted.load(Ordering::Acquire) {
            self.maybe_finish();
            return false;
        }
        if let Err(e) = self.ctx.check() {
            self.fail(e);
            return false;
        }
        // Reserve before claiming so a concurrent observer cannot see the
        // queue dry with this morsel still mid-flight. AcqRel: the raise
        // must be ordered before the claim (program order holds it there,
        // but the RMW also makes it globally visible before any observer
        // can see the queue dry), and the matching `fetch_sub` releases
        // the body's writes to whoever observes `outstanding == 0`.
        self.outstanding.fetch_add(1, Ordering::AcqRel);
        let Some((start, len, index)) = self.queue.claim() else {
            self.exhausted.store(true, Ordering::Release);
            self.outstanding.fetch_sub(1, Ordering::AcqRel);
            self.maybe_finish();
            return false;
        };
        let run = catch_unwind(AssertUnwindSafe(|| {
            faults::maybe_panic_at_morsel(index);
            let mut acc = self.checkout();
            (self.body)(&mut acc, start, len);
            self.ctx.morsel_done();
            self.free.lock().expect("stage free list").push(acc);
        }));
        self.outstanding.fetch_sub(1, Ordering::AcqRel);
        match run {
            Ok(()) => {
                self.maybe_finish();
                true
            }
            Err(payload) => {
                self.fail(panic_payload_error(payload));
                false
            }
        }
    }

    fn abort(&self) {
        // Mark the query shutdown-aborted, then trip so workers already
        // past their `check()` still stop claiming. The submitter (or a
        // worker) records the typed error at its next boundary via
        // `check()`; `maybe_finish` wakes a submitter that is already
        // asleep in `wait_done` with nothing outstanding.
        self.ctx.abort();
        self.ctx.trip();
        self.maybe_finish();
    }
}

struct RegisteredStage {
    id: u64,
    priority: Priority,
    task: Arc<dyn StageTask>,
}

#[derive(Default)]
struct Registry {
    stages: Vec<RegisteredStage>,
    next_id: u64,
    rr: usize,
    /// Plain bool, not an atomic: only ever read/written under this mutex
    /// (the one workers sleep on), so setting it before `notify_all`
    /// cannot race with a worker deciding to wait — see the module-level
    /// memory-ordering contract.
    shutdown: bool,
    /// Worker threads that have not yet exited `worker_loop`. Drained to
    /// zero (under `exit_cv`) before `shutdown` joins the handles.
    live_workers: usize,
}

struct PoolShared {
    registry: Mutex<Registry>,
    work_cv: Condvar,
    /// Signalled by each worker as it exits; `shutdown` waits on it until
    /// `live_workers` reaches zero.
    exit_cv: Condvar,
}

/// A fixed set of persistent worker threads multiplexing morsels from
/// every stage registered with the pool.
///
/// Workers pick the next stage by [`Priority`] class (higher classes
/// starve lower ones by design) and round-robin within the class, running
/// one morsel per visit. [`WorkerPool::shutdown`] (and `Drop`, which
/// routes through it) stops the workers and joins them; stages registered
/// after shutdown still complete because their submitting threads keep
/// stepping — they just run submitter-only.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: usize,
    /// Join handles for the spawned workers, drained exactly once by
    /// [`WorkerPool::shutdown`].
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawn a pool with `workers` persistent threads (at least one).
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            registry: Mutex::new(Registry::default()),
            work_cv: Condvar::new(),
            exit_cv: Condvar::new(),
        });
        // Account for the workers before spawning them so a shutdown racing
        // pool construction still waits for every thread.
        shared.registry.lock().expect("pool registry").live_workers = workers;
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("swole-pool-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn pool worker"),
            );
        }
        WorkerPool {
            shared,
            workers,
            handles: Mutex::new(handles),
        }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Worker threads that have not yet exited (for leak checks; `0` after
    /// a completed [`WorkerPool::shutdown`]).
    pub fn live_workers(&self) -> usize {
        self.shared
            .registry
            .lock()
            .expect("pool registry")
            .live_workers
    }

    /// Stop and join every worker thread.
    ///
    /// Without a deadline, waits for workers to finish their current
    /// morsel and exit — in-flight stages keep completing through their
    /// submitting threads. With a deadline, waits until then for a clean
    /// exit; if workers are still busy when it passes, every registered
    /// stage is hard-aborted (its query surfaces
    /// [`RuntimeError::Shutdown`] at the next morsel boundary) and the
    /// join then completes. Returns `true` when the drain finished without
    /// aborting anything. Idempotent: later calls see no live workers and
    /// return immediately.
    pub fn shutdown(&self, deadline: Option<Instant>) -> bool {
        {
            let mut reg = self.shared.registry.lock().expect("pool registry");
            reg.shutdown = true;
        }
        // Notify *after* releasing the lock so woken workers can take it.
        self.shared.work_cv.notify_all();
        let mut clean = true;
        let mut reg = self.shared.registry.lock().expect("pool registry");
        if let Some(deadline) = deadline {
            while reg.live_workers > 0 {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = self
                    .shared
                    .exit_cv
                    .wait_timeout(reg, deadline - now)
                    .expect("pool registry");
                reg = guard;
            }
            if reg.live_workers > 0 {
                // Deadline passed with workers still on morsels: abort the
                // registered stages so every participant bails at its next
                // boundary with a typed error. Cooperative — a morsel body
                // that never returns would still wedge the join below.
                clean = false;
                for stage in &reg.stages {
                    stage.task.abort();
                }
            }
        }
        while reg.live_workers > 0 {
            reg = self.shared.exit_cv.wait(reg).expect("pool registry");
        }
        drop(reg);
        let handles = std::mem::take(&mut *self.handles.lock().expect("pool handles"));
        for handle in handles {
            // Workers contain their panics via catch_unwind in step(), so
            // join failures are not expected; swallow rather than poison a
            // drain.
            let _ = handle.join();
        }
        clean
    }

    fn register(&self, priority: Priority, task: Arc<dyn StageTask>) -> u64 {
        let mut reg = self.shared.registry.lock().expect("pool registry");
        let id = reg.next_id;
        reg.next_id += 1;
        reg.stages.push(RegisteredStage { id, priority, task });
        drop(reg);
        self.shared.work_cv.notify_all();
        id
    }

    fn unregister(&self, id: u64) {
        let mut reg = self.shared.registry.lock().expect("pool registry");
        reg.stages.retain(|s| s.id != id);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Route through the graceful path: stop admission of new morsels
        // to pool threads and *join* them, so dropping the last engine
        // handle cannot leak a detached `swole-pool-*` thread.
        self.shutdown(None);
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    while let Some((id, task)) = next_task(&shared) {
        if !task.step() {
            // Stage out of work; drop it from the registry so idle workers
            // stop revisiting it (the submitter's unregister is a no-op
            // then).
            let mut reg = shared.registry.lock().expect("pool registry");
            reg.stages.retain(|s| s.id != id);
        }
    }
    // Shutdown observed: account this thread out and wake the joiner.
    let mut reg = shared.registry.lock().expect("pool registry");
    reg.live_workers -= 1;
    drop(reg);
    shared.exit_cv.notify_all();
}

fn next_task(shared: &PoolShared) -> Option<(u64, Arc<dyn StageTask>)> {
    let mut reg = shared.registry.lock().expect("pool registry");
    loop {
        // Plain bool read: we hold the registry mutex, the only place the
        // flag is written, so no atomic is needed and the set-then-notify
        // in `shutdown` cannot slip between this check and the wait below.
        if reg.shutdown {
            return None;
        }
        if let Some(pick) = pick_stage(&mut reg) {
            return Some(pick);
        }
        reg = shared.work_cv.wait(reg).expect("pool registry");
    }
}

/// Round-robin over the stages of the highest priority class present.
fn pick_stage(reg: &mut Registry) -> Option<(u64, Arc<dyn StageTask>)> {
    let top = reg.stages.iter().map(|s| s.priority).max()?;
    let class: Vec<usize> = reg
        .stages
        .iter()
        .enumerate()
        .filter(|(_, s)| s.priority == top)
        .map(|(i, _)| i)
        .collect();
    let chosen = class[reg.rr % class.len()];
    reg.rr = reg.rr.wrapping_add(1);
    let stage = &reg.stages[chosen];
    Some((stage.id, Arc::clone(&stage.task)))
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

/// Where a query's morsels run.
pub enum Executor {
    /// Per-query scoped workers: `threads` threads spawned per stage and
    /// joined before it returns (`<= 1` runs inline on the caller).
    Scoped {
        /// Worker threads per stage.
        threads: usize,
    },
    /// A fixed shared pool multiplexing morsels from all concurrent
    /// queries.
    Pool(WorkerPool),
}

impl Executor {
    /// The scoped (per-query threads) executor.
    pub fn scoped(threads: usize) -> Executor {
        Executor::Scoped {
            threads: threads.max(1),
        }
    }

    /// A shared-pool executor with `workers` persistent threads.
    pub fn pool(workers: usize) -> Executor {
        Executor::Pool(WorkerPool::new(workers))
    }

    /// `true` when queries share a fixed worker pool.
    pub fn is_pool(&self) -> bool {
        matches!(self, Executor::Pool(_))
    }

    /// Stop and join any persistent worker threads. A no-op (`true`) for
    /// the scoped executor, whose workers never outlive a stage; see
    /// [`WorkerPool::shutdown`] for pool semantics.
    pub fn shutdown(&self, deadline: Option<Instant>) -> bool {
        match self {
            Executor::Scoped { .. } => true,
            Executor::Pool(pool) => pool.shutdown(deadline),
        }
    }

    /// Persistent worker threads still running (`0` for scoped executors
    /// and for pools after a completed shutdown).
    pub fn live_workers(&self) -> usize {
        match self {
            Executor::Scoped { .. } => 0,
            Executor::Pool(pool) => pool.live_workers(),
        }
    }

    /// Run `body` over every morsel of `0..n_rows`, folding into
    /// `init()`-built accumulators. Returns all per-worker accumulators
    /// (at least one, even for zero-row inputs) for the caller's merge
    /// phase, or the highest-priority failure if any worker was
    /// interrupted.
    ///
    /// The closures must be `'static` because pool workers outlive the
    /// call stack; capture table data via `Arc`.
    pub fn run_morsels<T, I, B>(
        &self,
        ctx: &Arc<ExecCtx>,
        n_rows: usize,
        morsel_rows: usize,
        init: I,
        body: B,
    ) -> Result<Vec<T>, RuntimeError>
    where
        T: Send + 'static,
        I: Fn() -> T + Send + Sync + 'static,
        B: Fn(&mut T, usize, usize) + Send + Sync + 'static,
    {
        let queue = MorselQueue::new(n_rows, morsel_rows);
        ctx.add_morsels_total(queue.total());
        match self {
            Executor::Scoped { threads } => run_scoped(ctx, *threads, &queue, &init, &body),
            Executor::Pool(pool) => run_pooled(pool, ctx, queue, init, body),
        }
    }
}

fn run_pooled<T, I, B>(
    pool: &WorkerPool,
    ctx: &Arc<ExecCtx>,
    queue: MorselQueue,
    init: I,
    body: B,
) -> Result<Vec<T>, RuntimeError>
where
    T: Send + 'static,
    I: Fn() -> T + Send + Sync + 'static,
    B: Fn(&mut T, usize, usize) + Send + Sync + 'static,
{
    let stage = Arc::new(Stage::new(Arc::clone(ctx), queue, init, body));
    let id = pool.register(ctx.priority(), Arc::clone(&stage) as Arc<dyn StageTask>);
    // The submitting thread works its own stage too: progress is
    // guaranteed even if every pool worker is busy on other queries.
    while stage.step() {}
    stage.wait_done();
    pool.unregister(id);
    // A pool worker may still hold a transient clone of the stage from its
    // last visit (it drops it right after removing the stage from the
    // registry). Wait it out before returning: the stage owns the query's
    // `ExecCtx`, and resource release (global-memory charges, pool
    // registration) must be observable the moment this call returns, not
    // a beat later. The visits left are claim-nothing exits, so this spin
    // is microseconds at worst.
    while Arc::strong_count(&stage) > 1 {
        std::thread::yield_now();
    }
    let (mut partials, errors) = stage.finish();
    if !errors.is_empty() {
        return Err(pick_error(errors));
    }
    if ctx.tripped() {
        // Tripped by a failure in an earlier phase of the same query.
        return Err(RuntimeError::Stopped);
    }
    if partials.is_empty() {
        // Zero-morsel input: materialize one accumulator so the caller's
        // merge phase has a seed, under the same panic isolation (init may
        // charge the gauge).
        match catch_unwind(AssertUnwindSafe(|| (stage.init)())) {
            Ok(acc) => partials.push(acc),
            Err(payload) => return Err(panic_payload_error(payload)),
        }
    }
    Ok(partials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::CancelState;
    use crate::ExecHandle;

    fn executors() -> Vec<(&'static str, Executor)> {
        vec![
            ("scoped-1", Executor::scoped(1)),
            ("scoped-4", Executor::scoped(4)),
            ("pool-3", Executor::pool(3)),
        ]
    }

    #[test]
    fn all_rows_claimed_exactly_once() {
        for (name, exec) in executors() {
            for n in [0usize, 1, TILE, 10 * TILE + 13] {
                let ctx = Arc::new(ExecCtx::unbounded());
                let partials = exec
                    .run_morsels(
                        &ctx,
                        n,
                        2 * TILE,
                        Vec::new,
                        |seen: &mut Vec<(usize, usize)>, start, len| seen.push((start, len)),
                    )
                    .expect("no faults armed");
                let mut all: Vec<_> = partials.into_iter().flatten().collect();
                all.sort_unstable();
                let covered: usize = all.iter().map(|&(_, l)| l).sum();
                assert_eq!(covered, n, "exec={name} n={n}");
                let mut end = 0;
                for (s, l) in all {
                    assert_eq!(s, end, "exec={name} n={n}");
                    end = s + l;
                }
            }
        }
    }

    #[test]
    fn worker_panic_is_contained() {
        for (name, exec) in executors() {
            let ctx = Arc::new(ExecCtx::unbounded());
            let err = exec
                .run_morsels(
                    &ctx,
                    8 * TILE,
                    TILE,
                    || (),
                    |_, start, _| {
                        if start == 3 * TILE {
                            panic!("boom at {start}");
                        }
                    },
                )
                .expect_err("panic must surface as an error");
            match err {
                RuntimeError::Panic(msg) => assert!(msg.contains("boom"), "exec={name}: {msg}"),
                other => panic!("exec={name}: unexpected error: {other:?}"),
            }
            assert!(ctx.tripped(), "exec={name}");
        }
    }

    #[test]
    fn typed_panic_payload_passes_through() {
        for (name, exec) in executors() {
            let ctx = Arc::new(ExecCtx::unbounded());
            let err = exec
                .run_morsels(
                    &ctx,
                    4 * TILE,
                    TILE,
                    || (),
                    |_, _, _| {
                        std::panic::panic_any(RuntimeError::BudgetExceeded {
                            requested: 1,
                            used: 2,
                            budget: 3,
                        });
                    },
                )
                .expect_err("typed panic must surface");
            assert_eq!(
                err,
                RuntimeError::BudgetExceeded {
                    requested: 1,
                    used: 2,
                    budget: 3,
                },
                "exec={name}"
            );
        }
    }

    #[test]
    fn cancellation_is_observed_at_morsel_boundaries() {
        for (name, exec) in executors() {
            let cancel = Arc::new(CancelState::default());
            ExecHandle::new(Arc::clone(&cancel)).cancel();
            let ctx = Arc::new(ExecCtx::new(cancel, None, None, None, Priority::Normal));
            let err = exec
                .run_morsels(&ctx, 4 * TILE, TILE, || (), |_, _, _| {})
                .expect_err("pre-cancelled ctx must refuse work");
            assert!(
                matches!(err, RuntimeError::Cancelled { .. }),
                "exec={name}: {err:?}"
            );
        }
    }

    #[test]
    fn pool_runs_concurrent_stages_to_identical_results() {
        let exec = Arc::new(Executor::pool(3));
        // Miri interprets every accumulator iteration; shrink the row
        // count (and the client herd) so the interleavings still get
        // explored without minutes of interpretation.
        let (n, clients) = if cfg!(miri) {
            (4 * TILE + 7, 2)
        } else {
            (64 * TILE + 7, 8)
        };
        let solo: i64 = (0..n as i64).sum();
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let exec = Arc::clone(&exec);
                std::thread::spawn(move || {
                    let ctx = Arc::new(ExecCtx::unbounded());
                    let partials = exec
                        .run_morsels(
                            &ctx,
                            n,
                            2 * TILE,
                            || 0i64,
                            |acc, start, len| {
                                for i in start..start + len {
                                    *acc += i as i64;
                                }
                            },
                        )
                        .expect("no faults armed");
                    partials.into_iter().sum::<i64>()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().expect("client thread"), solo);
        }
    }

    #[test]
    fn shutdown_joins_all_workers_and_is_idempotent() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.live_workers(), 3);
        assert!(pool.shutdown(None), "idle pool drains cleanly");
        assert_eq!(pool.live_workers(), 0);
        assert!(pool.shutdown(None), "second shutdown is a no-op");
        assert!(pool.shutdown(Some(Instant::now())), "deadline form too");
    }

    #[test]
    fn stages_after_shutdown_run_submitter_only() {
        let exec = Executor::pool(2);
        assert!(exec.shutdown(None));
        assert_eq!(exec.live_workers(), 0);
        let ctx = Arc::new(ExecCtx::unbounded());
        let n = 8 * TILE;
        let partials = exec
            .run_morsels(
                &ctx,
                n,
                TILE,
                || 0usize,
                |acc, _, len| {
                    *acc += len;
                },
            )
            .expect("submitter keeps stepping after pool shutdown");
        assert_eq!(partials.into_iter().sum::<usize>(), n);
    }

    #[test]
    fn pool_failure_in_one_stage_leaves_others_untouched() {
        let exec = Arc::new(Executor::pool(2));
        let n = 32 * TILE;
        let good = {
            let exec = Arc::clone(&exec);
            std::thread::spawn(move || {
                let ctx = Arc::new(ExecCtx::unbounded());
                exec.run_morsels(
                    &ctx,
                    n,
                    TILE,
                    || 0usize,
                    |acc, _, len| {
                        *acc += len;
                    },
                )
                .map(|p| p.into_iter().sum::<usize>())
            })
        };
        let ctx = Arc::new(ExecCtx::unbounded());
        let err = exec
            .run_morsels(
                &ctx,
                n,
                TILE,
                || (),
                |_, start, _| {
                    if start >= 8 * TILE {
                        panic!("stage-local failure");
                    }
                },
            )
            .expect_err("panicking stage must fail");
        assert!(matches!(err, RuntimeError::Panic(_)));
        assert_eq!(good.join().expect("good stage thread"), Ok(n));
    }
}
