//! Cross-check: the access-aware engine must produce byte-identical
//! results to the naive reference interpreter on every supported plan
//! shape, whatever strategies the cost model picks.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use swole_plan::{
    interp, AggSpec, CmpOp, Database, Engine, Expr, LogicalPlan, PlanError, QueryBuilder,
};
use swole_storage::{ColumnData, DictColumn, Table};

fn test_db(seed: u64, n_r: usize, n_s: usize) -> Database {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut db = Database::new();
    let modes = ["AIR", "RAIL", "SHIP", "MAIL"];
    db.add_table(
        Table::new("R")
            .with_column(
                "x",
                ColumnData::I8((0..n_r).map(|_| rng.gen_range(0..100)).collect()),
            )
            .with_column(
                "a",
                ColumnData::I32((0..n_r).map(|_| rng.gen_range(1..50)).collect()),
            )
            .with_column(
                "b",
                ColumnData::I32((0..n_r).map(|_| rng.gen_range(1..50)).collect()),
            )
            .with_column(
                "c",
                ColumnData::I16((0..n_r).map(|_| rng.gen_range(0..16)).collect()),
            )
            .with_column(
                "fk",
                ColumnData::U32((0..n_r).map(|_| rng.gen_range(0..n_s as u32)).collect()),
            )
            .with_column(
                "mode",
                ColumnData::Dict(DictColumn::encode(
                    &(0..n_r)
                        .map(|_| modes[rng.gen_range(0..modes.len())])
                        .collect::<Vec<_>>(),
                )),
            ),
    );
    db.add_table(Table::new("S").with_column(
        "y",
        ColumnData::I8((0..n_s).map(|_| rng.gen_range(0..100)).collect()),
    ));
    db.add_fk("R", "fk", "S").unwrap();
    db
}

fn check(db: Database, plan: &LogicalPlan) {
    let expected = interp::run(&db, plan).expect("interp");
    // Two morsel workers: the same merge-based execution path a parallel
    // session uses, cross-checked against the row-at-a-time reference.
    let engine = Engine::builder(db).threads(2).tile_rows(4096).build();
    let explain = engine.explain(plan).expect("explain");
    let got = engine.query(plan).expect("engine");
    assert_eq!(got, expected, "plan: {explain}");
}

#[test]
fn scalar_agg_across_selectivities() {
    for sel in [0i64, 7, 50, 93, 100] {
        let plan = QueryBuilder::scan("R")
            .filter(Expr::col("x").cmp(CmpOp::Lt, Expr::lit(sel)))
            .aggregate(
                None,
                vec![
                    AggSpec::sum(Expr::col("a").mul(Expr::col("b")), "s"),
                    AggSpec::count("n"),
                ],
            );
        check(test_db(sel as u64, 10_000, 64), &plan);
    }
}

#[test]
fn scalar_agg_no_filter() {
    let plan = QueryBuilder::scan("R").aggregate(
        None,
        vec![AggSpec::sum(Expr::col("a"), "s"), AggSpec::count("n")],
    );
    check(test_db(1, 5_000, 16), &plan);
}

#[test]
fn min_max_force_hybrid_and_match() {
    let plan = QueryBuilder::scan("R")
        .filter(Expr::col("x").cmp(CmpOp::Ge, Expr::lit(40)))
        .aggregate(
            None,
            vec![
                AggSpec::min(Expr::col("a"), "lo"),
                AggSpec::max(Expr::col("a").mul(Expr::col("b")), "hi"),
                AggSpec::count("n"),
            ],
        );
    let db = test_db(2, 8_000, 16);
    let physical = Engine::builder(test_db(2, 8_000, 16))
        .build()
        .plan(&plan)
        .unwrap();
    assert_eq!(
        physical.agg_strategy(),
        Some(swole_cost::AggStrategy::Hybrid)
    );
    check(db, &plan);
}

#[test]
fn empty_selection_yields_zeros() {
    let plan = QueryBuilder::scan("R")
        .filter(Expr::col("x").cmp(CmpOp::Lt, Expr::lit(-5)))
        .aggregate(
            None,
            vec![
                AggSpec::sum(Expr::col("a"), "s"),
                AggSpec::min(Expr::col("a"), "m"),
            ],
        );
    let db = test_db(3, 2_000, 16);
    let expected = interp::run(&db, &plan).unwrap();
    assert_eq!(expected.rows, vec![vec![0, 0]]);
    check(db, &plan);
}

#[test]
fn groupby_agg_across_selectivities() {
    for sel in [0i64, 13, 60, 100] {
        let plan = QueryBuilder::scan("R")
            .filter(Expr::col("x").cmp(CmpOp::Lt, Expr::lit(sel)))
            .aggregate(
                Some("c"),
                vec![
                    AggSpec::sum(Expr::col("a").mul(Expr::col("b")), "s"),
                    AggSpec::count("n"),
                ],
            );
        check(test_db(100 + sel as u64, 12_000, 32), &plan);
    }
}

#[test]
fn groupby_min_max_hybrid() {
    let plan = QueryBuilder::scan("R")
        .filter(Expr::col("x").cmp(CmpOp::Lt, Expr::lit(70)))
        .aggregate(
            Some("c"),
            vec![
                AggSpec::min(Expr::col("a"), "lo"),
                AggSpec::max(Expr::col("a"), "hi"),
            ],
        );
    check(test_db(5, 6_000, 16), &plan);
}

#[test]
fn dictionary_predicates() {
    let plan = QueryBuilder::scan("R")
        .filter(Expr::InList {
            col: "mode".into(),
            values: vec!["AIR".into(), "MAIL".into()],
        })
        .aggregate(Some("c"), vec![AggSpec::sum(Expr::col("a"), "s")]);
    check(test_db(6, 7_000, 16), &plan);

    let like = QueryBuilder::scan("R")
        .filter(Expr::Like {
            col: "mode".into(),
            pattern: "%AI%".into(),
        })
        .aggregate(None, vec![AggSpec::count("n")]);
    check(test_db(7, 7_000, 16), &like);
}

#[test]
fn case_expression_masked_evaluation() {
    let plan = QueryBuilder::scan("R").aggregate(
        None,
        vec![AggSpec::sum(
            Expr::Case {
                when: Box::new(Expr::col("x").cmp(CmpOp::Lt, Expr::lit(30))),
                then: Box::new(Expr::col("a").mul(Expr::lit(2))),
                otherwise: Box::new(Expr::col("b")),
            },
            "s",
        )],
    );
    check(test_db(8, 9_000, 16), &plan);
}

#[test]
fn semijoin_agg_all_quadrants() {
    for (sel_r, sel_s) in [(10, 90), (90, 10), (50, 50), (100, 100), (0, 50)] {
        let plan = QueryBuilder::scan("R")
            .filter(Expr::col("x").cmp(CmpOp::Lt, Expr::lit(sel_r)))
            .semijoin(
                QueryBuilder::scan("S").filter(Expr::col("y").cmp(CmpOp::Lt, Expr::lit(sel_s))),
                "fk",
            )
            .aggregate(
                None,
                vec![
                    AggSpec::sum(Expr::col("a").mul(Expr::col("b")), "s"),
                    AggSpec::count("n"),
                ],
            );
        check(test_db(200 + sel_r as u64, 10_000, 256), &plan);
    }
}

#[test]
fn semijoin_unfiltered_probe() {
    let plan = QueryBuilder::scan("R")
        .semijoin(
            QueryBuilder::scan("S").filter(Expr::col("y").cmp(CmpOp::Lt, Expr::lit(40))),
            "fk",
        )
        .aggregate(None, vec![AggSpec::sum(Expr::col("a"), "s")]);
    check(test_db(9, 10_000, 128), &plan);
}

#[test]
fn groupjoin_both_strategies_match() {
    // Small S → eager aggregation; verify against interp either way.
    for (n_s, sel) in [(32usize, 50i64), (4096, 5), (4096, 95)] {
        let plan = QueryBuilder::scan("R")
            .semijoin(
                QueryBuilder::scan("S").filter(Expr::col("y").cmp(CmpOp::Lt, Expr::lit(sel))),
                "fk",
            )
            .aggregate(
                Some("fk"),
                vec![
                    AggSpec::sum(Expr::col("a").mul(Expr::col("b")), "s"),
                    AggSpec::count("n"),
                ],
            );
        check(test_db(300 + n_s as u64 + sel as u64, 20_000, n_s), &plan);
    }
}

#[test]
fn explain_mentions_chosen_technique() {
    let db = test_db(10, 50_000, 64);
    let engine = Engine::builder(db).threads(4).build();
    let plan = QueryBuilder::scan("R")
        .filter(Expr::col("x").cmp(CmpOp::Lt, Expr::lit(60)))
        .aggregate(
            Some("c"),
            vec![AggSpec::sum(Expr::col("a").mul(Expr::col("b")), "s")],
        );
    let report = engine.explain(&plan).unwrap();
    assert_eq!(report.threads, 4);
    assert!(!report.cost_terms.is_empty(), "cost evidence recorded");
    let text = report.to_string();
    assert!(
        text.contains("masking") || text.contains("hybrid"),
        "{text}"
    );
    assert!(text.contains("Scan R"), "{text}");
    assert!(text.contains("4 thread(s)"), "{text}");
}

#[test]
fn unsupported_shapes_error_cleanly() {
    let db = test_db(11, 100, 16);
    let engine = Engine::builder(db).build();
    // No aggregation on top.
    let bare = QueryBuilder::scan("R").build();
    assert!(matches!(engine.plan(&bare), Err(PlanError::Unsupported(_))));
    // Unknown table / column.
    let bad_table = QueryBuilder::scan("ZZZ").aggregate(None, vec![AggSpec::count("n")]);
    assert!(matches!(
        engine.plan(&bad_table),
        Err(PlanError::UnknownTable(_))
    ));
    let bad_col = QueryBuilder::scan("R")
        .filter(Expr::col("nope").cmp(CmpOp::Lt, Expr::lit(1)))
        .aggregate(None, vec![AggSpec::count("n")]);
    assert!(matches!(
        engine.plan(&bad_col),
        Err(PlanError::UnknownColumn { .. })
    ));
    // Group-by over a semijoin on a non-FK column.
    let bad_group = QueryBuilder::scan("R")
        .semijoin(QueryBuilder::scan("S"), "fk")
        .aggregate(Some("c"), vec![AggSpec::count("n")]);
    assert!(matches!(
        engine.plan(&bad_group),
        Err(PlanError::Unsupported(_))
    ));
}

#[test]
fn filter_above_semijoin_is_probe_filter() {
    let plan = LogicalPlan::Aggregate {
        input: Box::new(LogicalPlan::Filter {
            input: Box::new(
                QueryBuilder::scan("R")
                    .semijoin(
                        QueryBuilder::scan("S")
                            .filter(Expr::col("y").cmp(CmpOp::Lt, Expr::lit(50))),
                        "fk",
                    )
                    .build(),
            ),
            predicate: Expr::col("x").cmp(CmpOp::Lt, Expr::lit(30)),
        }),
        group_by: None,
        aggs: vec![AggSpec::sum(Expr::col("a"), "s")],
    };
    check(test_db(12, 8_000, 64), &plan);
}
