//! EXPLAIN ANALYZE: per-operator access-pattern metrics.
//!
//! The paper's entire argument is about access patterns — sequential vs
//! conditional reads, probe locality, the wasted work a pullup accepts —
//! yet a cost model alone can only *predict* them. This module measures
//! them: every operator accumulates [`AccessCounters`] per worker (plain
//! `u64` adds on paths the tile loops already touch), workers merge by
//! field-wise addition exactly like the aggregate accumulators, and the
//! engine attaches a [`QueryMetrics`] snapshot to the result.
//!
//! ## Determinism
//!
//! Tiles partition the input identically regardless of which worker claims
//! which morsel, so every counter that is a sum of per-tile contributions —
//! `rows_in`, `rows_out`, `predicate_evals`, `wasted_lanes`, `ht_probes`,
//! `morsels` — is **bit-identical at any thread count**
//! (`tests/metrics_invariants.rs` asserts this). Hash-table *internals* are
//! not: each worker builds a private table, so probe-chain lengths, resizes
//! and allocation traffic depend on how rows landed per worker. Those are
//! reported ([`OpMetrics::ht`]) but documented as partition-dependent;
//! `ht.inserts` is overridden with the *merged* table's final key count,
//! which is deterministic again.
//!
//! ## Overhead
//!
//! [`MetricsLevel::Off`] adds nothing to the hot loops (every counter add
//! is gated on the level, a predictable branch). [`MetricsLevel::Counters`]
//! adds the gated `u64` adds plus one extra `mask_count` per tile on the
//! masked group-by paths (the only counters not derivable from work the
//! kernel already did) — bounded at <5% on the scaling bench, which
//! measures it. [`MetricsLevel::Timings`] additionally reads a monotonic
//! clock per operator phase (not per tile).

use std::fmt;

use swole_ht::HtCounters;
use swole_kernels::AccessCounters;

/// How much the engine measures while executing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum MetricsLevel {
    /// Measure nothing (default): counter code is branch-predicted away.
    #[default]
    Off,
    /// Per-operator access counters, merged deterministically.
    Counters,
    /// Counters plus wall-clock time per operator phase and per query.
    Timings,
}

impl MetricsLevel {
    /// Lowercase name, as rendered by `EXPLAIN ANALYZE` and JSON.
    pub fn name(self) -> &'static str {
        match self {
            MetricsLevel::Off => "off",
            MetricsLevel::Counters => "counters",
            MetricsLevel::Timings => "timings",
        }
    }

    /// True when access counters are collected.
    #[inline(always)]
    pub fn counting(self) -> bool {
        self >= MetricsLevel::Counters
    }

    /// True when wall-clock phases are measured.
    #[inline(always)]
    pub fn timing(self) -> bool {
        self >= MetricsLevel::Timings
    }
}

/// Counters for one physical operator (one build or probe-aggregate pass).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpMetrics {
    /// Operator name, stable across runs (e.g. `probe-agg(lineitem)`).
    pub name: String,
    /// Deterministic access-pattern counters (see module docs).
    pub access: AccessCounters,
    /// Hash-table internals. `inserts` is the merged table's final key
    /// count (deterministic); `probes`, `probe_steps`, `resizes` and
    /// `bytes_allocated` are summed over per-worker private tables and
    /// depend on the morsel partition.
    pub ht: HtCounters,
    /// Bits set in a positional bitmap this operator built (0 otherwise).
    pub bitmap_bits_set: u64,
    /// 64-bit words backing that bitmap.
    pub bitmap_words: u64,
    /// Wall-clock nanoseconds for this operator phase
    /// ([`MetricsLevel::Timings`] only, else 0).
    pub wall_nanos: u64,
}

impl OpMetrics {
    /// Fresh counters for a named operator.
    pub fn named(name: impl Into<String>) -> OpMetrics {
        OpMetrics {
            name: name.into(),
            ..OpMetrics::default()
        }
    }

    /// Observed selectivity `rows_out / rows_in`, or `None` before any row
    /// was scanned.
    pub fn observed_selectivity(&self) -> Option<f64> {
        self.access.observed_selectivity()
    }
}

/// A complete metrics snapshot for one query execution, attached to
/// [`crate::QueryResult`] and to `EXPLAIN ANALYZE` output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryMetrics {
    /// The level the query executed under.
    pub level: MetricsLevel,
    /// Per-operator counters in pipeline order (build phases first).
    pub operators: Vec<OpMetrics>,
    /// Fallback retries (1 when the SWOLE strategy failed a runtime
    /// precondition and the data-centric interpreter re-ran the query; its
    /// counters then *replace* the failed attempt's, so rows are never
    /// double-counted).
    pub retries: u32,
    /// Peak bytes charged to the query's memory gauge.
    pub bytes_charged: u64,
    /// The plan certificate's statically proven peak-memory bound, when a
    /// certificate was derived. Soundness invariant (asserted by the
    /// conformance harness): `bytes_charged <= bytes_bound`.
    pub bytes_bound: Option<u64>,
    /// End-to-end wall-clock nanoseconds ([`MetricsLevel::Timings`] only).
    pub elapsed_nanos: u64,
    /// The cost model's predicted cycles for the strategy that ran.
    pub predicted_cost: Option<f64>,
    /// The same formula re-evaluated with observed selectivity and observed
    /// group-key count — how the model would have scored this strategy with
    /// perfect estimates.
    pub observed_cost: Option<f64>,
    /// The planner's sampled selectivity estimate for the primary filter.
    pub estimated_selectivity: Option<f64>,
}

impl QueryMetrics {
    /// The named operator's counters, if present.
    pub fn op(&self, name: &str) -> Option<&OpMetrics> {
        self.operators.iter().find(|o| o.name == name)
    }

    /// Sum of the deterministic access counters across all operators.
    pub fn total(&self) -> AccessCounters {
        let mut t = AccessCounters::default();
        for o in &self.operators {
            t.merge(&o.access);
        }
        t
    }

    /// Relative error `|predicted - observed| / observed` of the cost
    /// model, when both sides were evaluated.
    pub fn cost_relative_error(&self) -> Option<f64> {
        match (self.predicted_cost, self.observed_cost) {
            (Some(p), Some(o)) => swole_cost::observed::relative_error(p, o),
            _ => None,
        }
    }

    /// Machine-readable JSON (hand-rolled; the workspace has no serde).
    /// Stable key order, suitable for `BENCH_*.json` counter trajectories.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + 256 * self.operators.len());
        s.push_str("{\"level\":\"");
        s.push_str(self.level.name());
        s.push_str("\",\"retries\":");
        s.push_str(&self.retries.to_string());
        s.push_str(",\"bytes_charged\":");
        s.push_str(&self.bytes_charged.to_string());
        s.push_str(",\"bytes_bound\":");
        match self.bytes_bound {
            Some(b) => s.push_str(&b.to_string()),
            None => s.push_str("null"),
        }
        s.push_str(",\"elapsed_nanos\":");
        s.push_str(&self.elapsed_nanos.to_string());
        s.push_str(",\"predicted_cost\":");
        push_json_f64(&mut s, self.predicted_cost);
        s.push_str(",\"observed_cost\":");
        push_json_f64(&mut s, self.observed_cost);
        s.push_str(",\"estimated_selectivity\":");
        push_json_f64(&mut s, self.estimated_selectivity);
        s.push_str(",\"operators\":[");
        for (i, o) in self.operators.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"name\":");
            push_json_string(&mut s, &o.name);
            for (key, v) in [
                ("rows_in", o.access.rows_in),
                ("rows_out", o.access.rows_out),
                ("predicate_evals", o.access.predicate_evals),
                ("wasted_lanes", o.access.wasted_lanes),
                ("ht_probes", o.access.ht_probes),
                ("morsels", o.access.morsels),
                ("ht_inserts", o.ht.inserts),
                ("ht_probe_steps", o.ht.probe_steps),
                ("ht_resizes", o.ht.resizes),
                ("ht_bytes_allocated", o.ht.bytes_allocated),
                ("bitmap_bits_set", o.bitmap_bits_set),
                ("bitmap_words", o.bitmap_words),
                ("wall_nanos", o.wall_nanos),
            ] {
                s.push_str(",\"");
                s.push_str(key);
                s.push_str("\":");
                s.push_str(&v.to_string());
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

fn push_json_f64(s: &mut String, v: Option<f64>) {
    match v {
        Some(x) if x.is_finite() => s.push_str(&format!("{x}")),
        _ => s.push_str("null"),
    }
}

fn push_json_string(s: &mut String, v: &str) {
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
}

/// `EXPLAIN ANALYZE`'s `analyze` section. Deterministic except the lines
/// containing `ns` (wall-clock), which golden tests normalize away.
impl fmt::Display for QueryMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "analyze[{}]:", self.level.name())?;
        for o in &self.operators {
            write!(
                f,
                "\n    {}: rows {} -> {}",
                o.name, o.access.rows_in, o.access.rows_out
            )?;
            if let Some(sel) = o.observed_selectivity() {
                write!(f, " (sel {sel:.4})")?;
            }
            write!(
                f,
                ", pred evals {}, wasted lanes {}, ht probes {}, morsels {}",
                o.access.predicate_evals,
                o.access.wasted_lanes,
                o.access.ht_probes,
                o.access.morsels
            )?;
            if o.ht != HtCounters::default() {
                write!(
                    f,
                    "\n      ht: {} keys, {} probe steps, {} resizes, {} B allocated",
                    o.ht.inserts, o.ht.probe_steps, o.ht.resizes, o.ht.bytes_allocated
                )?;
            }
            if o.bitmap_words > 0 {
                write!(
                    f,
                    "\n      bitmap: {} bits set, {} words",
                    o.bitmap_bits_set, o.bitmap_words
                )?;
            }
            if o.wall_nanos > 0 {
                write!(f, "\n      wall: {} ns", o.wall_nanos)?;
            }
        }
        if let Some(p) = self.predicted_cost {
            write!(f, "\n    cost: predicted {p:.3e} cyc")?;
            if let Some(o) = self.observed_cost {
                write!(f, ", observed {o:.3e} cyc")?;
                if let Some(err) = self.cost_relative_error() {
                    write!(f, " (rel err {:.1}%)", err * 100.0)?;
                }
            }
        }
        if let Some(est) = self.estimated_selectivity {
            write!(f, "\n    selectivity: est {est:.4}")?;
            if let Some(obs) = self.operators.iter().find_map(|o| o.observed_selectivity()) {
                write!(f, ", observed {obs:.4}")?;
            }
        }
        write!(
            f,
            "\n    retries: {}, bytes charged: {}",
            self.retries, self.bytes_charged
        )?;
        if let Some(bound) = self.bytes_bound {
            write!(f, ", bytes bound: {bound}")?;
        }
        if self.elapsed_nanos > 0 {
            write!(f, "\n    elapsed: {} ns", self.elapsed_nanos)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_gates_work() {
        assert!(!MetricsLevel::Off.counting());
        assert!(MetricsLevel::Counters.counting());
        assert!(!MetricsLevel::Counters.timing());
        assert!(MetricsLevel::Timings.counting() && MetricsLevel::Timings.timing());
        assert_eq!(MetricsLevel::default(), MetricsLevel::Off);
    }

    #[test]
    fn json_is_well_formed_and_escapes() {
        let m = QueryMetrics {
            level: MetricsLevel::Counters,
            operators: vec![OpMetrics {
                name: "agg(\"t\\1\")".into(),
                access: AccessCounters {
                    rows_in: 10,
                    rows_out: 3,
                    ..Default::default()
                },
                ..Default::default()
            }],
            retries: 1,
            bytes_charged: 4096,
            predicted_cost: Some(1.5e3),
            ..Default::default()
        };
        let j = m.to_json();
        assert!(j.starts_with("{\"level\":\"counters\""));
        assert!(j.contains("\"retries\":1"));
        assert!(j.contains("\"predicted_cost\":1500"));
        assert!(j.contains("\"observed_cost\":null"));
        assert!(j.contains("\\\"t\\\\1\\\""));
        assert!(j.contains("\"rows_in\":10"));
        assert!(j.ends_with("]}"));
    }

    #[test]
    fn total_sums_operators() {
        let mut m = QueryMetrics::default();
        for rows in [5u64, 7] {
            m.operators.push(OpMetrics {
                access: AccessCounters {
                    rows_in: rows,
                    ..Default::default()
                },
                ..Default::default()
            });
        }
        assert_eq!(m.total().rows_in, 12);
    }

    #[test]
    fn display_skips_empty_sections() {
        let m = QueryMetrics {
            level: MetricsLevel::Counters,
            operators: vec![OpMetrics::named("agg(t)")],
            ..Default::default()
        };
        let text = m.to_string();
        assert!(text.contains("analyze[counters]:"));
        assert!(!text.contains("ht:"), "empty ht section must be omitted");
        assert!(!text.contains("bitmap:"));
        assert!(!text.contains("wall:"));
        assert!(!text.contains("elapsed:"));
    }
}
