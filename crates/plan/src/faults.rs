//! Deterministic fault injection for hardened-execution tests.
//!
//! The harness itself lives in the shared runtime crate (the worker pool
//! and memory gauges consult it at well-defined points); this module
//! re-exports it under the engine's namespace so tests and tools keep one
//! import path. All hooks are process-global, disarmed by default, and
//! one-shot where noted — see [`swole_runtime::faults`] for the full
//! contract.

pub use swole_runtime::faults::{
    disarm_all, inject_alloc_failure_at_charge, inject_clock_skew, inject_panic_at_morsel,
    inject_uncharged_alloc, schedule_active, take_uncharged_alloc, ChaosEvent, ChaosSchedule,
    FaultGuard,
};
