//! Typed values for parameter binding and typed result decoding.
//!
//! The kernels and [`crate::QueryResult::rows`] stay raw `i64` — decimals
//! are fixed-point raw units, dates are day numbers, strings are dictionary
//! codes. [`Value`] is the typed boundary on both sides of a prepared
//! statement: [`Params`] carries typed inputs into
//! [`crate::PreparedStatement::bind`], and the typed `QueryResult`
//! accessors (`col_decimal`, `col_date`, `col_str`, `try_scalar_value`)
//! decode outputs without leaking the encodings to callers.

use std::fmt;

use swole_storage::{Date, Decimal};

/// A typed scalar crossing the engine boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Plain 64-bit integer.
    Int(i64),
    /// Fixed-point decimal (stored as raw units, scale 100).
    Decimal(Decimal),
    /// Calendar date (stored as days since the storage epoch).
    Date(Date),
    /// String — comparable only against dictionary-encoded columns.
    Str(String),
}

impl Value {
    /// The raw `i64` this value encodes to in the storage model, or `None`
    /// for strings (which bind through dictionary predicates, not
    /// literals).
    pub fn raw_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Decimal(d) => Some(d.raw()),
            Value::Date(d) => Some(d.days() as i64),
            Value::Str(_) => None,
        }
    }

    /// Short type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Decimal(_) => "decimal",
            Value::Date(_) => "date",
            Value::Str(_) => "str",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Decimal(d) => write!(f, "{d}"),
            Value::Date(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<Decimal> for Value {
    fn from(v: Decimal) -> Value {
        Value::Decimal(v)
    }
}

impl From<Date> for Value {
    fn from(v: Date) -> Value {
        Value::Date(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// Ordered parameter values for a prepared statement, built fluently:
///
/// ```
/// use swole_plan::{Params, Value};
/// use swole_storage::Date;
/// let params = Params::new()
///     .int(24)
///     .date(Date::parse("1994-01-01").unwrap())
///     .str("PROMO");
/// assert_eq!(params.len(), 3);
/// assert_eq!(params.values()[0], Value::Int(24));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Params {
    values: Vec<Value>,
}

impl Params {
    /// No parameters (statements without placeholders).
    pub fn new() -> Params {
        Params::default()
    }

    /// Append a typed value.
    pub fn value(mut self, v: impl Into<Value>) -> Params {
        self.values.push(v.into());
        self
    }

    /// Append an integer.
    pub fn int(self, v: i64) -> Params {
        self.value(v)
    }

    /// Append a fixed-point decimal.
    pub fn decimal(self, v: Decimal) -> Params {
        self.value(v)
    }

    /// Append a date.
    pub fn date(self, v: Date) -> Params {
        self.value(v)
    }

    /// Append a string.
    pub fn str(self, v: impl Into<String>) -> Params {
        self.value(v.into())
    }

    /// Number of values bound so far.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no values have been bound.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The bound values in placeholder order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

impl From<Vec<Value>> for Params {
    fn from(values: Vec<Value>) -> Params {
        Params { values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_encoding_matches_storage_model() {
        assert_eq!(Value::Int(7).raw_i64(), Some(7));
        assert_eq!(Value::Decimal(Decimal::new(12, 34)).raw_i64(), Some(1234));
        let d = Date::parse("1992-01-01").unwrap();
        assert_eq!(Value::Date(d).raw_i64(), Some(d.days() as i64));
        assert_eq!(Value::Str("x".into()).raw_i64(), None);
    }

    #[test]
    fn builder_collects_in_order() {
        let p = Params::new().int(1).str("a").decimal(Decimal::new(0, 5));
        assert_eq!(p.len(), 3);
        assert_eq!(p.values()[1], Value::Str("a".into()));
        assert!(!p.is_empty());
        assert!(Params::new().is_empty());
    }
}
