//! Physical plans: the shapes the executor runs plus the decisions the
//! planner made, with their cost-model evidence.

use crate::expr::Expr;
use crate::logical::AggSpec;
use swole_cost::{AggStrategy, GroupJoinStrategy, SemiJoinStrategy};

/// A planned, executable query with its decision trail.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    pub(crate) shape: Shape,
    /// One line per decision the planner took, with the cost-model
    /// justification — what `EXPLAIN` prints.
    pub decisions: Vec<String>,
    /// Named cost-model terms behind the strategy decision (cycles), e.g.
    /// `("agg.value-masking", 1.2e6)` — the numeric evidence `EXPLAIN`
    /// renders.
    pub cost_terms: Vec<(String, f64)>,
}

impl PhysicalPlan {
    /// Render the plan as EXPLAIN text.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.shape.describe());
        for d in &self.decisions {
            out.push_str("\n  -> ");
            out.push_str(d);
        }
        out
    }

    /// The aggregation strategy chosen, if this plan has an aggregation
    /// pipeline (used by tests and the advisor example).
    pub fn agg_strategy(&self) -> Option<AggStrategy> {
        match &self.shape {
            Shape::ScanAgg { strategy, .. } => Some(*strategy),
            _ => None,
        }
    }

    /// The semijoin strategy chosen, if any.
    pub fn semijoin_strategy(&self) -> Option<SemiJoinStrategy> {
        match &self.shape {
            Shape::SemiJoinAgg { strategy, .. } => Some(*strategy),
            _ => None,
        }
    }

    /// The groupjoin strategy chosen, if any.
    pub fn groupjoin_strategy(&self) -> Option<GroupJoinStrategy> {
        match &self.shape {
            Shape::GroupJoinAgg { strategy, .. } => Some(*strategy),
            _ => None,
        }
    }
}

/// The executable shapes (the plan patterns §§ III-A–III-E optimize).
#[derive(Debug, Clone)]
#[allow(clippy::enum_variant_names)] // every shape ends in an aggregation
pub(crate) enum Shape {
    /// scan → filter? → (scalar | group-by) aggregation.
    ScanAgg {
        table: String,
        filter: Option<Expr>,
        group_by: Option<String>,
        aggs: Vec<AggSpec>,
        strategy: AggStrategy,
    },
    /// scan → filter? → FK semijoin → scalar aggregation.
    SemiJoinAgg {
        probe: String,
        probe_filter: Option<Expr>,
        build: String,
        build_filter: Option<Expr>,
        fk_col: String,
        aggs: Vec<AggSpec>,
        strategy: SemiJoinStrategy,
        /// `true`: fully masked probe; `false`: selection-vector probe.
        probe_masked: bool,
    },
    /// FK groupjoin: group the probe side by its FK, keeping groups whose
    /// parent survives the build filter.
    GroupJoinAgg {
        probe: String,
        build: String,
        build_filter: Option<Expr>,
        fk_col: String,
        aggs: Vec<AggSpec>,
        strategy: GroupJoinStrategy,
    },
}

impl Shape {
    /// Short name of the access strategy driving this shape's loop body.
    pub(crate) fn strategy_name(&self) -> String {
        match self {
            Shape::ScanAgg { strategy, .. } => strategy.name().to_string(),
            Shape::SemiJoinAgg {
                strategy,
                probe_masked,
                ..
            } => format!(
                "{} semijoin, {} probe",
                match strategy {
                    SemiJoinStrategy::Hash => "hash",
                    SemiJoinStrategy::PositionalBitmap(_) => "positional-bitmap",
                },
                if *probe_masked {
                    "masked"
                } else {
                    "selection-vector"
                },
            ),
            Shape::GroupJoinAgg { strategy, .. } => match strategy {
                GroupJoinStrategy::GroupJoin => "groupjoin".to_string(),
                GroupJoinStrategy::EagerAggregation => "eager-aggregation".to_string(),
            },
        }
    }

    pub(crate) fn describe(&self) -> String {
        match self {
            Shape::ScanAgg {
                table,
                filter,
                group_by,
                aggs,
                strategy,
            } => format!(
                "Aggregate[{}] ({} aggs{}) <- {}Scan {table}",
                strategy.name(),
                aggs.len(),
                group_by
                    .as_ref()
                    .map(|g| format!(", group by {g}"))
                    .unwrap_or_default(),
                if filter.is_some() { "Filter <- " } else { "" },
            ),
            Shape::SemiJoinAgg {
                probe,
                build,
                fk_col,
                strategy,
                probe_masked,
                ..
            } => format!(
                "Aggregate <- SemiJoin[{}] {probe}.{fk_col} -> {build} (probe: {})",
                match strategy {
                    SemiJoinStrategy::Hash => "hash".to_string(),
                    SemiJoinStrategy::PositionalBitmap(_) => "positional-bitmap".to_string(),
                },
                if *probe_masked {
                    "masked"
                } else {
                    "selection-vector"
                },
            ),
            Shape::GroupJoinAgg {
                probe,
                build,
                fk_col,
                strategy,
                ..
            } => format!(
                "GroupJoin[{}] {probe}.{fk_col} -> {build}, group by {fk_col}",
                match strategy {
                    GroupJoinStrategy::GroupJoin => "groupjoin",
                    GroupJoinStrategy::EagerAggregation => "eager-aggregation",
                },
            ),
        }
    }
}
