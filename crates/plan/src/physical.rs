//! Physical plans: the shapes the executor runs plus the decisions the
//! planner made, with their cost-model evidence.

use crate::expr::Expr;
use crate::logical::{AggSpec, FrameSpec, SortKey, WindowFnSpec};
use swole_cost::{AggStrategy, GroupJoinStrategy, SemiJoinStrategy, WindowStrategy};

/// A result-level post-operator applied after the core pipeline: `ORDER BY`
/// and `LIMIT` run over the materialized result rows, never over base tables.
#[derive(Debug, Clone)]
pub(crate) enum PostOp {
    /// Re-sort the result rows by output columns (stable: ties keep the
    /// pre-sort order, which is itself deterministic).
    Sort { keys: Vec<SortKey> },
    /// Keep the first `n` result rows.
    Limit { n: usize },
}

/// A planned, executable query with its decision trail.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    pub(crate) shape: Shape,
    /// Result-level post-operators (`ORDER BY`, `LIMIT`) in application order.
    pub(crate) post: Vec<PostOp>,
    /// One line per decision the planner took, with the cost-model
    /// justification — what `EXPLAIN` prints.
    pub decisions: Vec<String>,
    /// Named cost-model terms behind the strategy decision (cycles), e.g.
    /// `("agg.value-masking", 1.2e6)` — the numeric evidence `EXPLAIN`
    /// renders.
    pub cost_terms: Vec<(String, f64)>,
}

impl PhysicalPlan {
    /// Render the plan as EXPLAIN text.
    pub fn explain(&self) -> String {
        let mut out = self.describe();
        for d in &self.decisions {
            out.push_str("\n  -> ");
            out.push_str(d);
        }
        out
    }

    /// The one-line plan rendering: post-operators outermost-first, then
    /// the core shape.
    pub(crate) fn describe(&self) -> String {
        let mut out = String::new();
        for p in self.post.iter().rev() {
            match p {
                PostOp::Sort { keys } => {
                    out.push_str("OrderBy[");
                    for (i, k) in keys.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&k.column);
                        out.push_str(if k.desc { " desc" } else { " asc" });
                    }
                    out.push_str("] <- ");
                }
                PostOp::Limit { n } => {
                    out.push_str(&format!("Limit[{n}] <- "));
                }
            }
        }
        out.push_str(&self.shape.describe());
        out
    }

    /// The window strategy chosen, if this plan has a window pipeline.
    pub fn window_strategy(&self) -> Option<WindowStrategy> {
        match &self.shape {
            Shape::WindowScan { strategy, .. } => Some(*strategy),
            _ => None,
        }
    }

    /// The aggregation strategy chosen, if this plan has an aggregation
    /// pipeline (used by tests and the advisor example).
    pub fn agg_strategy(&self) -> Option<AggStrategy> {
        match &self.shape {
            Shape::ScanAgg { strategy, .. } => Some(*strategy),
            _ => None,
        }
    }

    /// The semijoin strategy chosen, if any.
    pub fn semijoin_strategy(&self) -> Option<SemiJoinStrategy> {
        match &self.shape {
            Shape::SemiJoinAgg { strategy, .. } => Some(*strategy),
            _ => None,
        }
    }

    /// The groupjoin strategy chosen, if any.
    pub fn groupjoin_strategy(&self) -> Option<GroupJoinStrategy> {
        match &self.shape {
            Shape::GroupJoinAgg { strategy, .. } => Some(*strategy),
            _ => None,
        }
    }
}

/// The executable shapes (the plan patterns §§ III-A–III-E optimize).
#[derive(Debug, Clone)]
#[allow(clippy::enum_variant_names)] // every shape ends in an aggregation
pub(crate) enum Shape {
    /// scan → filter? → (scalar | group-by) aggregation.
    ScanAgg {
        table: String,
        filter: Option<Expr>,
        group_by: Option<String>,
        aggs: Vec<AggSpec>,
        strategy: AggStrategy,
    },
    /// scan → filter? → FK semijoin → scalar aggregation.
    SemiJoinAgg {
        probe: String,
        probe_filter: Option<Expr>,
        build: String,
        build_filter: Option<Expr>,
        fk_col: String,
        aggs: Vec<AggSpec>,
        strategy: SemiJoinStrategy,
        /// `true`: fully masked probe; `false`: selection-vector probe.
        probe_masked: bool,
    },
    /// FK groupjoin: group the probe side by its FK, keeping groups whose
    /// parent survives the build filter.
    GroupJoinAgg {
        probe: String,
        build: String,
        build_filter: Option<Expr>,
        fk_col: String,
        aggs: Vec<AggSpec>,
        strategy: GroupJoinStrategy,
    },
    /// scan → filter? → sort by (partition, order, row) → window functions.
    /// With no functions this degenerates to a row projection.
    WindowScan {
        table: String,
        filter: Option<Expr>,
        partition_by: Option<String>,
        order_by: Vec<SortKey>,
        frame: FrameSpec,
        funcs: Vec<WindowFnSpec>,
        select: Vec<String>,
        strategy: WindowStrategy,
    },
}

impl Shape {
    /// Short name of the access strategy driving this shape's loop body.
    pub(crate) fn strategy_name(&self) -> String {
        match self {
            Shape::ScanAgg { strategy, .. } => strategy.name().to_string(),
            Shape::SemiJoinAgg {
                strategy,
                probe_masked,
                ..
            } => format!(
                "{} semijoin, {} probe",
                match strategy {
                    SemiJoinStrategy::Hash => "hash",
                    SemiJoinStrategy::PositionalBitmap(_) => "positional-bitmap",
                },
                if *probe_masked {
                    "masked"
                } else {
                    "selection-vector"
                },
            ),
            Shape::GroupJoinAgg { strategy, .. } => match strategy {
                GroupJoinStrategy::GroupJoin => "groupjoin".to_string(),
                GroupJoinStrategy::EagerAggregation => "eager-aggregation".to_string(),
            },
            Shape::WindowScan {
                strategy, funcs, ..
            } => {
                if funcs.is_empty() {
                    "projection".to_string()
                } else {
                    strategy.name().to_string()
                }
            }
        }
    }

    pub(crate) fn describe(&self) -> String {
        match self {
            Shape::ScanAgg {
                table,
                filter,
                group_by,
                aggs,
                strategy,
            } => format!(
                "Aggregate[{}] ({} aggs{}) <- {}Scan {table}",
                strategy.name(),
                aggs.len(),
                group_by
                    .as_ref()
                    .map(|g| format!(", group by {g}"))
                    .unwrap_or_default(),
                if filter.is_some() { "Filter <- " } else { "" },
            ),
            Shape::SemiJoinAgg {
                probe,
                build,
                fk_col,
                strategy,
                probe_masked,
                ..
            } => format!(
                "Aggregate <- SemiJoin[{}] {probe}.{fk_col} -> {build} (probe: {})",
                match strategy {
                    SemiJoinStrategy::Hash => "hash".to_string(),
                    SemiJoinStrategy::PositionalBitmap(_) => "positional-bitmap".to_string(),
                },
                if *probe_masked {
                    "masked"
                } else {
                    "selection-vector"
                },
            ),
            Shape::GroupJoinAgg {
                probe,
                build,
                fk_col,
                strategy,
                ..
            } => format!(
                "GroupJoin[{}] {probe}.{fk_col} -> {build}, group by {fk_col}",
                match strategy {
                    GroupJoinStrategy::GroupJoin => "groupjoin",
                    GroupJoinStrategy::EagerAggregation => "eager-aggregation",
                },
            ),
            Shape::WindowScan {
                table,
                filter,
                partition_by,
                funcs,
                strategy,
                ..
            } => {
                if funcs.is_empty() {
                    format!(
                        "Project <- {}Scan {table}",
                        if filter.is_some() { "Filter <- " } else { "" },
                    )
                } else {
                    format!(
                        "Window[{}] ({} fns{}) <- {}Scan {table}",
                        strategy.name(),
                        funcs.len(),
                        partition_by
                            .as_ref()
                            .map(|p| format!(", partition by {p}"))
                            .unwrap_or_default(),
                        if filter.is_some() { "Filter <- " } else { "" },
                    )
                }
            }
        }
    }
}
