//! Physical plans: the shapes the executor runs plus the decisions the
//! planner made, with their cost-model evidence.

use crate::expr::Expr;
use crate::logical::{AggSpec, FrameSpec, SortKey, WindowFnSpec};
use swole_cost::{
    AggStrategy, GroupJoinStrategy, JoinOrderMethod, SemiJoinStrategy, WindowStrategy,
};

/// A result-level post-operator applied after the core pipeline: `ORDER BY`
/// and `LIMIT` run over the materialized result rows, never over base tables.
#[derive(Debug, Clone)]
pub(crate) enum PostOp {
    /// Re-sort the result rows by output columns (stable: ties keep the
    /// pre-sort order, which is itself deterministic).
    Sort { keys: Vec<SortKey> },
    /// Keep the first `n` result rows.
    Limit { n: usize },
}

/// A planned, executable query with its decision trail.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    pub(crate) shape: Shape,
    /// Result-level post-operators (`ORDER BY`, `LIMIT`) in application order.
    pub(crate) post: Vec<PostOp>,
    /// One line per decision the planner took, with the cost-model
    /// justification — what `EXPLAIN` prints.
    pub decisions: Vec<String>,
    /// Named cost-model terms behind the strategy decision (cycles), e.g.
    /// `("agg.value-masking", 1.2e6)` — the numeric evidence `EXPLAIN`
    /// renders.
    pub cost_terms: Vec<(String, f64)>,
    /// Statistics-backed answer: when the planner can prove the result from
    /// catalog statistics alone (`COUNT(*)`/`MIN`/`MAX`, no filter, fresh
    /// stats), the one result row is carried here and execution skips the
    /// scan entirely. The shape is kept so verification and EXPLAIN still
    /// describe the scan the shortcut replaced.
    pub(crate) shortcut: Option<Vec<i64>>,
}

impl PhysicalPlan {
    /// Render the plan as EXPLAIN text.
    pub fn explain(&self) -> String {
        let mut out = self.describe();
        for d in &self.decisions {
            out.push_str("\n  -> ");
            out.push_str(d);
        }
        out
    }

    /// The one-line plan rendering: post-operators outermost-first, then
    /// the core shape.
    pub(crate) fn describe(&self) -> String {
        let mut out = String::new();
        for p in self.post.iter().rev() {
            match p {
                PostOp::Sort { keys } => {
                    out.push_str("OrderBy[");
                    for (i, k) in keys.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&k.column);
                        out.push_str(if k.desc { " desc" } else { " asc" });
                    }
                    out.push_str("] <- ");
                }
                PostOp::Limit { n } => {
                    out.push_str(&format!("Limit[{n}] <- "));
                }
            }
        }
        out.push_str(&self.shape.describe());
        out
    }

    /// The window strategy chosen, if this plan has a window pipeline.
    pub fn window_strategy(&self) -> Option<WindowStrategy> {
        match &self.shape {
            Shape::WindowScan { strategy, .. } => Some(*strategy),
            _ => None,
        }
    }

    /// The aggregation strategy chosen, if this plan has an aggregation
    /// pipeline (used by tests and the advisor example).
    pub fn agg_strategy(&self) -> Option<AggStrategy> {
        match &self.shape {
            Shape::ScanAgg { strategy, .. } => Some(*strategy),
            _ => None,
        }
    }

    /// The semijoin strategy chosen, if any.
    pub fn semijoin_strategy(&self) -> Option<SemiJoinStrategy> {
        match &self.shape {
            Shape::SemiJoinAgg { strategy, .. } => Some(*strategy),
            _ => None,
        }
    }

    /// The groupjoin strategy chosen, if any.
    pub fn groupjoin_strategy(&self) -> Option<GroupJoinStrategy> {
        match &self.shape {
            Shape::GroupJoinAgg { strategy, .. } => Some(*strategy),
            _ => None,
        }
    }

    /// How the multi-way join order was determined, if this plan is a
    /// multi-way join.
    pub fn join_order_method(&self) -> Option<JoinOrderMethod> {
        match &self.shape {
            Shape::MultiJoinAgg { order_method, .. } => Some(*order_method),
            _ => None,
        }
    }

    /// Probe order of a multi-way join: build-side table names in the order
    /// their membership tests run.
    pub fn join_probe_order(&self) -> Option<Vec<String>> {
        match &self.shape {
            Shape::MultiJoinAgg { edges, .. } => {
                Some(edges.iter().map(|e| e.parent.clone()).collect())
            }
            _ => None,
        }
    }
}

/// One edge of a multi-way FK join: the fact (or an intermediate parent)
/// semijoins `parent` through `fk_col`. Nested `children` edges restrict
/// the parent itself (a chain: fact → parent → grandparent); they fold into
/// the parent's qualifying mask before the fact-side membership structure
/// is built.
#[derive(Debug, Clone)]
pub(crate) struct JoinEdge {
    /// Build-side (parent) table.
    pub parent: String,
    /// Filter over the parent's own columns, if any.
    pub parent_filter: Option<Expr>,
    /// FK column on the child pointing into `parent`.
    pub fk_col: String,
    /// Membership structure the build side materializes.
    pub strategy: SemiJoinStrategy,
    /// Edges restricting `parent` itself (chain joins), in canonical order.
    pub children: Vec<JoinEdge>,
    /// Estimated fraction of probe rows surviving this edge.
    pub est_selectivity: f64,
}

impl JoinEdge {
    /// `parent` plus every transitive child parent, preorder.
    pub(crate) fn tables(&self, out: &mut Vec<String>) {
        out.push(self.parent.clone());
        for c in &self.children {
            c.tables(out);
        }
    }
}

/// The executable shapes (the plan patterns §§ III-A–III-E optimize).
#[derive(Debug, Clone)]
#[allow(clippy::enum_variant_names)] // every shape ends in an aggregation
pub(crate) enum Shape {
    /// scan → filter? → (scalar | group-by) aggregation.
    ScanAgg {
        table: String,
        filter: Option<Expr>,
        group_by: Option<String>,
        aggs: Vec<AggSpec>,
        strategy: AggStrategy,
    },
    /// scan → filter? → FK semijoin → scalar aggregation.
    SemiJoinAgg {
        probe: String,
        probe_filter: Option<Expr>,
        build: String,
        build_filter: Option<Expr>,
        fk_col: String,
        aggs: Vec<AggSpec>,
        strategy: SemiJoinStrategy,
        /// `true`: fully masked probe; `false`: selection-vector probe.
        probe_masked: bool,
    },
    /// Multi-way FK join: scan the fact table, narrow each tile through the
    /// edges' membership structures in the planned probe order, then a
    /// scalar aggregation over the survivors. Edges may nest (chains).
    MultiJoinAgg {
        fact: String,
        fact_filter: Option<Expr>,
        /// Direct fact edges in chosen probe order.
        edges: Vec<JoinEdge>,
        aggs: Vec<AggSpec>,
        order_method: JoinOrderMethod,
    },
    /// FK groupjoin: group the probe side by its FK, keeping groups whose
    /// parent survives the build filter.
    GroupJoinAgg {
        probe: String,
        build: String,
        build_filter: Option<Expr>,
        fk_col: String,
        aggs: Vec<AggSpec>,
        strategy: GroupJoinStrategy,
    },
    /// scan → filter? → sort by (partition, order, row) → window functions.
    /// With no functions this degenerates to a row projection.
    WindowScan {
        table: String,
        filter: Option<Expr>,
        partition_by: Option<String>,
        order_by: Vec<SortKey>,
        frame: FrameSpec,
        funcs: Vec<WindowFnSpec>,
        select: Vec<String>,
        strategy: WindowStrategy,
    },
}

impl Shape {
    /// Short name of the access strategy driving this shape's loop body.
    pub(crate) fn strategy_name(&self) -> String {
        match self {
            Shape::ScanAgg { strategy, .. } => strategy.name().to_string(),
            Shape::SemiJoinAgg {
                strategy,
                probe_masked,
                ..
            } => format!(
                "{} semijoin, {} probe",
                match strategy {
                    SemiJoinStrategy::Hash => "hash",
                    SemiJoinStrategy::PositionalBitmap(_) => "positional-bitmap",
                },
                if *probe_masked {
                    "masked"
                } else {
                    "selection-vector"
                },
            ),
            Shape::MultiJoinAgg {
                edges,
                order_method,
                ..
            } => format!(
                "multi-join ({} edges, order: {})",
                count_edges(edges),
                order_method.name()
            ),
            Shape::GroupJoinAgg { strategy, .. } => match strategy {
                GroupJoinStrategy::GroupJoin => "groupjoin".to_string(),
                GroupJoinStrategy::EagerAggregation => "eager-aggregation".to_string(),
            },
            Shape::WindowScan {
                strategy, funcs, ..
            } => {
                if funcs.is_empty() {
                    "projection".to_string()
                } else {
                    strategy.name().to_string()
                }
            }
        }
    }

    pub(crate) fn describe(&self) -> String {
        match self {
            Shape::ScanAgg {
                table,
                filter,
                group_by,
                aggs,
                strategy,
            } => format!(
                "Aggregate[{}] ({} aggs{}) <- {}Scan {table}",
                strategy.name(),
                aggs.len(),
                group_by
                    .as_ref()
                    .map(|g| format!(", group by {g}"))
                    .unwrap_or_default(),
                if filter.is_some() { "Filter <- " } else { "" },
            ),
            Shape::SemiJoinAgg {
                probe,
                build,
                fk_col,
                strategy,
                probe_masked,
                ..
            } => format!(
                "Aggregate <- SemiJoin[{}] {probe}.{fk_col} -> {build} (probe: {})",
                match strategy {
                    SemiJoinStrategy::Hash => "hash".to_string(),
                    SemiJoinStrategy::PositionalBitmap(_) => "positional-bitmap".to_string(),
                },
                if *probe_masked {
                    "masked"
                } else {
                    "selection-vector"
                },
            ),
            Shape::MultiJoinAgg {
                fact,
                fact_filter,
                edges,
                order_method,
                ..
            } => format!(
                "Aggregate <- MultiJoin[order: {}] {}{fact} -> [{}]",
                order_method.name(),
                if fact_filter.is_some() {
                    "Filter <- "
                } else {
                    ""
                },
                edges.iter().map(render_edge).collect::<Vec<_>>().join(", "),
            ),
            Shape::GroupJoinAgg {
                probe,
                build,
                fk_col,
                strategy,
                ..
            } => format!(
                "GroupJoin[{}] {probe}.{fk_col} -> {build}, group by {fk_col}",
                match strategy {
                    GroupJoinStrategy::GroupJoin => "groupjoin",
                    GroupJoinStrategy::EagerAggregation => "eager-aggregation",
                },
            ),
            Shape::WindowScan {
                table,
                filter,
                partition_by,
                funcs,
                strategy,
                ..
            } => {
                if funcs.is_empty() {
                    format!(
                        "Project <- {}Scan {table}",
                        if filter.is_some() { "Filter <- " } else { "" },
                    )
                } else {
                    format!(
                        "Window[{}] ({} fns{}) <- {}Scan {table}",
                        strategy.name(),
                        funcs.len(),
                        partition_by
                            .as_ref()
                            .map(|p| format!(", partition by {p}"))
                            .unwrap_or_default(),
                        if filter.is_some() { "Filter <- " } else { "" },
                    )
                }
            }
        }
    }
}

/// Total edges in a join forest, nested chains included.
pub(crate) fn count_edges(edges: &[JoinEdge]) -> usize {
    edges.iter().map(|e| 1 + count_edges(&e.children)).sum()
}

/// One edge as `fk -> parent[strategy]( <children> )`.
fn render_edge(e: &JoinEdge) -> String {
    let mut out = format!("{} -> {}[{}]", e.fk_col, e.parent, e.strategy.name());
    if !e.children.is_empty() {
        out.push_str(&format!(
            "({})",
            e.children
                .iter()
                .map(render_edge)
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    out
}
