//! Recursive-descent parser and plan binder.

use super::lexer::{tokenize, Sym, Token, TokenKind};
use super::SqlError;
use crate::expr::{CmpOp, Expr};
use crate::logical::{AggSpec, FrameSpec, LogicalPlan, SortKey, WindowFnSpec, WindowFunc};
use crate::AggFunc;

/// How a query asked to be explained rather than executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExplainMode {
    /// `EXPLAIN ...`: plan only ([`crate::Engine::explain`]).
    Plan,
    /// `EXPLAIN ANALYZE ...`: plan plus execution metrics
    /// ([`crate::Engine::explain_analyze`]).
    Analyze,
    /// `EXPLAIN VERIFY ...`: plan plus a full static-verification pass
    /// ([`crate::Engine::explain_verify`]).
    Verify,
}

/// One placeholder occurrence in the SQL text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamSlot {
    /// 0-based parameter ordinal the slot binds to (`?` placeholders are
    /// numbered left to right; `$n` maps to ordinal `n - 1`).
    pub index: usize,
    /// Byte offset of the placeholder in the SQL text.
    pub position: usize,
}

/// A successfully parsed query.
#[derive(Debug, Clone)]
pub struct ParsedQuery {
    /// The bound logical plan (feed it to [`crate::Engine::query`], or to
    /// [`crate::Engine::prepare`] when it has placeholders).
    pub plan: LogicalPlan,
    /// `Some` when the query was prefixed with `EXPLAIN [ANALYZE]`.
    pub explain: Option<ExplainMode>,
    /// Placeholder occurrences in appearance order; empty for a fully
    /// literal query. The number of distinct `index` values is the
    /// statement's parameter count.
    pub param_slots: Vec<ParamSlot>,
}

/// Parse a SQL string into a logical plan. See the module docs for the
/// supported grammar.
pub fn parse(input: &str) -> Result<ParsedQuery, SqlError> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        cursor: 0,
        params: Vec::new(),
        anon_params: 0,
        numbered_params: false,
    };
    let explain = if p.eat_keyword("EXPLAIN") {
        if p.eat_keyword("ANALYZE") {
            Some(ExplainMode::Analyze)
        } else if p.eat_keyword("VERIFY") {
            Some(ExplainMode::Verify)
        } else {
            Some(ExplainMode::Plan)
        }
    } else {
        None
    };
    let q = p.parse_query()?;
    p.expect_end()?;
    check_param_contiguity(&p.params)?;
    let mut parsed = bind(q)?;
    parsed.explain = explain;
    parsed.param_slots = p.params;
    Ok(parsed)
}

/// Every ordinal below the highest must be referenced by some slot:
/// `$1, $3` without a `$2` would make a 3-value bind silently drop one.
fn check_param_contiguity(slots: &[ParamSlot]) -> Result<(), SqlError> {
    let Some(max) = slots.iter().map(|s| s.index).max() else {
        return Ok(());
    };
    for ordinal in 0..=max {
        if !slots.iter().any(|s| s.index == ordinal) {
            return Err(SqlError {
                message: format!(
                    "placeholder ${} is never used (placeholders must be contiguous)",
                    ordinal + 1
                ),
                position: slots.last().map(|s| s.position).unwrap_or(0),
            });
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Parsed (pre-binding) representation
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum PExpr {
    Col {
        table: Option<String>,
        name: String,
    },
    Lit(i64),
    Str(String),
    Param(usize),
    Cmp(CmpOp, Box<PExpr>, Box<PExpr>),
    Add(Box<PExpr>, Box<PExpr>),
    Sub(Box<PExpr>, Box<PExpr>),
    Mul(Box<PExpr>, Box<PExpr>),
    Div(Box<PExpr>, Box<PExpr>),
    Neg(Box<PExpr>),
    And(Box<PExpr>, Box<PExpr>),
    Or(Box<PExpr>, Box<PExpr>),
    Not(Box<PExpr>),
    Like {
        col: Box<PExpr>,
        pattern: String,
    },
    InList {
        col: Box<PExpr>,
        values: Vec<String>,
    },
    Case {
        when: Box<PExpr>,
        then: Box<PExpr>,
        otherwise: Box<PExpr>,
    },
}

#[derive(Debug, Clone)]
enum SelectItem {
    /// Bare column (must match the GROUP BY key; the optional qualifier is
    /// accepted and ignored — the binder resolves by name).
    Key {
        #[allow(dead_code)]
        table: Option<String>,
        name: String,
    },
    /// Aggregate with optional alias.
    Agg {
        func: AggFunc,
        expr: Option<PExpr>, // None for count(*)
        alias: Option<String>,
        pos: usize,
    },
    /// Window function with its OVER clause and optional alias.
    Window {
        func: WindowFunc,
        expr: Option<PExpr>, // Some only for SUM
        alias: Option<String>,
        over: OverSpec,
        pos: usize,
    },
}

/// A parsed `OVER (...)` clause (qualifiers are stripped: window queries
/// are single-table).
#[derive(Debug, Clone, PartialEq)]
struct OverSpec {
    partition_by: Option<String>,
    order_by: Vec<(String, bool)>,
    rows_preceding: Option<i64>,
}

#[derive(Debug, Clone)]
struct Query {
    items: Vec<SelectItem>,
    tables: Vec<String>,
    predicate: Option<PExpr>,
    group_by: Option<(Option<String>, String)>,
    /// Result-level `ORDER BY` keys: output-column name + `DESC` flag.
    order_by: Vec<(String, bool)>,
    /// Result-level `LIMIT`.
    limit: Option<i64>,
    pos: usize,
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser {
    tokens: Vec<Token>,
    cursor: usize,
    /// Placeholder occurrences in appearance order.
    params: Vec<ParamSlot>,
    /// How many anonymous `?` placeholders have been numbered so far.
    anon_params: usize,
    /// `true` once a `$n` placeholder has been seen (styles cannot mix).
    numbered_params: bool,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.cursor).map(|t| &t.kind)
    }

    fn pos(&self) -> usize {
        self.tokens
            .get(self.cursor)
            .map(|t| t.pos)
            .unwrap_or_else(|| self.tokens.last().map(|t| t.pos + 1).unwrap_or(0))
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.cursor).map(|t| t.kind.clone());
        self.cursor += 1;
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, SqlError> {
        Err(SqlError {
            message: message.into(),
            position: self.pos(),
        })
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(TokenKind::Word(w)) if w == kw) {
            self.cursor += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            self.err(format!("expected {kw}"))
        }
    }

    fn eat_symbol(&mut self, sym: Sym) -> bool {
        if matches!(self.peek(), Some(TokenKind::Symbol(s)) if *s == sym) {
            self.cursor += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: Sym) -> Result<(), SqlError> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            self.err(format!("expected {sym:?}"))
        }
    }

    fn expect_ident(&mut self) -> Result<String, SqlError> {
        match self.peek() {
            Some(TokenKind::Word(w)) if !super::lexer::is_keyword(w) => {
                let w = w.clone();
                self.cursor += 1;
                Ok(w)
            }
            _ => self.err("expected identifier"),
        }
    }

    fn expect_end(&self) -> Result<(), SqlError> {
        if self.cursor == self.tokens.len() {
            Ok(())
        } else {
            Err(SqlError {
                message: "unexpected trailing input".into(),
                position: self.pos(),
            })
        }
    }

    fn parse_query(&mut self) -> Result<Query, SqlError> {
        let pos = self.pos();
        self.expect_keyword("SELECT")?;
        let mut items = vec![self.parse_select_item()?];
        while self.eat_symbol(Sym::Comma) {
            items.push(self.parse_select_item()?);
        }
        self.expect_keyword("FROM")?;
        let mut tables = vec![self.expect_ident()?];
        while self.eat_symbol(Sym::Comma) {
            tables.push(self.expect_ident()?);
        }
        let predicate = if self.eat_keyword("WHERE") {
            Some(self.parse_or()?)
        } else {
            None
        };
        let group_by = if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            let (t, c) = self.parse_qualified()?;
            Some((t, c))
        } else {
            None
        };
        let order_by = if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            self.parse_sort_keys()?
        } else {
            Vec::new()
        };
        let limit = if self.eat_keyword("LIMIT") {
            match self.bump() {
                Some(TokenKind::Number(n)) => Some(n),
                _ => return self.err("LIMIT requires an integer literal"),
            }
        } else {
            None
        };
        Ok(Query {
            items,
            tables,
            predicate,
            group_by,
            order_by,
            limit,
            pos,
        })
    }

    /// `col [ASC|DESC] [, ...]` — shared by result-level and window
    /// `ORDER BY` clauses (qualifiers accepted and stripped).
    fn parse_sort_keys(&mut self) -> Result<Vec<(String, bool)>, SqlError> {
        let mut keys = Vec::new();
        loop {
            let (_, c) = self.parse_qualified()?;
            let desc = if self.eat_keyword("DESC") {
                true
            } else {
                self.eat_keyword("ASC");
                false
            };
            keys.push((c, desc));
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        Ok(keys)
    }

    /// The parenthesized window specification after `OVER`.
    fn parse_over(&mut self) -> Result<OverSpec, SqlError> {
        self.expect_symbol(Sym::LParen)?;
        let partition_by = if self.eat_keyword("PARTITION") {
            self.expect_keyword("BY")?;
            let (_, c) = self.parse_qualified()?;
            Some(c)
        } else {
            None
        };
        let order_by = if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            self.parse_sort_keys()?
        } else {
            Vec::new()
        };
        let rows_preceding = if self.eat_keyword("ROWS") {
            let k = match self.bump() {
                Some(TokenKind::Number(n)) => n,
                _ => return self.err("ROWS frame requires an integer row count"),
            };
            self.expect_keyword("PRECEDING")?;
            Some(k)
        } else {
            None
        };
        self.expect_symbol(Sym::RParen)?;
        Ok(OverSpec {
            partition_by,
            order_by,
            rows_preceding,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, SqlError> {
        let pos = self.pos();
        // Window-only functions: ROW_NUMBER() / RANK() require OVER.
        let wfunc = match self.peek() {
            Some(TokenKind::Word(w)) => match w.as_str() {
                "ROW_NUMBER" => Some(WindowFunc::RowNumber),
                "RANK" => Some(WindowFunc::Rank),
                _ => None,
            },
            _ => None,
        };
        if let Some(wf) = wfunc {
            self.cursor += 1;
            self.expect_symbol(Sym::LParen)?;
            self.expect_symbol(Sym::RParen)?;
            self.expect_keyword("OVER")?;
            let over = self.parse_over()?;
            let alias = if self.eat_keyword("AS") {
                Some(self.expect_ident()?)
            } else {
                None
            };
            return Ok(SelectItem::Window {
                func: wf,
                expr: None,
                alias,
                over,
                pos,
            });
        }
        let func = match self.peek() {
            Some(TokenKind::Word(w)) => match w.as_str() {
                "SUM" => Some(AggFunc::Sum),
                "COUNT" => Some(AggFunc::Count),
                "MIN" => Some(AggFunc::Min),
                "MAX" => Some(AggFunc::Max),
                _ => None,
            },
            _ => None,
        };
        if let Some(func) = func {
            self.cursor += 1;
            self.expect_symbol(Sym::LParen)?;
            let expr = if func == AggFunc::Count && self.eat_symbol(Sym::Star) {
                None
            } else {
                Some(self.parse_add()?)
            };
            self.expect_symbol(Sym::RParen)?;
            // `SUM(e) OVER (...)` / `COUNT(*) OVER (...)` are window
            // functions, not aggregates.
            if self.eat_keyword("OVER") {
                let wf = match func {
                    AggFunc::Sum => WindowFunc::Sum,
                    AggFunc::Count => WindowFunc::Count,
                    AggFunc::Min | AggFunc::Max => {
                        return self.err("MIN/MAX are not supported as window functions")
                    }
                };
                if wf == WindowFunc::Sum && expr.is_none() {
                    return self.err("SUM window function requires an argument");
                }
                let over = self.parse_over()?;
                let alias = if self.eat_keyword("AS") {
                    Some(self.expect_ident()?)
                } else {
                    None
                };
                return Ok(SelectItem::Window {
                    func: wf,
                    // COUNT counts frame rows; any argument is ignored.
                    expr: if wf == WindowFunc::Sum { expr } else { None },
                    alias,
                    over,
                    pos,
                });
            }
            let alias = if self.eat_keyword("AS") {
                Some(self.expect_ident()?)
            } else {
                None
            };
            Ok(SelectItem::Agg {
                func,
                expr,
                alias,
                pos,
            })
        } else {
            let (table, name) = self.parse_qualified()?;
            Ok(SelectItem::Key { table, name })
        }
    }

    fn parse_qualified(&mut self) -> Result<(Option<String>, String), SqlError> {
        let first = self.expect_ident()?;
        if self.eat_symbol(Sym::Dot) {
            let second = self.expect_ident()?;
            Ok((Some(first), second))
        } else {
            Ok((None, first))
        }
    }

    fn parse_or(&mut self) -> Result<PExpr, SqlError> {
        let mut lhs = self.parse_and()?;
        while self.eat_keyword("OR") {
            let rhs = self.parse_and()?;
            lhs = PExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<PExpr, SqlError> {
        let mut lhs = self.parse_not()?;
        while self.eat_keyword("AND") {
            let rhs = self.parse_not()?;
            lhs = PExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<PExpr, SqlError> {
        if self.eat_keyword("NOT") {
            Ok(PExpr::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_cmp()
        }
    }

    fn parse_cmp(&mut self) -> Result<PExpr, SqlError> {
        let lhs = self.parse_add()?;
        // Optional postfix predicate forms.
        let negated = {
            // `x NOT LIKE ...` / `x NOT IN ...` / `x NOT BETWEEN ...`
            let save = self.cursor;
            if self.eat_keyword("NOT") {
                if matches!(self.peek(), Some(TokenKind::Word(w)) if w == "LIKE" || w == "IN" || w == "BETWEEN")
                {
                    true
                } else {
                    self.cursor = save;
                    false
                }
            } else {
                false
            }
        };
        let base = if self.eat_keyword("LIKE") {
            let pattern = match self.bump() {
                Some(TokenKind::Str(s)) => s,
                _ => return self.err("LIKE requires a string literal"),
            };
            PExpr::Like {
                col: Box::new(lhs),
                pattern,
            }
        } else if self.eat_keyword("IN") {
            self.expect_symbol(Sym::LParen)?;
            let mut values = Vec::new();
            loop {
                match self.bump() {
                    Some(TokenKind::Str(s)) => values.push(s),
                    _ => return self.err("IN list requires string literals"),
                }
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RParen)?;
            PExpr::InList {
                col: Box::new(lhs),
                values,
            }
        } else if self.eat_keyword("BETWEEN") {
            let lo = self.parse_add()?;
            self.expect_keyword("AND")?;
            let hi = self.parse_add()?;
            PExpr::And(
                Box::new(PExpr::Cmp(CmpOp::Ge, Box::new(lhs.clone()), Box::new(lo))),
                Box::new(PExpr::Cmp(CmpOp::Le, Box::new(lhs), Box::new(hi))),
            )
        } else {
            let op = match self.peek() {
                Some(TokenKind::Symbol(Sym::Lt)) => Some(CmpOp::Lt),
                Some(TokenKind::Symbol(Sym::Le)) => Some(CmpOp::Le),
                Some(TokenKind::Symbol(Sym::Gt)) => Some(CmpOp::Gt),
                Some(TokenKind::Symbol(Sym::Ge)) => Some(CmpOp::Ge),
                Some(TokenKind::Symbol(Sym::Eq)) => Some(CmpOp::Eq),
                Some(TokenKind::Symbol(Sym::Ne)) => Some(CmpOp::Ne),
                _ => None,
            };
            match op {
                Some(op) => {
                    self.cursor += 1;
                    let rhs = self.parse_add()?;
                    PExpr::Cmp(op, Box::new(lhs), Box::new(rhs))
                }
                None => {
                    if negated {
                        return self.err("NOT must precede LIKE/IN/BETWEEN here");
                    }
                    return Ok(lhs);
                }
            }
        };
        Ok(if negated {
            PExpr::Not(Box::new(base))
        } else {
            base
        })
    }

    fn parse_add(&mut self) -> Result<PExpr, SqlError> {
        let mut lhs = self.parse_mul()?;
        loop {
            if self.eat_symbol(Sym::Plus) {
                lhs = PExpr::Add(Box::new(lhs), Box::new(self.parse_mul()?));
            } else if self.eat_symbol(Sym::Minus) {
                lhs = PExpr::Sub(Box::new(lhs), Box::new(self.parse_mul()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_mul(&mut self) -> Result<PExpr, SqlError> {
        let mut lhs = self.parse_unary()?;
        loop {
            if self.eat_symbol(Sym::Star) {
                lhs = PExpr::Mul(Box::new(lhs), Box::new(self.parse_unary()?));
            } else if self.eat_symbol(Sym::Slash) {
                lhs = PExpr::Div(Box::new(lhs), Box::new(self.parse_unary()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_unary(&mut self) -> Result<PExpr, SqlError> {
        if self.eat_symbol(Sym::Minus) {
            Ok(PExpr::Neg(Box::new(self.parse_unary()?)))
        } else {
            self.parse_primary()
        }
    }

    fn parse_primary(&mut self) -> Result<PExpr, SqlError> {
        match self.peek().cloned() {
            Some(TokenKind::Number(n)) => {
                self.cursor += 1;
                Ok(PExpr::Lit(n))
            }
            Some(TokenKind::Str(s)) => {
                self.cursor += 1;
                Ok(PExpr::Str(s))
            }
            Some(TokenKind::Param(explicit)) => {
                let position = self.pos();
                self.cursor += 1;
                let index = match explicit {
                    None => {
                        if self.numbered_params {
                            return Err(SqlError {
                                message: "cannot mix ? and $n placeholders in one statement".into(),
                                position,
                            });
                        }
                        self.anon_params += 1;
                        self.anon_params - 1
                    }
                    Some(n) => {
                        if self.anon_params > 0 {
                            return Err(SqlError {
                                message: "cannot mix ? and $n placeholders in one statement".into(),
                                position,
                            });
                        }
                        self.numbered_params = true;
                        n - 1
                    }
                };
                self.params.push(ParamSlot { index, position });
                Ok(PExpr::Param(index))
            }
            Some(TokenKind::Symbol(Sym::LParen)) => {
                self.cursor += 1;
                let inner = self.parse_or()?;
                self.expect_symbol(Sym::RParen)?;
                Ok(inner)
            }
            Some(TokenKind::Word(w)) if w == "CASE" => {
                self.cursor += 1;
                self.expect_keyword("WHEN")?;
                let when = self.parse_or()?;
                self.expect_keyword("THEN")?;
                let then = self.parse_or()?;
                self.expect_keyword("ELSE")?;
                let otherwise = self.parse_or()?;
                if !self.eat_keyword("END") {
                    return self.err("expected END to close CASE");
                }
                Ok(PExpr::Case {
                    when: Box::new(when),
                    then: Box::new(then),
                    otherwise: Box::new(otherwise),
                })
            }
            Some(TokenKind::Word(w)) if !super::lexer::is_keyword(&w) => {
                let (table, name) = self.parse_qualified()?;
                Ok(PExpr::Col { table, name })
            }
            _ => self.err("expected expression"),
        }
    }
}

// ---------------------------------------------------------------------
// Binding: PExpr/Query → LogicalPlan
// ---------------------------------------------------------------------

/// Which tables an expression references (by qualifier; unqualified columns
/// count as "any", resolved against the single-table context).
fn tables_of(e: &PExpr, out: &mut Vec<Option<String>>) {
    match e {
        PExpr::Col { table, .. } => {
            if !out.contains(table) {
                out.push(table.clone());
            }
        }
        PExpr::Lit(_) | PExpr::Str(_) | PExpr::Param(_) => {}
        PExpr::Cmp(_, a, b)
        | PExpr::Add(a, b)
        | PExpr::Sub(a, b)
        | PExpr::Mul(a, b)
        | PExpr::Div(a, b)
        | PExpr::And(a, b)
        | PExpr::Or(a, b) => {
            tables_of(a, out);
            tables_of(b, out);
        }
        PExpr::Neg(a) | PExpr::Not(a) => tables_of(a, out),
        PExpr::Like { col, .. } | PExpr::InList { col, .. } => tables_of(col, out),
        PExpr::Case {
            when,
            then,
            otherwise,
        } => {
            tables_of(when, out);
            tables_of(then, out);
            tables_of(otherwise, out);
        }
    }
}

/// Convert a bound `PExpr` to an engine `Expr`, stripping qualifiers and
/// rewriting string comparisons into dictionary predicates.
fn to_expr(e: &PExpr, pos: usize) -> Result<Expr, SqlError> {
    let fail = |message: String| SqlError {
        message,
        position: pos,
    };
    Ok(match e {
        PExpr::Col { name, .. } => Expr::Col(name.clone()),
        PExpr::Lit(v) => Expr::Lit(*v),
        PExpr::Param(i) => Expr::Param(*i),
        PExpr::Str(s) => {
            return Err(fail(format!(
                "string literal '{s}' is only valid with =, <>, LIKE or IN"
            )))
        }
        PExpr::Cmp(op, a, b) => {
            // `col = 'str'` / `'str' = col` → dictionary membership.
            let str_side = match (&**a, &**b) {
                (PExpr::Str(s), other) | (other, PExpr::Str(s)) => Some((s.clone(), other)),
                _ => None,
            };
            if let Some((s, col)) = str_side {
                let col_name = match col {
                    PExpr::Col { name, .. } => name.clone(),
                    _ => return Err(fail("string comparison requires a column".into())),
                };
                let inlist = Expr::InList {
                    col: col_name,
                    values: vec![s],
                };
                return match op {
                    CmpOp::Eq => Ok(inlist),
                    CmpOp::Ne => Ok(Expr::Not(Box::new(inlist))),
                    _ => Err(fail("strings only support = and <>".into())),
                };
            }
            Expr::Cmp(*op, Box::new(to_expr(a, pos)?), Box::new(to_expr(b, pos)?))
        }
        PExpr::Add(a, b) => Expr::Add(Box::new(to_expr(a, pos)?), Box::new(to_expr(b, pos)?)),
        PExpr::Sub(a, b) => Expr::Sub(Box::new(to_expr(a, pos)?), Box::new(to_expr(b, pos)?)),
        PExpr::Mul(a, b) => Expr::Mul(Box::new(to_expr(a, pos)?), Box::new(to_expr(b, pos)?)),
        PExpr::Div(a, b) => Expr::Div(Box::new(to_expr(a, pos)?), Box::new(to_expr(b, pos)?)),
        PExpr::Neg(a) => Expr::Sub(Box::new(Expr::Lit(0)), Box::new(to_expr(a, pos)?)),
        PExpr::And(a, b) => to_expr(a, pos)?.and(to_expr(b, pos)?),
        PExpr::Or(a, b) => to_expr(a, pos)?.or(to_expr(b, pos)?),
        PExpr::Not(a) => Expr::Not(Box::new(to_expr(a, pos)?)),
        PExpr::Like { col, pattern } => match &**col {
            PExpr::Col { name, .. } => Expr::Like {
                col: name.clone(),
                pattern: pattern.clone(),
            },
            _ => return Err(fail("LIKE requires a column".into())),
        },
        PExpr::InList { col, values } => match &**col {
            PExpr::Col { name, .. } => Expr::InList {
                col: name.clone(),
                values: values.clone(),
            },
            _ => return Err(fail("IN requires a column".into())),
        },
        PExpr::Case {
            when,
            then,
            otherwise,
        } => Expr::Case {
            when: Box::new(to_expr(when, pos)?),
            then: Box::new(to_expr(then, pos)?),
            otherwise: Box::new(to_expr(otherwise, pos)?),
        },
    })
}

/// Flatten a top-level AND chain.
fn conjuncts(e: PExpr, out: &mut Vec<PExpr>) {
    match e {
        PExpr::And(a, b) => {
            conjuncts(*a, out);
            conjuncts(*b, out);
        }
        other => out.push(other),
    }
}

fn agg_specs(items: &[SelectItem], group_by: Option<&str>) -> Result<Vec<AggSpec>, SqlError> {
    let mut aggs = Vec::new();
    let mut auto = 0usize;
    for item in items {
        match item {
            SelectItem::Key { name, .. } => {
                if group_by != Some(name.as_str()) {
                    return Err(SqlError {
                        message: format!("bare column {name} must match the GROUP BY key"),
                        position: 0,
                    });
                }
            }
            SelectItem::Agg {
                func,
                expr,
                alias,
                pos,
            } => {
                let name = alias.clone().unwrap_or_else(|| {
                    auto += 1;
                    format!("agg{auto}")
                });
                let expr = match expr {
                    Some(e) => to_expr(e, *pos)?,
                    None => Expr::Lit(1),
                };
                aggs.push(AggSpec {
                    func: *func,
                    expr,
                    name,
                });
            }
            SelectItem::Window { pos, .. } => {
                return Err(SqlError {
                    message: "window functions cannot be combined with GROUP BY".into(),
                    position: *pos,
                });
            }
        }
    }
    if aggs.is_empty() {
        return Err(SqlError {
            message: "query needs at least one aggregate (sum/count/min/max)".into(),
            position: 0,
        });
    }
    Ok(aggs)
}

/// Wrap a bound core plan in the query's result-level `ORDER BY` / `LIMIT`.
fn wrap_post(mut plan: LogicalPlan, q: &Query) -> LogicalPlan {
    if !q.order_by.is_empty() {
        plan = LogicalPlan::OrderBy {
            input: Box::new(plan),
            keys: q
                .order_by
                .iter()
                .map(|(c, desc)| SortKey {
                    column: c.clone(),
                    desc: *desc,
                })
                .collect(),
        };
    }
    if let Some(n) = q.limit {
        plan = LogicalPlan::Limit {
            input: Box::new(plan),
            n: n.max(0) as usize,
        };
    }
    plan
}

/// Bind a single-table window/projection query: bare columns become the
/// projection, window items the function list. All window functions must
/// share one OVER clause (one sort, one frame).
fn bind_window(q: &Query, table: String) -> Result<LogicalPlan, SqlError> {
    let fail = |message: String| SqlError {
        message,
        position: q.pos,
    };
    if q.group_by.is_some() {
        return Err(fail(
            "window functions cannot be combined with GROUP BY".into(),
        ));
    }
    let mut select = Vec::new();
    let mut funcs = Vec::new();
    let mut over: Option<&OverSpec> = None;
    let mut auto = 0usize;
    for item in &q.items {
        match item {
            SelectItem::Key { name, .. } => select.push(name.clone()),
            SelectItem::Agg { .. } => {
                return Err(fail(
                    "cannot mix plain aggregates and window functions \
                     (did you mean SUM(..) OVER (..)?)"
                        .into(),
                ))
            }
            SelectItem::Window {
                func,
                expr,
                alias,
                over: o,
                pos,
            } => {
                match over {
                    None => over = Some(o),
                    Some(prev) if prev == o => {}
                    Some(_) => {
                        return Err(fail(
                            "all window functions in one query must share the same \
                             OVER clause"
                                .into(),
                        ))
                    }
                }
                let name = alias.clone().unwrap_or_else(|| {
                    auto += 1;
                    format!("w{auto}")
                });
                funcs.push(WindowFnSpec {
                    func: *func,
                    expr: expr.as_ref().map(|e| to_expr(e, *pos)).transpose()?,
                    name,
                });
            }
        }
    }
    let (partition_by, order_by, frame) = match over {
        Some(o) => {
            let frame = match o.rows_preceding {
                Some(k) => FrameSpec::Preceding(k.max(0) as usize),
                None if o.order_by.is_empty() => FrameSpec::WholePartition,
                None => FrameSpec::UnboundedPreceding,
            };
            (
                o.partition_by.clone(),
                o.order_by
                    .iter()
                    .map(|(c, desc)| SortKey {
                        column: c.clone(),
                        desc: *desc,
                    })
                    .collect(),
                frame,
            )
        }
        // Pure projection: no window order, whole-partition frame.
        None => (None, Vec::new(), FrameSpec::WholePartition),
    };
    let mut input = LogicalPlan::Scan { table };
    if let Some(pred) = &q.predicate {
        input = LogicalPlan::Filter {
            input: Box::new(input),
            predicate: to_expr(pred, q.pos)?,
        };
    }
    Ok(LogicalPlan::Window {
        input: Box::new(input),
        partition_by,
        order_by,
        frame,
        funcs,
        select,
    })
}

fn bind(q: Query) -> Result<ParsedQuery, SqlError> {
    let fail = |message: String| SqlError {
        message,
        position: q.pos,
    };
    let has_window = q
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Window { .. }));
    let has_agg = q.items.iter().any(|i| matches!(i, SelectItem::Agg { .. }));
    match q.tables.len() {
        1 => {
            let table = q.tables[0].clone();
            // Window functions — or a bare-column projection — take the
            // window path; aggregates keep the aggregation path.
            if has_window || (!has_agg && q.group_by.is_none()) {
                let plan = bind_window(&q, table)?;
                return Ok(ParsedQuery {
                    plan: wrap_post(plan, &q),
                    explain: None,
                    param_slots: Vec::new(),
                });
            }
            let group_by = q.group_by.as_ref().map(|(_, c)| c.clone());
            let aggs = agg_specs(&q.items, group_by.as_deref())?;
            let mut input = LogicalPlan::Scan { table };
            if let Some(pred) = &q.predicate {
                input = LogicalPlan::Filter {
                    input: Box::new(input),
                    predicate: to_expr(pred, q.pos)?,
                };
            }
            Ok(ParsedQuery {
                plan: wrap_post(
                    LogicalPlan::Aggregate {
                        input: Box::new(input),
                        group_by,
                        aggs,
                    },
                    &q,
                ),
                explain: None,
                param_slots: Vec::new(),
            })
        }
        2 => {
            if has_window {
                return Err(fail(
                    "window functions are only supported over a single table".into(),
                ));
            }
            let predicate = q
                .predicate
                .clone()
                .ok_or_else(|| fail("two-table queries need a join condition".into()))?;
            let mut parts = Vec::new();
            conjuncts(predicate, &mut parts);
            // Find the join conjunct: child.fk = parent.rowid.
            let mut join: Option<(String, String, String)> = None; // child, fk, parent
            let mut rest = Vec::new();
            for part in parts {
                if let PExpr::Cmp(CmpOp::Eq, a, b) = &part {
                    if let (
                        PExpr::Col {
                            table: Some(t1),
                            name: n1,
                        },
                        PExpr::Col {
                            table: Some(t2),
                            name: n2,
                        },
                    ) = (&**a, &**b)
                    {
                        let found = if n2 == "rowid" {
                            Some((t1.clone(), n1.clone(), t2.clone()))
                        } else if n1 == "rowid" {
                            Some((t2.clone(), n2.clone(), t1.clone()))
                        } else {
                            None
                        };
                        if let Some(j) = found {
                            if join.is_some() {
                                return Err(fail("multiple join conditions".into()));
                            }
                            join = Some(j);
                            continue;
                        }
                    }
                }
                rest.push(part);
            }
            let (child, fk_col, parent) = join.ok_or_else(|| {
                fail("no join condition of the form child.fk = parent.rowid".into())
            })?;
            if !q.tables.contains(&child) || !q.tables.contains(&parent) || child == parent {
                return Err(fail(format!(
                    "join references {child}/{parent}, FROM lists {:?}",
                    q.tables
                )));
            }
            // Route remaining conjuncts by the (single) table they mention.
            let mut child_pred: Option<Expr> = None;
            let mut parent_pred: Option<Expr> = None;
            for part in rest {
                let mut mentioned = Vec::new();
                tables_of(&part, &mut mentioned);
                let target = match mentioned.as_slice() {
                    [Some(t)] if *t == child => &mut child_pred,
                    [Some(t)] if *t == parent => &mut parent_pred,
                    [Some(t)] => return Err(fail(format!("unknown table qualifier {t}"))),
                    _ => {
                        return Err(fail(
                            "two-table predicates must qualify every column with its \
                             table and reference exactly one table per conjunct"
                                .into(),
                        ))
                    }
                };
                let bound = to_expr(&part, q.pos)?;
                *target = Some(match target.take() {
                    Some(existing) => existing.and(bound),
                    None => bound,
                });
            }
            let group_by = match &q.group_by {
                None => None,
                Some((qualifier, col)) => {
                    if let Some(t) = qualifier {
                        if *t != child {
                            return Err(fail(
                                "GROUP BY over a join must use the child's FK column".into(),
                            ));
                        }
                    }
                    Some(col.clone())
                }
            };
            let aggs = agg_specs(&q.items, group_by.as_deref())?;
            let mut probe: LogicalPlan = LogicalPlan::Scan { table: child };
            if let Some(p) = child_pred {
                probe = LogicalPlan::Filter {
                    input: Box::new(probe),
                    predicate: p,
                };
            }
            let mut build: LogicalPlan = LogicalPlan::Scan { table: parent };
            if let Some(p) = parent_pred {
                build = LogicalPlan::Filter {
                    input: Box::new(build),
                    predicate: p,
                };
            }
            Ok(ParsedQuery {
                plan: wrap_post(
                    LogicalPlan::Aggregate {
                        input: Box::new(LogicalPlan::SemiJoin {
                            input: Box::new(probe),
                            build: Box::new(build),
                            fk_col,
                        }),
                        group_by,
                        aggs,
                    },
                    &q,
                ),
                explain: None,
                param_slots: Vec::new(),
            })
        }
        // Three or more tables: a general FK join graph. Join conjuncts
        // (`child.fk = parent.rowid`) form the edges; the one table never
        // used as a build side is the fact. The parser only fixes the
        // *structure* (a tree rooted at the fact, edges in canonical
        // parent-name order) — the probe order is the planner's decision.
        _ => {
            if has_window {
                return Err(fail(
                    "window functions are only supported over a single table".into(),
                ));
            }
            let predicate = q.predicate.clone().ok_or_else(|| {
                fail(
                    "multi-table queries need join conditions of the form child.fk = parent.rowid"
                        .into(),
                )
            })?;
            let mut parts = Vec::new();
            conjuncts(predicate, &mut parts);
            let mut edges: Vec<(String, String, String)> = Vec::new(); // child, fk, parent
            let mut rest = Vec::new();
            for part in parts {
                if let PExpr::Cmp(CmpOp::Eq, a, b) = &part {
                    if let (
                        PExpr::Col {
                            table: Some(t1),
                            name: n1,
                        },
                        PExpr::Col {
                            table: Some(t2),
                            name: n2,
                        },
                    ) = (&**a, &**b)
                    {
                        let found = if n2 == "rowid" {
                            Some((t1.clone(), n1.clone(), t2.clone()))
                        } else if n1 == "rowid" {
                            Some((t2.clone(), n2.clone(), t1.clone()))
                        } else {
                            None
                        };
                        if let Some(j) = found {
                            edges.push(j);
                            continue;
                        }
                    }
                }
                rest.push(part);
            }
            for (child, _, parent) in &edges {
                if !q.tables.contains(child) || !q.tables.contains(parent) || child == parent {
                    return Err(fail(format!(
                        "join references {child}/{parent}, FROM lists {:?}",
                        q.tables
                    )));
                }
            }
            for (i, (_, _, p)) in edges.iter().enumerate() {
                if edges.iter().skip(i + 1).any(|(_, _, p2)| p2 == p) {
                    return Err(fail(format!(
                        "table {p} is the build side of multiple join conditions"
                    )));
                }
            }
            let facts: Vec<&String> = q
                .tables
                .iter()
                .filter(|t| !edges.iter().any(|(_, _, p)| &p == t))
                .collect();
            let fact = match facts.as_slice() {
                [f] => (*f).clone(),
                [] => {
                    return Err(fail(
                        "cyclic join graph: every table is a build side".into(),
                    ))
                }
                more => {
                    return Err(fail(format!(
                        "join graph is disconnected: no join condition joins {:?} to the rest",
                        more.iter().map(|t| t.as_str()).collect::<Vec<_>>()
                    )))
                }
            };
            // Per-table filters from the remaining conjuncts.
            let mut filters: std::collections::HashMap<String, Expr> =
                std::collections::HashMap::new();
            for part in rest {
                let mut mentioned = Vec::new();
                tables_of(&part, &mut mentioned);
                let t = match mentioned.as_slice() {
                    [Some(t)] if q.tables.contains(t) => (*t).clone(),
                    [Some(t)] => return Err(fail(format!("unknown table qualifier {t}"))),
                    _ => {
                        return Err(fail(
                            "multi-table predicates must qualify every column with its \
                             table and reference exactly one table per conjunct"
                                .into(),
                        ))
                    }
                };
                let bound = to_expr(&part, q.pos)?;
                match filters.entry(t) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let existing = e.get().clone();
                        e.insert(existing.and(bound));
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(bound);
                    }
                }
            }
            // Grow the join tree from the fact outward. An edge left unused
            // afterwards means its tables cycle among themselves without a
            // path from the fact.
            let mut used = vec![false; edges.len()];
            let plan_node = build_join_node(&fact, &edges, &mut used, &mut filters);
            if used.iter().any(|u| !u) {
                return Err(fail("cyclic join graph".into()));
            }
            let group_by = q.group_by.as_ref().map(|(_, c)| c.clone());
            let aggs = agg_specs(&q.items, group_by.as_deref())?;
            Ok(ParsedQuery {
                plan: wrap_post(
                    LogicalPlan::Aggregate {
                        input: Box::new(plan_node),
                        group_by,
                        aggs,
                    },
                    &q,
                ),
                explain: None,
                param_slots: Vec::new(),
            })
        }
    }
}

/// Recursively assemble the semijoin tree for a multi-way join: `table`'s
/// scan (plus its own filter), then one [`LogicalPlan::SemiJoin`] per edge
/// whose child is `table`, in parent-name order (canonical — the WHERE
/// clause's conjunct order must not change the plan fingerprint). Marks
/// consumed edges in `used`; duplicate-parent validation upstream
/// guarantees termination.
fn build_join_node(
    table: &str,
    edges: &[(String, String, String)],
    used: &mut [bool],
    filters: &mut std::collections::HashMap<String, Expr>,
) -> LogicalPlan {
    let mut plan = LogicalPlan::Scan {
        table: table.to_string(),
    };
    if let Some(pred) = filters.remove(table) {
        plan = LogicalPlan::Filter {
            input: Box::new(plan),
            predicate: pred,
        };
    }
    let mut own: Vec<usize> = (0..edges.len())
        .filter(|&i| !used[i] && edges[i].0 == table)
        .collect();
    own.sort_by(|&a, &b| edges[a].2.cmp(&edges[b].2));
    for i in own {
        used[i] = true;
        let build = build_join_node(&edges[i].2, edges, used, filters);
        plan = LogicalPlan::SemiJoin {
            input: Box::new(plan),
            build: Box::new(build),
            fk_col: edges[i].1.clone(),
        };
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryBuilder;

    #[test]
    fn micro_q1_shape() {
        let got = parse("select sum(r_a * r_b) as s from R where r_x < 13 and r_y = 1")
            .unwrap()
            .plan;
        let expected = QueryBuilder::scan("R")
            .filter(
                Expr::col("r_x")
                    .cmp(CmpOp::Lt, Expr::lit(13))
                    .and(Expr::col("r_y").cmp(CmpOp::Eq, Expr::lit(1))),
            )
            .aggregate(
                None,
                vec![AggSpec::sum(Expr::col("r_a").mul(Expr::col("r_b")), "s")],
            );
        assert_eq!(got, expected);
    }

    #[test]
    fn explain_prefix_modes() {
        let plain = parse("select sum(r_a) as s from R").unwrap();
        assert_eq!(plain.explain, None);
        let ex = parse("explain select sum(r_a) as s from R").unwrap();
        assert_eq!(ex.explain, Some(ExplainMode::Plan));
        assert_eq!(ex.plan, plain.plan);
        let ea = parse("EXPLAIN ANALYZE select sum(r_a) as s from R where r_x < 13").unwrap();
        assert_eq!(ea.explain, Some(ExplainMode::Analyze));
        assert_eq!(ea.plan.base_table(), "R");
        let ev = parse("explain verify select sum(r_a) as s from R where r_x < 13").unwrap();
        assert_eq!(ev.explain, Some(ExplainMode::Verify));
        assert_eq!(ev.plan.base_table(), "R");
        // ANALYZE/VERIFY without EXPLAIN are just identifier positions — error.
        assert!(parse("analyze select sum(r_a) as s from R").is_err());
        assert!(parse("verify select sum(r_a) as s from R").is_err());
    }

    #[test]
    fn micro_q2_group_by() {
        let got = parse(
            "select r_c, sum(r_a * r_b) as s, count(*) as n \
             from R where r_x < 50 group by r_c",
        )
        .unwrap()
        .plan;
        match got {
            LogicalPlan::Aggregate { group_by, aggs, .. } => {
                assert_eq!(group_by.as_deref(), Some("r_c"));
                assert_eq!(aggs.len(), 2);
                assert_eq!(aggs[1].func, AggFunc::Count);
                assert_eq!(aggs[1].name, "n");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn two_table_semijoin() {
        let got = parse(
            "select sum(R.r_a) from R, S \
             where R.r_fk = S.rowid and S.s_x < 13 and R.r_x < 50",
        )
        .unwrap()
        .plan;
        match got {
            LogicalPlan::Aggregate {
                input, group_by, ..
            } => {
                assert!(group_by.is_none());
                match *input {
                    LogicalPlan::SemiJoin {
                        input: probe,
                        build,
                        fk_col,
                    } => {
                        assert_eq!(fk_col, "r_fk");
                        assert!(matches!(*probe, LogicalPlan::Filter { .. }));
                        assert!(matches!(*build, LogicalPlan::Filter { .. }));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn groupjoin_via_group_by_fk() {
        let got = parse(
            "select R.r_fk, sum(R.r_a * R.r_b) as s from R, S \
             where R.r_fk = S.rowid and S.s_x < 13 group by R.r_fk",
        )
        .unwrap()
        .plan;
        match got {
            LogicalPlan::Aggregate { group_by, .. } => {
                assert_eq!(group_by.as_deref(), Some("r_fk"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn between_like_in_case() {
        let plan = parse(
            "select sum(case when disc between 5 and 7 then price else 0 end) as s \
             from L where mode in ('AIR', 'MAIL') and note not like '%x%'",
        )
        .unwrap()
        .plan;
        let LogicalPlan::Aggregate { input, aggs, .. } = plan else {
            panic!()
        };
        assert!(matches!(aggs[0].expr, Expr::Case { .. }));
        let LogicalPlan::Filter { predicate, .. } = *input else {
            panic!()
        };
        // in-list AND not-like
        let Expr::And(a, b) = predicate else { panic!() };
        assert!(matches!(*a, Expr::InList { .. }));
        assert!(matches!(*b, Expr::Not(_)));
    }

    #[test]
    fn string_equality_becomes_dictionary_predicate() {
        let plan = parse("select count(*) from C where seg = 'BUILDING'")
            .unwrap()
            .plan;
        let LogicalPlan::Aggregate { input, .. } = plan else {
            panic!()
        };
        let LogicalPlan::Filter { predicate, .. } = *input else {
            panic!()
        };
        assert_eq!(
            predicate,
            Expr::InList {
                col: "seg".into(),
                values: vec!["BUILDING".into()]
            }
        );
    }

    #[test]
    fn operator_precedence() {
        // a + b * c < 10 or d = 1 and e = 2  ⇒  ((a+(b*c)) < 10) OR ((d=1) AND (e=2))
        let plan = parse("select count(*) from T where a + b * c < 10 or d = 1 and e = 2")
            .unwrap()
            .plan;
        let LogicalPlan::Aggregate { input, .. } = plan else {
            panic!()
        };
        let LogicalPlan::Filter { predicate, .. } = *input else {
            panic!()
        };
        let Expr::Or(lhs, rhs) = predicate else {
            panic!("OR must be outermost")
        };
        assert!(matches!(*lhs, Expr::Cmp(CmpOp::Lt, _, _)));
        assert!(matches!(*rhs, Expr::And(_, _)));
    }

    #[test]
    fn count_star_and_aliases() {
        let plan = parse("select count(*), sum(v) from T").unwrap().plan;
        let LogicalPlan::Aggregate { aggs, .. } = plan else {
            panic!()
        };
        assert_eq!(aggs[0].name, "agg1");
        assert_eq!(aggs[1].name, "agg2");
    }

    #[test]
    fn errors_are_informative() {
        assert!(parse("").is_err());
        assert!(parse("select from T").is_err());
        assert!(parse("select sum(a) from").is_err());
        assert!(parse("select sum(a) from T where").is_err());
        // A bare-column select is a projection (window path), not an error.
        assert!(parse("select a from T").is_ok());
        assert!(
            parse("select a, sum(b) from T").is_err(),
            "bare column mixed with an aggregate and no group by"
        );
        assert!(
            parse("select sum(a) from T extra").is_err(),
            "trailing input"
        );
        assert!(
            parse("select sum(a) from A, B, C where x = 1").is_err(),
            "3 tables"
        );
        assert!(
            parse("select sum(a) from A, B where A.x < 3").is_err(),
            "missing join condition"
        );
        assert!(
            parse("select sum(a) from T where name = unquoted").is_err()
                || parse("select sum(a) from T where name = unquoted").is_ok(),
            "column=column comparison parses"
        );
        let err = parse("select sum(a) from T where x < 'oops'").unwrap_err();
        assert!(err.message.contains("string"), "{err}");
    }

    #[test]
    fn negative_literals() {
        let plan = parse("select sum(a) from T where x < -5").unwrap().plan;
        let LogicalPlan::Aggregate { input, .. } = plan else {
            panic!()
        };
        let LogicalPlan::Filter { predicate, .. } = *input else {
            panic!()
        };
        // -5 parses as 0 - 5.
        assert!(matches!(predicate, Expr::Cmp(CmpOp::Lt, _, _)));
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse("SELECT SUM(a) FROM t WHERE x < 1 GROUP BY c").is_ok());
        let ok = parse("SeLeCt sum(a) As s FrOm t WhErE x BeTwEeN 1 AnD 2");
        assert!(ok.is_ok(), "{ok:?}");
    }

    #[test]
    fn anonymous_placeholders_number_left_to_right() {
        let parsed = parse("select sum(a) from T where x < ? and y >= ?").unwrap();
        assert_eq!(parsed.param_slots.len(), 2);
        assert_eq!(parsed.param_slots[0].index, 0);
        assert_eq!(parsed.param_slots[1].index, 1);
        let LogicalPlan::Aggregate { input, .. } = parsed.plan else {
            panic!()
        };
        let LogicalPlan::Filter { predicate, .. } = *input else {
            panic!()
        };
        let Expr::And(a, b) = predicate else { panic!() };
        assert!(matches!(*a, Expr::Cmp(CmpOp::Lt, _, _)));
        let Expr::Cmp(CmpOp::Ge, _, rhs) = *b else {
            panic!()
        };
        assert_eq!(*rhs, Expr::Param(1));
    }

    #[test]
    fn numbered_placeholders_may_repeat() {
        let parsed = parse("select sum(a) from T where x >= $1 and y < $2 and z <> $1").unwrap();
        assert_eq!(parsed.param_slots.len(), 3);
        let ordinals: Vec<usize> = parsed.param_slots.iter().map(|s| s.index).collect();
        assert_eq!(ordinals, vec![0, 1, 0]);
    }

    #[test]
    fn placeholder_styles_cannot_mix() {
        let err = parse("select sum(a) from T where x < ? and y = $2").unwrap_err();
        assert!(err.message.contains("mix"), "{err}");
        let err = parse("select sum(a) from T where x < $1 and y = ?").unwrap_err();
        assert!(err.message.contains("mix"), "{err}");
    }

    #[test]
    fn placeholder_ordinals_must_be_contiguous() {
        let err = parse("select sum(a) from T where x < $1 and y = $3").unwrap_err();
        assert!(err.message.contains("$2"), "{err}");
        assert!(parse("select sum(a) from T where x < $2").is_err());
    }

    #[test]
    fn window_functions_bind() {
        let plan = parse(
            "select r_c, row_number() over (partition by r_c order by r_a desc) as rn, \
             sum(r_a) over (partition by r_c order by r_a desc) as running \
             from R where r_x < 13",
        )
        .unwrap()
        .plan;
        let LogicalPlan::Window {
            partition_by,
            order_by,
            frame,
            funcs,
            select,
            ..
        } = plan
        else {
            panic!("expected a window plan")
        };
        assert_eq!(partition_by.as_deref(), Some("r_c"));
        assert_eq!(order_by.len(), 1);
        assert_eq!(order_by[0].column, "r_a");
        assert!(order_by[0].desc);
        assert_eq!(frame, FrameSpec::UnboundedPreceding);
        assert_eq!(funcs.len(), 2);
        assert_eq!(funcs[0].name, "rn");
        assert_eq!(funcs[1].name, "running");
        assert_eq!(select, vec!["r_c".to_string()]);
    }

    #[test]
    fn window_frames_and_defaults() {
        // ROWS k PRECEDING.
        let plan = parse("select sum(v) over (order by k rows 3 preceding) from T")
            .unwrap()
            .plan;
        let LogicalPlan::Window { frame, funcs, .. } = plan else {
            panic!()
        };
        assert_eq!(frame, FrameSpec::Preceding(3));
        assert_eq!(funcs[0].name, "w1", "auto-named window output");
        // No ORDER BY in OVER -> whole partition.
        let plan = parse("select count(*) over (partition by g) from T")
            .unwrap()
            .plan;
        let LogicalPlan::Window { frame, .. } = plan else {
            panic!()
        };
        assert_eq!(frame, FrameSpec::WholePartition);
    }

    #[test]
    fn order_by_and_limit_wrap_any_query() {
        let plan = parse("select g, count(*) as n from T group by g order by n desc, g limit 5")
            .unwrap()
            .plan;
        let LogicalPlan::Limit { input, n } = plan else {
            panic!("LIMIT must be outermost")
        };
        assert_eq!(n, 5);
        let LogicalPlan::OrderBy { input, keys } = *input else {
            panic!("ORDER BY inside LIMIT")
        };
        assert_eq!(keys.len(), 2);
        assert!(keys[0].desc);
        assert_eq!(keys[1].column, "g");
        assert!(!keys[1].desc);
        assert!(matches!(*input, LogicalPlan::Aggregate { .. }));
        // Bare projection with LIMIT only.
        let plan = parse("select a from T limit 10").unwrap().plan;
        let LogicalPlan::Limit { input, .. } = plan else {
            panic!()
        };
        assert!(matches!(*input, LogicalPlan::Window { .. }));
    }

    #[test]
    fn window_grammar_errors() {
        // ROW_NUMBER without OVER.
        assert!(parse("select row_number() from T").is_err());
        // MIN/MAX are not window functions.
        let err = parse("select min(a) over (partition by g) from T").unwrap_err();
        assert!(err.message.contains("MIN/MAX"), "{err}");
        // Mixed OVER clauses.
        let err =
            parse("select sum(a) over (partition by g), count(*) over (partition by h) from T")
                .unwrap_err();
        assert!(err.message.contains("same"), "{err}");
        // Window + GROUP BY.
        assert!(parse("select g, count(*) over (partition by g) from T group by g").is_err());
        // Window over a join.
        assert!(parse(
            "select row_number() over (partition by R.r_c) from R, S \
                   where R.r_fk = S.rowid"
        )
        .is_err());
        // LIMIT requires an integer literal.
        assert!(parse("select a from T limit x").is_err());
    }

    #[test]
    fn placeholders_route_through_joins() {
        let parsed = parse(
            "select sum(R.r_a) from R, S \
             where R.r_fk = S.rowid and S.s_x < $1 and R.r_x < $2",
        )
        .unwrap();
        assert_eq!(parsed.param_slots.len(), 2);
        let LogicalPlan::Aggregate { input, .. } = parsed.plan else {
            panic!()
        };
        assert!(matches!(*input, LogicalPlan::SemiJoin { .. }));
    }
}
