//! SQL tokenizer.

use super::SqlError;

/// A token with its byte position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Token {
    pub kind: TokenKind,
    pub pos: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TokenKind {
    /// Keyword (uppercased) or identifier (original case).
    Word(String),
    /// Integer literal.
    Number(i64),
    /// `'...'` string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Prepared-statement placeholder: `?` (positional, `None`) or `$n`
    /// (1-based explicit index, `Some(n)`).
    Param(Option<usize>),
    /// Punctuation / operator.
    Symbol(Sym),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Sym {
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Slash,
    Plus,
    Minus,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

/// SQL keywords (matched case-insensitively; everything else is an
/// identifier).
const KEYWORDS: [&str; 33] = [
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "AND",
    "OR",
    "NOT",
    "AS",
    "SUM",
    "COUNT",
    "MIN",
    "MAX",
    "LIKE",
    "IN",
    "BETWEEN",
    "CASE",
    "WHEN",
    "THEN",
    "ELSE",
    "EXPLAIN",
    "ANALYZE",
    "VERIFY",
    "ORDER",
    "LIMIT",
    "OVER",
    "PARTITION",
    "ROWS",
    "PRECEDING",
    "ASC",
    "DESC",
    "ROW_NUMBER",
    "RANK",
];

/// `END` is also a keyword but handled with the CASE machinery.
pub(crate) fn is_keyword(word: &str) -> bool {
    KEYWORDS.contains(&word) || word == "END"
}

pub(crate) fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let pos = i;
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let raw = &input[start..i];
            let upper = raw.to_ascii_uppercase();
            out.push(Token {
                kind: TokenKind::Word(if is_keyword(&upper) {
                    upper
                } else {
                    raw.to_string()
                }),
                pos,
            });
        } else if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let value: i64 = input[start..i].parse().map_err(|_| SqlError {
                message: format!("number out of range: {}", &input[start..i]),
                position: pos,
            })?;
            out.push(Token {
                kind: TokenKind::Number(value),
                pos,
            });
        } else if c == '?' {
            i += 1;
            out.push(Token {
                kind: TokenKind::Param(None),
                pos,
            });
        } else if c == '$' {
            let start = i + 1;
            i = start;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            if i == start {
                return Err(SqlError {
                    message: "expected a digit after $ (placeholders are $1, $2, ...)".into(),
                    position: pos,
                });
            }
            let n: usize = input[start..i].parse().map_err(|_| SqlError {
                message: format!("placeholder index out of range: ${}", &input[start..i]),
                position: pos,
            })?;
            if n == 0 {
                return Err(SqlError {
                    message: "placeholder indexes start at $1".into(),
                    position: pos,
                });
            }
            out.push(Token {
                kind: TokenKind::Param(Some(n)),
                pos,
            });
        } else if c == '\'' {
            i += 1;
            let mut s = String::new();
            loop {
                if i >= bytes.len() {
                    return Err(SqlError {
                        message: "unterminated string literal".into(),
                        position: pos,
                    });
                }
                if bytes[i] == b'\'' {
                    if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                        s.push('\'');
                        i += 2;
                        continue;
                    }
                    i += 1;
                    break;
                }
                s.push(bytes[i] as char);
                i += 1;
            }
            out.push(Token {
                kind: TokenKind::Str(s),
                pos,
            });
        } else {
            let sym = match c {
                '(' => Sym::LParen,
                ')' => Sym::RParen,
                ',' => Sym::Comma,
                '.' => Sym::Dot,
                '*' => Sym::Star,
                '/' => Sym::Slash,
                '+' => Sym::Plus,
                '-' => Sym::Minus,
                '=' => Sym::Eq,
                ';' => {
                    i += 1;
                    continue; // trailing semicolons are allowed and ignored
                }
                '<' => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        i += 1;
                        Sym::Le
                    } else if bytes.get(i + 1) == Some(&b'>') {
                        i += 1;
                        Sym::Ne
                    } else {
                        Sym::Lt
                    }
                }
                '>' => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        i += 1;
                        Sym::Ge
                    } else {
                        Sym::Gt
                    }
                }
                '!' => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        i += 1;
                        Sym::Ne
                    } else {
                        return Err(SqlError {
                            message: "expected != after !".into(),
                            position: pos,
                        });
                    }
                }
                other => {
                    return Err(SqlError {
                        message: format!("unexpected character {other:?}"),
                        position: pos,
                    })
                }
            };
            i += 1;
            out.push(Token {
                kind: TokenKind::Symbol(sym),
                pos,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn words_numbers_symbols() {
        assert_eq!(
            kinds("select Sum(a) from R where x <= 13"),
            vec![
                TokenKind::Word("SELECT".into()),
                TokenKind::Word("SUM".into()),
                TokenKind::Symbol(Sym::LParen),
                TokenKind::Word("a".into()),
                TokenKind::Symbol(Sym::RParen),
                TokenKind::Word("FROM".into()),
                TokenKind::Word("R".into()),
                TokenKind::Word("WHERE".into()),
                TokenKind::Word("x".into()),
                TokenKind::Symbol(Sym::Le),
                TokenKind::Number(13),
            ]
        );
    }

    #[test]
    fn identifiers_keep_case_keywords_uppercase() {
        assert_eq!(
            kinds("SELECT r_A FROM t"),
            vec![
                TokenKind::Word("SELECT".into()),
                TokenKind::Word("r_A".into()),
                TokenKind::Word("FROM".into()),
                TokenKind::Word("t".into()),
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            kinds("'PROMO%' 'it''s'"),
            vec![
                TokenKind::Str("PROMO%".into()),
                TokenKind::Str("it's".into()),
            ]
        );
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("a <> b != c >= 1 <= 2"),
            vec![
                TokenKind::Word("a".into()),
                TokenKind::Symbol(Sym::Ne),
                TokenKind::Word("b".into()),
                TokenKind::Symbol(Sym::Ne),
                TokenKind::Word("c".into()),
                TokenKind::Symbol(Sym::Ge),
                TokenKind::Number(1),
                TokenKind::Symbol(Sym::Le),
                TokenKind::Number(2),
            ]
        );
    }

    #[test]
    fn errors_carry_positions() {
        let err = tokenize("select #").unwrap_err();
        assert_eq!(err.position, 7);
    }

    #[test]
    fn placeholders() {
        assert_eq!(
            kinds("where x < ? and y = $2"),
            vec![
                TokenKind::Word("WHERE".into()),
                TokenKind::Word("x".into()),
                TokenKind::Symbol(Sym::Lt),
                TokenKind::Param(None),
                TokenKind::Word("AND".into()),
                TokenKind::Word("y".into()),
                TokenKind::Symbol(Sym::Eq),
                TokenKind::Param(Some(2)),
            ]
        );
        assert!(tokenize("$").is_err());
        assert!(tokenize("$x").is_err());
        assert!(tokenize("$0").is_err());
    }

    #[test]
    fn semicolons_ignored() {
        assert_eq!(kinds("a;"), vec![TokenKind::Word("a".into())]);
    }
}
