//! A SQL frontend for the supported plan shapes.
//!
//! Parses the dialect the paper's queries are written in — single-table
//! aggregation and FK joins with predicates on either side — directly into
//! a [`crate::LogicalPlan`]:
//!
//! ```
//! use swole_plan::sql::parse;
//!
//! let parsed = parse(
//!     "select r_c, sum(r_a * r_b) as s, count(*) as n \
//!      from R where r_x < 13 and r_y = 1 group by r_c",
//! ).unwrap();
//! assert_eq!(parsed.plan.base_table(), "R");
//! ```
//!
//! Supported grammar (case-insensitive keywords):
//!
//! ```text
//! stmt    := [EXPLAIN [ANALYZE | VERIFY]] query
//! query   := SELECT items FROM table [, table] [WHERE conj] [GROUP BY col]
//!            [ORDER BY sort] [LIMIT n]
//! items   := item (',' item)*
//! item    := col | SUM(expr) | COUNT(*) | MIN(expr) | MAX(expr) [AS name]
//!          | wfn OVER over [AS name]
//! wfn     := ROW_NUMBER() | RANK() | SUM(expr) | COUNT(*)
//! over    := '(' [PARTITION BY col] [ORDER BY sort] [ROWS n PRECEDING] ')'
//! sort    := col [ASC | DESC] (',' col [ASC | DESC])*
//! conj    := pred (AND pred)*
//! pred    := expr with comparisons, OR, NOT, BETWEEN, LIKE, IN (...),
//!            CASE WHEN ... THEN ... ELSE ... END, arithmetic, parentheses
//! ```
//!
//! Window functions are single-table only and every window item in a query
//! must share one `OVER` clause (one sort, one frame). A select list of
//! bare columns with no aggregates and no `GROUP BY` binds as a plain
//! projection. Result-level `ORDER BY` names output columns and breaks
//! ties by pre-sort position, so results stay deterministic.
//!
//! Predicates may contain placeholders — anonymous `?` (numbered left to
//! right) or explicit `$1`, `$2`, ... (1-based; the two styles cannot mix,
//! and ordinals must be contiguous). A query with placeholders cannot be
//! executed directly; hand it to [`crate::Engine::prepare_sql`] and bind
//! values through [`crate::PreparedStatement::bind`]. Each occurrence is
//! recorded in [`ParsedQuery::param_slots`].
//!
//! Two-table queries become FK semijoins/groupjoins: the join condition
//! must be `child.fk = parent.rowid` (`rowid` is each table's implicit
//! dense primary key), other predicates are routed to the side whose
//! columns they reference, and `GROUP BY fk` selects the groupjoin shape.
//!
//! An `EXPLAIN [ANALYZE | VERIFY]` prefix does not change the bound plan;
//! it sets [`ParsedQuery::explain`] so the caller can route the plan to
//! [`crate::Engine::explain`], [`crate::Engine::explain_analyze`], or
//! [`crate::Engine::explain_verify`] instead of executing it.

mod lexer;
mod parser;

pub use parser::{parse, ExplainMode, ParamSlot, ParsedQuery};

use std::fmt;

/// SQL front-end errors, with the offending position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub position: usize,
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for SqlError {}
