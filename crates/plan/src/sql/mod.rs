//! A SQL frontend for the supported plan shapes.
//!
//! Parses the dialect the paper's queries are written in — single-table
//! aggregation and FK joins with predicates on either side — directly into
//! a [`crate::LogicalPlan`]:
//!
//! ```
//! use swole_plan::sql::parse;
//!
//! let parsed = parse(
//!     "select r_c, sum(r_a * r_b) as s, count(*) as n \
//!      from R where r_x < 13 and r_y = 1 group by r_c",
//! ).unwrap();
//! assert_eq!(parsed.plan.base_table(), "R");
//! ```
//!
//! Supported grammar (case-insensitive keywords):
//!
//! ```text
//! stmt    := [EXPLAIN [ANALYZE | VERIFY]] query
//! query   := SELECT items FROM table [, table] [WHERE conj] [GROUP BY col]
//! items   := item (',' item)*
//! item    := col | SUM(expr) | COUNT(*) | MIN(expr) | MAX(expr) [AS name]
//! conj    := pred (AND pred)*
//! pred    := expr with comparisons, OR, NOT, BETWEEN, LIKE, IN (...),
//!            CASE WHEN ... THEN ... ELSE ... END, arithmetic, parentheses
//! ```
//!
//! Predicates may contain placeholders — anonymous `?` (numbered left to
//! right) or explicit `$1`, `$2`, ... (1-based; the two styles cannot mix,
//! and ordinals must be contiguous). A query with placeholders cannot be
//! executed directly; hand it to [`crate::Engine::prepare_sql`] and bind
//! values through [`crate::PreparedStatement::bind`]. Each occurrence is
//! recorded in [`ParsedQuery::param_slots`].
//!
//! Two-table queries become FK semijoins/groupjoins: the join condition
//! must be `child.fk = parent.rowid` (`rowid` is each table's implicit
//! dense primary key), other predicates are routed to the side whose
//! columns they reference, and `GROUP BY fk` selects the groupjoin shape.
//!
//! An `EXPLAIN [ANALYZE | VERIFY]` prefix does not change the bound plan;
//! it sets [`ParsedQuery::explain`] so the caller can route the plan to
//! [`crate::Engine::explain`], [`crate::Engine::explain_analyze`], or
//! [`crate::Engine::explain_verify`] instead of executing it.

mod lexer;
mod parser;

pub use parser::{parse, ExplainMode, ParamSlot, ParsedQuery};

use std::fmt;

/// SQL front-end errors, with the offending position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub position: usize,
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for SqlError {}
