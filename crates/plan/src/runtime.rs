//! Execution-hardening runtime: cancellation tokens, deadlines, and memory
//! budgets.
//!
//! One [`ExecCtx`] is created per query and shared by reference with every
//! morsel worker. Workers consult it at morsel boundaries (cooperative
//! cancellation — there is no preemption) and charge it before materializing
//! pullup temporaries (masks, bitmaps, hash tables, per-worker scratch).
//! All counters are relaxed atomics; the context adds no synchronization to
//! the tile loops themselves.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::PlanError;
use crate::faults;

/// Byte-accounting gauge enforcing a per-query memory budget.
///
/// The executor charges the gauge at every allocation site that scales with
/// input size — predicate masks, positional bitmaps, key sets, aggregation
/// hash tables (including growth), and per-worker tile scratch. A charge
/// that would push the total past the budget fails with
/// [`PlanError::BudgetExceeded`] *before* the allocation happens, so a
/// too-small budget degrades into a typed error instead of an OOM kill.
///
/// The gauge lives for one query; bytes are never released, which
/// overestimates transient peaks but keeps the hot path to a single
/// `fetch_add`.
#[derive(Debug)]
pub struct MemGauge {
    used: AtomicUsize,
    /// `usize::MAX` means unlimited.
    budget: usize,
}

impl MemGauge {
    pub(crate) fn new(budget: Option<usize>) -> MemGauge {
        MemGauge {
            used: AtomicUsize::new(0),
            budget: budget.unwrap_or(usize::MAX),
        }
    }

    /// Charge `bytes` against the budget. Fails if the budget would be
    /// exceeded, or if the fault harness has an allocation failure armed
    /// for this charge.
    pub fn try_charge(&self, bytes: usize) -> Result<(), PlanError> {
        if faults::charge_should_fail() {
            return Err(PlanError::BudgetExceeded {
                requested: bytes,
                used: self.used(),
                budget: 0,
            });
        }
        let prev = self.used.fetch_add(bytes, Ordering::Relaxed);
        if prev.saturating_add(bytes) > self.budget {
            return Err(PlanError::BudgetExceeded {
                requested: bytes,
                used: prev,
                budget: self.budget,
            });
        }
        Ok(())
    }

    /// Charge `bytes` without consulting the fault-injection harness.
    ///
    /// Long-lived gauges (the plan cache's byte budget) account bytes for
    /// the session's lifetime, not one query; an armed allocation fault is
    /// aimed at execution-path charges and must not be consumed by cache
    /// bookkeeping.
    pub(crate) fn try_charge_quiet(&self, bytes: usize) -> Result<(), PlanError> {
        let prev = self.used.fetch_add(bytes, Ordering::Relaxed);
        if prev.saturating_add(bytes) > self.budget {
            self.used.fetch_sub(bytes, Ordering::Relaxed);
            return Err(PlanError::BudgetExceeded {
                requested: bytes,
                used: prev,
                budget: self.budget,
            });
        }
        Ok(())
    }

    /// Return previously charged bytes to the budget (cache eviction).
    /// Only meaningful for long-lived gauges that pair every release with
    /// an earlier successful charge.
    pub(crate) fn release(&self, bytes: usize) {
        let _ = self
            .used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(bytes))
            });
    }

    /// Bytes charged so far.
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// The configured budget, if one was set.
    pub fn budget(&self) -> Option<usize> {
        (self.budget != usize::MAX).then_some(self.budget)
    }
}

/// Charge the gauge from a context where returning `Err` is impossible
/// (worker init closures, hash-table growth inside a tile loop). A failed
/// charge panics with the typed error as payload; the worker's
/// `catch_unwind` harness downcasts it back to the original `PlanError`.
pub(crate) fn charge_or_panic(gauge: &MemGauge, bytes: usize) {
    if let Err(e) = gauge.try_charge(bytes) {
        std::panic::panic_any(e);
    }
}

/// Convert a caught panic payload back into a typed error. Payloads thrown
/// via `panic_any(PlanError)` (budget charges inside infallible code) pass
/// through unchanged; string panics become `ExecutionFailed`.
pub(crate) fn panic_payload_error(payload: Box<dyn std::any::Any + Send>) -> PlanError {
    if let Some(e) = payload.downcast_ref::<PlanError>() {
        return e.clone();
    }
    let msg = if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    };
    PlanError::ExecutionFailed(msg)
}

/// Run `f` in a panic-isolation domain: any panic is caught and surfaced
/// as a typed [`PlanError`] instead of unwinding into the caller.
///
/// `AssertUnwindSafe` is sound here because a failed query's state is
/// discarded wholesale — the engine either retries data-centric on a fresh
/// context or returns the error; nothing observes half-updated scratch.
pub(crate) fn isolate<T>(f: impl FnOnce() -> Result<T, PlanError>) -> Result<T, PlanError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => Err(panic_payload_error(payload)),
    }
}

/// Shared cancellation flag behind [`ExecHandle`].
#[derive(Debug, Default)]
pub(crate) struct CancelState {
    cancelled: AtomicBool,
}

/// Cancellation token for an [`crate::Engine`] session.
///
/// Obtained from [`crate::Engine::handle`]; cloneable and sendable, so it
/// can cancel a query running on another thread. Cancellation is
/// cooperative: workers observe it at their next morsel boundary and the
/// query returns [`PlanError::Cancelled`] with partial-progress counts.
/// The flag is sticky — call [`ExecHandle::reset`] before reusing the
/// engine for further queries.
#[derive(Debug, Clone)]
pub struct ExecHandle {
    state: Arc<CancelState>,
}

impl ExecHandle {
    pub(crate) fn new(state: Arc<CancelState>) -> ExecHandle {
        ExecHandle { state }
    }

    /// Request cancellation of the session's in-flight (and future)
    /// queries.
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::SeqCst);
    }

    /// `true` once [`ExecHandle::cancel`] has been called (and not reset).
    pub fn is_cancelled(&self) -> bool {
        self.state.cancelled.load(Ordering::SeqCst)
    }

    /// Clear the cancellation flag so the engine accepts queries again.
    pub fn reset(&self) {
        self.state.cancelled.store(false, Ordering::SeqCst);
    }
}

/// Per-query execution context: cancellation, deadline, budget, progress.
pub(crate) struct ExecCtx {
    cancel: Arc<CancelState>,
    /// Absolute deadline on the (possibly fault-skewed) deadline clock.
    deadline: Option<Instant>,
    /// The query's memory gauge.
    pub(crate) gauge: MemGauge,
    /// Set when any worker panics; siblings exit at their next boundary.
    tripped: AtomicBool,
    morsels_done: AtomicUsize,
    morsels_total: AtomicUsize,
}

impl ExecCtx {
    pub(crate) fn new(
        cancel: Arc<CancelState>,
        deadline: Option<Duration>,
        budget: Option<usize>,
    ) -> ExecCtx {
        ExecCtx {
            cancel,
            deadline: deadline.map(|d| Instant::now() + d),
            gauge: MemGauge::new(budget),
            tripped: AtomicBool::new(false),
            morsels_done: AtomicUsize::new(0),
            morsels_total: AtomicUsize::new(0),
        }
    }

    /// A context with no handle, deadline, or budget (unit tests).
    #[cfg(test)]
    pub(crate) fn unbounded() -> ExecCtx {
        ExecCtx::new(Arc::new(CancelState::default()), None, None)
    }

    /// The cooperative check run at every morsel boundary (and once before
    /// dispatch, so zero-morsel inputs still observe a 0ms deadline).
    /// Cancellation wins over deadline expiry when both hold.
    pub(crate) fn check(&self) -> Result<(), PlanError> {
        if self.cancel.cancelled.load(Ordering::Relaxed) {
            return Err(PlanError::Cancelled {
                morsels_done: self.morsels_done.load(Ordering::Relaxed),
                morsels_total: self.morsels_total.load(Ordering::Relaxed),
            });
        }
        if let Some(deadline) = self.deadline {
            if faults::now() >= deadline {
                return Err(PlanError::DeadlineExceeded {
                    morsels_done: self.morsels_done.load(Ordering::Relaxed),
                    morsels_total: self.morsels_total.load(Ordering::Relaxed),
                });
            }
        }
        Ok(())
    }

    /// Mark the context failed so sibling workers stop claiming morsels.
    pub(crate) fn trip(&self) {
        self.tripped.store(true, Ordering::SeqCst);
    }

    pub(crate) fn tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
    }

    pub(crate) fn morsel_done(&self) {
        self.morsels_done.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_morsels_total(&self, n: usize) {
        self.morsels_total.fetch_add(n, Ordering::Relaxed);
    }

    /// `(morsels_done, morsels_total)` for progress reporting.
    pub(crate) fn progress(&self) -> (usize, usize) {
        (
            self.morsels_done.load(Ordering::Relaxed),
            self.morsels_total.load(Ordering::Relaxed),
        )
    }
}
