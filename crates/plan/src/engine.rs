//! The engine: access-aware planning and tile-at-a-time execution.

use crate::catalog::Database;
use crate::error::PlanError;
use crate::expr::{AggFunc, Expr};
use crate::logical::{AggSpec, LogicalPlan};
use crate::physical::{PhysicalPlan, Shape};
use crate::stats;
use swole_bitmap::PositionalBitmap;
use swole_cost::choose::{choose_agg, choose_groupjoin, choose_semijoin};
use swole_cost::{
    AggProfile, AggStrategy, BitmapBuild, CostParams, GroupJoinProfile, GroupJoinStrategy,
    SemiJoinProfile, SemiJoinStrategy,
};
use swole_ht::{AggTable, KeySet};
use swole_kernels::{predicate, selvec, tiles, TILE};
use swole_storage::Table;

/// A materialized query result: named columns, row-major `i64` values.
///
/// Group-by results are sorted by the group key; dictionary-encoded group
/// keys come back as codes. A scalar aggregation always yields exactly one
/// row; with zero qualifying rows, sums and counts are 0 and min/max are 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Rows, each with one value per column.
    pub rows: Vec<Vec<i64>>,
}

impl QueryResult {
    /// The single value of a one-row result column (panics otherwise —
    /// convenience for scalar aggregates in examples/tests).
    pub fn scalar(&self, column: &str) -> i64 {
        assert_eq!(self.rows.len(), 1, "scalar() needs exactly one row");
        let i = self
            .columns
            .iter()
            .position(|c| c == column)
            .unwrap_or_else(|| panic!("no column {column}"));
        self.rows[0][i]
    }
}

/// The access-aware query engine: owns a [`Database`] and cost parameters,
/// plans logical queries through the paper's choosers, and executes them
/// with the `swole-kernels` loop bodies.
pub struct Engine {
    db: Database,
    params: CostParams,
}

impl Engine {
    /// Engine over a database with default cost parameters.
    pub fn new(db: Database) -> Engine {
        Engine {
            db,
            params: CostParams::default(),
        }
    }

    /// Use specific (e.g. calibrated) cost parameters.
    pub fn with_params(mut self, params: CostParams) -> Engine {
        self.params = params;
        self
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Plan and execute in one step.
    pub fn query(&self, plan: &LogicalPlan) -> Result<QueryResult, PlanError> {
        let physical = self.plan(plan)?;
        Ok(self.execute(&physical))
    }

    /// EXPLAIN: plan and render the decision trail.
    pub fn explain(&self, plan: &LogicalPlan) -> Result<String, PlanError> {
        Ok(self.plan(plan)?.explain())
    }

    // -----------------------------------------------------------------
    // Planning
    // -----------------------------------------------------------------

    /// Plan a logical query, making every Fig. 2 decision via the cost
    /// models.
    pub fn plan(&self, plan: &LogicalPlan) -> Result<PhysicalPlan, PlanError> {
        let LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } = plan
        else {
            return Err(PlanError::Unsupported(
                "top-level node must be an aggregation".into(),
            ));
        };
        if aggs.is_empty() {
            return Err(PlanError::Unsupported("empty aggregate list".into()));
        }
        let (core, filter) = split_filters(input);
        match core {
            LogicalPlan::Scan { table } => {
                self.plan_scan_agg(table, filter, group_by.as_deref(), aggs)
            }
            LogicalPlan::SemiJoin {
                input: probe,
                build,
                fk_col,
            } => {
                let (probe_core, mut probe_filter) = split_filters(probe);
                if let Some(extra) = filter {
                    probe_filter = Some(match probe_filter {
                        Some(f) => f.and(extra),
                        None => extra,
                    });
                }
                let LogicalPlan::Scan { table: probe_table } = probe_core else {
                    return Err(PlanError::Unsupported(
                        "semijoin probe side must be scan(+filter)".into(),
                    ));
                };
                let (build_core, build_filter) = split_filters(build);
                let LogicalPlan::Scan { table: build_table } = build_core else {
                    return Err(PlanError::Unsupported(
                        "semijoin build side must be scan(+filter)".into(),
                    ));
                };
                match group_by.as_deref() {
                    None => self.plan_semijoin_agg(
                        probe_table,
                        probe_filter,
                        build_table,
                        build_filter,
                        fk_col,
                        aggs,
                    ),
                    Some(g) if g == fk_col => {
                        if probe_filter.is_some() {
                            return Err(PlanError::Unsupported(
                                "groupjoin with a probe-side filter".into(),
                            ));
                        }
                        self.plan_groupjoin_agg(probe_table, build_table, build_filter, fk_col, aggs)
                    }
                    Some(other) => Err(PlanError::Unsupported(format!(
                        "group by {other} over a semijoin (only the FK column is supported)"
                    ))),
                }
            }
            other => Err(PlanError::Unsupported(format!(
                "aggregation over {other:?}"
            ))),
        }
    }

    fn plan_scan_agg(
        &self,
        table_name: &str,
        filter: Option<Expr>,
        group_by: Option<&str>,
        aggs: &[AggSpec],
    ) -> Result<PhysicalPlan, PlanError> {
        let table = self.db.table(table_name)?;
        if let Some(f) = &filter {
            f.validate(table)?;
        }
        for a in aggs {
            a.expr.validate(table)?;
        }
        if let Some(g) = group_by {
            if table.column(g).is_none() {
                return Err(PlanError::UnknownColumn {
                    table: table_name.to_string(),
                    column: g.to_string(),
                });
            }
        }
        let mut decisions = Vec::new();
        let selectivity = match &filter {
            Some(f) => stats::estimate_selectivity(table, f),
            None => 1.0,
        };
        let group_keys = group_by.map(|g| stats::estimate_distinct(table, g));
        let has_minmax = aggs
            .iter()
            .any(|a| matches!(a.func, AggFunc::Min | AggFunc::Max));
        let strategy = if has_minmax {
            decisions.push(
                "hybrid forced: min/max require extra masking bookkeeping (§ III-A)".into(),
            );
            AggStrategy::Hybrid
        } else {
            let mut cols: Vec<String> = Vec::new();
            for a in aggs {
                for c in a.expr.columns() {
                    if !cols.contains(&c) {
                        cols.push(c);
                    }
                }
            }
            let comp: f64 =
                aggs.iter().map(|a| a.expr.comp_cycles() + 0.5).sum();
            let profile = AggProfile {
                rows: table.len(),
                selectivity,
                comp,
                n_cols: cols.len() + group_by.map(|_| 1).unwrap_or(0),
                group_keys,
                n_aggs: aggs.len(),
            };
            let choice = choose_agg(&self.params, &profile);
            decisions.push(format!(
                "σ={selectivity:.2} → {} (hybrid={:.2e}, vm={:.2e}{})",
                choice.explanation,
                choice.cost_hybrid,
                choice.cost_value_masking,
                choice
                    .cost_key_masking
                    .map(|c| format!(", km={c:.2e}"))
                    .unwrap_or_default(),
            ));
            choice.strategy
        };
        Ok(PhysicalPlan {
            shape: Shape::ScanAgg {
                table: table_name.to_string(),
                filter,
                group_by: group_by.map(str::to_string),
                aggs: aggs.to_vec(),
                strategy,
            },
            decisions,
        })
    }

    fn plan_semijoin_agg(
        &self,
        probe: &str,
        probe_filter: Option<Expr>,
        build: &str,
        build_filter: Option<Expr>,
        fk_col: &str,
        aggs: &[AggSpec],
    ) -> Result<PhysicalPlan, PlanError> {
        let probe_t = self.db.table(probe)?;
        let build_t = self.db.table(build)?;
        if let Some(f) = &probe_filter {
            f.validate(probe_t)?;
        }
        if let Some(f) = &build_filter {
            f.validate(build_t)?;
        }
        for a in aggs {
            a.expr.validate(probe_t)?;
            if matches!(a.func, AggFunc::Min | AggFunc::Max) {
                return Err(PlanError::Unsupported(
                    "min/max over a semijoin (use sum/count)".into(),
                ));
            }
        }
        self.fk_positions(probe, fk_col, build)?; // validate FK column early
        let build_sel = match &build_filter {
            Some(f) => stats::estimate_selectivity(build_t, f),
            None => 1.0,
        };
        let has_fk_index = self.db.fk_index(probe, fk_col, build).is_some();
        let choice = choose_semijoin(
            &self.params,
            &SemiJoinProfile {
                build_rows: build_t.len(),
                build_selectivity: build_sel,
                has_fk_index,
            },
        );
        let probe_sel = match &probe_filter {
            Some(f) => stats::estimate_selectivity(probe_t, f),
            None => 1.0,
        };
        // Same VM-model threshold as the chooser's build decision: masked
        // probing wins unless the probe predicate is very selective.
        let probe_masked = probe_sel >= 0.125;
        Ok(PhysicalPlan {
            shape: Shape::SemiJoinAgg {
                probe: probe.to_string(),
                probe_filter,
                build: build.to_string(),
                build_filter,
                fk_col: fk_col.to_string(),
                aggs: aggs.to_vec(),
                strategy: choice.strategy,
                probe_masked,
            },
            decisions: vec![
                format!("σ_build={build_sel:.2} → {}", choice.explanation),
                format!(
                    "σ_probe={probe_sel:.2} → {} probe",
                    if probe_masked { "masked" } else { "selection-vector" }
                ),
            ],
        })
    }

    fn plan_groupjoin_agg(
        &self,
        probe: &str,
        build: &str,
        build_filter: Option<Expr>,
        fk_col: &str,
        aggs: &[AggSpec],
    ) -> Result<PhysicalPlan, PlanError> {
        let probe_t = self.db.table(probe)?;
        let build_t = self.db.table(build)?;
        if let Some(f) = &build_filter {
            f.validate(build_t)?;
        }
        for a in aggs {
            a.expr.validate(probe_t)?;
            if matches!(a.func, AggFunc::Min | AggFunc::Max) {
                return Err(PlanError::Unsupported(
                    "min/max over a groupjoin (use sum/count)".into(),
                ));
            }
        }
        self.fk_positions(probe, fk_col, build)?;
        let s_sel = match &build_filter {
            Some(f) => stats::estimate_selectivity(build_t, f),
            None => 1.0,
        };
        let comp: f64 = aggs.iter().map(|a| a.expr.comp_cycles() + 0.5).sum();
        let choice = choose_groupjoin(
            &self.params,
            &GroupJoinProfile {
                r_rows: probe_t.len(),
                r_selectivity: 1.0,
                s_rows: build_t.len(),
                s_selectivity: s_sel,
                join_match_prob: s_sel,
                group_keys: build_t.len(),
                comp,
                n_aggs: aggs.len(),
            },
        );
        Ok(PhysicalPlan {
            shape: Shape::GroupJoinAgg {
                probe: probe.to_string(),
                build: build.to_string(),
                build_filter,
                fk_col: fk_col.to_string(),
                aggs: aggs.to_vec(),
                strategy: choice.strategy,
            },
            decisions: vec![format!(
                "σ_S={s_sel:.2} → {} (groupjoin={:.2e}, eager={:.2e})",
                choice.explanation, choice.cost_groupjoin, choice.cost_eager,
            )],
        })
    }

    /// The positional FK mapping probe→parent: the registered FK index if
    /// present, otherwise the raw `u32` FK column (dense parent keys).
    fn fk_positions<'a>(
        &'a self,
        child: &str,
        fk_col: &str,
        parent: &str,
    ) -> Result<&'a [u32], PlanError> {
        if let Some(idx) = self.db.fk_index(child, fk_col, parent) {
            return Ok(idx.positions());
        }
        let child_t = self.db.table(child)?;
        let col = child_t
            .column(fk_col)
            .ok_or_else(|| PlanError::UnknownColumn {
                table: child.to_string(),
                column: fk_col.to_string(),
            })?;
        col.as_u32().ok_or_else(|| PlanError::MissingFkIndex {
            child: child.to_string(),
            fk_column: fk_col.to_string(),
        })
    }

    // -----------------------------------------------------------------
    // Execution
    // -----------------------------------------------------------------

    /// Execute a physical plan.
    pub fn execute(&self, plan: &PhysicalPlan) -> QueryResult {
        match &plan.shape {
            Shape::ScanAgg {
                table,
                filter,
                group_by,
                aggs,
                strategy,
            } => {
                let t = self.db.table(table).expect("planned table");
                match group_by {
                    None => exec_scalar_agg(t, filter.as_ref(), aggs, *strategy),
                    Some(g) => exec_groupby_agg(t, filter.as_ref(), g, aggs, *strategy),
                }
            }
            Shape::SemiJoinAgg {
                probe,
                probe_filter,
                build,
                build_filter,
                fk_col,
                aggs,
                strategy,
                probe_masked,
            } => {
                let probe_t = self.db.table(probe).expect("planned table");
                let build_t = self.db.table(build).expect("planned table");
                let fk = self
                    .fk_positions(probe, fk_col, build)
                    .expect("planned FK");
                exec_semijoin_agg(
                    probe_t,
                    probe_filter.as_ref(),
                    build_t,
                    build_filter.as_ref(),
                    fk,
                    aggs,
                    *strategy,
                    *probe_masked,
                )
            }
            Shape::GroupJoinAgg {
                probe,
                build,
                build_filter,
                fk_col,
                aggs,
                strategy,
            } => {
                let probe_t = self.db.table(probe).expect("planned table");
                let build_t = self.db.table(build).expect("planned table");
                let fk = self
                    .fk_positions(probe, fk_col, build)
                    .expect("planned FK");
                exec_groupjoin_agg(
                    probe_t,
                    build_t,
                    build_filter.as_ref(),
                    fk,
                    fk_col,
                    aggs,
                    *strategy,
                )
            }
        }
    }
}

/// Merge a chain of filters above a leaf into one conjunction.
fn split_filters(plan: &LogicalPlan) -> (&LogicalPlan, Option<Expr>) {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let (core, rest) = split_filters(input);
            let merged = match rest {
                Some(r) => predicate.clone().and(r),
                None => predicate.clone(),
            };
            (core, Some(merged))
        }
        other => (other, None),
    }
}

/// Evaluate the filter (or all-ones) mask for one tile.
fn tile_mask(filter: Option<&Expr>, table: &Table, start: usize, cmp: &mut [u8]) {
    match filter {
        Some(f) => f.eval_mask(table, start, cmp),
        None => cmp.fill(1),
    }
}

fn exec_scalar_agg(
    table: &Table,
    filter: Option<&Expr>,
    aggs: &[AggSpec],
    strategy: AggStrategy,
) -> QueryResult {
    let n = table.len();
    let n_aggs = aggs.len();
    let mut acc = vec![0i64; n_aggs];
    let mut matched = 0usize;
    for (i, a) in aggs.iter().enumerate() {
        if a.func == AggFunc::Min {
            acc[i] = i64::MAX;
        }
        if a.func == AggFunc::Max {
            acc[i] = i64::MIN;
        }
    }
    let mut cmp = [0u8; TILE];
    let mut idx = [0u32; TILE];
    let mut val = vec![0i64; TILE];
    for (start, len) in tiles(n) {
        tile_mask(filter, table, start, &mut cmp[..len]);
        match strategy {
            AggStrategy::ValueMasking => {
                matched += predicate::mask_count(&cmp[..len]);
                for (i, a) in aggs.iter().enumerate() {
                    match a.func {
                        AggFunc::Sum => {
                            a.expr.eval_values(table, start, &mut val[..len]);
                            for j in 0..len {
                                acc[i] += val[j] * cmp[j] as i64;
                            }
                        }
                        AggFunc::Count => {
                            for &c in &cmp[..len] {
                                acc[i] += c as i64;
                            }
                        }
                        // Planner never sends min/max down the masked path.
                        AggFunc::Min | AggFunc::Max => unreachable!("planner invariant"),
                    }
                }
            }
            // Scalar aggregation has no key to mask; hybrid covers both.
            AggStrategy::Hybrid | AggStrategy::KeyMasking => {
                let k = selvec::fill_nobranch(&cmp[..len], start as u32, &mut idx[..len]);
                matched += k;
                for (i, a) in aggs.iter().enumerate() {
                    match a.func {
                        AggFunc::Count => acc[i] += k as i64,
                        _ => {
                            a.expr.eval_values(table, start, &mut val[..len]);
                            for &j in &idx[..k] {
                                let v = val[j as usize - start];
                                match a.func {
                                    AggFunc::Sum => acc[i] += v,
                                    AggFunc::Min => acc[i] = acc[i].min(v),
                                    AggFunc::Max => acc[i] = acc[i].max(v),
                                    AggFunc::Count => unreachable!(),
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    if matched == 0 {
        acc = vec![0; n_aggs];
    }
    QueryResult {
        columns: aggs.iter().map(|a| a.name.clone()).collect(),
        rows: vec![acc],
    }
}

fn exec_groupby_agg(
    table: &Table,
    filter: Option<&Expr>,
    group_by: &str,
    aggs: &[AggSpec],
    strategy: AggStrategy,
) -> QueryResult {
    let n = table.len();
    let n_aggs = aggs.len();
    let mut ht = AggTable::with_capacity(n_aggs, 64);
    let mut cmp = [0u8; TILE];
    let mut idx = [0u32; TILE];
    let mut keys = vec![0i64; TILE];
    let mut masked = vec![0i64; TILE];
    let mut vals: Vec<Vec<i64>> = vec![vec![0i64; TILE]; n_aggs];
    let key_expr = Expr::col(group_by);
    for (start, len) in tiles(n) {
        tile_mask(filter, table, start, &mut cmp[..len]);
        key_expr.eval_values(table, start, &mut keys[..len]);
        for (i, a) in aggs.iter().enumerate() {
            if a.func != AggFunc::Count {
                a.expr.eval_values(table, start, &mut vals[i][..len]);
            }
        }
        match strategy {
            AggStrategy::Hybrid => {
                let k = selvec::fill_nobranch(&cmp[..len], start as u32, &mut idx[..len]);
                for &j in &idx[..k] {
                    let j = j as usize - start;
                    let off = ht.entry(keys[j]);
                    let fresh = !ht.is_valid(off);
                    for (i, a) in aggs.iter().enumerate() {
                        let v = vals[i][j];
                        let s = &mut ht.states_mut()[off + i];
                        match a.func {
                            AggFunc::Sum => *s += v,
                            AggFunc::Count => *s += 1,
                            AggFunc::Min => *s = if fresh { v } else { (*s).min(v) },
                            AggFunc::Max => *s = if fresh { v } else { (*s).max(v) },
                        }
                    }
                    ht.set_valid(off);
                }
            }
            AggStrategy::ValueMasking => {
                for j in 0..len {
                    let off = ht.entry(keys[j]);
                    let m = cmp[j] as i64;
                    for (i, a) in aggs.iter().enumerate() {
                        let add = match a.func {
                            AggFunc::Sum => vals[i][j] * m,
                            AggFunc::Count => m,
                            AggFunc::Min | AggFunc::Max => unreachable!("planner invariant"),
                        };
                        ht.states_mut()[off + i] += add;
                    }
                    ht.or_valid(off, cmp[j]);
                }
            }
            AggStrategy::KeyMasking => {
                swole_kernels::groupby::mask_keys(&keys[..len], &cmp[..len], &mut masked[..len]);
                for j in 0..len {
                    let off = ht.entry(masked[j]);
                    for (i, a) in aggs.iter().enumerate() {
                        let add = match a.func {
                            AggFunc::Sum => vals[i][j],
                            AggFunc::Count => 1,
                            AggFunc::Min | AggFunc::Max => unreachable!("planner invariant"),
                        };
                        ht.states_mut()[off + i] += add;
                    }
                    // Branch-free: the throwaway entry's flag is ignored by
                    // the result iterator, so set it unconditionally.
                    ht.or_valid(off, cmp[j]);
                }
            }
        }
    }
    rows_from_table(group_by, aggs, &ht)
}

fn rows_from_table(key_name: &str, aggs: &[AggSpec], ht: &AggTable) -> QueryResult {
    let mut rows: Vec<Vec<i64>> = ht
        .iter()
        .filter(|&(_, _, valid)| valid)
        .map(|(key, state, _)| {
            let mut row = Vec::with_capacity(1 + aggs.len());
            row.push(key);
            row.extend_from_slice(state);
            row
        })
        .collect();
    rows.sort_unstable();
    let mut columns = vec![key_name.to_string()];
    columns.extend(aggs.iter().map(|a| a.name.clone()));
    QueryResult { columns, rows }
}

#[allow(clippy::too_many_arguments)]
fn exec_semijoin_agg(
    probe: &Table,
    probe_filter: Option<&Expr>,
    build: &Table,
    build_filter: Option<&Expr>,
    fk: &[u32],
    aggs: &[AggSpec],
    strategy: SemiJoinStrategy,
    probe_masked: bool,
) -> QueryResult {
    // Build phase.
    let build_n = build.len();
    let mut build_cmp = vec![0u8; build_n];
    for (start, len) in tiles(build_n) {
        tile_mask(build_filter, build, start, &mut build_cmp[start..start + len]);
    }
    enum BuildSide {
        Set(KeySet),
        Bitmap(PositionalBitmap),
    }
    let side = match strategy {
        SemiJoinStrategy::Hash => {
            let mut set = KeySet::with_capacity(build_n / 2 + 4);
            for (pos, &c) in build_cmp.iter().enumerate() {
                if c != 0 {
                    set.insert(pos as i64);
                }
            }
            BuildSide::Set(set)
        }
        SemiJoinStrategy::PositionalBitmap(BitmapBuild::Unconditional) => {
            BuildSide::Bitmap(PositionalBitmap::from_predicate_bytes(&build_cmp))
        }
        SemiJoinStrategy::PositionalBitmap(BitmapBuild::SelectionVector) => {
            let mut sel = Vec::new();
            for (start, len) in tiles(build_n) {
                selvec::append_nobranch(&build_cmp[start..start + len], start as u32, &mut sel);
            }
            BuildSide::Bitmap(PositionalBitmap::from_selection(build_n, &sel))
        }
    };
    // Probe phase: scalar accumulation.
    let n = probe.len();
    let mut acc = vec![0i64; aggs.len()];
    let mut matched = 0usize;
    let mut cmp = [0u8; TILE];
    let mut idx = [0u32; TILE];
    let mut val = vec![0i64; TILE];
    for (start, len) in tiles(n) {
        tile_mask(probe_filter, probe, start, &mut cmp[..len]);
        // Fold the join bit into the mask, per build structure.
        match (&side, probe_masked) {
            (BuildSide::Bitmap(bm), true) => {
                for j in 0..len {
                    cmp[j] &= bm.get_bit(fk[start + j] as usize) as u8;
                }
                matched += predicate::mask_count(&cmp[..len]);
                for (i, a) in aggs.iter().enumerate() {
                    match a.func {
                        AggFunc::Sum => {
                            a.expr.eval_values(probe, start, &mut val[..len]);
                            for j in 0..len {
                                acc[i] += val[j] * cmp[j] as i64;
                            }
                        }
                        AggFunc::Count => {
                            for &c in &cmp[..len] {
                                acc[i] += c as i64;
                            }
                        }
                        _ => unreachable!("planner invariant"),
                    }
                }
            }
            (side, _) => {
                let k = selvec::fill_nobranch(&cmp[..len], start as u32, &mut idx[..len]);
                for (i, a) in aggs.iter().enumerate() {
                    if a.func != AggFunc::Count {
                        a.expr.eval_values(probe, start, &mut val[..len]);
                    }
                    for &j in &idx[..k] {
                        let pos = fk[j as usize] as usize;
                        let hit = match side {
                            BuildSide::Set(set) => set.contains(pos as i64) as i64,
                            BuildSide::Bitmap(bm) => bm.get_bit(pos) as i64,
                        };
                        match a.func {
                            AggFunc::Sum => acc[i] += val[j as usize - start] * hit,
                            AggFunc::Count => acc[i] += hit,
                            _ => unreachable!("planner invariant"),
                        }
                        if i == 0 {
                            matched += hit as usize;
                        }
                    }
                }
            }
        }
    }
    if matched == 0 {
        acc = vec![0; aggs.len()];
    }
    QueryResult {
        columns: aggs.iter().map(|a| a.name.clone()).collect(),
        rows: vec![acc],
    }
}

fn exec_groupjoin_agg(
    probe: &Table,
    build: &Table,
    build_filter: Option<&Expr>,
    fk: &[u32],
    fk_col: &str,
    aggs: &[AggSpec],
    strategy: GroupJoinStrategy,
) -> QueryResult {
    let n_aggs = aggs.len();
    let build_n = build.len();
    let mut build_cmp = vec![0u8; build_n];
    for (start, len) in tiles(build_n) {
        tile_mask(build_filter, build, start, &mut build_cmp[start..start + len]);
    }
    let mut ht = AggTable::with_capacity(n_aggs, (build_n / 2).max(16));
    let mut vals: Vec<Vec<i64>> = vec![vec![0i64; TILE]; n_aggs];
    match strategy {
        GroupJoinStrategy::GroupJoin => {
            for (pos, &c) in build_cmp.iter().enumerate() {
                if c != 0 {
                    ht.entry(pos as i64);
                }
            }
            for (start, len) in tiles(probe.len()) {
                for (i, a) in aggs.iter().enumerate() {
                    if a.func != AggFunc::Count {
                        a.expr.eval_values(probe, start, &mut vals[i][..len]);
                    }
                }
                for j in 0..len {
                    if let Some(off) = ht.find(fk[start + j] as i64) {
                        for (i, a) in aggs.iter().enumerate() {
                            let add = match a.func {
                                AggFunc::Sum => vals[i][j],
                                AggFunc::Count => 1,
                                _ => unreachable!("planner invariant"),
                            };
                            ht.states_mut()[off + i] += add;
                        }
                        ht.set_valid(off);
                    }
                }
            }
        }
        GroupJoinStrategy::EagerAggregation => {
            for (start, len) in tiles(probe.len()) {
                for (i, a) in aggs.iter().enumerate() {
                    if a.func != AggFunc::Count {
                        a.expr.eval_values(probe, start, &mut vals[i][..len]);
                    }
                }
                for j in 0..len {
                    let off = ht.entry(fk[start + j] as i64);
                    for (i, a) in aggs.iter().enumerate() {
                        let add = match a.func {
                            AggFunc::Sum => vals[i][j],
                            AggFunc::Count => 1,
                            _ => unreachable!("planner invariant"),
                        };
                        ht.states_mut()[off + i] += add;
                    }
                    ht.set_valid(off);
                }
            }
            // Inverted predicate deletes non-qualifying keys (§ III-E).
            for (pos, &c) in build_cmp.iter().enumerate() {
                if c == 0 {
                    ht.delete(pos as i64);
                }
            }
        }
    }
    rows_from_table(fk_col, aggs, &ht)
}
