//! The engine: access-aware planning and morsel-parallel tile-at-a-time
//! execution on the shared `swole-runtime` substrate.

use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, Condvar, Mutex, RwLock, RwLockReadGuard, Weak};
use std::time::{Duration, Instant};

use crate::cache::{
    BreakerDecision, CacheLookup, CostSnapshot, FallbackBreakerStats, PlanCache, PlanCacheStats,
    DEFAULT_PLAN_CACHE_BYTES,
};
use crate::catalog::Database;
use crate::error::PlanError;
use crate::expr::{AggFunc, Expr};
use crate::logical::{AggSpec, FrameSpec, LogicalPlan, SortKey, WindowFnSpec, WindowFunc};
use crate::metrics::{MetricsLevel, OpMetrics, QueryMetrics};
use crate::physical::{JoinEdge, PhysicalPlan, PostOp, Shape};
use crate::session::QueryOptions;
use crate::stats;
use crate::value::Value;
use swole_bitmap::PositionalBitmap;
use swole_cost::choose::{choose_agg_mt, choose_groupjoin_mt, choose_semijoin, sort_cost};
use swole_cost::{
    choose_join_order, join_order_cost, observed, AggProfile, AggStrategy, BitmapBuild, CostParams,
    GroupJoinProfile, GroupJoinStrategy, JoinEdgeProfile, JoinGraphProfile, JoinOrderMethod,
    SemiJoinProfile, SemiJoinStrategy, WindowProfile, WindowStrategy,
};
use swole_ht::{AggTable, KeySet, MergeOp};
use swole_kernels::{predicate, selvec, tiles, tiles_in, AccessCounters, MORSEL_ROWS, TILE};
use swole_runtime::{
    charge_or_panic, AdmissionConfig, AdmissionController, AdmissionError, AdmissionPermit,
    CancelState, ExecCtx, ExecHandle, Executor, GlobalMemoryPool, MemGauge, MemoryPolicy,
    MemoryPoolStats, Priority,
};
use swole_storage::{Date, Decimal, FkIndex, Table};
use swole_verify::{
    BoundsCtx, ColumnProfile, PlanCertificate, TableProfile, VerifyLevel, VerifyReport,
};

/// Run `f` under panic isolation: a panic anywhere inside (submitter-side
/// evaluation, merge code, or a worker payload re-thrown by the executor)
/// is contained to the query and surfaced as a typed [`PlanError`].
fn isolate<T>(f: impl FnOnce() -> Result<T, PlanError>) -> Result<T, PlanError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => match payload.downcast::<PlanError>() {
            Ok(e) => Err(*e),
            Err(p) => Err(swole_runtime::panic_payload_error(p).into()),
        },
    }
}

/// A materialized query result: named columns, row-major `i64` values.
///
/// Group-by results are sorted by the group key; dictionary-encoded group
/// keys come back as codes. A scalar aggregation always yields exactly one
/// row; with zero qualifying rows, sums and counts are 0 and min/max are 0.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Rows, each with one value per column.
    pub rows: Vec<Vec<i64>>,
    /// Metrics snapshot from the execution that produced this result;
    /// `None` when the session ran with [`MetricsLevel::Off`].
    pub(crate) metrics: Option<QueryMetrics>,
    /// Dictionary for the group-key column (column 0) when it was
    /// dictionary-encoded; lets [`QueryResult::col_str`] decode codes back
    /// to strings.
    pub(crate) key_dict: Option<Arc<Vec<String>>>,
}

/// Equality compares the *data* (columns and rows) only — two identical
/// results are equal even if one carries metrics and the other does not,
/// so engine-vs-interpreter cross-checks keep working at any level.
impl PartialEq for QueryResult {
    fn eq(&self, other: &QueryResult) -> bool {
        self.columns == other.columns && self.rows == other.rows
    }
}

impl Eq for QueryResult {}

impl QueryResult {
    /// Build a bare result from columns and rows (no metrics, no key
    /// dictionary) — for tests and external harnesses that need a
    /// comparison baseline.
    pub fn new(columns: Vec<String>, rows: Vec<Vec<i64>>) -> QueryResult {
        QueryResult {
            columns,
            rows,
            metrics: None,
            key_dict: None,
        }
    }

    /// The single value of a one-row result column.
    ///
    /// Errors with [`PlanError::NotScalar`] when the result has more or
    /// fewer than one row, and [`PlanError::UnknownResultColumn`] when no
    /// column has that name.
    pub fn try_scalar(&self, column: &str) -> Result<i64, PlanError> {
        if self.rows.len() != 1 {
            return Err(PlanError::NotScalar {
                rows: self.rows.len(),
            });
        }
        let i = self.column_index(column)?;
        self.rows[0]
            .get(i)
            .copied()
            .ok_or(PlanError::IndexOutOfRange {
                axis: "column",
                index: i,
                len: self.rows[0].len(),
            })
    }

    /// The metrics snapshot recorded while producing this result, when the
    /// session (or `EXPLAIN ANALYZE`) executed with
    /// [`MetricsLevel::Counters`] or higher.
    pub fn metrics(&self) -> Option<&QueryMetrics> {
        self.metrics.as_ref()
    }

    /// All values of a named column, top to bottom. Rows are stored
    /// row-major, so this materializes an owned `Vec`. `None` when no
    /// column has that name.
    pub fn col(&self, column: &str) -> Option<Vec<i64>> {
        let i = self.column_index(column).ok()?;
        Some(self.rows.iter().map(|r| r[i]).collect())
    }

    /// Index of a named column in every row.
    pub fn column_index(&self, column: &str) -> Result<usize, PlanError> {
        self.columns
            .iter()
            .position(|c| c == column)
            .ok_or_else(|| PlanError::UnknownResultColumn(column.to_string()))
    }

    /// A named column decoded as fixed-point decimals (the raw `i64`
    /// values reinterpreted at the storage scale). `None` when no column
    /// has that name.
    pub fn col_decimal(&self, column: &str) -> Option<Vec<Decimal>> {
        let vals = self.col(column)?;
        Some(vals.into_iter().map(Decimal::from_raw).collect())
    }

    /// A named column decoded as calendar dates (the raw `i64` values
    /// reinterpreted as day numbers). `None` when no column has that name.
    pub fn col_date(&self, column: &str) -> Option<Vec<Date>> {
        let vals = self.col(column)?;
        Some(vals.into_iter().map(|v| Date(v as i32)).collect())
    }

    /// A dictionary-encoded column decoded to strings. Only the group-key
    /// column of a group-by over a dictionary column carries its
    /// dictionary; every other column errors with
    /// [`PlanError::InvalidExpr`].
    pub fn col_str(&self, column: &str) -> Result<Vec<String>, PlanError> {
        let i = self.column_index(column)?;
        if i != 0 {
            return Err(PlanError::InvalidExpr(format!(
                "column {column} is an aggregate, not a dictionary-encoded key"
            )));
        }
        let dict = self.key_dict.as_ref().ok_or_else(|| {
            PlanError::InvalidExpr(format!(
                "column {column} is not dictionary-encoded (no dictionary to decode through)"
            ))
        })?;
        self.rows
            .iter()
            .map(|r| {
                dict.get(r[i] as usize).cloned().ok_or_else(|| {
                    PlanError::InvalidExpr(format!(
                        "code {} out of range for the dictionary of {column}",
                        r[i]
                    ))
                })
            })
            .collect()
    }

    /// The single value of a one-row result column, typed: a dictionary
    /// decoded group key comes back as [`Value::Str`], everything else as
    /// [`Value::Int`] (decimals and dates are raw `i64` at this level —
    /// use [`QueryResult::col_decimal`] / [`QueryResult::col_date`] when
    /// the query semantics are known).
    pub fn try_scalar_value(&self, column: &str) -> Result<Value, PlanError> {
        let raw = self.try_scalar(column)?;
        let i = self.column_index(column)?;
        if i == 0 {
            if let Some(dict) = self.key_dict.as_ref() {
                if let Some(s) = dict.get(raw as usize) {
                    return Ok(Value::Str(s.clone()));
                }
            }
        }
        Ok(Value::Int(raw))
    }

    /// The value at (`row`, `col`) by position, typed like
    /// [`QueryResult::try_scalar_value`]. Out-of-range indices are typed
    /// [`PlanError::IndexOutOfRange`] errors, never panics — callers
    /// walking results positionally (the conformance harness, cursors) can
    /// probe past the edge safely.
    pub fn value(&self, row: usize, col: usize) -> Result<Value, PlanError> {
        let r = self.rows.get(row).ok_or(PlanError::IndexOutOfRange {
            axis: "row",
            index: row,
            len: self.rows.len(),
        })?;
        let raw = *r.get(col).ok_or(PlanError::IndexOutOfRange {
            axis: "column",
            index: col,
            len: r.len(),
        })?;
        if col == 0 {
            if let Some(dict) = self.key_dict.as_ref() {
                if let Some(s) = dict.get(raw as usize) {
                    return Ok(Value::Str(s.clone()));
                }
            }
        }
        Ok(Value::Int(raw))
    }
}

/// One edge of a multi-way join as `EXPLAIN` renders it: the build-side
/// table, the FK that reaches it, nesting depth (0 = direct fact edge),
/// the membership structure, and estimated vs observed cardinality.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinEdgeExplain {
    /// Build-side (parent) table of the edge.
    pub parent: String,
    /// FK column on the probe side pointing into `parent`.
    pub fk_col: String,
    /// Nesting depth: 0 for direct fact edges, 1+ for chain edges that
    /// restrict a parent.
    pub depth: usize,
    /// Membership structure built for the edge (`key-set` or
    /// `positional-bitmap`).
    pub build_side: String,
    /// Estimated rows surviving the edge's membership test.
    pub est_rows: u64,
    /// Rows actually surviving the edge in the last `EXPLAIN ANALYZE` run;
    /// `None` from plain `EXPLAIN`.
    pub observed_rows: Option<u64>,
}

/// A structured `EXPLAIN`: what shape the planner picked, which access
/// strategy drives the loop body, the parallelism degree, and the
/// cost-model evidence. `Display` renders the classic indented text.
#[derive(Debug, Clone)]
pub struct Explain {
    /// One-line description of the physical shape (operators and tables).
    pub shape: String,
    /// Short name of the chosen access strategy.
    pub strategy: String,
    /// Worker threads execution will use.
    pub threads: usize,
    /// Rows per parallel work unit (a whole number of tiles).
    pub morsel_rows: usize,
    /// Where the next execution's plan would come from: `Some("cached")`
    /// when the session's plan cache holds a valid entry for this query,
    /// `Some("fresh")` when it would plan from scratch. `None` from
    /// contexts that bypass the cache.
    pub plan_source: Option<String>,
    /// Named cost-model terms (cycles) behind the decision.
    pub cost_terms: Vec<(String, f64)>,
    /// The planner's decision trail, one line each.
    pub decisions: Vec<String>,
    /// Runtime outcome of the session's most recent [`Engine::query`]:
    /// completion, partial progress at cancellation/deadline, or a recorded
    /// fallback to the data-centric interpreter. Empty before any query.
    pub runtime: Vec<String>,
    /// Per-operator execution metrics — populated by
    /// [`Engine::explain_analyze`], `None` from plain [`Engine::explain`].
    pub analyze: Option<QueryMetrics>,
    /// Static-verification pass summary — populated by
    /// [`Engine::explain_verify`], empty from plain [`Engine::explain`].
    pub verification: Vec<String>,
    /// How a multi-way join's probe order was determined (`dp`, `greedy`,
    /// or `pinned`); `None` for other shapes.
    pub join_order: Option<String>,
    /// The multi-way join tree, one entry per edge in probe order (nested
    /// chain edges follow their parent, indented by `depth`). Empty for
    /// other shapes.
    pub join_tree: Vec<JoinEdgeExplain>,
}

impl Explain {
    /// Fill `observed_rows` on the join tree from an `EXPLAIN ANALYZE`
    /// metrics snapshot: each probe-side edge reports an operator named
    /// `multijoin-probe(<parent>)` whose `rows_out` is the edge's actual
    /// surviving cardinality.
    fn fill_join_observed(&mut self) {
        let Some(m) = &self.analyze else { return };
        for e in &mut self.join_tree {
            // Nested chain edges have no probe op — their observed
            // cardinality is the qualifying parent rows of their build op.
            let name = if e.depth == 0 {
                format!("multijoin-probe({})", e.parent)
            } else {
                format!("multijoin-build({})", e.parent)
            };
            if let Some(op) = m.operators.iter().find(|o| o.name == name) {
                e.observed_rows = Some(op.access.rows_out);
            }
        }
    }
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.shape)?;
        write!(f, "\n  strategy: {}", self.strategy)?;
        write!(
            f,
            "\n  parallelism: {} thread(s), {}-row morsels",
            self.threads, self.morsel_rows
        )?;
        if let Some(source) = &self.plan_source {
            write!(f, "\n  plan: {source}")?;
        }
        for (name, cycles) in &self.cost_terms {
            write!(f, "\n  cost[{name}] = {cycles:.3e} cyc")?;
        }
        for d in &self.decisions {
            write!(f, "\n  -> {d}")?;
        }
        for r in &self.runtime {
            write!(f, "\n  ~ last run: {r}")?;
        }
        if let Some(order) = &self.join_order {
            write!(f, "\n  join order: {order}")?;
        }
        for e in &self.join_tree {
            write!(
                f,
                "\n  {}edge {} -> {} [{}] est {} rows",
                "  ".repeat(e.depth),
                e.fk_col,
                e.parent,
                e.build_side,
                e.est_rows
            )?;
            if let Some(obs) = e.observed_rows {
                write!(f, ", observed {obs} rows")?;
            }
        }
        if let Some(a) = &self.analyze {
            write!(f, "\n  {a}")?;
        }
        for v in &self.verification {
            write!(f, "\n  verify: {v}")?;
        }
        Ok(())
    }
}

/// Strategy pins that override the cost model, for equivalence tests and
/// experiments. `None` / empty fields (the default) leave the paper's
/// Fig. 2 choosers — and the join-order enumerator — in charge; a set
/// field pins that decision for every query of the session. Set through
/// [`EngineBuilder::strategies`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StrategyOverrides {
    /// Pin the scan-aggregation strategy. Pinning a masked strategy while
    /// the aggregate list contains min/max fails at plan time (those
    /// require hybrid).
    pub agg: Option<AggStrategy>,
    /// Pin the semijoin build/probe strategy. In a multi-way join this pins
    /// every edge's membership structure; per-edge pins
    /// ([`StrategyOverrides::build_side`]) take precedence.
    pub semijoin: Option<SemiJoinStrategy>,
    /// Pin the groupjoin strategy.
    pub groupjoin: Option<GroupJoinStrategy>,
    /// Pin the window frame-state strategy.
    pub window: Option<WindowStrategy>,
    /// Pin the multi-way join probe order: build-side table names in the
    /// order their membership tests must run. Must name every direct edge
    /// of the query's join graph exactly once; plans that don't match fail
    /// at plan time.
    pub join_order: Option<Vec<String>>,
    /// Per-edge build-side pins for multi-way joins: for the edge whose
    /// build side is the named table, use the given membership structure
    /// instead of the cost model's per-edge choice.
    pub build_sides: Vec<(String, SemiJoinStrategy)>,
}

impl StrategyOverrides {
    /// Overrides pinning only the scan-aggregation strategy.
    pub fn pin_agg(s: AggStrategy) -> StrategyOverrides {
        StrategyOverrides {
            agg: Some(s),
            ..StrategyOverrides::default()
        }
    }

    /// Overrides pinning only the semijoin strategy.
    pub fn pin_semijoin(s: SemiJoinStrategy) -> StrategyOverrides {
        StrategyOverrides {
            semijoin: Some(s),
            ..StrategyOverrides::default()
        }
    }

    /// Overrides pinning only the groupjoin strategy.
    pub fn pin_groupjoin(s: GroupJoinStrategy) -> StrategyOverrides {
        StrategyOverrides {
            groupjoin: Some(s),
            ..StrategyOverrides::default()
        }
    }

    /// Overrides pinning only the window frame-state strategy.
    pub fn pin_window(s: WindowStrategy) -> StrategyOverrides {
        StrategyOverrides {
            window: Some(s),
            ..StrategyOverrides::default()
        }
    }

    /// Pin the multi-way join probe order (build-side table names, probe
    /// order first-to-last). Builder-style: composes with other pins.
    pub fn join_order(mut self, order: Vec<String>) -> StrategyOverrides {
        self.join_order = Some(order);
        self
    }

    /// Pin the membership structure for the multi-way join edge whose
    /// build side is `table`. Builder-style: composes with other pins.
    pub fn build_side(
        mut self,
        table: impl Into<String>,
        s: SemiJoinStrategy,
    ) -> StrategyOverrides {
        self.build_sides.push((table.into(), s));
        self
    }

    /// Cache-key suffix for the pins that change plan structure: two
    /// queries differing only in join-order/build-side pins must not share
    /// a cached plan.
    fn fingerprint_suffix(&self) -> String {
        let mut out = String::new();
        if let Some(order) = &self.join_order {
            out.push_str(":jo[");
            out.push_str(&order.join(","));
            out.push(']');
        }
        for (t, s) in &self.build_sides {
            out.push_str(&format!(":bs[{t}={s:?}]"));
        }
        out
    }
}

/// Builder for [`Engine`] sessions: database, cost parameters, parallelism
/// (scoped threads or a shared worker pool), memory hierarchy, admission
/// control, and per-query option defaults.
///
/// ```
/// # use swole_plan::{Database, Engine};
/// let engine = Engine::builder(Database::new()).threads(4).build();
/// assert_eq!(engine.threads(), 4);
/// ```
pub struct EngineBuilder {
    db: Database,
    params: CostParams,
    threads: usize,
    morsel_rows: usize,
    deadline: Option<Duration>,
    memory_budget: Option<usize>,
    metrics: MetricsLevel,
    plan_cache_bytes: usize,
    verify: VerifyLevel,
    strategies: StrategyOverrides,
    worker_pool: Option<usize>,
    global_budget: Option<usize>,
    memory_policy: MemoryPolicy,
    admission: Option<AdmissionConfig>,
    stall_window: Option<Duration>,
    stats_mode: stats::StatsMode,
}

impl EngineBuilder {
    fn new(db: Database) -> EngineBuilder {
        EngineBuilder {
            db,
            params: CostParams::default(),
            threads: 1,
            morsel_rows: MORSEL_ROWS,
            deadline: None,
            memory_budget: None,
            metrics: MetricsLevel::Off,
            plan_cache_bytes: DEFAULT_PLAN_CACHE_BYTES,
            verify: VerifyLevel::default_for_build(),
            strategies: StrategyOverrides::default(),
            worker_pool: None,
            global_budget: None,
            memory_policy: MemoryPolicy::default(),
            admission: None,
            stall_window: None,
            stats_mode: stats::StatsMode::default(),
        }
    }

    /// Use specific (e.g. calibrated) cost parameters.
    pub fn params(mut self, params: CostParams) -> EngineBuilder {
        self.params = params;
        self
    }

    /// Number of worker threads for execution (default 1 = sequential).
    /// `0` means "use all available hardware parallelism". Without
    /// [`EngineBuilder::worker_pool`], each query spawns this many scoped
    /// workers for its own lifetime.
    pub fn threads(mut self, threads: usize) -> EngineBuilder {
        self.threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        self
    }

    /// Execute every query of this session on one fixed pool of `workers`
    /// persistent threads instead of per-query scoped workers. Concurrent
    /// queries multiplex over the pool morsel-by-morsel (higher
    /// [`Priority`] classes are drained first), so N clients share the
    /// machine instead of oversubscribing it N-fold. Results stay
    /// bit-identical to scoped execution: morsel boundaries are identical
    /// and every merge is commutative and associative. Also sets the
    /// session's planning parallelism ([`EngineBuilder::threads`]) to
    /// `workers`.
    pub fn worker_pool(mut self, workers: usize) -> EngineBuilder {
        let workers = workers.max(1);
        self.worker_pool = Some(workers);
        self.threads = workers;
        self
    }

    /// Rows per parallel work unit (morsel), rounded up to whole
    /// [`TILE`]-row tiles. Default is [`MORSEL_ROWS`].
    pub fn tile_rows(mut self, rows: usize) -> EngineBuilder {
        self.morsel_rows = rows.div_ceil(TILE).max(1) * TILE;
        self
    }

    /// Per-query wall-clock deadline. Workers observe it cooperatively at
    /// morsel boundaries; an expired deadline returns
    /// [`PlanError::DeadlineExceeded`] with partial-progress counts. A 0ms
    /// deadline deterministically fails every query before its first
    /// morsel, at any thread count. Overridable per call through
    /// [`QueryOptions::deadline`].
    pub fn deadline(mut self, deadline: Duration) -> EngineBuilder {
        self.deadline = Some(deadline);
        self
    }

    /// Per-query memory budget in bytes, enforced by a [`crate::MemGauge`]
    /// charged at every allocation site that scales with input (masks,
    /// bitmaps, key sets, hash-table growth, worker scratch). A charge that
    /// would exceed the budget returns [`PlanError::BudgetExceeded`]
    /// *before* allocating. Overridable per call through
    /// [`QueryOptions::memory_budget`].
    pub fn memory_budget(mut self, bytes: usize) -> EngineBuilder {
        self.memory_budget = Some(bytes);
        self
    }

    /// Engine-wide memory budget in bytes shared by every concurrent
    /// query. Each query's gauge forwards its charges to this pool
    /// (global-first, so the engine total can never exceed the budget);
    /// how the pool arbitrates between queries is set by
    /// [`EngineBuilder::memory_policy`]. A charge the pool refuses fails
    /// that query with [`PlanError::BudgetExceeded`].
    pub fn global_memory_budget(mut self, bytes: usize) -> EngineBuilder {
        self.global_budget = Some(bytes);
        self
    }

    /// Arbitration policy for [`EngineBuilder::global_memory_budget`]
    /// (default [`MemoryPolicy::Greedy`]).
    pub fn memory_policy(mut self, policy: MemoryPolicy) -> EngineBuilder {
        self.memory_policy = policy;
        self
    }

    /// Bound how many queries may execute (and wait) simultaneously.
    /// Arrivals beyond `max_concurrent` running plus `queue_depth` waiting
    /// are rejected with [`PlanError::Admission`] instead of queueing
    /// unboundedly; waiters are admitted by [`Priority`] class, and a
    /// waiter whose deadline expires in the queue is rejected without ever
    /// executing.
    pub fn admission(mut self, cfg: AdmissionConfig) -> EngineBuilder {
        self.admission = Some(cfg);
        self
    }

    /// Arm the per-query watchdog: a query that completes no morsel for
    /// `window` straight is cancelled with [`PlanError::Stalled`] (with
    /// partial-progress counts) instead of wedging an execution slot until
    /// its deadline — or forever, when it has none. The watchdog is
    /// cooperative, observed at morsel boundaries by every worker of the
    /// query, so it catches schedule starvation and pathologically slow
    /// progress, not a single wedged morsel body. Off by default;
    /// overridable per call through [`QueryOptions::stall_window`].
    pub fn stall_window(mut self, window: Duration) -> EngineBuilder {
        self.stall_window = Some(window);
        self
    }

    /// How much every query measures while executing (default
    /// [`MetricsLevel::Off`]). [`MetricsLevel::Counters`] collects
    /// per-operator access counters ([`QueryResult::metrics`]);
    /// [`MetricsLevel::Timings`] adds per-operator and per-query wall
    /// clock. [`Engine::explain_analyze`] raises the level to at least
    /// `Timings` for its one execution regardless of this setting.
    /// Overridable per call through [`QueryOptions::metrics`].
    pub fn metrics(mut self, level: MetricsLevel) -> EngineBuilder {
        self.metrics = level;
        self
    }

    /// Pin access strategies, overriding the cost model (equivalence tests
    /// and experiments). Fields left `None` keep the choosers in charge.
    pub fn strategies(mut self, overrides: StrategyOverrides) -> EngineBuilder {
        self.strategies = overrides;
        self
    }

    /// How the session collects and maintains catalog statistics (default
    /// [`stats::StatsMode::OnLoad`]): `Off` falls back to per-query
    /// sampling, `OnLoad` snapshots every table at registration/reload, and
    /// `Adaptive` additionally folds observed selectivities from metered
    /// runs back into the stats.
    pub fn stats(mut self, mode: stats::StatsMode) -> EngineBuilder {
        self.stats_mode = mode;
        self
    }

    /// Byte budget for the session's plan cache (default 64 KiB). Cached
    /// physical plans are byte-accounted against this budget with the same
    /// [`crate::MemGauge`] machinery that enforces query memory budgets,
    /// and the least recently used entries are evicted to make room. `0`
    /// disables plan caching entirely — every query plans from scratch.
    pub fn plan_cache_bytes(mut self, bytes: usize) -> EngineBuilder {
        self.plan_cache_bytes = bytes;
        self
    }

    /// Static-verification level for every plan this session composes
    /// (default: [`VerifyLevel::Structural`] in debug builds,
    /// [`VerifyLevel::Off`] in release builds).
    ///
    /// Verification runs once per plan, at plan time — never per morsel or
    /// per tile — and its verdict is cached alongside the plan, so a cache
    /// hit re-verifies only if the session demands a *stricter* level than
    /// the one already established. `Structural` runs the schema/type and
    /// domain-discipline passes; `Full` adds the access-signature
    /// cross-check against the cost model and the resource-accounting
    /// audit. An ill-formed plan fails with [`PlanError::Verification`]
    /// before any execution starts. Overridable per call through
    /// [`QueryOptions::verify`].
    pub fn verify(mut self, level: VerifyLevel) -> EngineBuilder {
        self.verify = level;
        self
    }

    /// Finish the builder.
    pub fn build(self) -> Engine {
        let executor = match self.worker_pool {
            Some(w) => Executor::pool(w),
            None => Executor::scoped(self.threads),
        };
        let table_stats = if self.stats_mode == stats::StatsMode::Off {
            std::collections::HashMap::new()
        } else {
            let names: Vec<String> = self.db.table_names().map(str::to_string).collect();
            names
                .into_iter()
                .map(|n| {
                    let s = stats::collect_table_stats(self.db.table(&n).expect("registered"));
                    (n, s)
                })
                .collect()
        };
        Engine {
            inner: Arc::new(EngineInner {
                db: RwLock::new(self.db),
                params: self.params,
                threads: self.threads,
                morsel_rows: self.morsel_rows,
                deadline: self.deadline,
                memory_budget: self.memory_budget,
                metrics: self.metrics,
                verify: self.verify,
                strategies: self.strategies,
                stats_mode: self.stats_mode,
                table_stats: RwLock::new(table_stats),
                executor,
                admission: self
                    .admission
                    .map(|cfg| Arc::new(AdmissionController::new(cfg))),
                global: self
                    .global_budget
                    .map(|b| Arc::new(GlobalMemoryPool::new(b, self.memory_policy))),
                cancel: Arc::new(CancelState::default()),
                last_run: Mutex::new(Vec::new()),
                cache: PlanCache::new(self.plan_cache_bytes),
                stall_window: self.stall_window,
                lifecycle: Lifecycle::new(),
            }),
        }
    }
}

/// Engine lifecycle phases. `Running` admits queries; `Draining` and
/// `Stopped` reject them at the front door with a typed shutdown error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Running,
    Draining,
    Stopped,
}

/// Tracks every in-flight query so [`Engine::shutdown`] can drain them —
/// and, past the drain deadline, hard-abort them through their contexts.
struct Lifecycle {
    state: Mutex<LifecycleState>,
    /// Signalled whenever a query exits (its [`QueryGuard`] drops).
    cv: Condvar,
}

struct LifecycleState {
    phase: Phase,
    next_id: u64,
    /// Live query contexts, held weakly: execution owns the strong `Arc`,
    /// so a query that finished between the deadline check and the abort
    /// simply fails to upgrade.
    live: Vec<(u64, Weak<ExecCtx>)>,
}

impl Lifecycle {
    fn new() -> Lifecycle {
        Lifecycle {
            state: Mutex::new(LifecycleState {
                phase: Phase::Running,
                next_id: 0,
                live: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Front-door gate, entered before admission: counts the query as in
    /// flight (the returned guard un-counts it on drop, success or error)
    /// or rejects it when the engine is draining or stopped. The rejection
    /// reuses [`AdmissionError::Shutdown`] so callers see one shutdown
    /// error whether or not an admission controller is configured.
    fn enter(&self) -> Result<QueryGuard<'_>, PlanError> {
        let mut st = self.state.lock().expect("engine lifecycle");
        if st.phase != Phase::Running {
            return Err(PlanError::Admission(AdmissionError::Shutdown));
        }
        let id = st.next_id;
        st.next_id += 1;
        st.live.push((id, Weak::new()));
        Ok(QueryGuard {
            lifecycle: self,
            id,
        })
    }
}

/// RAII presence of one query in the lifecycle registry.
struct QueryGuard<'a> {
    lifecycle: &'a Lifecycle,
    id: u64,
}

impl QueryGuard<'_> {
    /// Register the query's execution context so a deadline-abort can
    /// reach it (queries still queued in admission have no context yet and
    /// exit through the flushed queue instead).
    fn attach(&self, ctx: &Arc<ExecCtx>) {
        let mut st = self.lifecycle.state.lock().expect("engine lifecycle");
        if let Some(slot) = st.live.iter_mut().find(|(id, _)| *id == self.id) {
            slot.1 = Arc::downgrade(ctx);
        }
    }
}

impl Drop for QueryGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.lifecycle.state.lock().expect("engine lifecycle");
        st.live.retain(|(id, _)| *id != self.id);
        drop(st);
        self.lifecycle.cv.notify_all();
    }
}

/// What [`Engine::shutdown`] did, for operators and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Queries in flight when the drain began that exited on their own
    /// (completed, failed, or were flushed from the admission queue).
    pub drained: usize,
    /// Queries hard-aborted (with [`PlanError::Shutdown`]) because the
    /// drain deadline passed first.
    pub aborted: usize,
    /// `true` when nothing had to be aborted and the worker pool joined
    /// within the deadline.
    pub clean: bool,
    /// Wall-clock duration of the whole shutdown.
    pub wait: Duration,
}

/// Execution options threaded into every operator.
#[derive(Clone, Copy)]
struct ExecOpts<'a> {
    executor: &'a Executor,
    threads: usize,
    morsel_rows: usize,
    level: MetricsLevel,
}

/// Per-call limits resolved against the session defaults.
struct ResolvedOpts {
    deadline: Option<Duration>,
    memory_budget: Option<usize>,
    metrics: MetricsLevel,
    verify: VerifyLevel,
    priority: Priority,
    stall: Option<Duration>,
}

/// The access-aware query engine: owns a [`Database`] and cost parameters,
/// plans logical queries through the paper's choosers (thread-aware when
/// the session is parallel), and executes them with the `swole-kernels`
/// loop bodies on morsel-driven workers — per-query scoped threads by
/// default, or one fixed shared pool with [`EngineBuilder::worker_pool`].
///
/// An `Engine` is a cheaply cloneable handle (`Arc` internals): clones
/// share the database, the plan cache, the worker pool, the cancellation
/// flag, and the session configuration, so one engine can be hammered from
/// many threads — results are bit-identical at any thread count and any
/// concurrency. [`Engine::session`] carves out per-client scopes with
/// their own cancellation and option defaults.
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

/// Shared state behind every [`Engine`] clone, session, and prepared
/// statement.
pub(crate) struct EngineInner {
    db: RwLock<Database>,
    params: CostParams,
    threads: usize,
    morsel_rows: usize,
    deadline: Option<Duration>,
    memory_budget: Option<usize>,
    metrics: MetricsLevel,
    verify: VerifyLevel,
    strategies: StrategyOverrides,
    /// How catalog statistics are collected and maintained.
    stats_mode: stats::StatsMode,
    /// Catalog statistics per table, keyed by table name. Refreshed lazily
    /// when a table's generation counter moves past the snapshot's.
    table_stats: RwLock<std::collections::HashMap<String, stats::TableStats>>,
    /// Where morsels run: per-query scoped workers or the shared pool.
    executor: Executor,
    /// Concurrency limiter; `None` admits everything immediately.
    admission: Option<Arc<AdmissionController>>,
    /// Engine-wide memory budget every query's gauge draws from.
    global: Option<Arc<GlobalMemoryPool>>,
    /// Engine-wide cancellation scope, shared with every [`ExecHandle`]
    /// from [`Engine::handle`] (sessions get their own scope).
    cancel: Arc<CancelState>,
    /// Runtime report of the most recent `query` (outcome, fallback,
    /// partial progress) — surfaced through [`Explain::runtime`].
    last_run: Mutex<Vec<String>>,
    /// Bounded, cost-keyed physical-plan cache shared by the session.
    cache: PlanCache,
    /// Session default for the per-query stall watchdog.
    stall_window: Option<Duration>,
    /// Drain/abort bookkeeping behind [`Engine::shutdown`].
    lifecycle: Lifecycle,
}

/// The last engine handle going away routes through the graceful-drain
/// tail: close admission, join the pool workers. No query can still be in
/// flight — every execution path holds an `Arc<EngineInner>` clone — so
/// this never blocks on a drain, only on workers finishing their current
/// morsel.
impl Drop for EngineInner {
    fn drop(&mut self) {
        if let Some(ctl) = &self.admission {
            ctl.close();
        }
        self.executor.shutdown(None);
    }
}

/// Optional overrides threaded into planning. Produced when drift
/// invalidation re-plans a statement: the observed selectivity replaces the
/// sample estimate, so the re-plan reflects measurement instead of
/// repeating the mis-estimate (and the cache cannot thrash between the two).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PlanHints {
    /// Overrides the sampled selectivity of the plan's primary filter (the
    /// scan filter, or the build-side filter of a join shape).
    pub selectivity: Option<f64>,
}

impl Engine {
    /// Start building an engine session over `db`.
    pub fn builder(db: Database) -> EngineBuilder {
        EngineBuilder::new(db)
    }

    /// Read access to the underlying database. The guard holds a shared
    /// lock: queries from other engine clones proceed concurrently, but
    /// [`Engine::load_table`] blocks until the guard drops.
    pub fn database(&self) -> impl Deref<Target = Database> + '_ {
        self.inner.read_db()
    }

    /// Load (or reload) a table through [`Database::load_table`], bumping
    /// its generation counter — which invalidates every cached plan that
    /// reads the table. Returns the new generation. In-flight queries keep
    /// reading the snapshot they pinned at execution start.
    pub fn load_table(&self, table: Table) -> u64 {
        let name = table.name().to_string();
        let mut db = self.inner.db.write().unwrap_or_else(|e| e.into_inner());
        let generation = db.load_table(table);
        if self.inner.stats_mode != stats::StatsMode::Off {
            let fresh = stats::collect_table_stats(db.table(&name).expect("just loaded"));
            let mut map = self
                .inner
                .table_stats
                .write()
                .unwrap_or_else(|e| e.into_inner());
            map.insert(name, fresh);
        }
        generation
    }

    /// The session's statistics snapshot for `table`: row count, per-column
    /// min/max/NDV, dictionary cardinalities, and — under
    /// [`stats::StatsMode::Adaptive`] — the most recent observed filter
    /// selectivity. Refreshes lazily when the table's generation counter
    /// moved since collection. Errors with [`PlanError::UnknownTable`] for
    /// unregistered tables; returns `None` under [`stats::StatsMode::Off`].
    pub fn table_stats(&self, table: &str) -> Result<Option<stats::TableStats>, PlanError> {
        let db = self.inner.read_db();
        db.table(table)?;
        Ok(self.inner.stats_for(&db, table))
    }

    /// How this session collects and maintains catalog statistics.
    pub fn stats_mode(&self) -> stats::StatsMode {
        self.inner.stats_mode
    }

    /// Register a foreign-key index through [`Database::add_fk`] (needed
    /// again after [`Engine::load_table`] replaced either side's table).
    pub fn register_fk(&self, child: &str, fk_col: &str, parent: &str) -> Result<(), PlanError> {
        let mut db = self.inner.db.write().unwrap_or_else(|e| e.into_inner());
        db.add_fk(child, fk_col, parent).map(|_| ())
    }

    /// Worker threads this session executes with.
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// Rows per parallel work unit (always a whole number of tiles).
    pub fn morsel_rows(&self) -> usize {
        self.inner.morsel_rows
    }

    /// `true` when this engine executes on a shared worker pool
    /// ([`EngineBuilder::worker_pool`]) instead of per-query scoped
    /// threads.
    pub fn uses_worker_pool(&self) -> bool {
        self.inner.executor.is_pool()
    }

    /// A cancellation token for the engine-wide scope. Clone it to other
    /// threads; [`ExecHandle::cancel`] stops in-flight (and future) queries
    /// at their next morsel boundary with [`PlanError::Cancelled`]. Call
    /// [`ExecHandle::reset`] to accept queries again. Cancellation is
    /// sticky *per scope*: this handle governs queries issued directly on
    /// the engine, while each [`Engine::session`] has an independent scope
    /// reachable through [`crate::Session::handle`].
    pub fn handle(&self) -> ExecHandle {
        ExecHandle::new(self.inner.cancel.clone())
    }

    /// Activity counters of the session's plan cache.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.inner.cache.stats()
    }

    /// Activity of the interpreter-fallback circuit breaker: how many plan
    /// classes are currently short-circuited past their primary strategy,
    /// and how many executions have skipped it.
    pub fn fallback_breaker_stats(&self) -> FallbackBreakerStats {
        self.inner.cache.breaker_stats()
    }

    /// Live usage of the engine-wide memory pool, when
    /// [`EngineBuilder::global_memory_budget`] configured one.
    pub fn global_memory_stats(&self) -> Option<MemoryPoolStats> {
        self.inner.global.as_ref().map(|g| g.stats())
    }

    /// `(running, queued)` under admission control, when
    /// [`EngineBuilder::admission`] configured it.
    pub fn admission_in_flight(&self) -> Option<(usize, usize)> {
        self.inner.admission.as_ref().map(|a| a.in_flight())
    }

    /// Queries currently inside the engine (queued in admission or
    /// executing), as tracked by the lifecycle gate. `0` on an idle or
    /// stopped engine.
    pub fn queries_in_flight(&self) -> usize {
        self.inner
            .lifecycle
            .state
            .lock()
            .expect("engine lifecycle")
            .live
            .len()
    }

    /// Worker threads of the shared pool still running (`0` for scoped
    /// sessions and after [`Engine::shutdown`]).
    pub fn live_pool_workers(&self) -> usize {
        self.inner.executor.live_workers()
    }

    /// Gracefully shut the engine down: stop admitting queries, drain the
    /// ones in flight, and join the worker-pool threads.
    ///
    /// The sequence: (1) the lifecycle gate flips to draining, so new
    /// arrivals on *any* façade (engine, session, prepared statement) fail
    /// with [`PlanError::Admission`]/[`AdmissionError::Shutdown`]; (2) the
    /// admission queue is closed, flushing waiters with the same typed
    /// error; (3) in-flight queries run to completion — or, once
    /// `deadline` passes, are hard-aborted and surface
    /// [`PlanError::Shutdown`] with partial-progress counts (`None` waits
    /// indefinitely); (4) pool workers are joined, so no `swole-pool-*`
    /// thread survives. Every aborted query still releases its admission
    /// slot and global-memory reservation through the normal RAII paths.
    ///
    /// Idempotent: later calls (and queries racing them) observe the
    /// stopped state. Clones of this engine share the shutdown — it is an
    /// engine-wide, not per-handle, transition.
    pub fn shutdown(&self, deadline: Option<Duration>) -> ShutdownReport {
        let t0 = Instant::now();
        let deadline_at = deadline.map(|d| t0 + d);
        {
            let mut st = self.inner.lifecycle.state.lock().expect("engine lifecycle");
            if st.phase == Phase::Stopped {
                return ShutdownReport {
                    drained: 0,
                    aborted: 0,
                    clean: true,
                    wait: t0.elapsed(),
                };
            }
            st.phase = Phase::Draining;
        }
        // Flush queued waiters with the typed shutdown rejection; their
        // lifecycle guards drop as they exit, which counts them drained.
        if let Some(ctl) = &self.inner.admission {
            ctl.close();
        }
        let mut aborted = 0usize;
        let mut st = self.inner.lifecycle.state.lock().expect("engine lifecycle");
        let started_with = st.live.len();
        if let Some(at) = deadline_at {
            while !st.live.is_empty() {
                let now = Instant::now();
                if now >= at {
                    break;
                }
                let (guard, _) = self
                    .inner
                    .lifecycle
                    .cv
                    .wait_timeout(st, at - now)
                    .expect("engine lifecycle");
                st = guard;
            }
            // Deadline passed with queries still live: abort them through
            // their contexts; each observes RuntimeError::Shutdown at its
            // next morsel boundary and exits through its normal error
            // path (releasing permit, gauge, and lifecycle slot).
            for (_, weak) in &st.live {
                if let Some(ctx) = weak.upgrade() {
                    ctx.abort();
                    ctx.trip();
                    aborted += 1;
                }
            }
        }
        while !st.live.is_empty() {
            st = self.inner.lifecycle.cv.wait(st).expect("engine lifecycle");
        }
        st.phase = Phase::Stopped;
        drop(st);
        let pool_clean = self.inner.executor.shutdown(deadline_at);
        ShutdownReport {
            drained: started_with - aborted,
            aborted,
            clean: aborted == 0 && pool_clean,
            wait: t0.elapsed(),
        }
    }

    /// Plan and execute in one step, with hardened-execution supervision.
    ///
    /// Planning consults the session's plan cache first: a repeat of a
    /// cached query (same canonicalized plan, same thread count, unchanged
    /// table generations, no observed drift) skips sampling and strategy
    /// choice entirely. The chosen SWOLE strategy runs first. If it fails a
    /// *runtime* precondition — a worker panic, the memory budget exhausted
    /// by pullup temporaries, or `i64` overflow detected in a masked
    /// aggregate — the query is retried once through the data-centric
    /// row-at-a-time interpreter ([`crate::interp`]), charged against the
    /// same memory gauge. Cancellation, deadline expiry, and admission
    /// rejection are not retried. The outcome (including any fallback) is
    /// recorded and surfaced via [`Explain::runtime`] on the next
    /// [`Engine::explain`] call.
    pub fn query(&self, plan: &LogicalPlan) -> Result<QueryResult, PlanError> {
        self.query_with(plan, &QueryOptions::default())
    }

    /// [`Engine::query`] with per-call option overrides; fields left unset
    /// fall back to the builder's session defaults.
    pub fn query_with(
        &self,
        plan: &LogicalPlan,
        opts: &QueryOptions,
    ) -> Result<QueryResult, PlanError> {
        let db = self.inner.read_db();
        self.inner
            .query_leveled(&db, plan, &self.inner.cancel, opts, None)
    }

    /// EXPLAIN: plan and return the structured decision report (including
    /// whether the next execution would reuse a cached plan).
    pub fn explain(&self, plan: &LogicalPlan) -> Result<Explain, PlanError> {
        let db = self.inner.read_db();
        self.inner.explain_for(&db, plan)
    }

    /// EXPLAIN ANALYZE: execute the query once at (at least)
    /// [`MetricsLevel::Timings`] and return the decision report with the
    /// `analyze` section populated from the run — per-operator access
    /// counters, hash-table behaviour, wall times, and the cost model's
    /// prediction re-scored against what execution observed.
    pub fn explain_analyze(&self, plan: &LogicalPlan) -> Result<Explain, PlanError> {
        self.explain_analyze_with(plan, &QueryOptions::default())
    }

    /// [`Engine::explain_analyze`] with per-call option overrides.
    pub fn explain_analyze_with(
        &self,
        plan: &LogicalPlan,
        opts: &QueryOptions,
    ) -> Result<Explain, PlanError> {
        let db = self.inner.read_db();
        let res = self.inner.query_leveled(
            &db,
            plan,
            &self.inner.cancel,
            opts,
            Some(MetricsLevel::Timings),
        )?;
        let mut ex = self.inner.explain_for(&db, plan)?;
        ex.analyze = res.metrics;
        ex.fill_join_observed();
        Ok(ex)
    }

    /// Plan a logical query, making every Fig. 2 decision via the cost
    /// models. Always plans from scratch (the cache is consulted by
    /// [`Engine::query`] and prepared statements, not here).
    pub fn plan(&self, plan: &LogicalPlan) -> Result<PhysicalPlan, PlanError> {
        let db = self.inner.read_db();
        self.inner.plan_with(&db, plan, PlanHints::default())
    }

    /// Statically verify the plan this query would compose, at
    /// [`VerifyLevel::Full`] regardless of the session's configured level.
    ///
    /// Plans from scratch (without touching the cache), lowers the composed
    /// physical plan to the verification IR, and runs all four passes:
    /// schema/type soundness, domain discipline of masks/selection
    /// vectors/bitmaps, access-signature consistency with the composed
    /// kernels and the cost model, and resource-accounting coverage. An
    /// ill-formed plan returns [`PlanError::Verification`] with the typed
    /// [`VerifyError`](swole_verify::VerifyError) and its plan-path
    /// provenance.
    pub fn verify_plan(&self, plan: &LogicalPlan) -> Result<VerifyReport, PlanError> {
        let db = self.inner.read_db();
        let physical = self.inner.plan_with(&db, plan, PlanHints::default())?;
        crate::verify::verify_physical(&db, &physical, VerifyLevel::Full)
    }

    /// EXPLAIN VERIFY: the decision report of [`Engine::explain`] with the
    /// `verification` section populated by a [`VerifyLevel::Full`] pass
    /// over the composed plan (one summary line per pass) followed by the
    /// plan's admission-certificate bound lines (peak memory, overflow-safe
    /// arithmetic sites, and a per-operator bound breakdown).
    pub fn explain_verify(&self, plan: &LogicalPlan) -> Result<Explain, PlanError> {
        let db = self.inner.read_db();
        let physical = self.inner.plan_with(&db, plan, PlanHints::default())?;
        let report = crate::verify::verify_physical(&db, &physical, VerifyLevel::Full)?;
        let fallback_bytes = plan_rows(&db, plan).saturating_mul(8) as u64;
        let cert = self.inner.certificate_for(&db, &physical, fallback_bytes)?;
        let mut ex = self.inner.explain_for(&db, plan)?;
        ex.verification = report.lines.clone();
        ex.verification.extend(cert.lines.iter().cloned());
        Ok(ex)
    }

    /// The admission certificate the engine would enforce for this query:
    /// statically proven upper bounds on peak gauge memory, per-operator
    /// output cardinality and bytes, and which arithmetic sites the value
    /// range analysis proves cannot overflow.
    ///
    /// Plans fresh (without touching the cache) and certifies against the
    /// current statistics snapshot; [`Engine::query`] enforces the same
    /// bound at admission via [`AdmissionError::BudgetInfeasible`].
    pub fn certificate(&self, plan: &LogicalPlan) -> Result<PlanCertificate, PlanError> {
        let db = self.inner.read_db();
        let physical = self.inner.plan_with(&db, plan, PlanHints::default())?;
        let fallback_bytes = plan_rows(&db, plan).saturating_mul(8) as u64;
        let cert = self.inner.certificate_for(&db, &physical, fallback_bytes)?;
        Ok(cert.as_ref().clone())
    }

    /// Execute a physical plan under panic isolation and the session's
    /// deadline/budget limits.
    ///
    /// Unlike [`Engine::query`] this cannot retry under the data-centric
    /// strategy (the fallback needs the logical plan), so runtime failures
    /// surface directly as typed errors.
    pub fn execute(&self, plan: &PhysicalPlan) -> Result<QueryResult, PlanError> {
        self.execute_with(plan, &QueryOptions::default())
    }

    /// [`Engine::execute`] with per-call option overrides.
    pub fn execute_with(
        &self,
        plan: &PhysicalPlan,
        opts: &QueryOptions,
    ) -> Result<QueryResult, PlanError> {
        let db = self.inner.read_db();
        self.inner
            .execute_physical(&db, plan, &self.inner.cancel, opts)
    }

    /// Shared state accessor for the session and prepared-statement layers.
    pub(crate) fn inner(&self) -> &EngineInner {
        &self.inner
    }

    /// The engine-wide cancellation scope (sessions replace it with their
    /// own).
    pub(crate) fn cancel_scope(&self) -> &Arc<CancelState> {
        &self.inner.cancel
    }
}

impl EngineInner {
    /// Poison-proof shared read lock on the database. A worker panic while
    /// holding the lock poisons it, but panics are isolated per query and
    /// never leave the database half-mutated — readers proceed.
    pub(crate) fn read_db(&self) -> RwLockReadGuard<'_, Database> {
        self.db.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Current statistics snapshot for `name`, refreshed if the table's
    /// generation moved past the snapshot's. `None` when statistics are
    /// off or the table is unknown.
    fn stats_for(&self, db: &Database, name: &str) -> Option<stats::TableStats> {
        if self.stats_mode == stats::StatsMode::Off {
            return None;
        }
        let generation = db.generation(name)?;
        {
            let map = self.table_stats.read().unwrap_or_else(|e| e.into_inner());
            if let Some(s) = map.get(name) {
                if s.fresh_for(generation) {
                    return Some(s.clone());
                }
            }
        }
        let fresh = stats::collect_table_stats(db.table(name).ok()?);
        let mut map = self.table_stats.write().unwrap_or_else(|e| e.into_inner());
        let entry = map.entry(name.to_string()).or_insert_with(|| fresh.clone());
        if !entry.fresh_for(generation) {
            *entry = fresh.clone();
        }
        Some(entry.clone())
    }

    /// Fold an observed filter selectivity back into `name`'s statistics
    /// ([`stats::StatsMode::Adaptive`] only).
    fn observe_selectivity(&self, name: &str, observed: f64) {
        if self.stats_mode != stats::StatsMode::Adaptive {
            return;
        }
        let mut map = self.table_stats.write().unwrap_or_else(|e| e.into_inner());
        if let Some(s) = map.get_mut(name) {
            s.observed_selectivity = Some(observed);
        }
    }

    /// The session's default static-verification level (for callers that
    /// plan outside [`EngineInner::query_leveled`]).
    pub(crate) fn verify_level(&self) -> VerifyLevel {
        self.verify
    }

    /// Resolve per-call options against the session defaults.
    fn resolve(&self, opts: &QueryOptions) -> ResolvedOpts {
        ResolvedOpts {
            deadline: opts.deadline.or(self.deadline),
            memory_budget: opts.memory_budget.or(self.memory_budget),
            metrics: opts.metrics.unwrap_or(self.metrics),
            verify: opts.verify.unwrap_or(self.verify),
            priority: opts.priority.unwrap_or_default(),
            stall: opts.stall_window.or(self.stall_window),
        }
    }

    /// Pass admission control (a no-op without a configured controller).
    /// The returned permit holds the execution slot until dropped — through
    /// any fallback retry, so a rejected-then-retried query cannot double
    /// its slot usage.
    fn admit(
        &self,
        priority: Priority,
        deadline: Option<Instant>,
    ) -> Result<Option<AdmissionPermit>, PlanError> {
        match &self.admission {
            Some(ctl) => ctl
                .admit(priority, deadline)
                .map(Some)
                .map_err(PlanError::Admission),
            None => Ok(None),
        }
    }

    /// Fresh per-query execution context: its gauge draws from the
    /// engine-wide pool (if any), and its lifetime spans the primary
    /// attempt *and* any data-centric fallback.
    fn exec_ctx(
        &self,
        cancel: &Arc<CancelState>,
        r: &ResolvedOpts,
        deadline_at: Option<Instant>,
    ) -> Arc<ExecCtx> {
        Arc::new(
            ExecCtx::new(
                Arc::clone(cancel),
                deadline_at,
                r.memory_budget,
                self.global.clone(),
                r.priority,
            )
            .with_stall_window(r.stall),
        )
    }

    fn record_run(&self, report: Vec<String>) {
        if let Ok(mut last) = self.last_run.lock() {
            *last = report;
        }
    }

    /// Plan through the session's cache: hits reuse the stored physical
    /// plan; misses plan fresh (honouring a drift hint, if the miss came
    /// from drift invalidation) and insert. Returns the plan, its cache
    /// key, and the plan's admission certificate.
    ///
    /// Every plan is certified regardless of the session's verify level:
    /// the certificate gates admission, not verification. Certificates are
    /// cached alongside the plan and share its invalidation — a table
    /// generation bump evicts the entry, so a stale certificate can never
    /// outlive the statistics it was derived from.
    pub(crate) fn plan_cached(
        &self,
        db: &Database,
        plan: &LogicalPlan,
        verify: VerifyLevel,
        fallback_bytes: u64,
    ) -> Result<(Arc<PhysicalPlan>, String, Arc<PlanCertificate>), PlanError> {
        let key = self.cache_key(plan);
        let gens = table_generations(db, plan);
        match self.cache.lookup(&key, &gens) {
            CacheLookup::Hit(physical, verified, certificate) => {
                // The cached verdict travels with the plan: re-verify only
                // when this call demands a stricter level than the one the
                // entry was already checked at.
                if verified < verify {
                    crate::verify::verify_physical(db, &physical, verify)?;
                    self.cache.note_verified(&key, verify);
                }
                let cert = match certificate {
                    Some(c) => c,
                    None => self.certificate_for(db, &physical, fallback_bytes)?,
                };
                Ok((physical, key, cert))
            }
            CacheLookup::Miss { drift_hint } => {
                let hints = PlanHints {
                    selectivity: drift_hint,
                };
                let physical = Arc::new(self.plan_with(db, plan, hints)?);
                let cert = if verify > VerifyLevel::Off {
                    // Lower exactly once and run verification and the
                    // bounds pass over the same program: the one-shot
                    // uncharged-allocation fault must flow into the
                    // program the verifier actually judges.
                    let program = crate::verify::program_for(db, &physical)?;
                    swole_verify::verify(&program, verify).map_err(PlanError::Verification)?;
                    let ctx = self.bounds_ctx_for(db, &program, fallback_bytes);
                    Arc::new(swole_verify::certify(&program, &ctx))
                } else {
                    self.certificate_for(db, &physical, fallback_bytes)?
                };
                let snapshot = self.snapshot_for(db, &physical.shape, drift_hint);
                self.cache.insert(
                    key.clone(),
                    Arc::clone(&physical),
                    snapshot,
                    gens,
                    verify,
                    Some(Arc::clone(&cert)),
                );
                Ok((physical, key, cert))
            }
        }
    }

    /// Derive the admission certificate for a composed plan via a
    /// certification-only lowering (non-consuming with respect to the
    /// uncharged-allocation verification fault).
    pub(crate) fn certificate_for(
        &self,
        db: &Database,
        physical: &PhysicalPlan,
        fallback_bytes: u64,
    ) -> Result<Arc<PlanCertificate>, PlanError> {
        let program = crate::verify::program_for_certification(db, physical)?;
        let ctx = self.bounds_ctx_for(db, &program, fallback_bytes);
        Ok(Arc::new(swole_verify::certify(&program, &ctx)))
    }

    /// Assemble the abstract-interpretation context for the bounds pass:
    /// the worker count the plan will actually run at, plus a statistics
    /// profile (generation-fresh min/max and exact distinct counts) for
    /// every table the lowered program references. With statistics off the
    /// pass falls back to column-type domains.
    fn bounds_ctx_for(
        &self,
        db: &Database,
        program: &swole_verify::ir::Program,
        fallback_bytes: u64,
    ) -> BoundsCtx {
        let workers = match &self.executor {
            Executor::Scoped { threads } => *threads,
            Executor::Pool(pool) => pool.workers(),
        };
        let mut ctx = BoundsCtx::without_stats(workers);
        ctx.fallback_bytes = fallback_bytes;
        for table in &program.tables {
            let Some(s) = self.stats_for(db, &table.name) else {
                continue;
            };
            let columns = s
                .columns
                .iter()
                .map(|(name, c)| ColumnProfile {
                    name: name.clone(),
                    min: c.min,
                    max: c.max,
                    ndv: c.ndv_exact.then_some(c.ndv as u64),
                })
                .collect();
            ctx.profiles.push(TableProfile {
                table: table.name.clone(),
                generation: s.generation,
                columns,
            });
        }
        ctx
    }

    /// Enforce the certificate at admission: if the statically proven peak
    /// memory bound cannot fit the effective budget, reject *before* the
    /// query occupies an admission slot or any worker starts. The
    /// effective budget is the tighter of the per-query gauge budget and
    /// the full global pool budget (the full pool, not the momentarily
    /// remaining share — concurrent queries borrow and release, and a plan
    /// that fits the pool is feasible even if it must wait).
    fn check_budget_feasible(
        &self,
        memory_budget: Option<usize>,
        cert: &PlanCertificate,
    ) -> Result<(), PlanError> {
        let global = self.global.as_ref().map(|g| g.stats().budget as u64);
        let per_query = memory_budget.map(|b| b as u64);
        let budget = match (per_query, global) {
            (Some(q), Some(g)) => q.min(g),
            (Some(q), None) => q,
            (None, Some(g)) => g,
            (None, None) => return Ok(()),
        };
        let bound = cert.peak_bytes_bound;
        if bound > budget {
            return Err(PlanError::Admission(AdmissionError::BudgetInfeasible {
                bound,
                budget,
            }));
        }
        Ok(())
    }

    /// Session plan-cache key: the logical-plan fingerprint plus any
    /// structural strategy pins (join order, per-edge build sides) that
    /// change what the planner would produce.
    fn cache_key(&self, plan: &LogicalPlan) -> String {
        let mut key = plan_fingerprint(plan, self.threads);
        key.push_str(&self.strategies.fingerprint_suffix());
        key
    }

    /// Cost-model inputs to remember alongside a cached plan.
    fn snapshot_for(&self, db: &Database, shape: &Shape, hint: Option<f64>) -> CostSnapshot {
        let est_selectivity = hint.or_else(|| self.planned_selectivity(db, shape));
        let tables: Vec<&str> = match shape {
            Shape::ScanAgg { table, .. } => vec![table],
            Shape::SemiJoinAgg { probe, build, .. } => vec![probe, build],
            Shape::GroupJoinAgg { probe, build, .. } => vec![probe, build],
            Shape::WindowScan { table, .. } => vec![table],
            Shape::MultiJoinAgg { fact, edges, .. } => {
                let mut names = vec![fact.clone()];
                for e in edges {
                    e.tables(&mut names);
                }
                let cardinalities = names
                    .iter()
                    .filter_map(|t| db.table(t).ok().map(|tab| (t.clone(), tab.len())))
                    .collect();
                return CostSnapshot {
                    est_selectivity,
                    group_keys: None,
                    cardinalities,
                };
            }
        };
        let cardinalities = tables
            .iter()
            .filter_map(|t| db.table(t).ok().map(|tab| (t.to_string(), tab.len())))
            .collect();
        let group_keys = match shape {
            Shape::ScanAgg {
                table,
                group_by: Some(g),
                ..
            } => db.table(table).ok().map(|t| stats::estimate_distinct(t, g)),
            _ => None,
        };
        CostSnapshot {
            est_selectivity,
            group_keys,
            cardinalities,
        }
    }

    /// [`Engine::query`] against an explicit cancellation scope and
    /// per-call options — the one entry point every façade (engine,
    /// session, prepared statement, `EXPLAIN ANALYZE`) funnels through.
    /// `floor` raises the effective metrics level (used by
    /// `EXPLAIN ANALYZE`).
    pub(crate) fn query_leveled(
        &self,
        db: &Database,
        plan: &LogicalPlan,
        cancel: &Arc<CancelState>,
        opts: &QueryOptions,
        floor: Option<MetricsLevel>,
    ) -> Result<QueryResult, PlanError> {
        let r = self.resolve(opts);
        let level = floor.map_or(r.metrics, |f| r.metrics.max(f));
        // Lifecycle gate first: a draining/stopped engine rejects before
        // the query can queue in admission or touch the cache.
        let gate = self.lifecycle.enter()?;
        // The deadline anchors *before* admission: time spent waiting in
        // the queue counts against it, and an expired waiter is rejected
        // without ever holding a slot.
        let deadline_at = r.deadline.map(|d| Instant::now() + d);
        // The certificate's peak bound must cover the data-centric
        // fallback's row-id vector: gauge charges are held to completion,
        // so a failed primary plus the fallback can coexist on the gauge.
        let fallback_bytes = plan_rows(db, plan).saturating_mul(8) as u64;
        let (physical, cache_key, cert) = self.plan_cached(db, plan, r.verify, fallback_bytes)?;
        // Admission-time enforcement: a plan whose proven bound cannot fit
        // the budget is rejected *before* it occupies an admission slot or
        // any worker starts, instead of failing mid-flight.
        self.check_budget_feasible(r.memory_budget, &cert)?;
        let bound = Some(cert.peak_bytes_bound);
        let _permit = self.admit(r.priority, deadline_at)?;
        let physical = &*physical;
        let ctx = self.exec_ctx(cancel, &r, deadline_at);
        gate.attach(&ctx);
        let t0 = level.timing().then(Instant::now);
        let strategy = physical.shape.strategy_name();
        let mut report = Vec::new();
        // Consult this plan class's fallback circuit: once it has failed
        // its primary strategy [`BREAKER_OPEN_AFTER`] times in a row, skip
        // the doomed attempt and go straight to the interpreter so the
        // class stops paying double execution cost.
        let breaker = self.cache.breaker_check(&cache_key);
        if breaker == BreakerDecision::Open {
            report.push(format!("{strategy}: skipped, fallback circuit open"));
            return match self.fallback_datacentric(db, plan, &ctx, level) {
                Ok((mut res, op)) => {
                    report.push("data-centric interpreter: ok".into());
                    self.record_run(report);
                    self.attach_metrics(
                        db,
                        &mut res,
                        physical,
                        op.into_iter().collect(),
                        &ctx,
                        level,
                        0,
                        t0,
                        bound,
                    );
                    Ok(res)
                }
                Err(fe) => {
                    report.push(format!("data-centric fallback failed: {fe}"));
                    self.record_run(report);
                    Err(fe)
                }
            };
        }
        if breaker == BreakerDecision::Probe {
            report.push(format!("{strategy}: probing, fallback circuit half-open"));
        }
        let primary = isolate(|| self.execute_shape(db, physical, &ctx, level));
        // Value-range payoff: when the certificate proves every arithmetic
        // site overflow-safe (accumulator magnitude x row count fits i64),
        // a runtime overflow would be a soundness bug in the bounds pass,
        // not a data error — debug builds trap the contradiction here.
        if let Err(e) = &primary {
            debug_assert!(
                !(matches!(e, PlanError::Overflow(_)) && cert.all_sites_overflow_safe()),
                "certificate proved all {} arithmetic site(s) overflow-safe, \
                 yet execution overflowed: {e}",
                cert.arith_sites,
            );
        }
        let (done, total) = ctx.progress();
        match primary {
            Ok((mut res, ops)) => {
                self.cache.breaker_primary_ok(&cache_key);
                report.push(format!(
                    "{strategy}: ok ({done}/{total} morsels, {} B charged)",
                    ctx.gauge.used()
                ));
                self.record_run(report);
                self.attach_metrics(db, &mut res, physical, ops, &ctx, level, 0, t0, bound);
                // Drift check: feed the measured selectivity back to the
                // cache so a materially mis-estimated entry re-plans.
                if level.counting() {
                    if let Some(obs) = res
                        .metrics
                        .as_ref()
                        .and_then(|m| m.operators.first())
                        .and_then(|o| o.observed_selectivity())
                    {
                        self.cache.observe(&cache_key, obs);
                        // Adaptive statistics: the measured selectivity also
                        // updates the catalog snapshot of the plan's primary
                        // filtered table, so *future* plans (not just this
                        // cache entry) are costed against reality.
                        if let Some(t) = primary_stats_table(&physical.shape) {
                            self.observe_selectivity(t, obs);
                        }
                    }
                }
                Ok(res)
            }
            Err(e) if e.is_retryable() => {
                report.push(format!("{strategy}: {e} ({done}/{total} morsels)"));
                if self.cache.breaker_fallback_ran(&cache_key) {
                    report.push("fallback circuit opened for this plan".into());
                }
                match self.fallback_datacentric(db, plan, &ctx, level) {
                    Ok((mut res, op)) => {
                        report.push("fell back to data-centric interpreter: ok".into());
                        self.record_run(report);
                        // The failed attempt's counters are discarded: the
                        // interpreter's single operator *replaces* the
                        // operator list, so rows are never double-counted.
                        self.attach_metrics(
                            db,
                            &mut res,
                            physical,
                            op.into_iter().collect(),
                            &ctx,
                            level,
                            1,
                            t0,
                            bound,
                        );
                        Ok(res)
                    }
                    Err(fe) => {
                        report.push(format!("data-centric fallback failed: {fe}"));
                        self.record_run(report);
                        Err(fe)
                    }
                }
            }
            Err(e) => {
                report.push(format!("{strategy}: {e} ({done}/{total} morsels)"));
                self.record_run(report);
                Err(e)
            }
        }
    }

    /// [`Engine::execute`] against an explicit cancellation scope and
    /// per-call options (no cache, no fallback).
    pub(crate) fn execute_physical(
        &self,
        db: &Database,
        plan: &PhysicalPlan,
        cancel: &Arc<CancelState>,
        opts: &QueryOptions,
    ) -> Result<QueryResult, PlanError> {
        let r = self.resolve(opts);
        let gate = self.lifecycle.enter()?;
        let deadline_at = r.deadline.map(|d| Instant::now() + d);
        // Direct physical execution has no data-centric fallback, so the
        // certificate carries no fallback reserve.
        let cert = self.certificate_for(db, plan, 0)?;
        self.check_budget_feasible(r.memory_budget, &cert)?;
        let _permit = self.admit(r.priority, deadline_at)?;
        let ctx = self.exec_ctx(cancel, &r, deadline_at);
        gate.attach(&ctx);
        let level = r.metrics;
        let t0 = level.timing().then(Instant::now);
        let (mut res, ops) = isolate(|| self.execute_shape(db, plan, &ctx, level))?;
        self.attach_metrics(
            db,
            &mut res,
            plan,
            ops,
            &ctx,
            level,
            0,
            t0,
            Some(cert.peak_bytes_bound),
        );
        Ok(res)
    }

    /// Retry a failed query under the data-centric strategy: the
    /// row-at-a-time interpreter, which allocates no pullup temporaries.
    /// Its principal footprint — a qualifying-row-id vector — is charged
    /// against the same gauge, so a budgeted session cannot dodge its
    /// budget by failing over.
    fn fallback_datacentric(
        &self,
        db: &Database,
        plan: &LogicalPlan,
        ctx: &ExecCtx,
        level: MetricsLevel,
    ) -> Result<(QueryResult, Option<OpMetrics>), PlanError> {
        ctx.check()?;
        let rows = plan_rows(db, plan);
        ctx.gauge.try_charge(rows.saturating_mul(8))?;
        isolate(|| {
            if level.counting() {
                let t0 = level.timing().then(Instant::now);
                let (res, mut op) = crate::interp::run_metered(db, plan)?;
                op.wall_nanos = t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
                Ok((res, Some(op)))
            } else {
                crate::interp::run(db, plan).map(|res| (res, None))
            }
        })
    }

    /// EXPLAIN against a given database view: plan fresh (without touching
    /// the cache) and report whether the next execution would hit it.
    pub(crate) fn explain_for(
        &self,
        db: &Database,
        plan: &LogicalPlan,
    ) -> Result<Explain, PlanError> {
        let physical = self.plan_with(db, plan, PlanHints::default())?;
        let key = self.cache_key(plan);
        let gens = table_generations(db, plan);
        let cached = self.cache.peek(&key, &gens);
        let (join_order, join_tree) = self.explain_join_tree(db, &physical.shape);
        Ok(Explain {
            shape: physical.describe(),
            strategy: physical.shape.strategy_name(),
            threads: self.threads,
            morsel_rows: self.morsel_rows,
            plan_source: Some(if cached { "cached" } else { "fresh" }.to_string()),
            cost_terms: physical.cost_terms.clone(),
            decisions: physical.decisions.clone(),
            runtime: self.last_run.lock().map(|r| r.clone()).unwrap_or_default(),
            analyze: None,
            join_order,
            join_tree,
            verification: Vec::new(),
        })
    }

    /// Structured join-tree rendering for `EXPLAIN`: the probe order plus
    /// one entry per edge with its estimated cardinality. Direct edges
    /// estimate surviving *fact* rows cumulatively along the probe order;
    /// nested (chain) edges estimate their parent table's qualifying rows.
    fn explain_join_tree(
        &self,
        db: &Database,
        shape: &Shape,
    ) -> (Option<String>, Vec<JoinEdgeExplain>) {
        let Shape::MultiJoinAgg {
            fact,
            fact_filter,
            edges,
            order_method,
            ..
        } = shape
        else {
            return (None, Vec::new());
        };
        let order = format!(
            "{} ({})",
            edges
                .iter()
                .map(|e| e.parent.as_str())
                .collect::<Vec<_>>()
                .join(" -> "),
            order_method.name()
        );
        let fact_rows = db.table(fact).map(|t| t.len()).unwrap_or(0) as f64;
        let fact_sel = match fact_filter {
            Some(f) => db
                .table(fact)
                .map(|t| stats::estimate_selectivity(t, f))
                .unwrap_or(1.0),
            None => 1.0,
        };
        let mut tree = Vec::new();
        let mut alive = fact_rows * fact_sel;
        for e in edges {
            alive *= e.est_selectivity;
            tree.push(JoinEdgeExplain {
                parent: e.parent.clone(),
                fk_col: e.fk_col.clone(),
                depth: 0,
                build_side: e.strategy.name().to_string(),
                est_rows: alive.round() as u64,
                observed_rows: None,
            });
            explain_nested_edges(db, &e.children, 1, &mut tree);
        }
        (Some(order), tree)
    }

    /// Assemble and attach the [`QueryMetrics`] snapshot for a finished
    /// execution (no-op below [`MetricsLevel::Counters`]).
    #[allow(clippy::too_many_arguments)]
    fn attach_metrics(
        &self,
        db: &Database,
        res: &mut QueryResult,
        physical: &PhysicalPlan,
        operators: Vec<OpMetrics>,
        ctx: &ExecCtx,
        level: MetricsLevel,
        retries: u32,
        t0: Option<Instant>,
        bound: Option<u64>,
    ) {
        if !level.counting() {
            return;
        }
        let (predicted_cost, observed_cost) = self.cost_comparison(db, &physical.shape, &operators);
        res.metrics = Some(QueryMetrics {
            level,
            estimated_selectivity: self.planned_selectivity(db, &physical.shape),
            operators,
            retries,
            bytes_charged: ctx.gauge.used() as u64,
            bytes_bound: bound,
            elapsed_nanos: t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0),
            predicted_cost,
            observed_cost,
        });
    }

    /// The planner's sampled selectivity estimate for the filter feeding
    /// the *first* operator (the one whose observed selectivity the
    /// analyze output compares against).
    fn planned_selectivity(&self, db: &Database, shape: &Shape) -> Option<f64> {
        let (table, filter) = match shape {
            Shape::ScanAgg { table, filter, .. } => (table, filter.as_ref()?),
            Shape::SemiJoinAgg {
                build,
                build_filter,
                ..
            } => (build, build_filter.as_ref()?),
            Shape::GroupJoinAgg {
                build,
                build_filter,
                ..
            } => (build, build_filter.as_ref()?),
            Shape::WindowScan { table, filter, .. } => (table, filter.as_ref()?),
            // The first operator of a multi-way join is the first edge's
            // build: its planned selectivity is the edge estimate.
            Shape::MultiJoinAgg { edges, .. } => {
                return edges.first().map(|e| e.est_selectivity);
            }
        };
        let t = db.table(table).ok()?;
        Some(stats::estimate_selectivity(t, filter))
    }

    /// Re-score the chosen strategy's cost formula with observed inputs:
    /// the same model the planner consulted, fed the counter-derived
    /// selectivity and the merged hash table's actual key count instead of
    /// estimates. Returns `(predicted, observed)` cycles when the shape
    /// has a modelled strategy decision (scan-aggregations and groupjoins;
    /// the semijoin chooser keys on build cardinality, which the planner
    /// knows exactly, so there is nothing to validate).
    fn cost_comparison(
        &self,
        db: &Database,
        shape: &Shape,
        ops: &[OpMetrics],
    ) -> (Option<f64>, Option<f64>) {
        match shape {
            Shape::ScanAgg {
                table,
                filter,
                group_by,
                aggs,
                strategy,
            } => {
                let Ok(t) = db.table(table) else {
                    return (None, None);
                };
                if aggs
                    .iter()
                    .any(|a| matches!(a.func, AggFunc::Min | AggFunc::Max))
                {
                    // min/max force hybrid without consulting the chooser.
                    return (None, None);
                }
                let (comp, n_cols) = agg_comp_cols(aggs, group_by.as_deref());
                let est_sel = match filter {
                    Some(f) => stats::estimate_selectivity(t, f),
                    None => 1.0,
                };
                let mut profile = AggProfile {
                    rows: t.len(),
                    selectivity: est_sel,
                    comp,
                    n_cols,
                    group_keys: group_by.as_deref().map(|g| stats::estimate_distinct(t, g)),
                    n_aggs: aggs.len(),
                };
                let predicted = observed::agg_cost_for(
                    &choose_agg_mt(&self.params, &profile, self.threads),
                    *strategy,
                );
                let Some(op) = ops.first() else {
                    return (predicted, None);
                };
                profile.selectivity = op.observed_selectivity().unwrap_or(est_sel);
                if profile.group_keys.is_some() {
                    profile.group_keys = Some(op.ht.inserts as usize);
                }
                let observed_cost = observed::agg_cost_for(
                    &choose_agg_mt(&self.params, &profile, self.threads),
                    *strategy,
                );
                (predicted, observed_cost)
            }
            Shape::GroupJoinAgg {
                probe,
                build,
                build_filter,
                aggs,
                strategy,
                ..
            } => {
                let (Ok(probe_t), Ok(build_t)) = (db.table(probe), db.table(build)) else {
                    return (None, None);
                };
                let est_sel = match build_filter {
                    Some(f) => stats::estimate_selectivity(build_t, f),
                    None => 1.0,
                };
                let comp: f64 = aggs.iter().map(|a| a.expr.comp_cycles() + 0.5).sum();
                let mut profile = GroupJoinProfile {
                    r_rows: probe_t.len(),
                    r_selectivity: 1.0,
                    s_rows: build_t.len(),
                    s_selectivity: est_sel,
                    join_match_prob: est_sel,
                    group_keys: build_t.len(),
                    comp,
                    n_aggs: aggs.len(),
                };
                let predicted = observed::groupjoin_cost_for(
                    &choose_groupjoin_mt(&self.params, &profile, self.threads),
                    *strategy,
                );
                let Some(build_op) = ops.first() else {
                    return (Some(predicted), None);
                };
                let obs_sel = build_op.observed_selectivity().unwrap_or(est_sel);
                profile.s_selectivity = obs_sel;
                profile.join_match_prob = obs_sel;
                let observed_cost = observed::groupjoin_cost_for(
                    &choose_groupjoin_mt(&self.params, &profile, self.threads),
                    *strategy,
                );
                (Some(predicted), Some(observed_cost))
            }
            Shape::MultiJoinAgg {
                fact,
                fact_filter,
                edges,
                ..
            } => {
                let Ok(fact_t) = db.table(fact) else {
                    return (None, None);
                };
                let est_fact_sel = fact_filter
                    .as_ref()
                    .map(|f| stats::estimate_selectivity(fact_t, f))
                    .unwrap_or(1.0);
                let Some(mut profile) = self.multijoin_profile(db, fact, est_fact_sel, edges)
                else {
                    return (None, None);
                };
                let order: Vec<usize> = (0..profile.edges.len()).collect();
                let predicted = join_order_cost(&self.params, &profile, &order);
                // Re-score the same order with the per-edge selectivities the
                // probe actually observed.
                let mut any = false;
                for (i, e) in edges.iter().enumerate() {
                    let name = format!("multijoin-probe({})", e.parent);
                    if let Some(op) = ops.iter().find(|o| o.name == name) {
                        if op.access.rows_in > 0 {
                            profile.edges[i].selectivity =
                                op.access.rows_out as f64 / op.access.rows_in as f64;
                            any = true;
                        }
                    }
                }
                if let Some(first) = edges.first() {
                    let name = format!("multijoin-probe({})", first.parent);
                    if let Some(op) = ops.iter().find(|o| o.name == name) {
                        if !fact_t.is_empty() {
                            profile.fact_selectivity =
                                op.access.rows_in as f64 / fact_t.len() as f64;
                        }
                    }
                }
                if !any {
                    return (Some(predicted), None);
                }
                let observed_cost = join_order_cost(&self.params, &profile, &order);
                (Some(predicted), Some(observed_cost))
            }
            Shape::SemiJoinAgg { .. } | Shape::WindowScan { .. } => (None, None),
        }
    }

    /// Cost-model profile of a multi-way join's direct edges, with the
    /// shape's estimated selectivities and membership-structure footprints.
    fn multijoin_profile(
        &self,
        db: &Database,
        fact: &str,
        fact_selectivity: f64,
        edges: &[JoinEdge],
    ) -> Option<JoinGraphProfile> {
        let fact_rows = db.table(fact).ok()?.len();
        let edges_p = edges
            .iter()
            .map(|e| {
                let parent_rows = db.table(&e.parent).map(|t| t.len()).unwrap_or(0);
                let has_fk_index = db.fk_index(fact, &e.fk_col, &e.parent).is_some();
                let build_bytes = match e.strategy {
                    SemiJoinStrategy::Hash => {
                        (((parent_rows as f64 * e.est_selectivity).ceil() as usize).max(1)) * 16
                    }
                    SemiJoinStrategy::PositionalBitmap(_) => parent_rows.div_ceil(64) * 8,
                };
                JoinEdgeProfile {
                    parent: e.parent.clone(),
                    selectivity: e.est_selectivity,
                    has_fk_index,
                    build_bytes,
                }
            })
            .collect();
        Some(JoinGraphProfile {
            fact_rows,
            fact_selectivity,
            edges: edges_p,
        })
    }

    /// Rough result-row estimate for pricing post-operators.
    fn est_result_rows(&self, db: &Database, shape: &Shape) -> usize {
        match shape {
            Shape::ScanAgg {
                table, group_by, ..
            } => match group_by {
                None => 1,
                Some(g) => db
                    .table(table)
                    .ok()
                    .map(|t| stats::estimate_distinct(t, g))
                    .unwrap_or(1),
            },
            Shape::SemiJoinAgg { .. } | Shape::MultiJoinAgg { .. } => 1,
            Shape::GroupJoinAgg { build, .. } => db.table(build).ok().map(|t| t.len()).unwrap_or(1),
            Shape::WindowScan { table, filter, .. } => {
                let Ok(t) = db.table(table) else { return 1 };
                let sel = filter
                    .as_ref()
                    .map(|f| stats::estimate_selectivity(t, f))
                    .unwrap_or(1.0);
                ((t.len() as f64) * sel).ceil().max(1.0) as usize
            }
        }
    }

    // -----------------------------------------------------------------
    // Planning
    // -----------------------------------------------------------------

    /// Plan a logical query, making every Fig. 2 decision via the cost
    /// models.
    pub(crate) fn plan_with(
        &self,
        db: &Database,
        plan: &LogicalPlan,
        hints: PlanHints,
    ) -> Result<PhysicalPlan, PlanError> {
        // Peel result-level post-operators (ORDER BY / LIMIT) off the top;
        // they run over the materialized result of the core pipeline.
        let mut post = Vec::new();
        let mut core = plan;
        loop {
            match core {
                LogicalPlan::Limit { input, n } => {
                    post.push(PostOp::Limit { n: *n });
                    core = input;
                }
                LogicalPlan::OrderBy { input, keys } => {
                    if keys.is_empty() {
                        return Err(PlanError::Unsupported("empty ORDER BY key list".into()));
                    }
                    post.push(PostOp::Sort { keys: keys.clone() });
                    core = input;
                }
                _ => break,
            }
        }
        post.reverse(); // application order: innermost node applies first
        let mut physical = self.plan_core(db, core, hints)?;
        // ORDER BY keys must name output columns of the core pipeline.
        let out_cols = shape_output_columns(&physical.shape);
        for p in &post {
            match p {
                PostOp::Sort { keys } => {
                    for k in keys {
                        if !out_cols.contains(&k.column) {
                            return Err(PlanError::UnknownResultColumn(k.column.clone()));
                        }
                    }
                    let est_rows = self.est_result_rows(db, &physical.shape);
                    let cost = sort_cost(&self.params, est_rows, keys.len());
                    physical.cost_terms.push(("sort.rows".to_string(), cost));
                    physical.decisions.push(format!(
                        "order by {} key(s) over ~{est_rows} result rows ({cost:.2e} cyc)",
                        keys.len()
                    ));
                }
                PostOp::Limit { n } => {
                    physical
                        .decisions
                        .push(format!("limit {n} (prefix truncation)"));
                    physical
                        .cost_terms
                        .push(("limit.rows".to_string(), *n as f64));
                }
            }
        }
        physical.post = post;
        Ok(physical)
    }

    /// Plan the core pipeline (everything under the post-operators).
    fn plan_core(
        &self,
        db: &Database,
        plan: &LogicalPlan,
        hints: PlanHints,
    ) -> Result<PhysicalPlan, PlanError> {
        if let LogicalPlan::Window {
            input,
            partition_by,
            order_by,
            frame,
            funcs,
            select,
        } = plan
        {
            let (core, filter) = split_filters(input);
            let LogicalPlan::Scan { table } = core else {
                return Err(PlanError::Unsupported(
                    "window input must be scan(+filter)".into(),
                ));
            };
            return self.plan_window(
                db,
                table,
                filter,
                partition_by.as_deref(),
                order_by,
                *frame,
                funcs,
                select,
                hints,
            );
        }
        let LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } = plan
        else {
            return Err(PlanError::Unsupported(
                "top-level node must be an aggregation or window".into(),
            ));
        };
        if aggs.is_empty() {
            return Err(PlanError::Unsupported("empty aggregate list".into()));
        }
        let (core, filter) = split_filters(input);
        match core {
            LogicalPlan::Scan { table } => {
                self.plan_scan_agg(db, table, filter, group_by.as_deref(), aggs, hints)
            }
            LogicalPlan::SemiJoin {
                input: probe,
                build,
                fk_col,
            } => {
                let (probe_core, mut probe_filter) = split_filters(probe);
                // More than one join edge anywhere in the tree routes to the
                // multi-way planner; the plain two-table shapes below stay in
                // charge of single-edge queries.
                if matches!(probe_core, LogicalPlan::SemiJoin { .. }) || join_depth(build) > 0 {
                    if let Some(g) = group_by.as_deref() {
                        return Err(PlanError::Unsupported(format!(
                            "group by {g} over a multi-way join"
                        )));
                    }
                    return self.plan_multijoin_agg(db, core, filter, aggs);
                }
                if let Some(extra) = filter {
                    probe_filter = Some(match probe_filter {
                        Some(f) => f.and(extra),
                        None => extra,
                    });
                }
                let LogicalPlan::Scan { table: probe_table } = probe_core else {
                    return Err(PlanError::Unsupported(
                        "semijoin probe side must be scan(+filter)".into(),
                    ));
                };
                let (build_core, build_filter) = split_filters(build);
                let LogicalPlan::Scan { table: build_table } = build_core else {
                    return Err(PlanError::Unsupported(
                        "semijoin build side must be scan(+filter)".into(),
                    ));
                };
                match group_by.as_deref() {
                    None => self.plan_semijoin_agg(
                        db,
                        probe_table,
                        probe_filter,
                        build_table,
                        build_filter,
                        fk_col,
                        aggs,
                        hints,
                    ),
                    Some(g) if g == fk_col => {
                        if probe_filter.is_some() {
                            return Err(PlanError::Unsupported(
                                "groupjoin with a probe-side filter".into(),
                            ));
                        }
                        self.plan_groupjoin_agg(
                            db,
                            probe_table,
                            build_table,
                            build_filter,
                            fk_col,
                            aggs,
                            hints,
                        )
                    }
                    Some(other) => Err(PlanError::Unsupported(format!(
                        "group by {other} over a semijoin (only the FK column is supported)"
                    ))),
                }
            }
            other => Err(PlanError::Unsupported(format!(
                "aggregation over {other:?}"
            ))),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn plan_scan_agg(
        &self,
        db: &Database,
        table_name: &str,
        filter: Option<Expr>,
        group_by: Option<&str>,
        aggs: &[AggSpec],
        hints: PlanHints,
    ) -> Result<PhysicalPlan, PlanError> {
        let table = db.table(table_name)?;
        if let Some(f) = &filter {
            f.validate(table)?;
        }
        for a in aggs {
            a.expr.validate(table)?;
        }
        if let Some(g) = group_by {
            if table.column(g).is_none() {
                return Err(PlanError::UnknownColumn {
                    table: table_name.to_string(),
                    column: g.to_string(),
                });
            }
        }
        let mut decisions = Vec::new();
        let mut cost_terms = Vec::new();
        let selectivity = match (hints.selectivity, &filter) {
            (Some(observed), Some(_)) => {
                decisions.push(format!(
                    "σ overridden to {observed:.4} (observed after drift)"
                ));
                observed
            }
            (_, Some(f)) => stats::estimate_selectivity(table, f),
            (_, None) => 1.0,
        };
        let group_keys = group_by.map(|g| stats::estimate_distinct(table, g));
        let has_minmax = aggs
            .iter()
            .any(|a| matches!(a.func, AggFunc::Min | AggFunc::Max));
        let (comp, n_cols) = agg_comp_cols(aggs, group_by);
        let profile = AggProfile {
            rows: table.len(),
            selectivity,
            comp,
            n_cols,
            group_keys,
            n_aggs: aggs.len(),
        };
        let choice = choose_agg_mt(&self.params, &profile, self.threads);
        let chosen = if has_minmax {
            decisions
                .push("hybrid forced: min/max require extra masking bookkeeping (§ III-A)".into());
            // The forced path must still be priced: the verifier
            // cross-checks every strategy against its cost term.
            cost_terms.push((
                AggStrategy::Hybrid.cost_term().to_string(),
                choice.cost_hybrid,
            ));
            AggStrategy::Hybrid
        } else {
            cost_terms.push((
                AggStrategy::Hybrid.cost_term().to_string(),
                choice.cost_hybrid,
            ));
            cost_terms.push((
                AggStrategy::ValueMasking.cost_term().to_string(),
                choice.cost_value_masking,
            ));
            if let Some(km) = choice.cost_key_masking {
                cost_terms.push((AggStrategy::KeyMasking.cost_term().to_string(), km));
            }
            decisions.push(format!(
                "σ={selectivity:.2} → {} (hybrid={:.2e}, vm={:.2e}{})",
                choice.explanation,
                choice.cost_hybrid,
                choice.cost_value_masking,
                choice
                    .cost_key_masking
                    .map(|c| format!(", km={c:.2e}"))
                    .unwrap_or_default(),
            ));
            choice.strategy
        };
        let strategy = match self.strategies.agg {
            Some(pin) => {
                if has_minmax && pin != AggStrategy::Hybrid {
                    return Err(PlanError::Unsupported(format!(
                        "cannot pin {} aggregation: min/max require hybrid",
                        pin.name()
                    )));
                }
                decisions.push(format!("strategy pinned to {} by the session", pin.name()));
                pin
            }
            None => chosen,
        };
        // Statistics shortcut: an unfiltered, ungrouped COUNT/MIN/MAX list
        // whose every answer is exact in a fresh catalog snapshot skips the
        // scan entirely (the shape is kept for EXPLAIN and verification).
        let shortcut = if filter.is_none() && group_by.is_none() {
            self.stats_shortcut(db, table_name, aggs, &mut decisions)
        } else {
            None
        };
        Ok(PhysicalPlan {
            shape: Shape::ScanAgg {
                table: table_name.to_string(),
                filter,
                group_by: group_by.map(str::to_string),
                aggs: aggs.to_vec(),
                strategy,
            },
            post: Vec::new(),
            decisions,
            cost_terms,
            shortcut,
        })
    }

    /// The one result row of an aggregate list answerable from catalog
    /// statistics alone: `COUNT` is the exact row count, `MIN`/`MAX` on a
    /// bare column are the exact column bounds. Any other aggregate — or a
    /// stale/missing snapshot — declines.
    fn stats_shortcut(
        &self,
        db: &Database,
        table: &str,
        aggs: &[AggSpec],
        decisions: &mut Vec<String>,
    ) -> Option<Vec<i64>> {
        let generation = db.generation(table)?;
        let s = self.stats_for(db, table)?;
        if !s.fresh_for(generation) {
            return None;
        }
        let mut row = Vec::with_capacity(aggs.len());
        for a in aggs {
            let v = match (a.func, &a.expr) {
                (AggFunc::Count, _) => s.rows as i64,
                // Zero-row semantics match execution: min/max are 0 when
                // nothing qualifies.
                (AggFunc::Min, Expr::Col(c)) => s.column(c)?.min,
                (AggFunc::Max, Expr::Col(c)) => s.column(c)?.max,
                _ => return None,
            };
            row.push(v);
        }
        decisions.push(format!(
            "answered from catalog statistics (stats mode {}, generation {generation}): scan skipped",
            self.stats_mode.name()
        ));
        Some(row)
    }

    /// Plan a window pipeline: validate the surface, then let the chooser
    /// pick between the sequential frame scan and conditional re-evaluation
    /// (the same access trade as § III-A, over sorted frames).
    #[allow(clippy::too_many_arguments)]
    fn plan_window(
        &self,
        db: &Database,
        table_name: &str,
        filter: Option<Expr>,
        partition_by: Option<&str>,
        order_by: &[SortKey],
        frame: FrameSpec,
        funcs: &[WindowFnSpec],
        select: &[String],
        hints: PlanHints,
    ) -> Result<PhysicalPlan, PlanError> {
        let table = db.table(table_name)?;
        if let Some(f) = &filter {
            f.validate(table)?;
        }
        for col in select
            .iter()
            .map(String::as_str)
            .chain(order_by.iter().map(|k| k.column.as_str()))
            .chain(partition_by)
        {
            if table.column(col).is_none() {
                return Err(PlanError::UnknownColumn {
                    table: table_name.to_string(),
                    column: col.to_string(),
                });
            }
        }
        let mut seen: Vec<&str> = select.iter().map(String::as_str).collect();
        for f in funcs {
            if let Some(e) = &f.expr {
                e.validate(table)?;
            }
            if seen.contains(&f.name.as_str()) {
                return Err(PlanError::Unsupported(format!(
                    "duplicate output column {} in the window select list",
                    f.name
                )));
            }
            seen.push(&f.name);
        }
        let mut decisions = Vec::new();
        let mut cost_terms = Vec::new();
        let selectivity = match (hints.selectivity, &filter) {
            (Some(observed), Some(_)) => {
                decisions.push(format!(
                    "σ overridden to {observed:.4} (observed after drift)"
                ));
                observed
            }
            (_, Some(f)) => stats::estimate_selectivity(table, f),
            (_, None) => 1.0,
        };
        let strategy = if funcs.is_empty() {
            decisions.push("projection: no window functions to frame".into());
            // Price the degenerate projection as one sequential pass so the
            // verifier's strategy/cost-term cross-check still holds.
            cost_terms.push((
                WindowStrategy::SequentialFrameScan.cost_term().to_string(),
                table.len() as f64 * selectivity,
            ));
            WindowStrategy::SequentialFrameScan
        } else {
            let profile = WindowProfile {
                rows: table.len(),
                selectivity,
                partitions: partition_by
                    .map(|p| stats::estimate_distinct(table, p))
                    .unwrap_or(1)
                    .max(1),
                frame_rows: match frame {
                    FrameSpec::Preceding(k) => Some(k),
                    FrameSpec::WholePartition | FrameSpec::UnboundedPreceding => None,
                },
                n_funcs: funcs.len(),
            };
            let choice = swole_cost::choose::choose_window(&self.params, &profile);
            cost_terms.push((
                WindowStrategy::SequentialFrameScan.cost_term().to_string(),
                choice.cost_seq_frame,
            ));
            cost_terms.push((
                WindowStrategy::ConditionalReeval.cost_term().to_string(),
                choice.cost_reeval,
            ));
            decisions.push(format!(
                "σ={selectivity:.2} → {} (seq-frame={:.2e}, reeval={:.2e})",
                choice.explanation, choice.cost_seq_frame, choice.cost_reeval,
            ));
            match self.strategies.window {
                Some(pin) => {
                    decisions.push(format!(
                        "window strategy pinned to {} by the session",
                        pin.name()
                    ));
                    pin
                }
                None => choice.strategy,
            }
        };
        // The sort feeding the frames is priced like the result sort: keys
        // are (partition, order) and it runs over the qualifying rows.
        if !funcs.is_empty() || !order_by.is_empty() {
            let est_rows = ((table.len() as f64) * selectivity).ceil() as usize;
            let n_keys = order_by.len() + usize::from(partition_by.is_some());
            let cost = sort_cost(&self.params, est_rows, n_keys.max(1));
            cost_terms.push(("window.sort".to_string(), cost));
        }
        Ok(PhysicalPlan {
            shape: Shape::WindowScan {
                table: table_name.to_string(),
                filter,
                partition_by: partition_by.map(str::to_string),
                order_by: order_by.to_vec(),
                frame,
                funcs: funcs.to_vec(),
                select: select.to_vec(),
                strategy,
            },
            post: Vec::new(),
            decisions,
            cost_terms,
            shortcut: None,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn plan_semijoin_agg(
        &self,
        db: &Database,
        probe: &str,
        probe_filter: Option<Expr>,
        build: &str,
        build_filter: Option<Expr>,
        fk_col: &str,
        aggs: &[AggSpec],
        hints: PlanHints,
    ) -> Result<PhysicalPlan, PlanError> {
        let probe_t = db.table(probe)?;
        let build_t = db.table(build)?;
        if let Some(f) = &probe_filter {
            f.validate(probe_t)?;
        }
        if let Some(f) = &build_filter {
            f.validate(build_t)?;
        }
        for a in aggs {
            a.expr.validate(probe_t)?;
            if matches!(a.func, AggFunc::Min | AggFunc::Max) {
                return Err(PlanError::Unsupported(
                    "min/max over a semijoin (use sum/count)".into(),
                ));
            }
        }
        self.fk_positions(db, probe, fk_col, build)?; // validate FK column early
        let mut hint_decision = None;
        let build_sel = match (hints.selectivity, &build_filter) {
            (Some(observed), Some(_)) => {
                hint_decision = Some(format!(
                    "σ_build overridden to {observed:.4} (observed after drift)"
                ));
                observed
            }
            (_, Some(f)) => stats::estimate_selectivity(build_t, f),
            (_, None) => 1.0,
        };
        let has_fk_index = db.fk_index(probe, fk_col, build).is_some();
        let choice = choose_semijoin(
            &self.params,
            &SemiJoinProfile {
                build_rows: build_t.len(),
                build_selectivity: build_sel,
                has_fk_index,
            },
        );
        let probe_sel = match &probe_filter {
            Some(f) => stats::estimate_selectivity(probe_t, f),
            None => 1.0,
        };
        // Same VM-model threshold as the chooser's build decision: masked
        // probing wins unless the probe predicate is very selective.
        let probe_masked = probe_sel >= 0.125;
        let mut decisions = vec![format!("σ_build={build_sel:.2} → {}", choice.explanation)];
        if let Some(d) = hint_decision {
            decisions.push(d);
        }
        decisions.extend([format!(
            "σ_probe={probe_sel:.2} → {} probe",
            if probe_masked {
                "masked"
            } else {
                "selection-vector"
            }
        )]);
        let strategy = match self.strategies.semijoin {
            Some(pin) => {
                decisions.push("semijoin strategy pinned by the session".to_string());
                pin
            }
            None => choice.strategy,
        };
        Ok(PhysicalPlan {
            shape: Shape::SemiJoinAgg {
                probe: probe.to_string(),
                probe_filter,
                build: build.to_string(),
                build_filter,
                fk_col: fk_col.to_string(),
                aggs: aggs.to_vec(),
                strategy,
                probe_masked,
            },
            post: Vec::new(),
            decisions,
            cost_terms: Vec::new(),
            shortcut: None,
        })
    }

    /// Plan a multi-way FK join aggregation: decompose the nested semijoin
    /// tree into a join graph (fact plus direct and chain edges), estimate
    /// per-edge selectivities from statistics and sampling, choose the
    /// probe order (exact subset DP up to [`swole_cost::JOIN_DP_LIMIT`]
    /// direct edges, greedy rank beyond, session pin override), and pick
    /// each edge's membership structure with the semijoin cost model.
    fn plan_multijoin_agg(
        &self,
        db: &Database,
        core: &LogicalPlan,
        outer_filter: Option<Expr>,
        aggs: &[AggSpec],
    ) -> Result<PhysicalPlan, PlanError> {
        let (fact, mut fact_filter, raw_edges) = extract_join_tree(core)?;
        if let Some(extra) = outer_filter {
            fact_filter = Some(match fact_filter {
                Some(f) => f.and(extra),
                None => extra,
            });
        }
        let fact_t = db.table(&fact)?;
        if let Some(f) = &fact_filter {
            f.validate(fact_t)?;
        }
        for a in aggs {
            a.expr.validate(fact_t)?;
        }
        let mut decisions = Vec::new();
        let mut edges = Vec::with_capacity(raw_edges.len());
        for e in raw_edges {
            edges.push(self.lower_join_edge(db, &fact, e, &mut decisions)?);
        }
        let fact_sel = match &fact_filter {
            Some(f) => stats::estimate_selectivity(fact_t, f),
            None => 1.0,
        };
        let profile = self
            .multijoin_profile(db, &fact, fact_sel, &edges)
            .expect("fact table resolved above");
        let choice = choose_join_order(&self.params, &profile);
        let (order_idx, method) = match &self.strategies.join_order {
            Some(pin) => {
                let mut idx = Vec::with_capacity(pin.len());
                for name in pin {
                    let Some(i) = edges.iter().position(|e| &e.parent == name) else {
                        return Err(PlanError::Unsupported(format!(
                            "join-order pin names {name}, which is not a build side of this query"
                        )));
                    };
                    if idx.contains(&i) {
                        return Err(PlanError::Unsupported(format!(
                            "join-order pin names {name} twice"
                        )));
                    }
                    idx.push(i);
                }
                if idx.len() != edges.len() {
                    return Err(PlanError::Unsupported(format!(
                        "join-order pin must name every build side ({} of {} named)",
                        idx.len(),
                        edges.len()
                    )));
                }
                decisions.push(format!(
                    "join order pinned by the session: {}",
                    pin.join(" -> ")
                ));
                (idx, JoinOrderMethod::Pinned)
            }
            None => (choice.order.clone(), choice.method),
        };
        let chosen_cost = join_order_cost(&self.params, &profile, &order_idx);
        decisions.push(format!(
            "σ_fact={fact_sel:.2}, {} → probe order {} ({})",
            choice.explanation,
            order_idx
                .iter()
                .map(|&i| edges[i].parent.as_str())
                .collect::<Vec<_>>()
                .join(" -> "),
            method.name(),
        ));
        let cost_terms = vec![
            ("join.order".to_string(), chosen_cost),
            ("join.order.best".to_string(), choice.cost),
            ("join.order.worst".to_string(), choice.worst_cost),
        ];
        let edges: Vec<JoinEdge> = order_idx.into_iter().map(|i| edges[i].clone()).collect();
        Ok(PhysicalPlan {
            shape: Shape::MultiJoinAgg {
                fact,
                fact_filter,
                edges,
                aggs: aggs.to_vec(),
                order_method: method,
            },
            post: Vec::new(),
            decisions,
            cost_terms,
            shortcut: None,
        })
    }

    /// Lower one raw join edge: validate the FK path and the parent
    /// filter, estimate the fraction of probe rows surviving the edge (own
    /// filter × nested children, with adaptive observed-selectivity
    /// feedback when available), and choose the membership structure.
    fn lower_join_edge(
        &self,
        db: &Database,
        child: &str,
        e: RawEdge,
        decisions: &mut Vec<String>,
    ) -> Result<JoinEdge, PlanError> {
        let parent_t = db.table(&e.parent)?;
        if let Some(f) = &e.parent_filter {
            f.validate(parent_t)?;
        }
        self.fk_positions(db, child, &e.fk_col, &e.parent)?;
        let mut children = Vec::with_capacity(e.children.len());
        for c in e.children {
            children.push(self.lower_join_edge(db, &e.parent, c, decisions)?);
        }
        let own = match &e.parent_filter {
            Some(f) => {
                let sampled = stats::estimate_selectivity(parent_t, f);
                match self
                    .stats_for(db, &e.parent)
                    .and_then(|s| s.observed_selectivity)
                {
                    Some(obs) if self.stats_mode == stats::StatsMode::Adaptive => {
                        decisions.push(format!(
                            "σ({}) = {obs:.4} from adaptive statistics (sampled {sampled:.4})",
                            e.parent
                        ));
                        obs
                    }
                    _ => sampled,
                }
            }
            None => 1.0,
        };
        let est_selectivity = children
            .iter()
            .fold(own, |s, c| s * c.est_selectivity)
            .clamp(0.0, 1.0);
        let has_fk_index = db.fk_index(child, &e.fk_col, &e.parent).is_some();
        let choice = choose_semijoin(
            &self.params,
            &SemiJoinProfile {
                build_rows: parent_t.len(),
                build_selectivity: est_selectivity,
                has_fk_index,
            },
        );
        let strategy = if let Some((_, pin)) = self
            .strategies
            .build_sides
            .iter()
            .find(|(t, _)| t == &e.parent)
        {
            decisions.push(format!("build side {} pinned by the session", e.parent));
            *pin
        } else if let Some(pin) = self.strategies.semijoin {
            pin
        } else {
            choice.strategy
        };
        decisions.push(format!(
            "edge {child}.{} -> {} σ={est_selectivity:.2}: {}",
            e.fk_col, e.parent, choice.explanation
        ));
        Ok(JoinEdge {
            parent: e.parent,
            parent_filter: e.parent_filter,
            fk_col: e.fk_col,
            strategy,
            children,
            est_selectivity,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn plan_groupjoin_agg(
        &self,
        db: &Database,
        probe: &str,
        build: &str,
        build_filter: Option<Expr>,
        fk_col: &str,
        aggs: &[AggSpec],
        hints: PlanHints,
    ) -> Result<PhysicalPlan, PlanError> {
        let probe_t = db.table(probe)?;
        let build_t = db.table(build)?;
        if let Some(f) = &build_filter {
            f.validate(build_t)?;
        }
        for a in aggs {
            a.expr.validate(probe_t)?;
            if matches!(a.func, AggFunc::Min | AggFunc::Max) {
                return Err(PlanError::Unsupported(
                    "min/max over a groupjoin (use sum/count)".into(),
                ));
            }
        }
        self.fk_positions(db, probe, fk_col, build)?;
        let mut hint_decision = None;
        let s_sel = match (hints.selectivity, &build_filter) {
            (Some(observed), Some(_)) => {
                hint_decision = Some(format!(
                    "σ_S overridden to {observed:.4} (observed after drift)"
                ));
                observed
            }
            (_, Some(f)) => stats::estimate_selectivity(build_t, f),
            (_, None) => 1.0,
        };
        let comp: f64 = aggs.iter().map(|a| a.expr.comp_cycles() + 0.5).sum();
        let choice = choose_groupjoin_mt(
            &self.params,
            &GroupJoinProfile {
                r_rows: probe_t.len(),
                r_selectivity: 1.0,
                s_rows: build_t.len(),
                s_selectivity: s_sel,
                join_match_prob: s_sel,
                group_keys: build_t.len(),
                comp,
                n_aggs: aggs.len(),
            },
            self.threads,
        );
        let mut decisions = vec![format!(
            "σ_S={s_sel:.2} → {} (groupjoin={:.2e}, eager={:.2e})",
            choice.explanation, choice.cost_groupjoin, choice.cost_eager,
        )];
        if let Some(d) = hint_decision {
            decisions.push(d);
        }
        let strategy = match self.strategies.groupjoin {
            Some(pin) => {
                decisions.push("groupjoin strategy pinned by the session".to_string());
                pin
            }
            None => choice.strategy,
        };
        Ok(PhysicalPlan {
            shape: Shape::GroupJoinAgg {
                probe: probe.to_string(),
                build: build.to_string(),
                build_filter,
                fk_col: fk_col.to_string(),
                aggs: aggs.to_vec(),
                strategy,
            },
            post: Vec::new(),
            decisions,
            cost_terms: vec![
                (
                    GroupJoinStrategy::GroupJoin.cost_term().to_string(),
                    choice.cost_groupjoin,
                ),
                (
                    GroupJoinStrategy::EagerAggregation.cost_term().to_string(),
                    choice.cost_eager,
                ),
            ],
            shortcut: None,
        })
    }

    /// The positional FK mapping probe→parent as a borrow: the registered
    /// FK index if present, otherwise the raw `u32` FK column (dense parent
    /// keys). Plan-time validation only — execution pins an owned
    /// [`FkSource`] instead.
    fn fk_positions<'a>(
        &self,
        db: &'a Database,
        child: &str,
        fk_col: &str,
        parent: &str,
    ) -> Result<&'a [u32], PlanError> {
        if let Some(idx) = db.fk_index(child, fk_col, parent) {
            return Ok(idx.positions());
        }
        let child_t = db.table(child)?;
        let col = child_t
            .column(fk_col)
            .ok_or_else(|| PlanError::UnknownColumn {
                table: child.to_string(),
                column: fk_col.to_string(),
            })?;
        col.as_u32().ok_or_else(|| PlanError::MissingFkIndex {
            child: child.to_string(),
            fk_column: fk_col.to_string(),
        })
    }

    /// [`EngineInner::fk_positions`] as an owned snapshot execution can
    /// pin: shared-pool worker closures outlive the submitting call stack,
    /// so they must not borrow from the database guard.
    fn fk_source(
        &self,
        db: &Database,
        child: &str,
        fk_col: &str,
        parent: &str,
    ) -> Result<FkSource, PlanError> {
        if let Some(idx) = db.fk_index_arc(child, fk_col, parent) {
            return Ok(FkSource::Index(idx));
        }
        let t = db.table_arc(child)?;
        let col = t.column(fk_col).ok_or_else(|| PlanError::UnknownColumn {
            table: child.to_string(),
            column: fk_col.to_string(),
        })?;
        if col.as_u32().is_none() {
            return Err(PlanError::MissingFkIndex {
                child: child.to_string(),
                fk_column: fk_col.to_string(),
            });
        }
        Ok(FkSource::Column(t, fk_col.to_string()))
    }

    /// Pin every table and FK column of a join forest as `Arc` snapshots
    /// for the query's lifetime, recursing through chain edges (each
    /// nested edge's FK lives on its *parent* table, i.e. the child of
    /// that nested edge).
    fn bind_join_edges(
        &self,
        db: &Database,
        child: &str,
        edges: &[JoinEdge],
    ) -> Result<Vec<BoundEdge>, PlanError> {
        edges
            .iter()
            .map(|e| {
                Ok(BoundEdge {
                    parent: e.parent.clone(),
                    parent_t: db.table_arc(&e.parent)?,
                    parent_filter: e.parent_filter.clone(),
                    fk: self.fk_source(db, child, &e.fk_col, &e.parent)?,
                    strategy: e.strategy,
                    children: self.bind_join_edges(db, &e.parent, &e.children)?,
                })
            })
            .collect()
    }

    // -----------------------------------------------------------------
    // Execution
    // -----------------------------------------------------------------

    /// Execute a physical plan against an execution context, returning the
    /// result plus per-operator metrics (empty below
    /// [`MetricsLevel::Counters`]). Planner/executor drift (a table or FK
    /// index dropped after planning) propagates as a [`PlanError`] instead
    /// of panicking. Input tables and FK indexes are pinned as `Arc`
    /// snapshots for the query's lifetime.
    pub(crate) fn execute_shape(
        &self,
        db: &Database,
        plan: &PhysicalPlan,
        ctx: &Arc<ExecCtx>,
        level: MetricsLevel,
    ) -> Result<(QueryResult, Vec<OpMetrics>), PlanError> {
        // Upfront cooperative check: zero-morsel inputs still observe an
        // already-expired deadline or cancelled handle.
        ctx.check()?;
        if let Some(row) = &plan.shortcut {
            // Statistics-backed answer: the planner proved the result from
            // the catalog, so no table access happens at all.
            let mut res = QueryResult {
                columns: shape_output_columns(&plan.shape),
                rows: vec![row.clone()],
                metrics: None,
                key_dict: None,
            };
            let mut ops = Vec::new();
            if level.counting() {
                let mut op = OpMetrics::named("stats-shortcut");
                op.access.rows_out = 1;
                ops.push(op);
            }
            apply_post_ops(&plan.post, &mut res, &mut ops, level, ctx)?;
            return Ok((res, ops));
        }
        let opts = ExecOpts {
            executor: &self.executor,
            threads: self.threads,
            morsel_rows: self.morsel_rows,
            level,
        };
        let (mut res, mut ops) = match &plan.shape {
            Shape::ScanAgg {
                table,
                filter,
                group_by,
                aggs,
                strategy,
            } => {
                let t = db.table_arc(table)?;
                match group_by {
                    None => exec_scalar_agg(
                        &format!("agg({table})"),
                        &t,
                        filter.as_ref(),
                        aggs,
                        *strategy,
                        opts,
                        ctx,
                    ),
                    Some(g) => exec_groupby_agg(
                        &format!("groupby-agg({table})"),
                        &t,
                        filter.as_ref(),
                        g,
                        aggs,
                        *strategy,
                        opts,
                        ctx,
                    ),
                }
            }
            Shape::SemiJoinAgg {
                probe,
                probe_filter,
                build,
                build_filter,
                fk_col,
                aggs,
                strategy,
                probe_masked,
            } => {
                let probe_t = db.table_arc(probe)?;
                let build_t = db.table_arc(build)?;
                let fk = self.fk_source(db, probe, fk_col, build)?;
                exec_semijoin_agg(
                    SemiJoinNames {
                        build: &format!("semijoin-build({build})"),
                        probe: &format!("probe-agg({probe})"),
                    },
                    &probe_t,
                    probe_filter.as_ref(),
                    &build_t,
                    build_filter.as_ref(),
                    &fk,
                    aggs,
                    *strategy,
                    *probe_masked,
                    opts,
                    ctx,
                )
            }
            Shape::MultiJoinAgg {
                fact,
                fact_filter,
                edges,
                aggs,
                ..
            } => {
                let fact_t = db.table_arc(fact)?;
                let bound = self.bind_join_edges(db, fact, edges)?;
                exec_multijoin_agg(fact, &fact_t, fact_filter.as_ref(), &bound, aggs, opts, ctx)
            }
            Shape::GroupJoinAgg {
                probe,
                build,
                build_filter,
                fk_col,
                aggs,
                strategy,
            } => {
                let probe_t = db.table_arc(probe)?;
                let build_t = db.table_arc(build)?;
                let fk = self.fk_source(db, probe, fk_col, build)?;
                exec_groupjoin_agg(
                    SemiJoinNames {
                        build: &format!("build-mask({build})"),
                        probe: &format!("probe-agg({probe})"),
                    },
                    &probe_t,
                    &build_t,
                    build_filter.as_ref(),
                    &fk,
                    fk_col,
                    aggs,
                    *strategy,
                    opts,
                    ctx,
                )
            }
            Shape::WindowScan {
                table,
                filter,
                partition_by,
                order_by,
                frame,
                funcs,
                select,
                strategy,
            } => {
                let t = db.table_arc(table)?;
                exec_window(
                    &format!("window({table})"),
                    &t,
                    filter.as_ref(),
                    partition_by.as_deref(),
                    order_by,
                    *frame,
                    funcs,
                    select,
                    *strategy,
                    opts,
                    ctx,
                )
            }
        }?;
        apply_post_ops(&plan.post, &mut res, &mut ops, level, ctx)?;
        Ok((res, ops))
    }
}

/// Apply the plan's result-level post-operators (`ORDER BY`, `LIMIT`) to a
/// materialized result, in order. The sort is stable over the core
/// pipeline's (already deterministic) row order, so ties are deterministic
/// at any thread count.
fn apply_post_ops(
    post: &[PostOp],
    res: &mut QueryResult,
    ops: &mut Vec<OpMetrics>,
    level: MetricsLevel,
    ctx: &Arc<ExecCtx>,
) -> Result<(), PlanError> {
    let counting = level.counting();
    for p in post {
        ctx.check()?;
        let t0 = level.timing().then(Instant::now);
        let rows_in = res.rows.len() as u64;
        match p {
            PostOp::Sort { keys } => {
                let mut key_idx = Vec::with_capacity(keys.len());
                for k in keys {
                    key_idx.push((res.column_index(&k.column)?, k.desc));
                }
                // The permutation vector is the sort's one materialized
                // artifact; charge it like any other selection vector.
                ctx.gauge.try_charge(res.rows.len().saturating_mul(4))?;
                let mut perm: Vec<u32> = (0..res.rows.len() as u32).collect();
                perm.sort_by(|&a, &b| {
                    let (ra, rb) = (&res.rows[a as usize], &res.rows[b as usize]);
                    for &(i, desc) in &key_idx {
                        let ord = ra[i].cmp(&rb[i]);
                        let ord = if desc { ord.reverse() } else { ord };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    a.cmp(&b) // deterministic tie-break: pre-sort position
                });
                res.rows = perm
                    .into_iter()
                    .map(|i| std::mem::take(&mut res.rows[i as usize]))
                    .collect();
            }
            PostOp::Limit { n } => {
                res.rows.truncate(*n);
            }
        }
        if counting {
            let name = match p {
                PostOp::Sort { .. } => "sort",
                PostOp::Limit { .. } => "limit",
            };
            let mut op = OpMetrics::named(name);
            op.access.rows_in = rows_in;
            op.access.rows_out = res.rows.len() as u64;
            op.wall_nanos = t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
            ops.push(op);
        }
    }
    Ok(())
}

/// Operator display names for the two-phase join shapes.
struct SemiJoinNames<'a> {
    build: &'a str,
    probe: &'a str,
}

/// The positional FK mapping, pinned as owned data so shared-pool worker
/// closures (which outlive the submitting call stack) can read it without
/// borrowing from the database guard.
#[derive(Clone)]
enum FkSource {
    /// A registered FK index.
    Index(Arc<FkIndex>),
    /// The raw `u32` FK column of the (pinned, immutable) child table —
    /// validated at construction, so `slice` cannot fail.
    Column(Arc<Table>, String),
}

impl FkSource {
    fn slice(&self) -> &[u32] {
        match self {
            FkSource::Index(idx) => idx.positions(),
            FkSource::Column(t, col) => t
                .column(col)
                .and_then(|c| c.as_u32())
                .expect("validated u32 FK column on an immutable table"),
        }
    }
}

/// The semijoin build side, shared read-only across probe workers.
enum BuildSide {
    Set(KeySet),
    Bitmap(PositionalBitmap),
}

/// One multi-way join edge with its tables and FK column pinned as `Arc`
/// snapshots, so execution cannot drift from the catalog mid-query.
struct BoundEdge {
    parent: String,
    parent_t: Arc<Table>,
    parent_filter: Option<Expr>,
    /// FK on the *child* side of this edge (the fact for direct edges, the
    /// intermediate parent for chain edges).
    fk: FkSource,
    strategy: SemiJoinStrategy,
    children: Vec<BoundEdge>,
}

/// The `comp` estimate and distinct-column count of an aggregate list —
/// shared by the planner's chooser profile and the observed-cost re-scoring
/// so both feed the model identical inputs.
fn agg_comp_cols(aggs: &[AggSpec], group_by: Option<&str>) -> (f64, usize) {
    let mut cols: Vec<String> = Vec::new();
    for a in aggs {
        for c in a.expr.columns() {
            if !cols.contains(&c) {
                cols.push(c);
            }
        }
    }
    let comp: f64 = aggs.iter().map(|a| a.expr.comp_cycles() + 0.5).sum();
    (comp, cols.len() + group_by.map(|_| 1).unwrap_or(0))
}

/// Total base-table rows a plan scans — the footprint estimate charged for
/// the data-centric fallback's row-id bookkeeping.
pub(crate) fn plan_rows(db: &Database, plan: &LogicalPlan) -> usize {
    match plan {
        LogicalPlan::Scan { table } => db.table(table).map(|t| t.len()).unwrap_or(0),
        LogicalPlan::Filter { input, .. } => plan_rows(db, input),
        LogicalPlan::SemiJoin { input, build, .. } => {
            plan_rows(db, input).saturating_add(plan_rows(db, build))
        }
        LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Window { input, .. }
        | LogicalPlan::OrderBy { input, .. }
        | LogicalPlan::Limit { input, .. } => plan_rows(db, input),
    }
}

/// Output column names of a planned core shape, for validating post-op
/// sort keys at plan time.
fn shape_output_columns(shape: &Shape) -> Vec<String> {
    match shape {
        Shape::ScanAgg { group_by, aggs, .. } => group_by
            .iter()
            .cloned()
            .chain(aggs.iter().map(|a| a.name.clone()))
            .collect(),
        Shape::SemiJoinAgg { aggs, .. } | Shape::MultiJoinAgg { aggs, .. } => {
            aggs.iter().map(|a| a.name.clone()).collect()
        }
        Shape::GroupJoinAgg { fk_col, aggs, .. } => std::iter::once(fk_col.clone())
            .chain(aggs.iter().map(|a| a.name.clone()))
            .collect(),
        Shape::WindowScan { select, funcs, .. } => select
            .iter()
            .cloned()
            .chain(funcs.iter().map(|f| f.name.clone()))
            .collect(),
    }
}

/// One edge of a join graph as extracted from the logical plan, before
/// selectivity estimation and strategy choice.
struct RawEdge {
    parent: String,
    parent_filter: Option<Expr>,
    fk_col: String,
    children: Vec<RawEdge>,
}

/// Number of semijoin edges anywhere in `plan`'s tree (filters peeled).
fn join_depth(plan: &LogicalPlan) -> usize {
    match plan {
        LogicalPlan::Filter { input, .. } => join_depth(input),
        LogicalPlan::SemiJoin { input, build, .. } => 1 + join_depth(input) + join_depth(build),
        _ => 0,
    }
}

/// Decompose a nested semijoin tree into its join graph: the base table,
/// the merged filter over the base's own columns, and the edges hanging
/// off the base (each recursively carrying its own chain edges). Nodes
/// other than scan/filter/semijoin are unsupported.
fn extract_join_tree(
    plan: &LogicalPlan,
) -> Result<(String, Option<Expr>, Vec<RawEdge>), PlanError> {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let (table, filter, edges) = extract_join_tree(input)?;
            let merged = match filter {
                Some(f) => f.and(predicate.clone()),
                None => predicate.clone(),
            };
            Ok((table, Some(merged), edges))
        }
        LogicalPlan::Scan { table } => Ok((table.clone(), None, Vec::new())),
        LogicalPlan::SemiJoin {
            input,
            build,
            fk_col,
        } => {
            let (table, filter, mut edges) = extract_join_tree(input)?;
            let (parent, parent_filter, children) = extract_join_tree(build)?;
            edges.push(RawEdge {
                parent,
                parent_filter,
                fk_col: fk_col.clone(),
                children,
            });
            Ok((table, filter, edges))
        }
        other => Err(PlanError::Unsupported(format!(
            "multi-way join over {other:?}"
        ))),
    }
}

/// The table whose filter drives the plan's *first* operator — the one an
/// observed selectivity is attributed to under adaptive statistics.
fn primary_stats_table(shape: &Shape) -> Option<&str> {
    match shape {
        Shape::ScanAgg {
            table,
            filter: Some(_),
            ..
        } => Some(table),
        Shape::SemiJoinAgg {
            build,
            build_filter: Some(_),
            ..
        } => Some(build),
        Shape::GroupJoinAgg {
            build,
            build_filter: Some(_),
            ..
        } => Some(build),
        Shape::WindowScan {
            table,
            filter: Some(_),
            ..
        } => Some(table),
        Shape::MultiJoinAgg { edges, .. } => edges
            .first()
            .filter(|e| e.parent_filter.is_some())
            .map(|e| e.parent.as_str()),
        _ => None,
    }
}

/// Flatten nested (chain) join edges into `JoinEdgeExplain` entries; a
/// nested edge's estimated cardinality is its parent table's qualifying
/// rows, matching what its `multijoin-build` op observes.
fn explain_nested_edges(
    db: &Database,
    children: &[JoinEdge],
    depth: usize,
    out: &mut Vec<JoinEdgeExplain>,
) {
    for c in children {
        let parent_rows = db.table(&c.parent).map(|t| t.len()).unwrap_or(0) as f64;
        out.push(JoinEdgeExplain {
            parent: c.parent.clone(),
            fk_col: c.fk_col.clone(),
            depth,
            build_side: c.strategy.name().to_string(),
            est_rows: (parent_rows * c.est_selectivity).round() as u64,
            observed_rows: None,
        });
        explain_nested_edges(db, &c.children, depth + 1, out);
    }
}

/// Merge a chain of filters above a leaf into one conjunction.
fn split_filters(plan: &LogicalPlan) -> (&LogicalPlan, Option<Expr>) {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let (core, rest) = split_filters(input);
            let merged = match rest {
                Some(r) => predicate.clone().and(r),
                None => predicate.clone(),
            };
            (core, Some(merged))
        }
        other => (other, None),
    }
}

/// Rebuild a logical plan in a normal form so that semantically equal
/// plans share one cache key: every chain of `Filter` nodes collapses into
/// a single node holding the merged conjunction (exactly what the planner
/// itself sees through [`split_filters`]).
fn canonicalize(plan: &LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan { table } => LogicalPlan::Scan {
            table: table.clone(),
        },
        LogicalPlan::Filter { .. } => {
            let (core, merged) = split_filters(plan);
            match merged {
                Some(predicate) => LogicalPlan::Filter {
                    input: Box::new(canonicalize(core)),
                    predicate,
                },
                None => canonicalize(core),
            }
        }
        LogicalPlan::SemiJoin {
            input,
            build,
            fk_col,
        } => LogicalPlan::SemiJoin {
            input: Box::new(canonicalize(input)),
            build: Box::new(canonicalize(build)),
            fk_col: fk_col.clone(),
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            input: Box::new(canonicalize(input)),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        LogicalPlan::Window {
            input,
            partition_by,
            order_by,
            frame,
            funcs,
            select,
        } => LogicalPlan::Window {
            input: Box::new(canonicalize(input)),
            partition_by: partition_by.clone(),
            order_by: order_by.clone(),
            frame: *frame,
            funcs: funcs.clone(),
            select: select.clone(),
        },
        LogicalPlan::OrderBy { input, keys } => LogicalPlan::OrderBy {
            input: Box::new(canonicalize(input)),
            keys: keys.clone(),
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(canonicalize(input)),
            n: *n,
        },
    }
}

/// The plan-cache key: the canonicalized logical plan's debug rendering,
/// prefixed with the strategy-relevant session knobs (thread count feeds
/// the multi-threaded groupjoin chooser, so plans picked at different
/// parallelism must not alias).
fn plan_fingerprint(plan: &LogicalPlan, threads: usize) -> String {
    format!("t{threads}:{:?}", canonicalize(plan))
}

/// Collect the base tables a logical plan touches (depth-first, duplicates
/// removed by [`cache::generations_of`]).
fn plan_tables<'a>(plan: &'a LogicalPlan, out: &mut Vec<&'a str>) {
    match plan {
        LogicalPlan::Scan { table } => out.push(table),
        LogicalPlan::Filter { input, .. } => plan_tables(input, out),
        LogicalPlan::SemiJoin { input, build, .. } => {
            plan_tables(input, out);
            plan_tables(build, out);
        }
        LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Window { input, .. }
        | LogicalPlan::OrderBy { input, .. }
        | LogicalPlan::Limit { input, .. } => plan_tables(input, out),
    }
}

/// Snapshot the generation counter of every table a plan reads, for the
/// plan cache's staleness check.
fn table_generations(db: &Database, plan: &LogicalPlan) -> Vec<(String, u64)> {
    let mut tables = Vec::new();
    plan_tables(plan, &mut tables);
    crate::cache::generations_of(db, &tables)
}

/// Evaluate the filter (or all-ones) mask for one tile.
fn tile_mask(filter: Option<&Expr>, table: &Table, start: usize, cmp: &mut [u8]) {
    match filter {
        Some(f) => f.eval_mask(table, start, cmp),
        None => cmp.fill(1),
    }
}

/// Per-worker merge operators for an aggregate list (all of which are
/// commutative and associative, making the merge order — and therefore the
/// thread count *and* the pool's morsel interleaving — invisible in the
/// result).
fn merge_ops(aggs: &[AggSpec]) -> Vec<MergeOp> {
    aggs.iter()
        .map(|a| match a.func {
            AggFunc::Sum | AggFunc::Count => MergeOp::Add,
            AggFunc::Min => MergeOp::Min,
            AggFunc::Max => MergeOp::Max,
        })
        .collect()
}

/// Thread-local state for scalar aggregation (also the semijoin probe):
/// accumulator slots plus per-tile scratch buffers.
struct ScalarAcc {
    acc: Vec<i64>,
    matched: usize,
    /// Set when a sum accumulation wrapped; surfaced as
    /// [`PlanError::Overflow`] after the merge.
    overflow: bool,
    /// Access-pattern counters (only touched at `MetricsLevel::Counters`+).
    ctr: AccessCounters,
    cmp: Vec<u8>,
    idx: Vec<u32>,
    val: Vec<i64>,
}

impl ScalarAcc {
    fn new(aggs: &[AggSpec]) -> ScalarAcc {
        let mut acc = vec![0i64; aggs.len()];
        for (i, a) in aggs.iter().enumerate() {
            if a.func == AggFunc::Min {
                acc[i] = i64::MAX;
            }
            if a.func == AggFunc::Max {
                acc[i] = i64::MIN;
            }
        }
        ScalarAcc {
            acc,
            matched: 0,
            overflow: false,
            ctr: AccessCounters::default(),
            cmp: vec![0u8; TILE],
            idx: vec![0u32; TILE],
            val: vec![0i64; TILE],
        }
    }

    /// Bytes of the per-worker scratch buffers, charged at worker init.
    fn scratch_bytes(n_aggs: usize) -> usize {
        TILE * (1 + 4 + 8) + n_aggs * 8
    }

    /// Accumulate a sum term with overflow detection.
    #[inline]
    fn add_sum(&mut self, i: usize, v: i64) {
        let (s, wrapped) = self.acc[i].overflowing_add(v);
        self.acc[i] = s;
        self.overflow |= wrapped;
    }
}

/// Fold per-worker scalar partials into one accumulator. Zero matches
/// anywhere leaves min/max at their identities, which the caller flattens
/// to the documented all-zero row. Also folds the workers' overflow flags.
fn merge_scalar_partials(
    aggs: &[AggSpec],
    partials: Vec<ScalarAcc>,
) -> Result<(Vec<i64>, usize, bool), PlanError> {
    let mut iter = partials.into_iter();
    let first = iter
        .next()
        .ok_or_else(|| PlanError::ExecutionFailed("no worker partials to merge".into()))?;
    let (mut acc, mut matched, mut overflow) = (first.acc, first.matched, first.overflow);
    for p in iter {
        matched += p.matched;
        overflow |= p.overflow;
        for (i, a) in aggs.iter().enumerate() {
            match a.func {
                AggFunc::Sum | AggFunc::Count => {
                    let (s, wrapped) = acc[i].overflowing_add(p.acc[i]);
                    acc[i] = s;
                    overflow |= wrapped;
                }
                AggFunc::Min => acc[i] = acc[i].min(p.acc[i]),
                AggFunc::Max => acc[i] = acc[i].max(p.acc[i]),
            }
        }
    }
    if matched == 0 {
        acc.iter_mut().for_each(|v| *v = 0);
    }
    Ok((acc, matched, overflow))
}

fn exec_scalar_agg(
    op_name: &str,
    table: &Arc<Table>,
    filter: Option<&Expr>,
    aggs: &[AggSpec],
    strategy: AggStrategy,
    opts: ExecOpts<'_>,
    ctx: &Arc<ExecCtx>,
) -> Result<(QueryResult, Vec<OpMetrics>), PlanError> {
    let n = table.len();
    let counting = opts.level.counting();
    let t0 = opts.level.timing().then(Instant::now);
    let aggs_arc: Arc<[AggSpec]> = aggs.to_vec().into();
    let init = {
        let ctx = Arc::clone(ctx);
        let aggs = Arc::clone(&aggs_arc);
        move || {
            charge_or_panic(&ctx.gauge, ScalarAcc::scratch_bytes(aggs.len()));
            ScalarAcc::new(&aggs)
        }
    };
    let body = {
        let table = Arc::clone(table);
        let filter = filter.cloned();
        let aggs = Arc::clone(&aggs_arc);
        move |w: &mut ScalarAcc, m_start: usize, m_len: usize| {
            let filter = filter.as_ref();
            if counting {
                w.ctr.morsels += 1;
                w.ctr.rows_in += m_len as u64;
                if filter.is_some() {
                    w.ctr.predicate_evals += m_len as u64;
                }
            }
            for (start, len) in tiles_in(m_start, m_len) {
                tile_mask(filter, &table, start, &mut w.cmp[..len]);
                match strategy {
                    AggStrategy::ValueMasking => {
                        let m = predicate::mask_count(&w.cmp[..len]);
                        w.matched += m;
                        if counting {
                            w.ctr.rows_out += m as u64;
                            // VM aggregates every lane; the non-qualifying
                            // ones are the pullup's wasted work (§ III-A).
                            w.ctr.wasted_lanes += (len - m) as u64;
                        }
                        for (i, a) in aggs.iter().enumerate() {
                            match a.func {
                                AggFunc::Sum => {
                                    a.expr.eval_values(&table, start, &mut w.val[..len]);
                                    for j in 0..len {
                                        // cmp is 0/1, so the product cannot overflow.
                                        w.add_sum(i, w.val[j] * w.cmp[j] as i64);
                                    }
                                }
                                AggFunc::Count => {
                                    for &c in &w.cmp[..len] {
                                        w.acc[i] = w.acc[i].wrapping_add(c as i64);
                                    }
                                }
                                // Planner never sends min/max down the masked path.
                                AggFunc::Min | AggFunc::Max => unreachable!("planner invariant"),
                            }
                        }
                    }
                    // Scalar aggregation has no key to mask; hybrid covers both.
                    AggStrategy::Hybrid | AggStrategy::KeyMasking => {
                        let k =
                            selvec::fill_nobranch(&w.cmp[..len], start as u32, &mut w.idx[..len]);
                        w.matched += k;
                        if counting {
                            w.ctr.rows_out += k as u64;
                        }
                        for (i, a) in aggs.iter().enumerate() {
                            match a.func {
                                AggFunc::Count => w.acc[i] = w.acc[i].wrapping_add(k as i64),
                                _ => {
                                    a.expr.eval_values(&table, start, &mut w.val[..len]);
                                    for t in 0..k {
                                        let j = w.idx[t] as usize;
                                        let v = w.val[j - start];
                                        match a.func {
                                            AggFunc::Sum => w.add_sum(i, v),
                                            AggFunc::Min => w.acc[i] = w.acc[i].min(v),
                                            AggFunc::Max => w.acc[i] = w.acc[i].max(v),
                                            AggFunc::Count => unreachable!(),
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    };
    let partials = opts
        .executor
        .run_morsels(ctx, n, opts.morsel_rows, init, body)?;
    let ops = if counting {
        let mut op = OpMetrics::named(op_name);
        for p in &partials {
            op.access.merge(&p.ctr);
        }
        op.wall_nanos = t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
        vec![op]
    } else {
        Vec::new()
    };
    // Provably-safe site: the bounds pass's value-range analysis covers
    // exactly this accumulator (`AggInput` lowering). When the input
    // column's statistics bound `|value| * rows` within i64, the site is
    // counted in `PlanCertificate::overflow_safe_sites` and this branch is
    // statically unreachable — `query_leveled` debug-asserts that.
    let (acc, _, overflow) = merge_scalar_partials(aggs, partials)?;
    if overflow {
        return Err(PlanError::Overflow(format!(
            "scalar aggregation under {}",
            strategy.name()
        )));
    }
    Ok((
        QueryResult {
            columns: aggs.iter().map(|a| a.name.clone()).collect(),
            rows: vec![acc],
            metrics: None,
            key_dict: None,
        },
        ops,
    ))
}

/// Thread-local state for group-by aggregation: a private [`AggTable`]
/// plus per-tile scratch buffers.
struct GroupAcc {
    ht: AggTable,
    /// Bytes already charged to the gauge for this worker (scratch + table).
    charged: usize,
    /// Access-pattern counters (only touched at `MetricsLevel::Counters`+).
    ctr: AccessCounters,
    cmp: Vec<u8>,
    idx: Vec<u32>,
    keys: Vec<i64>,
    masked: Vec<i64>,
    vals: Vec<Vec<i64>>,
}

impl GroupAcc {
    fn new(n_aggs: usize) -> GroupAcc {
        GroupAcc {
            ht: AggTable::with_capacity(n_aggs, 64),
            charged: 0,
            ctr: AccessCounters::default(),
            cmp: vec![0u8; TILE],
            idx: vec![0u32; TILE],
            keys: vec![0i64; TILE],
            masked: vec![0i64; TILE],
            vals: vec![vec![0i64; TILE]; n_aggs],
        }
    }

    fn scratch_bytes(n_aggs: usize) -> usize {
        TILE * (1 + 4 + 8 + 8) + n_aggs * 8 * TILE
    }
}

/// Charge hash-table growth since the last morsel boundary. `AggTable`
/// grows inside the (infallible) tile loop, so the charge is settled at
/// morsel granularity; a failed charge panics with the typed error and is
/// caught by the worker's isolation domain.
fn charge_growth(gauge: &MemGauge, charged: &mut usize, now_bytes: usize) {
    if now_bytes > *charged {
        charge_or_panic(gauge, now_bytes - *charged);
        *charged = now_bytes;
    }
}

#[allow(clippy::too_many_arguments)]
fn exec_groupby_agg(
    op_name: &str,
    table: &Arc<Table>,
    filter: Option<&Expr>,
    group_by: &str,
    aggs: &[AggSpec],
    strategy: AggStrategy,
    opts: ExecOpts<'_>,
    ctx: &Arc<ExecCtx>,
) -> Result<(QueryResult, Vec<OpMetrics>), PlanError> {
    let n = table.len();
    let n_aggs = aggs.len();
    let counting = opts.level.counting();
    let t0 = opts.level.timing().then(Instant::now);
    let init = {
        let ctx = Arc::clone(ctx);
        move || {
            let mut w = GroupAcc::new(n_aggs);
            w.charged = GroupAcc::scratch_bytes(n_aggs) + w.ht.size_bytes();
            charge_or_panic(&ctx.gauge, w.charged);
            w
        }
    };
    let body = {
        let ctx = Arc::clone(ctx);
        let table = Arc::clone(table);
        let filter = filter.cloned();
        let key_expr = Expr::col(group_by);
        let aggs: Arc<[AggSpec]> = aggs.to_vec().into();
        move |w: &mut GroupAcc, m_start: usize, m_len: usize| {
            let filter = filter.as_ref();
            if counting {
                w.ctr.morsels += 1;
                w.ctr.rows_in += m_len as u64;
                if filter.is_some() {
                    w.ctr.predicate_evals += m_len as u64;
                }
            }
            for (start, len) in tiles_in(m_start, m_len) {
                tile_mask(filter, &table, start, &mut w.cmp[..len]);
                key_expr.eval_values(&table, start, &mut w.keys[..len]);
                for (i, a) in aggs.iter().enumerate() {
                    if a.func != AggFunc::Count {
                        a.expr.eval_values(&table, start, &mut w.vals[i][..len]);
                    }
                }
                match strategy {
                    AggStrategy::Hybrid => {
                        let k =
                            selvec::fill_nobranch(&w.cmp[..len], start as u32, &mut w.idx[..len]);
                        if counting {
                            w.ctr.rows_out += k as u64;
                            w.ctr.ht_probes += k as u64;
                        }
                        for &j in &w.idx[..k] {
                            let j = j as usize - start;
                            let off = w.ht.entry(w.keys[j]);
                            let fresh = !w.ht.is_valid(off);
                            for (i, a) in aggs.iter().enumerate() {
                                let v = w.vals[i][j];
                                match a.func {
                                    // add() detects wraparound in the table's
                                    // overflow flag.
                                    AggFunc::Sum => w.ht.add(off, i, v),
                                    AggFunc::Count => w.ht.add(off, i, 1),
                                    AggFunc::Min => {
                                        let s = &mut w.ht.states_mut()[off + i];
                                        *s = if fresh { v } else { (*s).min(v) };
                                    }
                                    AggFunc::Max => {
                                        let s = &mut w.ht.states_mut()[off + i];
                                        *s = if fresh { v } else { (*s).max(v) };
                                    }
                                }
                            }
                            w.ht.set_valid(off);
                        }
                    }
                    AggStrategy::ValueMasking => {
                        if counting {
                            // The one counter the VM kernel does not already
                            // produce: qualifying-lane count (the budgeted
                            // extra mask_count per tile).
                            let m = predicate::mask_count(&w.cmp[..len]);
                            w.ctr.rows_out += m as u64;
                            w.ctr.wasted_lanes += (len - m) as u64;
                            w.ctr.ht_probes += len as u64;
                        }
                        for j in 0..len {
                            let off = w.ht.entry(w.keys[j]);
                            let m = w.cmp[j] as i64;
                            for (i, a) in aggs.iter().enumerate() {
                                let add = match a.func {
                                    AggFunc::Sum => w.vals[i][j] * m,
                                    AggFunc::Count => m,
                                    AggFunc::Min | AggFunc::Max => {
                                        unreachable!("planner invariant")
                                    }
                                };
                                w.ht.add(off, i, add);
                            }
                            w.ht.or_valid(off, w.cmp[j]);
                        }
                    }
                    AggStrategy::KeyMasking => {
                        swole_kernels::groupby::mask_keys(
                            &w.keys[..len],
                            &w.cmp[..len],
                            &mut w.masked[..len],
                        );
                        if counting {
                            let m = predicate::mask_count(&w.cmp[..len]);
                            w.ctr.rows_out += m as u64;
                            w.ctr.wasted_lanes += (len - m) as u64;
                            w.ctr.ht_probes += len as u64;
                        }
                        for j in 0..len {
                            let off = w.ht.entry(w.masked[j]);
                            for (i, a) in aggs.iter().enumerate() {
                                let add = match a.func {
                                    AggFunc::Sum => w.vals[i][j],
                                    AggFunc::Count => 1,
                                    AggFunc::Min | AggFunc::Max => {
                                        unreachable!("planner invariant")
                                    }
                                };
                                w.ht.add(off, i, add);
                            }
                            // Branch-free: the throwaway entry's flag is ignored by
                            // the result iterator, so set it unconditionally.
                            w.ht.or_valid(off, w.cmp[j]);
                        }
                    }
                }
            }
            let now_bytes = GroupAcc::scratch_bytes(n_aggs) + w.ht.size_bytes();
            charge_growth(&ctx.gauge, &mut w.charged, now_bytes);
        }
    };
    let partials = opts
        .executor
        .run_morsels(ctx, n, opts.morsel_rows, init, body)?;
    // Snapshot worker counters BEFORE the merge: merge_from probes through
    // self.entry(), which would contaminate the merged table's counters
    // with merge traffic that never touched base data.
    let mut op = counting.then(|| {
        let mut op = OpMetrics::named(op_name);
        for p in &partials {
            op.access.merge(&p.ctr);
            op.ht.merge(&p.ht.counters());
        }
        op
    });
    let ops = merge_ops(aggs);
    let mut iter = partials.into_iter();
    let mut ht = iter
        .next()
        .ok_or_else(|| PlanError::ExecutionFailed("no worker partials to merge".into()))?
        .ht;
    for p in iter {
        ht.merge_from(&p.ht, &ops);
    }
    if ht.overflow_detected() {
        // Masked strategies aggregate filtered-out tuples too (wasted work,
        // § III-A), so the wraparound may be spurious — the caller retries
        // under the data-centric strategy.
        return Err(PlanError::Overflow(format!(
            "group-by aggregation under {}",
            strategy.name()
        )));
    }
    if let Some(op) = op.as_mut() {
        // Per-worker insert counts depend on the morsel partition (several
        // workers insert the same key); the merged table's final key count
        // is the deterministic figure the analyze output reports.
        op.ht.inserts = ht.len() as u64;
        op.wall_nanos = t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
    }
    let key_dict = table
        .column(group_by)
        .and_then(|c| c.as_dict())
        .map(|d| Arc::new(d.dictionary().to_vec()));
    Ok((
        rows_from_table(group_by, aggs, &ht, key_dict),
        op.into_iter().collect(),
    ))
}

fn rows_from_table(
    key_name: &str,
    aggs: &[AggSpec],
    ht: &AggTable,
    key_dict: Option<Arc<Vec<String>>>,
) -> QueryResult {
    let mut rows: Vec<Vec<i64>> = ht
        .iter()
        .filter(|&(_, _, valid)| valid)
        .map(|(key, state, _)| {
            let mut row = Vec::with_capacity(1 + aggs.len());
            row.push(key);
            row.extend_from_slice(state);
            row
        })
        .collect();
    rows.sort_unstable();
    let mut columns = vec![key_name.to_string()];
    columns.extend(aggs.iter().map(|a| a.name.clone()));
    QueryResult {
        columns,
        rows,
        metrics: None,
        key_dict,
    }
}

/// Evaluate the build-side predicate mask over the whole build table on
/// morsel workers. Each worker produces `(offset, bytes)` segments for the
/// morsels it claimed; the segments form an exact disjoint cover of the
/// table, so stitching them back is byte-identical to a sequential
/// evaluation regardless of which worker claimed what.
fn build_mask(
    build: &Arc<Table>,
    build_filter: Option<&Expr>,
    opts: ExecOpts<'_>,
    ctx: &Arc<ExecCtx>,
) -> Result<Vec<u8>, PlanError> {
    let n = build.len();
    ctx.gauge.try_charge(n)?;
    let body = {
        let build = Arc::clone(build);
        let filter = build_filter.cloned();
        move |segs: &mut Vec<(usize, Vec<u8>)>, m_start: usize, m_len: usize| {
            let mut seg = vec![0u8; m_len];
            for (start, len) in tiles_in(m_start, m_len) {
                tile_mask(
                    filter.as_ref(),
                    &build,
                    start,
                    &mut seg[start - m_start..start - m_start + len],
                );
            }
            segs.push((m_start, seg));
        }
    };
    let partials = opts
        .executor
        .run_morsels(ctx, n, opts.morsel_rows, Vec::new, body)?;
    let mut mask = vec![0u8; n];
    for (start, seg) in partials.into_iter().flatten() {
        mask[start..start + seg.len()].copy_from_slice(&seg);
    }
    Ok(mask)
}

#[allow(clippy::too_many_arguments)]
fn exec_semijoin_agg(
    names: SemiJoinNames<'_>,
    probe: &Arc<Table>,
    probe_filter: Option<&Expr>,
    build: &Arc<Table>,
    build_filter: Option<&Expr>,
    fk: &FkSource,
    aggs: &[AggSpec],
    strategy: SemiJoinStrategy,
    probe_masked: bool,
    opts: ExecOpts<'_>,
    ctx: &Arc<ExecCtx>,
) -> Result<(QueryResult, Vec<OpMetrics>), PlanError> {
    let counting = opts.level.counting();
    // Build phase. Each pullup temporary (mask bytes, key-set storage,
    // bitmap words) is charged to the gauge before it is materialized.
    let build_n = build.len();
    let build_t0 = opts.level.timing().then(Instant::now);
    let build_cmp = build_mask(build, build_filter, opts, ctx)?;
    let bitmap_bytes = build_n.div_ceil(64) * 8;
    let side = match strategy {
        SemiJoinStrategy::Hash => {
            let mut set = KeySet::with_capacity(build_n / 2 + 4);
            let before = set.size_bytes();
            ctx.gauge.try_charge(before)?;
            for (pos, &c) in build_cmp.iter().enumerate() {
                if c != 0 {
                    set.insert(pos as i64);
                }
            }
            if set.size_bytes() > before {
                ctx.gauge.try_charge(set.size_bytes() - before)?;
            }
            BuildSide::Set(set)
        }
        SemiJoinStrategy::PositionalBitmap(BitmapBuild::Unconditional) => {
            ctx.gauge.try_charge(bitmap_bytes)?;
            BuildSide::Bitmap(PositionalBitmap::from_predicate_bytes_parallel(
                &build_cmp,
                opts.threads,
            ))
        }
        SemiJoinStrategy::PositionalBitmap(BitmapBuild::SelectionVector) => {
            let mut sel = Vec::new();
            for (start, len) in tiles(build_n) {
                selvec::append_nobranch(&build_cmp[start..start + len], start as u32, &mut sel);
            }
            ctx.gauge.try_charge(sel.len() * 4 + bitmap_bytes)?;
            BuildSide::Bitmap(PositionalBitmap::from_selection(build_n, &sel))
        }
    };
    let build_op = counting.then(|| {
        let mut op = OpMetrics::named(names.build);
        op.access.rows_in = build_n as u64;
        if build_filter.is_some() {
            op.access.predicate_evals = build_n as u64;
        }
        match &side {
            BuildSide::Set(set) => {
                // Build positions are distinct, so the set's key count is
                // exactly the qualifying build rows.
                op.access.rows_out = set.len() as u64;
                op.ht.inserts = set.len() as u64;
                op.ht.bytes_allocated = set.size_bytes() as u64;
            }
            BuildSide::Bitmap(bm) => {
                op.access.rows_out = bm.count_ones() as u64;
                op.bitmap_bits_set = bm.count_ones() as u64;
                op.bitmap_words = bm.word_count() as u64;
            }
        }
        op.wall_nanos = build_t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
        op
    });
    // Probe phase: scalar accumulation on morsel workers sharing the
    // read-only build side.
    let n = probe.len();
    let probe_t0 = opts.level.timing().then(Instant::now);
    let aggs_arc: Arc<[AggSpec]> = aggs.to_vec().into();
    let init = {
        let ctx = Arc::clone(ctx);
        let aggs = Arc::clone(&aggs_arc);
        move || {
            charge_or_panic(&ctx.gauge, ScalarAcc::scratch_bytes(aggs.len()));
            ScalarAcc::new(&aggs)
        }
    };
    let side = Arc::new(side);
    let body = {
        let probe = Arc::clone(probe);
        let probe_filter = probe_filter.cloned();
        let aggs = Arc::clone(&aggs_arc);
        let side = Arc::clone(&side);
        let fk_src = fk.clone();
        move |w: &mut ScalarAcc, m_start: usize, m_len: usize| {
            let probe_filter = probe_filter.as_ref();
            let fk = fk_src.slice();
            if counting {
                w.ctr.morsels += 1;
                w.ctr.rows_in += m_len as u64;
                if probe_filter.is_some() {
                    w.ctr.predicate_evals += m_len as u64;
                }
            }
            for (start, len) in tiles_in(m_start, m_len) {
                tile_mask(probe_filter, &probe, start, &mut w.cmp[..len]);
                // Fold the join bit into the mask, per build structure.
                match (&*side, probe_masked) {
                    (BuildSide::Bitmap(bm), true) => {
                        for j in 0..len {
                            w.cmp[j] &= bm.get_bit(fk[start + j] as usize) as u8;
                        }
                        let m = predicate::mask_count(&w.cmp[..len]);
                        w.matched += m;
                        if counting {
                            // Every lane probes the bitmap and is
                            // aggregated; non-matching lanes are wasted.
                            w.ctr.ht_probes += len as u64;
                            w.ctr.rows_out += m as u64;
                            w.ctr.wasted_lanes += (len - m) as u64;
                        }
                        for (i, a) in aggs.iter().enumerate() {
                            match a.func {
                                AggFunc::Sum => {
                                    a.expr.eval_values(&probe, start, &mut w.val[..len]);
                                    for j in 0..len {
                                        // cmp is 0/1, so the product cannot overflow.
                                        w.add_sum(i, w.val[j] * w.cmp[j] as i64);
                                    }
                                }
                                AggFunc::Count => {
                                    for &c in &w.cmp[..len] {
                                        w.acc[i] = w.acc[i].wrapping_add(c as i64);
                                    }
                                }
                                _ => unreachable!("planner invariant"),
                            }
                        }
                    }
                    (side, _) => {
                        let k =
                            selvec::fill_nobranch(&w.cmp[..len], start as u32, &mut w.idx[..len]);
                        if counting {
                            // Only filter-qualifying rows reach the probe;
                            // join-missed ones still aggregate a zero.
                            w.ctr.ht_probes += k as u64;
                        }
                        for (i, a) in aggs.iter().enumerate() {
                            if a.func != AggFunc::Count {
                                a.expr.eval_values(&probe, start, &mut w.val[..len]);
                            }
                            for t in 0..k {
                                let j = w.idx[t] as usize;
                                let pos = fk[j] as usize;
                                let hit = match side {
                                    BuildSide::Set(set) => set.contains(pos as i64) as i64,
                                    BuildSide::Bitmap(bm) => bm.get_bit(pos) as i64,
                                };
                                match a.func {
                                    // hit is 0/1, so the product cannot overflow.
                                    AggFunc::Sum => w.add_sum(i, w.val[j - start] * hit),
                                    AggFunc::Count => w.acc[i] = w.acc[i].wrapping_add(hit),
                                    _ => unreachable!("planner invariant"),
                                }
                                if i == 0 {
                                    w.matched += hit as usize;
                                    if counting {
                                        w.ctr.rows_out += hit as u64;
                                        w.ctr.wasted_lanes += (1 - hit) as u64;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    };
    let partials = opts
        .executor
        .run_morsels(ctx, n, opts.morsel_rows, init, body)?;
    let mut op_list = Vec::new();
    if let Some(build_op) = build_op {
        let mut probe_op = OpMetrics::named(names.probe);
        for p in &partials {
            probe_op.access.merge(&p.ctr);
        }
        probe_op.wall_nanos = probe_t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
        op_list.push(build_op);
        op_list.push(probe_op);
    }
    let (acc, _, overflow) = merge_scalar_partials(aggs, partials)?;
    if overflow {
        return Err(PlanError::Overflow("semijoin aggregation".into()));
    }
    Ok((
        QueryResult {
            columns: aggs.iter().map(|a| a.name.clone()).collect(),
            rows: vec![acc],
            metrics: None,
            key_dict: None,
        },
        op_list,
    ))
}

/// Qualifying mask of a join edge's parent: the parent's own filter ANDed
/// with every nested child edge's mask, folded through the child's FK
/// gather. Pushes one `multijoin-build(<parent>)` op for this edge, then
/// the nested edges' ops in order.
fn edge_parent_mask(
    e: &BoundEdge,
    opts: ExecOpts<'_>,
    ctx: &Arc<ExecCtx>,
    ops: &mut Vec<OpMetrics>,
) -> Result<Vec<u8>, PlanError> {
    let t0 = opts.level.timing().then(Instant::now);
    let mut mask = build_mask(&e.parent_t, e.parent_filter.as_ref(), opts, ctx)?;
    let mut nested_ops = Vec::new();
    for c in &e.children {
        let child_mask = edge_parent_mask(c, opts, ctx, &mut nested_ops)?;
        let fk = c.fk.slice();
        // The fold runs over the parent (dimension) table, which the cost
        // model already priced into the edge's build cost.
        for (i, m) in mask.iter_mut().enumerate() {
            *m &= child_mask[fk[i] as usize];
        }
    }
    if opts.level.counting() {
        let mut op = OpMetrics::named(format!("multijoin-build({})", e.parent));
        op.access.rows_in = e.parent_t.len() as u64;
        if e.parent_filter.is_some() {
            op.access.predicate_evals = e.parent_t.len() as u64;
        }
        op.access.rows_out = predicate::mask_count(&mask) as u64;
        op.wall_nanos = t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
        ops.push(op);
        ops.append(&mut nested_ops);
    }
    Ok(mask)
}

/// Materialize one direct edge's membership structure from its (fully
/// chain-restricted) parent mask, charging the gauge exactly like the
/// two-table semijoin build. Enriches the edge's own build op with the
/// structure's footprint.
fn build_edge_side(
    e: &BoundEdge,
    opts: ExecOpts<'_>,
    ctx: &Arc<ExecCtx>,
    ops: &mut Vec<OpMetrics>,
) -> Result<BuildSide, PlanError> {
    let self_op_at = ops.len();
    let mask = edge_parent_mask(e, opts, ctx, ops)?;
    let n = e.parent_t.len();
    let bitmap_bytes = n.div_ceil(64) * 8;
    let side = match e.strategy {
        SemiJoinStrategy::Hash => {
            let mut set = KeySet::with_capacity(n / 2 + 4);
            let before = set.size_bytes();
            ctx.gauge.try_charge(before)?;
            for (pos, &c) in mask.iter().enumerate() {
                if c != 0 {
                    set.insert(pos as i64);
                }
            }
            if set.size_bytes() > before {
                ctx.gauge.try_charge(set.size_bytes() - before)?;
            }
            BuildSide::Set(set)
        }
        SemiJoinStrategy::PositionalBitmap(BitmapBuild::Unconditional) => {
            ctx.gauge.try_charge(bitmap_bytes)?;
            BuildSide::Bitmap(PositionalBitmap::from_predicate_bytes_parallel(
                &mask,
                opts.threads,
            ))
        }
        SemiJoinStrategy::PositionalBitmap(BitmapBuild::SelectionVector) => {
            let mut sel = Vec::new();
            for (start, len) in tiles(n) {
                selvec::append_nobranch(&mask[start..start + len], start as u32, &mut sel);
            }
            ctx.gauge.try_charge(sel.len() * 4 + bitmap_bytes)?;
            BuildSide::Bitmap(PositionalBitmap::from_selection(n, &sel))
        }
    };
    if let Some(op) = ops.get_mut(self_op_at) {
        match &side {
            BuildSide::Set(set) => {
                op.ht.inserts = set.len() as u64;
                op.ht.bytes_allocated = set.size_bytes() as u64;
            }
            BuildSide::Bitmap(bm) => {
                op.bitmap_bits_set = bm.count_ones() as u64;
                op.bitmap_words = bm.word_count() as u64;
            }
        }
    }
    Ok(side)
}

/// Thread-local state for multi-way join probing: the scalar accumulator
/// plus per-edge survivor counters for the `multijoin-probe(<parent>)` ops.
struct MultiJoinAcc {
    s: ScalarAcc,
    edge_in: Vec<u64>,
    edge_out: Vec<u64>,
}

/// Execute a multi-way FK join + scalar aggregation: build one membership
/// structure per direct edge (chains folded into the parent mask first),
/// then narrow each fact tile's selection vector edge-by-edge in the
/// planned probe order and aggregate the survivors.
///
/// The surviving row *set* per tile is order-independent (each edge is a
/// pure membership filter), so results are bit-identical across probe
/// orders and thread counts.
fn exec_multijoin_agg(
    fact_name: &str,
    fact: &Arc<Table>,
    fact_filter: Option<&Expr>,
    edges: &[BoundEdge],
    aggs: &[AggSpec],
    opts: ExecOpts<'_>,
    ctx: &Arc<ExecCtx>,
) -> Result<(QueryResult, Vec<OpMetrics>), PlanError> {
    let counting = opts.level.counting();
    let n_edges = edges.len();
    let mut op_list = Vec::new();
    let mut sides = Vec::with_capacity(n_edges);
    for e in edges {
        sides.push(build_edge_side(e, opts, ctx, &mut op_list)?);
    }
    let sides = Arc::new(sides);
    let n = fact.len();
    let probe_t0 = opts.level.timing().then(Instant::now);
    let aggs_arc: Arc<[AggSpec]> = aggs.to_vec().into();
    let init = {
        let ctx = Arc::clone(ctx);
        let aggs = Arc::clone(&aggs_arc);
        move || {
            charge_or_panic(
                &ctx.gauge,
                ScalarAcc::scratch_bytes(aggs.len()) + n_edges * 16,
            );
            MultiJoinAcc {
                s: ScalarAcc::new(&aggs),
                edge_in: vec![0u64; n_edges],
                edge_out: vec![0u64; n_edges],
            }
        }
    };
    let body = {
        let fact = Arc::clone(fact);
        let fact_filter = fact_filter.cloned();
        let aggs = Arc::clone(&aggs_arc);
        let sides = Arc::clone(&sides);
        let fks: Vec<FkSource> = edges.iter().map(|e| e.fk.clone()).collect();
        move |w: &mut MultiJoinAcc, m_start: usize, m_len: usize| {
            let fact_filter = fact_filter.as_ref();
            if counting {
                w.s.ctr.morsels += 1;
                w.s.ctr.rows_in += m_len as u64;
                if fact_filter.is_some() {
                    w.s.ctr.predicate_evals += m_len as u64;
                }
            }
            for (start, len) in tiles_in(m_start, m_len) {
                tile_mask(fact_filter, &fact, start, &mut w.s.cmp[..len]);
                let mut k =
                    selvec::fill_nobranch(&w.s.cmp[..len], start as u32, &mut w.s.idx[..len]);
                let filtered = k;
                for (ei, side) in sides.iter().enumerate() {
                    if k == 0 {
                        // Later edges see zero rows; skipping their zero
                        // counter increments leaves identical totals.
                        break;
                    }
                    if counting {
                        w.edge_in[ei] += k as u64;
                        w.s.ctr.ht_probes += k as u64;
                    }
                    let fk = fks[ei].slice();
                    let mut kk = 0usize;
                    // In-place compaction: kk trails t, so reads never see
                    // an overwritten slot.
                    for t in 0..k {
                        let j = w.s.idx[t] as usize;
                        let pos = fk[j] as usize;
                        let hit = match side {
                            BuildSide::Set(set) => set.contains(pos as i64) as usize,
                            BuildSide::Bitmap(bm) => bm.get_bit(pos) as usize,
                        };
                        w.s.idx[kk] = w.s.idx[t];
                        kk += hit;
                    }
                    if counting {
                        w.edge_out[ei] += kk as u64;
                    }
                    k = kk;
                }
                if counting {
                    w.s.ctr.rows_out += k as u64;
                    w.s.ctr.wasted_lanes += (filtered - k) as u64;
                }
                w.s.matched += k;
                for (i, a) in aggs.iter().enumerate() {
                    if a.func != AggFunc::Count {
                        a.expr.eval_values(&fact, start, &mut w.s.val[..len]);
                    }
                    for t in 0..k {
                        let j = w.s.idx[t] as usize;
                        match a.func {
                            AggFunc::Sum => w.s.add_sum(i, w.s.val[j - start]),
                            AggFunc::Count => w.s.acc[i] = w.s.acc[i].wrapping_add(1),
                            // Survivors are fully narrowed before
                            // accumulation, so min/max see only real
                            // qualifying rows.
                            AggFunc::Min => {
                                let v = w.s.val[j - start];
                                if v < w.s.acc[i] {
                                    w.s.acc[i] = v;
                                }
                            }
                            AggFunc::Max => {
                                let v = w.s.val[j - start];
                                if v > w.s.acc[i] {
                                    w.s.acc[i] = v;
                                }
                            }
                        }
                    }
                }
            }
        }
    };
    let partials = opts
        .executor
        .run_morsels(ctx, n, opts.morsel_rows, init, body)?;
    if counting {
        let probe_nanos = probe_t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
        for (ei, e) in edges.iter().enumerate() {
            let mut op = OpMetrics::named(format!("multijoin-probe({})", e.parent));
            for p in &partials {
                op.access.rows_in += p.edge_in[ei];
                op.access.rows_out += p.edge_out[ei];
            }
            op.ht.probes = op.access.rows_in;
            op.wall_nanos = probe_nanos;
            op_list.push(op);
        }
        let mut agg_op = OpMetrics::named(format!("multijoin-agg({fact_name})"));
        for p in &partials {
            agg_op.access.merge(&p.s.ctr);
        }
        agg_op.wall_nanos = probe_nanos;
        op_list.push(agg_op);
    }
    let (acc, _, overflow) =
        merge_scalar_partials(aggs, partials.into_iter().map(|p| p.s).collect())?;
    if overflow {
        return Err(PlanError::Overflow("multi-way join aggregation".into()));
    }
    Ok((
        QueryResult {
            columns: aggs.iter().map(|a| a.name.clone()).collect(),
            rows: vec![acc],
            metrics: None,
            key_dict: None,
        },
        op_list,
    ))
}

/// Thread-local state for groupjoin execution.
struct GroupJoinAcc {
    ht: AggTable,
    /// Bytes already charged to the gauge for this worker.
    charged: usize,
    /// Access-pattern counters (only touched at `MetricsLevel::Counters`+).
    ctr: AccessCounters,
    vals: Vec<Vec<i64>>,
}

impl GroupJoinAcc {
    fn new(n_aggs: usize, capacity: usize) -> GroupJoinAcc {
        GroupJoinAcc {
            ht: AggTable::with_capacity(n_aggs, capacity),
            charged: 0,
            ctr: AccessCounters::default(),
            vals: vec![vec![0i64; TILE]; n_aggs],
        }
    }

    fn scratch_bytes(n_aggs: usize) -> usize {
        n_aggs * 8 * TILE
    }
}

#[allow(clippy::too_many_arguments)]
fn exec_groupjoin_agg(
    names: SemiJoinNames<'_>,
    probe: &Arc<Table>,
    build: &Arc<Table>,
    build_filter: Option<&Expr>,
    fk: &FkSource,
    fk_col: &str,
    aggs: &[AggSpec],
    strategy: GroupJoinStrategy,
    opts: ExecOpts<'_>,
    ctx: &Arc<ExecCtx>,
) -> Result<(QueryResult, Vec<OpMetrics>), PlanError> {
    let n_aggs = aggs.len();
    let counting = opts.level.counting();
    let build_n = build.len();
    let build_t0 = opts.level.timing().then(Instant::now);
    let build_cmp = Arc::new(build_mask(build, build_filter, opts, ctx)?);
    let build_op = counting.then(|| {
        let mut op = OpMetrics::named(names.build);
        op.access.rows_in = build_n as u64;
        if build_filter.is_some() {
            op.access.predicate_evals = build_n as u64;
        }
        op.access.rows_out = predicate::mask_count(&build_cmp) as u64;
        op.wall_nanos = build_t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
        op
    });
    let probe_t0 = opts.level.timing().then(Instant::now);
    let capacity = (build_n / 2).max(16);
    let init = {
        let ctx = Arc::clone(ctx);
        move || {
            let mut w = GroupJoinAcc::new(n_aggs, capacity);
            w.charged = GroupJoinAcc::scratch_bytes(n_aggs) + w.ht.size_bytes();
            charge_or_panic(&ctx.gauge, w.charged);
            w
        }
    };
    let body = {
        let ctx = Arc::clone(ctx);
        let probe = Arc::clone(probe);
        let aggs: Arc<[AggSpec]> = aggs.to_vec().into();
        let build_cmp = Arc::clone(&build_cmp);
        let fk_src = fk.clone();
        move |w: &mut GroupJoinAcc, m_start: usize, m_len: usize| {
            let fk = fk_src.slice();
            if counting {
                w.ctr.morsels += 1;
                w.ctr.rows_in += m_len as u64;
            }
            for (start, len) in tiles_in(m_start, m_len) {
                for (i, a) in aggs.iter().enumerate() {
                    if a.func != AggFunc::Count {
                        a.expr.eval_values(&probe, start, &mut w.vals[i][..len]);
                    }
                }
                match strategy {
                    GroupJoinStrategy::GroupJoin => {
                        for j in 0..len {
                            let pos = fk[start + j] as usize;
                            // Membership via the build mask: equivalent to
                            // probing a table pre-populated with qualifying
                            // keys, but sharable read-only across workers.
                            if build_cmp[pos] != 0 {
                                if counting {
                                    w.ctr.rows_out += 1;
                                    w.ctr.ht_probes += 1;
                                }
                                let off = w.ht.entry(pos as i64);
                                for (i, a) in aggs.iter().enumerate() {
                                    let add = match a.func {
                                        AggFunc::Sum => w.vals[i][j],
                                        AggFunc::Count => 1,
                                        _ => unreachable!("planner invariant"),
                                    };
                                    w.ht.add(off, i, add);
                                }
                                w.ht.set_valid(off);
                            }
                        }
                    }
                    GroupJoinStrategy::EagerAggregation => {
                        for j in 0..len {
                            let pos = fk[start + j] as usize;
                            if counting {
                                // Eager aggregation touches every probe row
                                // (§ III-E); rows whose parent fails the build
                                // filter are aggregated then deleted — wasted.
                                let q = (build_cmp[pos] != 0) as u64;
                                w.ctr.rows_out += q;
                                w.ctr.wasted_lanes += 1 - q;
                                w.ctr.ht_probes += 1;
                            }
                            let off = w.ht.entry(fk[start + j] as i64);
                            for (i, a) in aggs.iter().enumerate() {
                                let add = match a.func {
                                    AggFunc::Sum => w.vals[i][j],
                                    AggFunc::Count => 1,
                                    _ => unreachable!("planner invariant"),
                                };
                                w.ht.add(off, i, add);
                            }
                            w.ht.set_valid(off);
                        }
                    }
                }
            }
            let now_bytes = GroupJoinAcc::scratch_bytes(n_aggs) + w.ht.size_bytes();
            charge_growth(&ctx.gauge, &mut w.charged, now_bytes);
        }
    };
    let partials = opts
        .executor
        .run_morsels(ctx, probe.len(), opts.morsel_rows, init, body)?;
    // Snapshot worker counters BEFORE the merge (merge_from probes through
    // self.entry(), which would pollute the counters with merge traffic).
    let mut probe_op = counting.then(|| {
        let mut op = OpMetrics::named(names.probe);
        for p in &partials {
            op.access.merge(&p.ctr);
            op.ht.merge(&p.ht.counters());
        }
        op
    });
    let ops = merge_ops(aggs);
    let mut iter = partials.into_iter();
    let mut ht = iter
        .next()
        .ok_or_else(|| PlanError::ExecutionFailed("no worker partials to merge".into()))?
        .ht;
    for p in iter {
        ht.merge_from(&p.ht, &ops);
    }
    if strategy == GroupJoinStrategy::EagerAggregation {
        // Inverted predicate deletes non-qualifying keys (§ III-E) — after
        // the merge, so the reconciliation happens exactly once.
        for (pos, &c) in build_cmp.iter().enumerate() {
            if c == 0 {
                ht.delete(pos as i64);
            }
        }
    }
    if ht.overflow_detected() {
        // Eager aggregation sums non-qualifying groups before deleting
        // them, so the wraparound may be spurious — retried data-centric.
        return Err(PlanError::Overflow("groupjoin aggregation".into()));
    }
    let mut op_list = Vec::new();
    if let (Some(build_op), Some(probe_op)) = (build_op, probe_op.take()) {
        let mut probe_op = probe_op;
        // Post-deletion key count: the deterministic number of surviving
        // groups, regardless of how workers partitioned the probe side.
        probe_op.ht.inserts = ht.len() as u64;
        probe_op.wall_nanos = probe_t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
        op_list.push(build_op);
        op_list.push(probe_op);
    }
    Ok((rows_from_table(fk_col, aggs, &ht, None), op_list))
}

/// Thread-local state for the window operator's parallel filter phase:
/// per-morsel qualifying-row segments, stitched by offset afterwards.
struct WinScan {
    segs: Vec<(usize, Vec<u32>)>,
    ctr: AccessCounters,
    cmp: Vec<u8>,
}

/// Evaluate `expr` for the (ascending) qualifying row ids, tile at a time,
/// reusing the engine's tile evaluation so dictionary codes, decimals and
/// CASE expressions behave exactly as on the aggregate paths.
fn gather_expr(table: &Arc<Table>, expr: &Expr, row_ids: &[u32]) -> Vec<i64> {
    let mut out = Vec::with_capacity(row_ids.len());
    let mut buf = vec![0i64; TILE];
    let mut i = 0;
    for (start, len) in tiles(table.len()) {
        if i >= row_ids.len() {
            break;
        }
        let end = start + len;
        if (row_ids[i] as usize) >= end {
            continue;
        }
        expr.eval_values(table, start, &mut buf[..len]);
        while i < row_ids.len() && (row_ids[i] as usize) < end {
            out.push(buf[row_ids[i] as usize - start]);
            i += 1;
        }
    }
    out
}

/// True when two qualifying rows are window-order peers (equal on every
/// order key; direction is irrelevant for equality).
fn order_peers(ord: &[Vec<i64>], a: usize, b: usize) -> bool {
    ord.iter().all(|k| k[a] == k[b])
}

/// Execute a window pipeline: parallel filter to a selection vector, then
/// a deterministic sequential sort + frame pass. Frame sums use wrapping
/// arithmetic, and the sequential frame scan's subtract-on-evict is the
/// exact inverse of its add (mod 2^64), so both strategies produce
/// bit-identical outputs at any thread count.
#[allow(clippy::too_many_arguments)]
fn exec_window(
    op_name: &str,
    table: &Arc<Table>,
    filter: Option<&Expr>,
    partition_by: Option<&str>,
    order_by: &[SortKey],
    frame: FrameSpec,
    funcs: &[WindowFnSpec],
    select: &[String],
    strategy: WindowStrategy,
    opts: ExecOpts<'_>,
    ctx: &Arc<ExecCtx>,
) -> Result<(QueryResult, Vec<OpMetrics>), PlanError> {
    let n = table.len();
    let counting = opts.level.counting();
    let t0 = opts.level.timing().then(Instant::now);
    // Phase 1: qualifying-row selection vector, produced on morsel workers.
    // Segments disjointly cover the table, so stitching them by offset is
    // identical to a sequential scan regardless of who claimed what.
    ctx.gauge.try_charge(n.saturating_mul(4))?;
    let init = {
        let ctx = Arc::clone(ctx);
        move || {
            charge_or_panic(&ctx.gauge, TILE);
            WinScan {
                segs: Vec::new(),
                ctr: AccessCounters::default(),
                cmp: vec![0u8; TILE],
            }
        }
    };
    let body = {
        let table = Arc::clone(table);
        let filter = filter.cloned();
        move |w: &mut WinScan, m_start: usize, m_len: usize| {
            let filter = filter.as_ref();
            if counting {
                w.ctr.morsels += 1;
                w.ctr.rows_in += m_len as u64;
                if filter.is_some() {
                    w.ctr.predicate_evals += m_len as u64;
                }
            }
            let mut seg = Vec::new();
            for (start, len) in tiles_in(m_start, m_len) {
                tile_mask(filter, &table, start, &mut w.cmp[..len]);
                selvec::append_nobranch(&w.cmp[..len], start as u32, &mut seg);
            }
            if counting {
                w.ctr.rows_out += seg.len() as u64;
            }
            w.segs.push((m_start, seg));
        }
    };
    let partials = opts
        .executor
        .run_morsels(ctx, n, opts.morsel_rows, init, body)?;
    let mut op = counting.then(|| OpMetrics::named(op_name));
    let mut segs = Vec::new();
    for p in partials {
        if let Some(op) = op.as_mut() {
            op.access.merge(&p.ctr);
        }
        segs.extend(p.segs);
    }
    segs.sort_unstable_by_key(|(start, _)| *start);
    let row_ids: Vec<u32> = segs.into_iter().flat_map(|(_, seg)| seg).collect();
    let m = row_ids.len();

    // Phase 2: materialize partition key, order keys, projected columns and
    // function inputs for the qualifying rows (charged up front).
    let n_mat = 1 + order_by.len() + select.len() + funcs.len();
    ctx.gauge
        .try_charge(m.saturating_mul(8).saturating_mul(n_mat))?;
    let part: Vec<i64> = match partition_by {
        Some(p) => gather_expr(table, &Expr::col(p), &row_ids),
        None => vec![0; m],
    };
    let ord: Vec<Vec<i64>> = order_by
        .iter()
        .map(|k| gather_expr(table, &Expr::col(&k.column), &row_ids))
        .collect();
    let sel_cols: Vec<Vec<i64>> = select
        .iter()
        .map(|c| gather_expr(table, &Expr::col(c), &row_ids))
        .collect();
    let inputs: Vec<Vec<i64>> = funcs
        .iter()
        .map(|f| match &f.expr {
            Some(e) => gather_expr(table, e, &row_ids),
            None => vec![1; m],
        })
        .collect();

    // Phase 3: the window order — (partition, order keys, row id). The
    // trailing row id breaks every tie, so the permutation is unique and
    // the comparator total: `sort_unstable` is deterministic here.
    let mut perm: Vec<u32> = (0..m as u32).collect();
    perm.sort_unstable_by(|&ai, &bi| {
        let (a, b) = (ai as usize, bi as usize);
        let mut o = part[a].cmp(&part[b]);
        if o != std::cmp::Ordering::Equal {
            return o;
        }
        for (k, key) in order_by.iter().zip(&ord) {
            o = key[a].cmp(&key[b]);
            if k.desc {
                o = o.reverse();
            }
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        row_ids[a].cmp(&row_ids[b])
    });

    // Phase 4: frame computation per partition run, in window order.
    // `extra_touches` counts frame-state reads beyond one sequential pass —
    // the window analogue of wasted lanes (re-evaluation re-reads, and the
    // sliding frame's evictions), reported deterministically.
    let mut outputs: Vec<Vec<i64>> = funcs.iter().map(|_| vec![0i64; m]).collect();
    let mut extra_touches: u64 = 0;
    let mut run_start = 0usize;
    while run_start < m {
        let mut run_end = run_start + 1;
        while run_end < m && part[perm[run_end] as usize] == part[perm[run_start] as usize] {
            run_end += 1;
        }
        let len = run_end - run_start;
        for (fi, f) in funcs.iter().enumerate() {
            let val = |i: usize| -> i64 {
                match f.func {
                    WindowFunc::Sum => inputs[fi][perm[run_start + i] as usize],
                    _ => 1,
                }
            };
            match f.func {
                WindowFunc::RowNumber => {
                    for i in 0..len {
                        outputs[fi][run_start + i] = (i + 1) as i64;
                    }
                }
                WindowFunc::Rank => {
                    let mut rank = 1i64;
                    for i in 0..len {
                        if i > 0
                            && !order_peers(
                                &ord,
                                perm[run_start + i - 1] as usize,
                                perm[run_start + i] as usize,
                            )
                        {
                            rank = (i + 1) as i64;
                        }
                        outputs[fi][run_start + i] = rank;
                    }
                }
                WindowFunc::Sum | WindowFunc::Count => match strategy {
                    WindowStrategy::SequentialFrameScan => match frame {
                        FrameSpec::WholePartition => {
                            let mut total = 0i64;
                            for i in 0..len {
                                total = total.wrapping_add(val(i));
                            }
                            for i in 0..len {
                                outputs[fi][run_start + i] = total;
                            }
                        }
                        FrameSpec::UnboundedPreceding => {
                            let mut acc = 0i64;
                            for i in 0..len {
                                acc = acc.wrapping_add(val(i));
                                outputs[fi][run_start + i] = acc;
                            }
                        }
                        FrameSpec::Preceding(k) => {
                            let mut acc = 0i64;
                            for i in 0..len {
                                acc = acc.wrapping_add(val(i));
                                if i > k {
                                    // Exact inverse of the add (mod 2^64):
                                    // evicting restores the k-row frame sum
                                    // bit-for-bit.
                                    acc = acc.wrapping_sub(val(i - k - 1));
                                    extra_touches += 1;
                                }
                                outputs[fi][run_start + i] = acc;
                            }
                        }
                    },
                    WindowStrategy::ConditionalReeval => {
                        for i in 0..len {
                            let lo = match frame {
                                FrameSpec::WholePartition => 0,
                                FrameSpec::UnboundedPreceding => 0,
                                FrameSpec::Preceding(k) => i.saturating_sub(k),
                            };
                            let hi = match frame {
                                FrameSpec::WholePartition => len - 1,
                                _ => i,
                            };
                            let mut acc = 0i64;
                            for j in lo..=hi {
                                acc = acc.wrapping_add(val(j));
                            }
                            extra_touches += (hi - lo) as u64;
                            outputs[fi][run_start + i] = acc;
                        }
                    }
                },
            }
        }
        run_start = run_end;
    }

    // Phase 5: assemble rows in window order (itself deterministic).
    let mut rows = Vec::with_capacity(m);
    for i in 0..m {
        let src = perm[i] as usize;
        let mut row = Vec::with_capacity(select.len() + funcs.len());
        for c in &sel_cols {
            row.push(c[src]);
        }
        for out in &outputs {
            row.push(out[i]);
        }
        rows.push(row);
    }
    let mut columns: Vec<String> = select.to_vec();
    columns.extend(funcs.iter().map(|f| f.name.clone()));
    let key_dict = select
        .first()
        .and_then(|c| table.column(c))
        .and_then(|c| c.as_dict())
        .map(|d| Arc::new(d.dictionary().to_vec()));
    if let Some(op) = op.as_mut() {
        op.access.wasted_lanes += extra_touches;
        op.wall_nanos = t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
    }
    Ok((
        QueryResult {
            columns,
            rows,
            metrics: None,
            key_dict,
        },
        op.into_iter().collect(),
    ))
}

#[cfg(test)]
mod bounds_drift_tests {
    //! Drift guard between the bounds pass's sizing formulas
    //! ([`swole_verify::bounds::sizing`]) and the engine's actual charge
    //! sites. The certificate's soundness argument (DESIGN.md §15) rests on
    //! the formulas *dominating* what execution charges — if someone
    //! resizes a scratch buffer or changes a hash-table growth policy
    //! without touching the verifier, these tests fail before the
    //! end-to-end soundness harness does.

    use super::{GroupAcc, GroupJoinAcc, ScalarAcc};
    use swole_ht::{AggTable, KeySet};
    use swole_kernels::TILE;
    use swole_verify::bounds::sizing;

    #[test]
    fn scratch_formulas_match_engine_accumulators() {
        for n_aggs in 1..=8usize {
            assert_eq!(
                sizing::scalar_scratch(TILE as u64, n_aggs as u64),
                ScalarAcc::scratch_bytes(n_aggs) as u64,
                "scalar scratch drifted at n_aggs={n_aggs}"
            );
            assert_eq!(
                sizing::group_scratch(TILE as u64, n_aggs as u64),
                GroupAcc::scratch_bytes(n_aggs) as u64,
                "group scratch drifted at n_aggs={n_aggs}"
            );
            assert_eq!(
                sizing::groupjoin_scratch(TILE as u64, n_aggs as u64),
                GroupJoinAcc::scratch_bytes(n_aggs) as u64,
                "groupjoin scratch drifted at n_aggs={n_aggs}"
            );
        }
    }

    #[test]
    fn agg_table_formula_matches_initial_capacity() {
        for n_aggs in [1usize, 2, 5] {
            for expected in [0u64, 1, 4, 16, 63, 64, 65, 1000] {
                let t = AggTable::with_capacity(n_aggs, expected as usize);
                let cap = sizing::agg_table_cap0(expected);
                assert_eq!(t.capacity() as u64, cap, "cap0 drifted at {expected}");
                assert_eq!(
                    t.size_bytes() as u64,
                    sizing::agg_table_bytes(cap, n_aggs as u64),
                    "size drifted at expected={expected} n_aggs={n_aggs}"
                );
            }
        }
    }

    #[test]
    fn agg_table_growth_stays_under_grown_cap_bound() {
        // The bound must dominate the *final* table size after any number
        // of doubling grows, including the throwaway NULL entry.
        for n_aggs in [1usize, 3] {
            for expected in [4u64, 64] {
                for keys in [1u64, 10, 100, 500, 3000] {
                    let mut t = AggTable::with_capacity(n_aggs, expected as usize);
                    for k in 0..keys {
                        let off = t.entry(k as i64);
                        t.add(off, 0, 1);
                    }
                    let cap0 = sizing::agg_table_cap0(expected);
                    let bound =
                        sizing::agg_table_bytes(sizing::grown_cap(cap0, keys), n_aggs as u64);
                    assert!(
                        (t.size_bytes() as u64) <= bound,
                        "grown table {} B exceeds bound {bound} B \
                         (expected={expected}, keys={keys}, n_aggs={n_aggs})",
                        t.size_bytes()
                    );
                }
            }
        }
    }

    #[test]
    fn key_set_growth_stays_under_bound() {
        // The semijoin build sizes its KeySet at `n/2 + 4` expected keys
        // and may insert up to every one of the n build rows.
        for n in [0u64, 5, 100, 1000, 5000] {
            let mut ks = KeySet::with_capacity((n / 2 + 4) as usize);
            for k in 0..n {
                ks.insert(k as i64);
            }
            let bound = sizing::key_set_bytes(n);
            assert!(
                (ks.size_bytes() as u64) <= bound,
                "key set {} B exceeds bound {bound} B at n={n}",
                ks.size_bytes()
            );
        }
    }

    #[test]
    fn bitmap_formula_matches_positional_bitmap_charge() {
        use swole_bitmap::PositionalBitmap;
        for rows in [0u64, 1, 63, 64, 65, 4096, 5000] {
            let bm = PositionalBitmap::new(rows as usize);
            assert_eq!(
                bm.size_bytes() as u64,
                sizing::bitmap_bytes(rows),
                "bitmap size drifted at rows={rows}"
            );
        }
    }
}
