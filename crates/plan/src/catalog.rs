//! The catalog: named tables plus registered foreign-key indexes.

use std::sync::Arc;

use crate::error::PlanError;
use swole_storage::{FkIndex, Table};

/// An in-memory database: tables and the foreign-key (positional) indexes
/// built for referential integrity — the indexes § III-D's positional
/// bitmaps probe through.
///
/// Tables and indexes are `Arc`-owned: execution pins the ones a query
/// touches, so shared-pool workers (whose closures outlive the submitting
/// call stack) read immutable snapshots even if another session reloads a
/// table mid-flight.
#[derive(Debug, Default)]
pub struct Database {
    tables: Vec<Arc<Table>>,
    fks: Vec<FkEntry>,
}

#[derive(Debug)]
struct FkEntry {
    child: String,
    fk_col: String,
    parent: String,
    index: Arc<FkIndex>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Register a table. Panics on duplicate names (a programming error).
    pub fn add_table(&mut self, table: Table) -> &mut Self {
        assert!(
            self.table(table.name()).is_err(),
            "duplicate table {}",
            table.name()
        );
        self.tables.push(Arc::new(table));
        self
    }

    /// Register the foreign-key index for `child.fk_col → parent`, where
    /// the parent's primary key is its dense row id (the convention used by
    /// every generated table in this repo). The FK column must be `U32`
    /// positions into the parent.
    pub fn add_fk(
        &mut self,
        child: &str,
        fk_col: &str,
        parent: &str,
    ) -> Result<&mut Self, PlanError> {
        let parent_len = self.table(parent)?.len();
        let child_t = self.table(child)?;
        let col = child_t
            .column(fk_col)
            .ok_or_else(|| PlanError::UnknownColumn {
                table: child.to_string(),
                column: fk_col.to_string(),
            })?;
        let positions = col
            .as_u32()
            .ok_or_else(|| {
                PlanError::InvalidExpr(format!(
                    "FK column {child}.{fk_col} must be U32 parent positions"
                ))
            })?
            .to_vec();
        assert!(
            positions.iter().all(|&p| (p as usize) < parent_len),
            "referential integrity violated: {child}.{fk_col} → {parent}"
        );
        self.fks.push(FkEntry {
            child: child.to_string(),
            fk_col: fk_col.to_string(),
            parent: parent.to_string(),
            index: Arc::new(FkIndex::from_dense(positions, parent_len)),
        });
        Ok(self)
    }

    /// Load (or reload) a table, bumping its generation counter.
    ///
    /// If a table with the same name exists its contents are replaced and
    /// the new contents take `old generation + 1`; otherwise the table is
    /// added fresh at generation 0. Reloading drops every registered FK
    /// index that involves the table (the positional index was built from
    /// the old contents) — re-register with [`Database::add_fk`] after the
    /// load. Returns the table's new generation.
    pub fn load_table(&mut self, mut table: Table) -> u64 {
        let name = table.name().to_string();
        match self.tables.iter_mut().find(|t| t.name() == name) {
            Some(slot) => {
                table.set_generation(slot.generation() + 1);
                let generation = table.generation();
                // Replace the Arc, never the pointee: in-flight queries
                // (and pool workers) keep reading their pinned snapshot.
                *slot = Arc::new(table);
                self.fks.retain(|f| f.child != name && f.parent != name);
                generation
            }
            None => {
                table.set_generation(0);
                self.tables.push(Arc::new(table));
                0
            }
        }
    }

    /// The generation counter of a named table, if it exists. Starts at 0
    /// and is bumped by every [`Database::load_table`] replacement.
    pub fn generation(&self, name: &str) -> Option<u64> {
        self.tables
            .iter()
            .find(|t| t.name() == name)
            .map(|t| t.generation())
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<&Table, PlanError> {
        self.tables
            .iter()
            .find(|t| t.name() == name)
            .map(|t| t.as_ref())
            .ok_or_else(|| PlanError::UnknownTable(name.to_string()))
    }

    /// Look up a table as a shared, immutable snapshot. Execution pins the
    /// snapshot for a query's lifetime; [`Database::load_table`] swaps the
    /// slot without touching outstanding pins.
    pub fn table_arc(&self, name: &str) -> Result<Arc<Table>, PlanError> {
        self.tables
            .iter()
            .find(|t| t.name() == name)
            .cloned()
            .ok_or_else(|| PlanError::UnknownTable(name.to_string()))
    }

    /// Look up the FK index for `child.fk_col`, verifying it targets
    /// `parent`.
    pub fn fk_index(&self, child: &str, fk_col: &str, parent: &str) -> Option<&FkIndex> {
        self.fks
            .iter()
            .find(|f| f.child == child && f.fk_col == fk_col && f.parent == parent)
            .map(|f| f.index.as_ref())
    }

    /// [`Database::fk_index`] as a shared snapshot, for execution to pin.
    pub(crate) fn fk_index_arc(
        &self,
        child: &str,
        fk_col: &str,
        parent: &str,
    ) -> Option<Arc<FkIndex>> {
        self.fks
            .iter()
            .find(|f| f.child == child && f.fk_col == fk_col && f.parent == parent)
            .map(|f| Arc::clone(&f.index))
    }

    /// All table names.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.iter().map(|t| t.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swole_storage::ColumnData;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_table(Table::new("s").with_column("x", ColumnData::I32(vec![1, 2, 3])));
        db.add_table(
            Table::new("r")
                .with_column("fk", ColumnData::U32(vec![0, 2, 1, 0]))
                .with_column("a", ColumnData::I32(vec![5, 6, 7, 8])),
        );
        db
    }

    #[test]
    fn register_and_lookup_fk() {
        let mut db = db();
        db.add_fk("r", "fk", "s").unwrap();
        let idx = db.fk_index("r", "fk", "s").unwrap();
        assert_eq!(idx.positions(), &[0, 2, 1, 0]);
        assert_eq!(idx.parent_len(), 3);
        assert!(db.fk_index("r", "fk", "other").is_none());
    }

    #[test]
    fn fk_requires_u32_column() {
        let mut db = db();
        assert!(matches!(
            db.add_fk("r", "a", "s"),
            Err(PlanError::InvalidExpr(_))
        ));
        assert!(matches!(
            db.add_fk("r", "nope", "s"),
            Err(PlanError::UnknownColumn { .. })
        ));
        assert!(matches!(
            db.add_fk("r", "fk", "nope"),
            Err(PlanError::UnknownTable(_))
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate table")]
    fn duplicate_table_panics() {
        let mut db = db();
        db.add_table(Table::new("r"));
    }
}
