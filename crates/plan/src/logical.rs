//! Logical plans and the builder API.

use crate::expr::{AggFunc, Expr};

/// One aggregate in a query's select list.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Aggregate function.
    pub func: AggFunc,
    /// Input expression (ignored for `Count`).
    pub expr: Expr,
    /// Output column name.
    pub name: String,
}

impl AggSpec {
    /// `sum(expr) as name`.
    pub fn sum(expr: Expr, name: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Sum,
            expr,
            name: name.into(),
        }
    }

    /// `count(*) as name`.
    pub fn count(name: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Count,
            expr: Expr::Lit(1),
            name: name.into(),
        }
    }

    /// `min(expr) as name`.
    pub fn min(expr: Expr, name: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Min,
            expr,
            name: name.into(),
        }
    }

    /// `max(expr) as name`.
    pub fn max(expr: Expr, name: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Max,
            expr,
            name: name.into(),
        }
    }
}

/// One sort key in an `ORDER BY` clause or window ordering.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// Column the key orders by (an output column for `ORDER BY`, a base
    /// column for window orderings).
    pub column: String,
    /// Descending order when true (`DESC`); ascending otherwise.
    pub desc: bool,
}

impl SortKey {
    /// An ascending key on `column`.
    pub fn asc(column: impl Into<String>) -> SortKey {
        SortKey {
            column: column.into(),
            desc: false,
        }
    }

    /// A descending key on `column`.
    pub fn desc(column: impl Into<String>) -> SortKey {
        SortKey {
            column: column.into(),
            desc: true,
        }
    }
}

/// A window function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowFunc {
    /// 1-based position within the partition in window order.
    RowNumber,
    /// 1 + number of strictly-preceding rows in window order; peers (rows
    /// with equal order keys) share a rank.
    Rank,
    /// Running/framed sum of the input expression (wrapping arithmetic).
    Sum,
    /// Running/framed row count.
    Count,
}

/// One window function in a query's select list.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowFnSpec {
    /// Window function.
    pub func: WindowFunc,
    /// Input expression (`None` for `ROW_NUMBER`, `RANK`, `COUNT(*)`).
    pub expr: Option<Expr>,
    /// Output column name.
    pub name: String,
}

impl WindowFnSpec {
    /// `ROW_NUMBER() OVER (...) as name`.
    pub fn row_number(name: impl Into<String>) -> WindowFnSpec {
        WindowFnSpec {
            func: WindowFunc::RowNumber,
            expr: None,
            name: name.into(),
        }
    }

    /// `RANK() OVER (...) as name`.
    pub fn rank(name: impl Into<String>) -> WindowFnSpec {
        WindowFnSpec {
            func: WindowFunc::Rank,
            expr: None,
            name: name.into(),
        }
    }

    /// `SUM(expr) OVER (...) as name`.
    pub fn sum(expr: Expr, name: impl Into<String>) -> WindowFnSpec {
        WindowFnSpec {
            func: WindowFunc::Sum,
            expr: Some(expr),
            name: name.into(),
        }
    }

    /// `COUNT(*) OVER (...) as name`.
    pub fn count(name: impl Into<String>) -> WindowFnSpec {
        WindowFnSpec {
            func: WindowFunc::Count,
            expr: None,
            name: name.into(),
        }
    }
}

/// The rows-frame a window function aggregates over.
///
/// Frames are ROWS-based (positional), never RANGE-based: with no window
/// `ORDER BY` the frame is the whole partition; with an `ORDER BY` it
/// defaults to `UNBOUNDED PRECEDING .. CURRENT ROW`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameSpec {
    /// Every row of the partition (no window `ORDER BY`).
    WholePartition,
    /// `ROWS UNBOUNDED PRECEDING .. CURRENT ROW` (running frame).
    UnboundedPreceding,
    /// `ROWS k PRECEDING .. CURRENT ROW` (sliding frame of `k + 1` rows).
    Preceding(usize),
}

/// A logical query plan (relational-algebra tree).
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Base-table scan.
    Scan {
        /// Table name.
        table: String,
    },
    /// Row filter.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Boolean predicate.
        predicate: Expr,
    },
    /// FK semijoin: keep input (child) rows whose parent row survives the
    /// build side.
    SemiJoin {
        /// Child-side input.
        input: Box<LogicalPlan>,
        /// Parent-side plan (scan + optional filter).
        build: Box<LogicalPlan>,
        /// Child FK column (must have a registered FK index to the build
        /// table for the positional-bitmap strategy to be available).
        fk_col: String,
    },
    /// Aggregation, optionally grouped by one column.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group-by column (on the input's base table), or `None` for a
        /// scalar aggregate.
        group_by: Option<String>,
        /// Aggregates to compute.
        aggs: Vec<AggSpec>,
    },
    /// Window computation over the qualifying rows of the input: projects
    /// `select` base columns plus one output column per window function.
    Window {
        /// Input plan (scan + optional filter).
        input: Box<LogicalPlan>,
        /// `PARTITION BY` column, if any.
        partition_by: Option<String>,
        /// Window `ORDER BY` keys (empty means partition order = row order).
        order_by: Vec<SortKey>,
        /// Rows-frame the functions aggregate over.
        frame: FrameSpec,
        /// Window functions to compute (may be empty: plain projection).
        funcs: Vec<WindowFnSpec>,
        /// Base columns projected alongside the window outputs.
        select: Vec<String>,
    },
    /// Result re-ordering by output columns (deterministic: ties broken by
    /// pre-sort row position).
    OrderBy {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys naming output columns of the input.
        keys: Vec<SortKey>,
    },
    /// Result prefix truncation.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Maximum rows to keep.
        n: usize,
    },
}

impl LogicalPlan {
    /// The base table a (linear) plan scans.
    pub fn base_table(&self) -> &str {
        match self {
            LogicalPlan::Scan { table } => table,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::SemiJoin { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Window { input, .. }
            | LogicalPlan::OrderBy { input, .. }
            | LogicalPlan::Limit { input, .. } => input.base_table(),
        }
    }
}

/// Fluent builder for the supported plan shapes.
///
/// ```
/// use swole_plan::{QueryBuilder, AggSpec, Expr, CmpOp};
///
/// let plan = QueryBuilder::scan("R")
///     .filter(Expr::col("x").cmp(CmpOp::Lt, Expr::lit(13)))
///     .aggregate(
///         Some("c"),
///         vec![AggSpec::sum(Expr::col("a").mul(Expr::col("b")), "s")],
///     );
/// assert_eq!(plan.base_table(), "R");
/// ```
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    plan: LogicalPlan,
}

impl QueryBuilder {
    /// Start from a table scan.
    pub fn scan(table: impl Into<String>) -> QueryBuilder {
        QueryBuilder {
            plan: LogicalPlan::Scan {
                table: table.into(),
            },
        }
    }

    /// Add a filter.
    pub fn filter(mut self, predicate: Expr) -> QueryBuilder {
        self.plan = LogicalPlan::Filter {
            input: Box::new(self.plan),
            predicate,
        };
        self
    }

    /// Semijoin against a build-side plan through `fk_col`.
    pub fn semijoin(mut self, build: QueryBuilder, fk_col: impl Into<String>) -> QueryBuilder {
        self.plan = LogicalPlan::SemiJoin {
            input: Box::new(self.plan),
            build: Box::new(build.plan),
            fk_col: fk_col.into(),
        };
        self
    }

    /// Terminal aggregation; returns the finished plan.
    pub fn aggregate(self, group_by: Option<&str>, aggs: Vec<AggSpec>) -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(self.plan),
            group_by: group_by.map(str::to_string),
            aggs,
        }
    }

    /// Terminal window computation; returns the finished plan.
    pub fn window(
        self,
        partition_by: Option<&str>,
        order_by: Vec<SortKey>,
        frame: FrameSpec,
        funcs: Vec<WindowFnSpec>,
        select: Vec<String>,
    ) -> LogicalPlan {
        LogicalPlan::Window {
            input: Box::new(self.plan),
            partition_by: partition_by.map(str::to_string),
            order_by,
            frame,
            funcs,
            select,
        }
    }

    /// The plan built so far, without a terminal aggregation.
    pub fn build(self) -> LogicalPlan {
        self.plan
    }
}

/// Wrap a finished plan in a result-level `ORDER BY`.
pub fn order_by(plan: LogicalPlan, keys: Vec<SortKey>) -> LogicalPlan {
    LogicalPlan::OrderBy {
        input: Box::new(plan),
        keys,
    }
}

/// Wrap a finished plan in a `LIMIT`.
pub fn limit(plan: LogicalPlan, n: usize) -> LogicalPlan {
    LogicalPlan::Limit {
        input: Box::new(plan),
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    #[test]
    fn builder_produces_expected_tree() {
        let plan = QueryBuilder::scan("R")
            .filter(Expr::col("x").cmp(CmpOp::Lt, Expr::lit(13)))
            .aggregate(None, vec![AggSpec::sum(Expr::col("a"), "s")]);
        match &plan {
            LogicalPlan::Aggregate {
                input, group_by, ..
            } => {
                assert!(group_by.is_none());
                assert!(matches!(**input, LogicalPlan::Filter { .. }));
            }
            other => panic!("unexpected plan {other:?}"),
        }
        assert_eq!(plan.base_table(), "R");
    }

    #[test]
    fn semijoin_shape() {
        let plan = QueryBuilder::scan("R")
            .semijoin(
                QueryBuilder::scan("S").filter(Expr::col("x").cmp(CmpOp::Lt, Expr::lit(13))),
                "fk",
            )
            .aggregate(None, vec![AggSpec::count("n")]);
        assert_eq!(plan.base_table(), "R");
    }
}
