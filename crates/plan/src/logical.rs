//! Logical plans and the builder API.

use crate::expr::{AggFunc, Expr};

/// One aggregate in a query's select list.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Aggregate function.
    pub func: AggFunc,
    /// Input expression (ignored for `Count`).
    pub expr: Expr,
    /// Output column name.
    pub name: String,
}

impl AggSpec {
    /// `sum(expr) as name`.
    pub fn sum(expr: Expr, name: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Sum,
            expr,
            name: name.into(),
        }
    }

    /// `count(*) as name`.
    pub fn count(name: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Count,
            expr: Expr::Lit(1),
            name: name.into(),
        }
    }

    /// `min(expr) as name`.
    pub fn min(expr: Expr, name: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Min,
            expr,
            name: name.into(),
        }
    }

    /// `max(expr) as name`.
    pub fn max(expr: Expr, name: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Max,
            expr,
            name: name.into(),
        }
    }
}

/// A logical query plan (relational-algebra tree).
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Base-table scan.
    Scan {
        /// Table name.
        table: String,
    },
    /// Row filter.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Boolean predicate.
        predicate: Expr,
    },
    /// FK semijoin: keep input (child) rows whose parent row survives the
    /// build side.
    SemiJoin {
        /// Child-side input.
        input: Box<LogicalPlan>,
        /// Parent-side plan (scan + optional filter).
        build: Box<LogicalPlan>,
        /// Child FK column (must have a registered FK index to the build
        /// table for the positional-bitmap strategy to be available).
        fk_col: String,
    },
    /// Aggregation, optionally grouped by one column.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group-by column (on the input's base table), or `None` for a
        /// scalar aggregate.
        group_by: Option<String>,
        /// Aggregates to compute.
        aggs: Vec<AggSpec>,
    },
}

impl LogicalPlan {
    /// The base table a (linear) plan scans.
    pub fn base_table(&self) -> &str {
        match self {
            LogicalPlan::Scan { table } => table,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::SemiJoin { input, .. }
            | LogicalPlan::Aggregate { input, .. } => input.base_table(),
        }
    }
}

/// Fluent builder for the supported plan shapes.
///
/// ```
/// use swole_plan::{QueryBuilder, AggSpec, Expr, CmpOp};
///
/// let plan = QueryBuilder::scan("R")
///     .filter(Expr::col("x").cmp(CmpOp::Lt, Expr::lit(13)))
///     .aggregate(
///         Some("c"),
///         vec![AggSpec::sum(Expr::col("a").mul(Expr::col("b")), "s")],
///     );
/// assert_eq!(plan.base_table(), "R");
/// ```
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    plan: LogicalPlan,
}

impl QueryBuilder {
    /// Start from a table scan.
    pub fn scan(table: impl Into<String>) -> QueryBuilder {
        QueryBuilder {
            plan: LogicalPlan::Scan {
                table: table.into(),
            },
        }
    }

    /// Add a filter.
    pub fn filter(mut self, predicate: Expr) -> QueryBuilder {
        self.plan = LogicalPlan::Filter {
            input: Box::new(self.plan),
            predicate,
        };
        self
    }

    /// Semijoin against a build-side plan through `fk_col`.
    pub fn semijoin(mut self, build: QueryBuilder, fk_col: impl Into<String>) -> QueryBuilder {
        self.plan = LogicalPlan::SemiJoin {
            input: Box::new(self.plan),
            build: Box::new(build.plan),
            fk_col: fk_col.into(),
        };
        self
    }

    /// Terminal aggregation; returns the finished plan.
    pub fn aggregate(self, group_by: Option<&str>, aggs: Vec<AggSpec>) -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(self.plan),
            group_by: group_by.map(str::to_string),
            aggs,
        }
    }

    /// The plan built so far, without a terminal aggregation.
    pub fn build(self) -> LogicalPlan {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    #[test]
    fn builder_produces_expected_tree() {
        let plan = QueryBuilder::scan("R")
            .filter(Expr::col("x").cmp(CmpOp::Lt, Expr::lit(13)))
            .aggregate(None, vec![AggSpec::sum(Expr::col("a"), "s")]);
        match &plan {
            LogicalPlan::Aggregate {
                input, group_by, ..
            } => {
                assert!(group_by.is_none());
                assert!(matches!(**input, LogicalPlan::Filter { .. }));
            }
            other => panic!("unexpected plan {other:?}"),
        }
        assert_eq!(plan.base_table(), "R");
    }

    #[test]
    fn semijoin_shape() {
        let plan = QueryBuilder::scan("R")
            .semijoin(
                QueryBuilder::scan("S").filter(Expr::col("x").cmp(CmpOp::Lt, Expr::lit(13))),
                "fk",
            )
            .aggregate(None, vec![AggSpec::count("n")]);
        assert_eq!(plan.base_table(), "R");
    }
}
