//! Lowering composed physical plans into the static-verification IR.
//!
//! The verifier (`swole-verify`) is deliberately ignorant of the planner's
//! internals: it checks a neutral [`Program`] of tables, foreign keys, and
//! per-operator expressions/artifacts/allocation sites. This module is the
//! bridge — it renders each [`Shape`] the way execution actually runs it
//! (which artifacts each stage materializes, at what scope and domain, and
//! which allocation sites charge the [`crate::MemGauge`]), so the verifier's
//! verdict is about the real composed kernels, not a parallel description.
//!
//! The lowering consults [`crate::faults::take_uncharged_alloc`]: an armed
//! uncharged-allocation fault presents the first allocation site as not
//! charging the gauge, which a `VerifyLevel::Full` pass must reject.

use swole_kernels::TILE;
use swole_storage::DataType;
use swole_verify::ir::{
    Alloc, ArithOp, Artifact, ArtifactKind, BoundExpr, ColType, ColumnDecl, ExprRole, FkDecl,
    FkRef, Import, Op, Program, Scope, StrategyRef, TableDecl, VExpr,
};
use swole_verify::{VerifyLevel, VerifyReport};

use crate::catalog::Database;
use crate::error::PlanError;
use crate::expr::Expr;
use crate::faults;
use crate::logical::{AggSpec, SortKey, WindowFnSpec};
use crate::physical::{JoinEdge, PhysicalPlan, PostOp, Shape};
use swole_cost::{AggStrategy, SemiJoinStrategy, WindowStrategy};

/// Lower `plan` and verify it at `level`. `Off` is a no-op by construction
/// in the engine (callers guard it), but is honoured here too.
pub(crate) fn verify_physical(
    db: &Database,
    plan: &PhysicalPlan,
    level: VerifyLevel,
) -> Result<VerifyReport, PlanError> {
    let program = program_for(db, plan)?;
    swole_verify::verify(&program, level).map_err(PlanError::Verification)
}

/// Lower a composed physical plan into the verification IR (consuming an
/// armed uncharged-allocation fault, which verification is expected to
/// catch). Use [`program_for_certification`] for bounds-only lowerings.
pub(crate) fn program_for(db: &Database, plan: &PhysicalPlan) -> Result<Program, PlanError> {
    program_for_with(db, plan, true)
}

/// Lower a plan for certification only. Does *not* consume an armed
/// uncharged-allocation fault: a `VerifyLevel::Off` session certifies every
/// plan for admission, but must stay invisible to the fault — the fault is
/// a verification probe, and tests rely on an Off-level query leaving it
/// armed for a later explicit `verify_plan` call.
pub(crate) fn program_for_certification(
    db: &Database,
    plan: &PhysicalPlan,
) -> Result<Program, PlanError> {
    program_for_with(db, plan, false)
}

fn program_for_with(
    db: &Database,
    plan: &PhysicalPlan,
    consume_fault: bool,
) -> Result<Program, PlanError> {
    let fault_uncharged = consume_fault && faults::take_uncharged_alloc();
    let mut program = match &plan.shape {
        Shape::ScanAgg {
            table,
            filter,
            group_by,
            aggs,
            strategy,
        } => lower_scan_agg(
            db,
            plan,
            table,
            filter.as_ref(),
            group_by.as_deref(),
            aggs,
            *strategy,
        )?,
        Shape::SemiJoinAgg {
            probe,
            probe_filter,
            build,
            build_filter,
            fk_col,
            aggs,
            strategy,
            probe_masked,
        } => lower_semijoin_agg(
            db,
            probe,
            probe_filter.as_ref(),
            build,
            build_filter.as_ref(),
            fk_col,
            aggs,
            *strategy,
            *probe_masked,
        )?,
        Shape::MultiJoinAgg {
            fact,
            fact_filter,
            edges,
            aggs,
            ..
        } => lower_multijoin_agg(db, plan, fact, fact_filter.as_ref(), edges, aggs)?,
        Shape::GroupJoinAgg {
            probe,
            build,
            build_filter,
            fk_col,
            aggs,
            strategy,
        } => lower_groupjoin_agg(
            db,
            plan,
            probe,
            build,
            build_filter.as_ref(),
            fk_col,
            aggs,
            *strategy,
        )?,
        Shape::WindowScan {
            table,
            filter,
            partition_by,
            order_by,
            funcs,
            select,
            strategy,
            ..
        } => lower_window_scan(
            db,
            plan,
            table,
            filter.as_ref(),
            partition_by.as_deref(),
            order_by,
            funcs,
            select,
            *strategy,
        )?,
    };
    // Result-level post-operators run over the materialized result but are
    // still part of the composed plan: lower them so ORDER BY / LIMIT
    // queries pass through the same gate as the core pipeline.
    if let Some(base) = program.tables.first() {
        let (tname, trows) = (base.name.clone(), base.rows);
        for p in &plan.post {
            match p {
                PostOp::Sort { .. } => {
                    let mut op = Op::new(&format!("sort({tname})"), "/post/sort", &tname, trows);
                    op.strategy = Some(StrategyRef::Sort);
                    op.cost_terms = vec!["sort.rows".to_string()];
                    op.allocs.push(Alloc {
                        site: "sort-selection-vector".to_string(),
                        charged: true,
                    });
                    program.ops.push(op);
                }
                PostOp::Limit { .. } => {
                    let mut op = Op::new(&format!("limit({tname})"), "/post/limit", &tname, trows);
                    op.strategy = Some(StrategyRef::Limit);
                    op.cost_terms = vec!["limit.rows".to_string()];
                    program.ops.push(op);
                }
            }
        }
    }
    if fault_uncharged {
        if let Some(alloc) = program.ops.first_mut().and_then(|op| op.allocs.first_mut()) {
            alloc.charged = false;
        }
    }
    Ok(program)
}

/// A table declaration from the live catalog, with storage types collapsed
/// to the verifier's view (all signed widths are `Int`).
fn table_decl(db: &Database, name: &str) -> Result<TableDecl, PlanError> {
    let t = db.table(name)?;
    let columns = t
        .column_names()
        .map(|c| ColumnDecl {
            name: c.to_string(),
            ty: match t.column(c).map(|col| col.data_type()) {
                Some(DataType::U32) => ColType::U32,
                Some(DataType::Dict) => ColType::Dict,
                _ => ColType::Int,
            },
        })
        .collect();
    Ok(TableDecl {
        name: name.to_string(),
        rows: t.len(),
        columns,
    })
}

/// Lower a planner expression. Structure is preserved only as far as the
/// verifier's checks need: column references, dictionary predicates,
/// parameter slots, and which sub-trees are arithmetic contexts.
fn lower_expr(e: &Expr) -> VExpr {
    match e {
        Expr::Col(c) => VExpr::Col(c.clone()),
        Expr::Lit(v) => VExpr::Lit(*v),
        Expr::Param(i) => VExpr::Param(*i),
        Expr::Cmp(_, a, b) => VExpr::Cmp(vec![lower_expr(a), lower_expr(b)]),
        Expr::Add(a, b) => VExpr::Arith(ArithOp::Add, vec![lower_expr(a), lower_expr(b)]),
        Expr::Sub(a, b) => VExpr::Arith(ArithOp::Sub, vec![lower_expr(a), lower_expr(b)]),
        Expr::Mul(a, b) => VExpr::Arith(ArithOp::Mul, vec![lower_expr(a), lower_expr(b)]),
        Expr::Div(a, b) => VExpr::Arith(ArithOp::Div, vec![lower_expr(a), lower_expr(b)]),
        Expr::And(a, b) | Expr::Or(a, b) => VExpr::Bool(vec![lower_expr(a), lower_expr(b)]),
        Expr::Not(a) => VExpr::Bool(vec![lower_expr(a)]),
        Expr::Like { col, .. } | Expr::InList { col, .. } => VExpr::DictPredicate(col.clone()),
        Expr::Case {
            when,
            then,
            otherwise,
        } => VExpr::Case(vec![
            lower_expr(when),
            lower_expr(then),
            lower_expr(otherwise),
        ]),
    }
}

fn agg_inputs(aggs: &[AggSpec]) -> Vec<BoundExpr> {
    aggs.iter()
        .map(|a| BoundExpr {
            role: ExprRole::AggInput,
            expr: lower_expr(&a.expr),
        })
        .collect()
}

fn cost_term_names(plan: &PhysicalPlan) -> Vec<String> {
    plan.cost_terms
        .iter()
        .map(|(name, _)| name.clone())
        .collect()
}

fn tile_mask_artifact(table: &str) -> Artifact {
    Artifact {
        kind: ArtifactKind::ValueMask,
        table: table.to_string(),
        rows: TILE,
        scope: Scope::Tile,
    }
}

fn lower_scan_agg(
    db: &Database,
    plan: &PhysicalPlan,
    table: &str,
    filter: Option<&Expr>,
    group_by: Option<&str>,
    aggs: &[AggSpec],
    strategy: AggStrategy,
) -> Result<Program, PlanError> {
    let decl = table_decl(db, table)?;
    let rows = decl.rows;
    let grouped = group_by.is_some();
    let name = if grouped {
        format!("groupby-agg({table})")
    } else {
        format!("agg({table})")
    };
    let mut op = Op::new(&name, "/scan-agg", table, rows);
    if let Some(f) = filter {
        op.exprs.push(BoundExpr {
            role: ExprRole::Predicate,
            expr: lower_expr(f),
        });
    }
    op.exprs.extend(agg_inputs(aggs));
    if let Some(g) = group_by {
        op.exprs.push(BoundExpr {
            role: ExprRole::GroupKey,
            expr: VExpr::Col(g.to_string()),
        });
    }
    op.strategy = Some(StrategyRef::Agg { strategy, grouped });
    op.n_aggs = Some(aggs.len());
    op.cost_terms = cost_term_names(plan);
    // Every strategy evaluates the predicate into the tile-scoped `cmp`
    // mask; hybrid compacts it into a tile selection vector, grouped key
    // masking folds it into the tile key buffer.
    op.locals.push(tile_mask_artifact(table));
    match (strategy, grouped) {
        (AggStrategy::Hybrid, _) | (AggStrategy::KeyMasking, false) => {
            op.locals.push(Artifact {
                kind: ArtifactKind::SelectionVector,
                table: table.to_string(),
                rows: TILE,
                scope: Scope::Tile,
            });
        }
        (AggStrategy::KeyMasking, true) => {
            op.locals.push(Artifact {
                kind: ArtifactKind::KeyMask,
                table: table.to_string(),
                rows: TILE,
                scope: Scope::Tile,
            });
        }
        (AggStrategy::ValueMasking, _) => {}
    }
    op.allocs.push(Alloc {
        site: "worker-scratch".to_string(),
        charged: true,
    });
    if grouped {
        op.allocs.push(Alloc {
            site: "agg-table".to_string(),
            charged: true,
        });
    }
    Ok(Program {
        tables: vec![decl],
        fks: Vec::new(),
        ops: vec![op],
        tile_rows: TILE,
    })
}

/// Lower a window pipeline. The parallel filter phase materializes a
/// tile-scoped predicate mask and stitches the qualifying rows into a
/// plan-scoped selection vector (the window sort's input domain); function
/// inputs are aggregate-input contexts and the partition/order keys are
/// group keys, so pass 1 enforces the same typing as grouped aggregation.
#[allow(clippy::too_many_arguments)]
fn lower_window_scan(
    db: &Database,
    plan: &PhysicalPlan,
    table: &str,
    filter: Option<&Expr>,
    partition_by: Option<&str>,
    order_by: &[SortKey],
    funcs: &[WindowFnSpec],
    select: &[String],
    strategy: WindowStrategy,
) -> Result<Program, PlanError> {
    let decl = table_decl(db, table)?;
    let rows = decl.rows;
    let mut op = Op::new(&format!("window({table})"), "/window-scan", table, rows);
    if let Some(f) = filter {
        op.exprs.push(BoundExpr {
            role: ExprRole::Predicate,
            expr: lower_expr(f),
        });
    }
    for f in funcs {
        if let Some(e) = &f.expr {
            op.exprs.push(BoundExpr {
                role: ExprRole::AggInput,
                expr: lower_expr(e),
            });
        }
    }
    for c in partition_by
        .iter()
        .copied()
        .chain(order_by.iter().map(|k| k.column.as_str()))
    {
        op.exprs.push(BoundExpr {
            role: ExprRole::GroupKey,
            expr: VExpr::Col(c.to_string()),
        });
    }
    op.strategy = Some(StrategyRef::Window { strategy });
    // Phase 2 materializes one column per partition key, order key,
    // projected column, and function input — exactly what execution charges.
    op.mat_cols = Some(1 + order_by.len() + select.len() + funcs.len());
    op.n_aggs = Some(funcs.len());
    op.cost_terms = cost_term_names(plan);
    op.locals.push(tile_mask_artifact(table));
    op.locals.push(Artifact {
        kind: ArtifactKind::SelectionVector,
        table: table.to_string(),
        rows,
        scope: Scope::Plan,
    });
    op.allocs.push(Alloc {
        site: "worker-scratch".to_string(),
        charged: true,
    });
    op.allocs.push(Alloc {
        site: "selection-vector".to_string(),
        charged: true,
    });
    Ok(Program {
        tables: vec![decl],
        fks: Vec::new(),
        ops: vec![op],
        tile_rows: TILE,
    })
}

/// The FK edge a probe shape traverses: the registered index when present,
/// otherwise the raw `u32` column's dense-key mapping onto the build table.
fn fk_decl(db: &Database, probe: &str, fk_col: &str, build: &str) -> Result<FkDecl, PlanError> {
    let probe_rows = db.table(probe)?.len();
    let parent_rows = match db.fk_index(probe, fk_col, build) {
        Some(idx) => idx.parent_len(),
        None => db.table(build)?.len(),
    };
    Ok(FkDecl {
        child: probe.to_string(),
        fk_col: fk_col.to_string(),
        parent: build.to_string(),
        child_rows: probe_rows,
        parent_rows,
    })
}

#[allow(clippy::too_many_arguments)]
fn lower_semijoin_agg(
    db: &Database,
    probe: &str,
    probe_filter: Option<&Expr>,
    build: &str,
    build_filter: Option<&Expr>,
    fk_col: &str,
    aggs: &[AggSpec],
    strategy: SemiJoinStrategy,
    probe_masked: bool,
) -> Result<Program, PlanError> {
    let probe_decl = table_decl(db, probe)?;
    let build_decl = table_decl(db, build)?;
    let (probe_rows, build_rows) = (probe_decl.rows, build_decl.rows);
    let fk = fk_decl(db, probe, fk_col, build)?;

    let mut build_op = Op::new(
        &format!("semijoin-build({build})"),
        "/semijoin-agg/build",
        build,
        build_rows,
    );
    if let Some(f) = build_filter {
        build_op.exprs.push(BoundExpr {
            role: ExprRole::Predicate,
            expr: lower_expr(f),
        });
    }
    build_op.strategy = Some(StrategyRef::SemiJoinBuild(strategy));
    // The build predicate materializes over the whole build table before the
    // membership structure is derived from it.
    build_op.locals.push(Artifact {
        kind: ArtifactKind::ValueMask,
        table: build.to_string(),
        rows: build_rows,
        scope: Scope::Plan,
    });
    build_op.allocs.push(Alloc {
        site: "build-mask".to_string(),
        charged: true,
    });
    let import_kind = match strategy {
        SemiJoinStrategy::Hash => {
            build_op.exports.push(Artifact {
                kind: ArtifactKind::KeySet,
                table: build.to_string(),
                rows: build_rows,
                scope: Scope::Plan,
            });
            build_op.allocs.push(Alloc {
                site: "key-set".to_string(),
                charged: true,
            });
            ArtifactKind::KeySet
        }
        SemiJoinStrategy::PositionalBitmap(bmb) => {
            if bmb == swole_cost::BitmapBuild::SelectionVector {
                build_op.locals.push(Artifact {
                    kind: ArtifactKind::SelectionVector,
                    table: build.to_string(),
                    rows: build_rows,
                    scope: Scope::Plan,
                });
                build_op.allocs.push(Alloc {
                    site: "selection-vector".to_string(),
                    charged: true,
                });
            }
            build_op.exports.push(Artifact {
                kind: ArtifactKind::PositionalBitmap,
                table: build.to_string(),
                rows: build_rows,
                scope: Scope::Plan,
            });
            build_op.allocs.push(Alloc {
                site: "positional-bitmap".to_string(),
                charged: true,
            });
            ArtifactKind::PositionalBitmap
        }
    };

    let mut probe_op = Op::new(
        &format!("probe-agg({probe})"),
        "/semijoin-agg/probe",
        probe,
        probe_rows,
    );
    if let Some(f) = probe_filter {
        probe_op.exprs.push(BoundExpr {
            role: ExprRole::Predicate,
            expr: lower_expr(f),
        });
    }
    probe_op.exprs.extend(agg_inputs(aggs));
    probe_op.strategy = Some(StrategyRef::SemiJoinProbe {
        strategy,
        probe_masked,
    });
    probe_op.n_aggs = Some(aggs.len());
    probe_op.imports.push(Import {
        kind: import_kind,
        table: build.to_string(),
        via_fk: Some(FkRef {
            child: probe.to_string(),
            fk_col: fk_col.to_string(),
            parent: build.to_string(),
        }),
    });
    probe_op.locals.push(tile_mask_artifact(probe));
    if !probe_masked {
        probe_op.locals.push(Artifact {
            kind: ArtifactKind::SelectionVector,
            table: probe.to_string(),
            rows: TILE,
            scope: Scope::Tile,
        });
    }
    probe_op.allocs.push(Alloc {
        site: "worker-scratch".to_string(),
        charged: true,
    });

    Ok(Program {
        tables: vec![probe_decl, build_decl],
        fks: vec![fk],
        ops: vec![build_op, probe_op],
        tile_rows: TILE,
    })
}

/// Lower one multi-way join edge's build side, post-order (chain children
/// first, so every `ValueMask` import resolves against an earlier export).
///
/// Direct fact edges lower like a semijoin build: qualifying mask, then the
/// membership structure the probe imports. Nested chain edges export only
/// their qualifying `ValueMask` — execution folds it into the parent's mask
/// through the parent's FK column, the same access the groupjoin build/probe
/// pair models.
fn lower_join_build(
    db: &Database,
    child: &str,
    e: &JoinEdge,
    direct: bool,
    tables: &mut Vec<TableDecl>,
    fks: &mut Vec<FkDecl>,
    ops: &mut Vec<Op>,
) -> Result<(), PlanError> {
    for c in &e.children {
        lower_join_build(db, &e.parent, c, false, tables, fks, ops)?;
    }
    let decl = table_decl(db, &e.parent)?;
    let rows = decl.rows;
    if !tables.iter().any(|t| t.name == decl.name) {
        tables.push(decl);
    }
    fks.push(fk_decl(db, child, &e.fk_col, &e.parent)?);
    let mut op = Op::new(
        &format!("multijoin-build({})", e.parent),
        "/multijoin-agg/build",
        &e.parent,
        rows,
    );
    if let Some(f) = &e.parent_filter {
        op.exprs.push(BoundExpr {
            role: ExprRole::Predicate,
            expr: lower_expr(f),
        });
    }
    for c in &e.children {
        op.imports.push(Import {
            kind: ArtifactKind::ValueMask,
            table: c.parent.clone(),
            via_fk: Some(FkRef {
                child: e.parent.clone(),
                fk_col: c.fk_col.clone(),
                parent: c.parent.clone(),
            }),
        });
    }
    op.allocs.push(Alloc {
        site: "build-mask".to_string(),
        charged: true,
    });
    if direct {
        op.strategy = Some(StrategyRef::SemiJoinBuild(e.strategy));
        op.locals.push(Artifact {
            kind: ArtifactKind::ValueMask,
            table: e.parent.clone(),
            rows,
            scope: Scope::Plan,
        });
        match e.strategy {
            SemiJoinStrategy::Hash => {
                op.exports.push(Artifact {
                    kind: ArtifactKind::KeySet,
                    table: e.parent.clone(),
                    rows,
                    scope: Scope::Plan,
                });
                op.allocs.push(Alloc {
                    site: "key-set".to_string(),
                    charged: true,
                });
            }
            SemiJoinStrategy::PositionalBitmap(bmb) => {
                if bmb == swole_cost::BitmapBuild::SelectionVector {
                    op.locals.push(Artifact {
                        kind: ArtifactKind::SelectionVector,
                        table: e.parent.clone(),
                        rows,
                        scope: Scope::Plan,
                    });
                    op.allocs.push(Alloc {
                        site: "selection-vector".to_string(),
                        charged: true,
                    });
                }
                op.exports.push(Artifact {
                    kind: ArtifactKind::PositionalBitmap,
                    table: e.parent.clone(),
                    rows,
                    scope: Scope::Plan,
                });
                op.allocs.push(Alloc {
                    site: "positional-bitmap".to_string(),
                    charged: true,
                });
            }
        }
    } else {
        // Chain edge: the mask itself crosses the operator boundary.
        op.strategy = Some(StrategyRef::GroupJoinBuild);
        op.exports.push(Artifact {
            kind: ArtifactKind::ValueMask,
            table: e.parent.clone(),
            rows,
            scope: Scope::Plan,
        });
    }
    ops.push(op);
    Ok(())
}

fn lower_multijoin_agg(
    db: &Database,
    plan: &PhysicalPlan,
    fact: &str,
    fact_filter: Option<&Expr>,
    edges: &[JoinEdge],
    aggs: &[AggSpec],
) -> Result<Program, PlanError> {
    let fact_decl = table_decl(db, fact)?;
    let fact_rows = fact_decl.rows;
    let mut tables = vec![fact_decl];
    let mut fks = Vec::new();
    let mut ops = Vec::new();
    for e in edges {
        lower_join_build(db, fact, e, true, &mut tables, &mut fks, &mut ops)?;
    }
    let mut probe_op = Op::new(
        &format!("multijoin-agg({fact})"),
        "/multijoin-agg/probe",
        fact,
        fact_rows,
    );
    if let Some(f) = fact_filter {
        probe_op.exprs.push(BoundExpr {
            role: ExprRole::Predicate,
            expr: lower_expr(f),
        });
    }
    probe_op.exprs.extend(agg_inputs(aggs));
    // The probe narrows a tile selection vector edge-by-edge; its access
    // signature is the selection-vector semijoin probe's, whichever
    // membership structure each edge gathers into.
    let first_strategy = edges
        .first()
        .map(|e| e.strategy)
        .unwrap_or(SemiJoinStrategy::Hash);
    probe_op.strategy = Some(StrategyRef::SemiJoinProbe {
        strategy: first_strategy,
        probe_masked: false,
    });
    probe_op.n_aggs = Some(aggs.len());
    probe_op.cost_terms = cost_term_names(plan);
    for e in edges {
        probe_op.imports.push(Import {
            kind: match e.strategy {
                SemiJoinStrategy::Hash => ArtifactKind::KeySet,
                SemiJoinStrategy::PositionalBitmap(_) => ArtifactKind::PositionalBitmap,
            },
            table: e.parent.clone(),
            via_fk: Some(FkRef {
                child: fact.to_string(),
                fk_col: e.fk_col.clone(),
                parent: e.parent.clone(),
            }),
        });
    }
    probe_op.locals.push(tile_mask_artifact(fact));
    probe_op.locals.push(Artifact {
        kind: ArtifactKind::SelectionVector,
        table: fact.to_string(),
        rows: TILE,
        scope: Scope::Tile,
    });
    probe_op.allocs.push(Alloc {
        site: "worker-scratch".to_string(),
        charged: true,
    });
    ops.push(probe_op);
    Ok(Program {
        tables,
        fks,
        ops,
        tile_rows: TILE,
    })
}

#[allow(clippy::too_many_arguments)]
fn lower_groupjoin_agg(
    db: &Database,
    plan: &PhysicalPlan,
    probe: &str,
    build: &str,
    build_filter: Option<&Expr>,
    fk_col: &str,
    aggs: &[AggSpec],
    strategy: swole_cost::GroupJoinStrategy,
) -> Result<Program, PlanError> {
    let probe_decl = table_decl(db, probe)?;
    let build_decl = table_decl(db, build)?;
    let (probe_rows, build_rows) = (probe_decl.rows, build_decl.rows);
    let fk = fk_decl(db, probe, fk_col, build)?;

    // Both variants materialize the qualifying mask over the build side:
    // groupjoin consults it per probe row, eager aggregation uses it to
    // delete non-qualifying groups after the merge.
    let mut build_op = Op::new(
        &format!("build-mask({build})"),
        "/groupjoin-agg/build",
        build,
        build_rows,
    );
    if let Some(f) = build_filter {
        build_op.exprs.push(BoundExpr {
            role: ExprRole::Predicate,
            expr: lower_expr(f),
        });
    }
    build_op.strategy = Some(StrategyRef::GroupJoinBuild);
    build_op.exports.push(Artifact {
        kind: ArtifactKind::ValueMask,
        table: build.to_string(),
        rows: build_rows,
        scope: Scope::Plan,
    });
    build_op.allocs.push(Alloc {
        site: "build-mask".to_string(),
        charged: true,
    });

    let mut probe_op = Op::new(
        &format!("probe-agg({probe})"),
        "/groupjoin-agg/probe",
        probe,
        probe_rows,
    );
    probe_op.exprs.extend(agg_inputs(aggs));
    probe_op.exprs.push(BoundExpr {
        role: ExprRole::GroupKey,
        expr: VExpr::Col(fk_col.to_string()),
    });
    probe_op.strategy = Some(StrategyRef::GroupJoin(strategy));
    probe_op.n_aggs = Some(aggs.len());
    probe_op.cost_terms = cost_term_names(plan);
    probe_op.imports.push(Import {
        kind: ArtifactKind::ValueMask,
        table: build.to_string(),
        via_fk: Some(FkRef {
            child: probe.to_string(),
            fk_col: fk_col.to_string(),
            parent: build.to_string(),
        }),
    });
    probe_op.allocs.push(Alloc {
        site: "worker-scratch".to_string(),
        charged: true,
    });
    probe_op.allocs.push(Alloc {
        site: "agg-table".to_string(),
        charged: true,
    });

    Ok(Program {
        tables: vec![probe_decl, build_decl],
        fks: vec![fk],
        ops: vec![build_op, probe_op],
        tile_rows: TILE,
    })
}
