//! Morsel-driven parallel execution scaffolding.
//!
//! The executor partitions each table scan into tile-aligned morsels
//! (`swole_kernels::morsels`). Workers on `std::thread::scope` threads claim
//! morsels from a shared atomic counter — classic morsel-driven scheduling:
//! cheap dynamic load balancing, no work queues — and fold rows into
//! **thread-local** accumulators (scalar slots, `AggTable`s, bitmaps). A
//! merge phase then combines the per-worker partials. Because every merge
//! (i64 add, min, max, bitmap OR) is commutative and associative, and
//! group-by output is sorted, results are bit-identical at any thread
//! count.
//!
//! `threads == 1` runs the same worker body inline on the caller's thread —
//! no scheduling, no atomics — so single-thread execution has no parallel
//! tax and multi-thread equivalence is against the genuine sequential path.
//!
//! **Hardening:** every worker (and the inline sequential path) runs under
//! `catch_unwind`. A panic trips the shared [`ExecCtx`], sibling workers
//! notice at their next morsel boundary and stop claiming, and the panic
//! surfaces as a typed [`PlanError`] — the process never aborts. The same
//! morsel boundary is the cooperative cancellation/deadline check, and the
//! claimed morsel index feeds the fault-injection harness.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::error::PlanError;
use crate::faults;
use crate::runtime::{panic_payload_error, ExecCtx};
use swole_kernels::TILE;

/// A shared dispenser of tile-aligned morsel bounds over `0..n_rows`.
struct MorselQueue {
    next: AtomicUsize,
    n_rows: usize,
    /// Rows per claim; always a whole number of tiles.
    step: usize,
}

impl MorselQueue {
    fn new(n_rows: usize, morsel_rows: usize) -> MorselQueue {
        MorselQueue {
            next: AtomicUsize::new(0),
            n_rows,
            step: morsel_rows.div_ceil(TILE).max(1) * TILE,
        }
    }

    /// Claim the next `(start, len, index)` morsel, or `None` when the scan
    /// is exhausted. The index is `start / step`, so a given index names
    /// the same rows at any thread count — what makes injected faults
    /// deterministic.
    fn claim(&self) -> Option<(usize, usize, usize)> {
        let start = self.next.fetch_add(self.step, Ordering::Relaxed);
        if start >= self.n_rows {
            return None;
        }
        Some((start, self.step.min(self.n_rows - start), start / self.step))
    }

    fn total(&self) -> usize {
        self.n_rows.div_ceil(self.step)
    }
}

/// How a worker left its claim loop.
enum Exit<T> {
    /// Queue exhausted; the worker's partial accumulator.
    Done(T),
    /// The worker itself hit a failure (panic, cancellation, deadline,
    /// budget charge).
    Interrupt(PlanError),
    /// A sibling tripped the context; this worker stopped early and its
    /// partial is meaningless.
    Stopped,
}

/// Why the claim loop stopped before the queue was exhausted.
enum Stop {
    Interrupt(PlanError),
    Sibling,
}

/// One worker: init an accumulator, then claim morsels until the queue is
/// dry, the context trips, or a cooperative check fails. The whole loop —
/// including `init`, so budget charges for worker scratch are covered —
/// runs under `catch_unwind`.
fn run_worker<T, I, B>(ctx: &ExecCtx, queue: &MorselQueue, init: &I, body: &B) -> Exit<T>
where
    I: Fn() -> T,
    B: Fn(&mut T, usize, usize),
{
    let caught = catch_unwind(AssertUnwindSafe(|| -> Result<T, Stop> {
        let mut local = init();
        loop {
            if ctx.tripped() {
                return Err(Stop::Sibling);
            }
            if let Err(e) = ctx.check() {
                return Err(Stop::Interrupt(e));
            }
            let Some((start, len, index)) = queue.claim() else {
                return Ok(local);
            };
            faults::maybe_panic_at_morsel(index);
            body(&mut local, start, len);
            ctx.morsel_done();
        }
    }));
    match caught {
        Ok(Ok(local)) => Exit::Done(local),
        Ok(Err(Stop::Interrupt(e))) => {
            ctx.trip();
            Exit::Interrupt(e)
        }
        Ok(Err(Stop::Sibling)) => Exit::Stopped,
        Err(payload) => {
            ctx.trip();
            Exit::Interrupt(panic_payload_error(payload))
        }
    }
}

/// Pick the most actionable error when several workers failed at once:
/// budget exhaustion and overflow identify the *cause*, a generic panic the
/// symptom, and cancellation/deadline merely the stop request.
fn pick_error(errors: Vec<PlanError>) -> PlanError {
    let rank = |e: &PlanError| match e {
        PlanError::BudgetExceeded { .. } => 0,
        PlanError::Overflow(_) => 1,
        PlanError::ExecutionFailed(_) => 2,
        PlanError::Cancelled { .. } => 3,
        PlanError::DeadlineExceeded { .. } => 4,
        _ => 5,
    };
    errors
        .into_iter()
        .min_by_key(rank)
        .unwrap_or_else(|| PlanError::ExecutionFailed("worker failed without an error".into()))
}

/// Run `body` over every morsel of `0..n_rows` on `threads` workers, each
/// folding into its own `init()`-built accumulator. Returns all per-worker
/// accumulators (workers that claimed no morsel still return theirs) for
/// the caller's merge phase, or the highest-priority failure if any worker
/// was interrupted.
pub(crate) fn run_morsels<T, I, B>(
    ctx: &ExecCtx,
    threads: usize,
    n_rows: usize,
    morsel_rows: usize,
    init: I,
    body: B,
) -> Result<Vec<T>, PlanError>
where
    T: Send,
    I: Fn() -> T + Sync,
    B: Fn(&mut T, usize, usize) + Sync,
{
    let queue = MorselQueue::new(n_rows, morsel_rows);
    ctx.add_morsels_total(queue.total());
    let exits: Vec<Exit<T>> = if threads <= 1 {
        vec![run_worker(ctx, &queue, &init, &body)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let (ctx, queue, init, body) = (&*ctx, &queue, &init, &body);
                    scope.spawn(move || run_worker(ctx, queue, init, body))
                })
                .collect();
            handles
                .into_iter()
                // The worker caught its own panics, so join never fails.
                .map(|h| h.join().unwrap_or(Exit::Stopped))
                .collect()
        })
    };
    let mut partials = Vec::with_capacity(exits.len());
    let mut errors = Vec::new();
    let mut stopped = false;
    for exit in exits {
        match exit {
            Exit::Done(t) => partials.push(t),
            Exit::Interrupt(e) => errors.push(e),
            Exit::Stopped => stopped = true,
        }
    }
    if !errors.is_empty() {
        return Err(pick_error(errors));
    }
    if stopped {
        // Tripped by a failure in an earlier phase of the same query.
        return Err(PlanError::ExecutionFailed(
            "execution stopped by an earlier failure".into(),
        ));
    }
    Ok(partials)
}

/// Fill `out` by handing each worker a disjoint contiguous tile-aligned
/// chunk — for build phases that materialize one byte per row (predicate
/// masks) and need workers writing straight into the shared buffer. Chunk
/// workers run under the same panic-isolation domain as morsel workers.
pub(crate) fn fill_partitioned<B>(
    ctx: &ExecCtx,
    threads: usize,
    out: &mut [u8],
    body: B,
) -> Result<(), PlanError>
where
    B: Fn(usize, &mut [u8]) + Sync,
{
    ctx.check()?;
    let n = out.len();
    if threads <= 1 || n < 2 * TILE {
        return catch_unwind(AssertUnwindSafe(|| body(0, out))).map_err(|payload| {
            ctx.trip();
            panic_payload_error(payload)
        });
    }
    let chunk = n.div_ceil(threads).div_ceil(TILE).max(1) * TILE;
    let results: Vec<Result<(), PlanError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = out
            .chunks_mut(chunk)
            .enumerate()
            .map(|(i, slice)| {
                let body = &body;
                scope.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| body(i * chunk, slice)))
                        .map_err(panic_payload_error)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(PlanError::ExecutionFailed("chunk worker died".into())))
            })
            .collect()
    });
    let errors: Vec<PlanError> = results.into_iter().filter_map(Result::err).collect();
    if errors.is_empty() {
        Ok(())
    } else {
        ctx.trip();
        Err(pick_error(errors))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_claimed_exactly_once() {
        for threads in [1usize, 2, 7] {
            for n in [0usize, 1, TILE, 10 * TILE + 13] {
                let ctx = ExecCtx::unbounded();
                let partials = run_morsels(
                    &ctx,
                    threads,
                    n,
                    2 * TILE,
                    Vec::new,
                    |seen: &mut Vec<(usize, usize)>, start, len| seen.push((start, len)),
                )
                .expect("no faults armed");
                let mut all: Vec<_> = partials.into_iter().flatten().collect();
                all.sort_unstable();
                let covered: usize = all.iter().map(|&(_, l)| l).sum();
                assert_eq!(covered, n, "threads={threads} n={n}");
                let mut end = 0;
                for (s, l) in all {
                    assert_eq!(s, end);
                    end = s + l;
                }
            }
        }
    }

    #[test]
    fn fill_partitioned_covers_buffer() {
        for threads in [1usize, 3, 8] {
            let ctx = ExecCtx::unbounded();
            let mut out = vec![0u8; 5 * TILE + 100];
            fill_partitioned(&ctx, threads, &mut out, |start, slice| {
                for (i, b) in slice.iter_mut().enumerate() {
                    *b = ((start + i) % 251) as u8;
                }
            })
            .expect("no faults armed");
            for (i, &b) in out.iter().enumerate() {
                assert_eq!(b, (i % 251) as u8, "threads={threads} i={i}");
            }
        }
    }

    #[test]
    fn worker_panic_is_contained() {
        for threads in [1usize, 4] {
            let ctx = ExecCtx::unbounded();
            let err = run_morsels(
                &ctx,
                threads,
                8 * TILE,
                TILE,
                || (),
                |_, start, _| {
                    if start == 3 * TILE {
                        panic!("boom at {start}");
                    }
                },
            )
            .expect_err("panic must surface as an error");
            match err {
                PlanError::ExecutionFailed(msg) => assert!(msg.contains("boom"), "{msg}"),
                other => panic!("unexpected error: {other:?}"),
            }
            assert!(ctx.tripped());
        }
    }

    #[test]
    fn typed_panic_payload_passes_through() {
        let ctx = ExecCtx::unbounded();
        let err = run_morsels(
            &ctx,
            2,
            4 * TILE,
            TILE,
            || (),
            |_, _, _| {
                std::panic::panic_any(PlanError::Overflow("synthetic".into()));
            },
        )
        .expect_err("typed panic must surface");
        assert_eq!(err, PlanError::Overflow("synthetic".into()));
    }
}
