//! Morsel-driven parallel execution scaffolding.
//!
//! The executor partitions each table scan into tile-aligned morsels
//! (`swole_kernels::morsels`). Workers on `std::thread::scope` threads claim
//! morsels from a shared atomic counter — classic morsel-driven scheduling:
//! cheap dynamic load balancing, no work queues — and fold rows into
//! **thread-local** accumulators (scalar slots, `AggTable`s, bitmaps). A
//! merge phase then combines the per-worker partials. Because every merge
//! (i64 add, min, max, bitmap OR) is commutative and associative, and
//! group-by output is sorted, results are bit-identical at any thread
//! count.
//!
//! `threads == 1` runs the same worker body inline on the caller's thread —
//! no scheduling, no atomics — so single-thread execution has no parallel
//! tax and multi-thread equivalence is against the genuine sequential path.

use std::sync::atomic::{AtomicUsize, Ordering};
use swole_kernels::{morsels, TILE};

/// A shared dispenser of tile-aligned morsel bounds over `0..n_rows`.
struct MorselQueue {
    next: AtomicUsize,
    n_rows: usize,
    /// Rows per claim; always a whole number of tiles.
    step: usize,
}

impl MorselQueue {
    fn new(n_rows: usize, morsel_rows: usize) -> MorselQueue {
        MorselQueue {
            next: AtomicUsize::new(0),
            n_rows,
            step: morsel_rows.div_ceil(TILE).max(1) * TILE,
        }
    }

    /// Claim the next `(start, len)` morsel, or `None` when the scan is
    /// exhausted.
    fn claim(&self) -> Option<(usize, usize)> {
        let start = self.next.fetch_add(self.step, Ordering::Relaxed);
        if start >= self.n_rows {
            return None;
        }
        Some((start, self.step.min(self.n_rows - start)))
    }
}

/// Run `body` over every morsel of `0..n_rows` on `threads` workers, each
/// folding into its own `init()`-built accumulator. Returns all per-worker
/// accumulators (workers that claimed no morsel still return theirs) for
/// the caller's merge phase.
pub(crate) fn run_morsels<T, I, B>(
    threads: usize,
    n_rows: usize,
    morsel_rows: usize,
    init: I,
    body: B,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> T + Sync,
    B: Fn(&mut T, usize, usize) + Sync,
{
    if threads <= 1 {
        let mut local = init();
        for (start, len) in morsels(n_rows, morsel_rows) {
            body(&mut local, start, len);
        }
        return vec![local];
    }
    let queue = MorselQueue::new(n_rows, morsel_rows);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let (queue, init, body) = (&queue, &init, &body);
                scope.spawn(move || {
                    let mut local = init();
                    while let Some((start, len)) = queue.claim() {
                        body(&mut local, start, len);
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("morsel worker panicked"))
            .collect()
    })
}

/// Fill `out` by handing each worker a disjoint contiguous tile-aligned
/// chunk — for build phases that materialize one byte per row (predicate
/// masks) and need workers writing straight into the shared buffer.
pub(crate) fn fill_partitioned<B>(threads: usize, out: &mut [u8], body: B)
where
    B: Fn(usize, &mut [u8]) + Sync,
{
    let n = out.len();
    if threads <= 1 || n < 2 * TILE {
        body(0, out);
        return;
    }
    let chunk = n.div_ceil(threads).div_ceil(TILE).max(1) * TILE;
    std::thread::scope(|scope| {
        for (i, slice) in out.chunks_mut(chunk).enumerate() {
            let body = &body;
            scope.spawn(move || body(i * chunk, slice));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_claimed_exactly_once() {
        for threads in [1usize, 2, 7] {
            for n in [0usize, 1, TILE, 10 * TILE + 13] {
                let partials = run_morsels(
                    threads,
                    n,
                    2 * TILE,
                    Vec::new,
                    |seen: &mut Vec<(usize, usize)>, start, len| seen.push((start, len)),
                );
                let mut all: Vec<_> = partials.into_iter().flatten().collect();
                all.sort_unstable();
                let covered: usize = all.iter().map(|&(_, l)| l).sum();
                assert_eq!(covered, n, "threads={threads} n={n}");
                let mut end = 0;
                for (s, l) in all {
                    assert_eq!(s, end);
                    end = s + l;
                }
            }
        }
    }

    #[test]
    fn fill_partitioned_covers_buffer() {
        for threads in [1usize, 3, 8] {
            let mut out = vec![0u8; 5 * TILE + 100];
            fill_partitioned(threads, &mut out, |start, slice| {
                for (i, b) in slice.iter_mut().enumerate() {
                    *b = ((start + i) % 251) as u8;
                }
            });
            for (i, &b) in out.iter().enumerate() {
                assert_eq!(b, (i % 251) as u8, "threads={threads} i={i}");
            }
        }
    }
}
