//! Engine errors.

use std::fmt;

/// Errors surfaced by planning or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A referenced table does not exist in the catalog.
    UnknownTable(String),
    /// A referenced column does not exist in its table.
    UnknownColumn {
        /// Table searched.
        table: String,
        /// Missing column.
        column: String,
    },
    /// The plan shape is not one the access-aware planner supports.
    Unsupported(String),
    /// An expression is invalid in its context (e.g. LIKE on a non-dictionary
    /// column).
    InvalidExpr(String),
    /// A join was requested without the foreign-key index positional
    /// bitmaps require and without a hash fallback key.
    MissingFkIndex {
        /// Child table.
        child: String,
        /// FK column.
        fk_column: String,
    },
    /// A scalar accessor was used on a result that does not have exactly
    /// one row.
    NotScalar {
        /// Number of rows the result actually has.
        rows: usize,
    },
    /// A result-column accessor named a column the result does not have.
    UnknownResultColumn(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            PlanError::UnknownColumn { table, column } => {
                write!(f, "unknown column {column} in table {table}")
            }
            PlanError::Unsupported(what) => write!(f, "unsupported plan shape: {what}"),
            PlanError::InvalidExpr(what) => write!(f, "invalid expression: {what}"),
            PlanError::MissingFkIndex { child, fk_column } => {
                write!(f, "no foreign-key index registered for {child}.{fk_column}")
            }
            PlanError::NotScalar { rows } => {
                write!(f, "result is not scalar: {rows} rows (expected exactly 1)")
            }
            PlanError::UnknownResultColumn(c) => {
                write!(f, "no column named {c} in the result")
            }
        }
    }
}

impl std::error::Error for PlanError {}
