//! Engine errors.

use std::fmt;

use swole_runtime::{AdmissionError, RuntimeError};

/// Errors surfaced by planning or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A referenced table does not exist in the catalog.
    UnknownTable(String),
    /// A referenced column does not exist in its table.
    UnknownColumn {
        /// Table searched.
        table: String,
        /// Missing column.
        column: String,
    },
    /// The plan shape is not one the access-aware planner supports.
    Unsupported(String),
    /// An expression is invalid in its context (e.g. LIKE on a non-dictionary
    /// column).
    InvalidExpr(String),
    /// A join was requested without the foreign-key index positional
    /// bitmaps require and without a hash fallback key.
    MissingFkIndex {
        /// Child table.
        child: String,
        /// FK column.
        fk_column: String,
    },
    /// A scalar accessor was used on a result that does not have exactly
    /// one row.
    NotScalar {
        /// Number of rows the result actually has.
        rows: usize,
    },
    /// A result-column accessor named a column the result does not have.
    UnknownResultColumn(String),
    /// A positional result accessor was given an index outside the result
    /// (or a malformed result is narrower than its column list claims).
    IndexOutOfRange {
        /// Which axis the index ran past: `"row"` or `"column"`.
        axis: &'static str,
        /// The out-of-range index the caller passed.
        index: usize,
        /// The number of valid positions on that axis.
        len: usize,
    },
    /// A morsel worker panicked (or the executor hit an unexpected state).
    /// The panic is contained to the query: sibling workers are cancelled
    /// at their next morsel boundary and the process keeps running.
    ExecutionFailed(String),
    /// The query was cancelled through [`crate::ExecHandle::cancel`].
    Cancelled {
        /// Morsels fully processed before the cancellation took effect.
        morsels_done: usize,
        /// Morsels the execution had scheduled in total.
        morsels_total: usize,
    },
    /// The session deadline ([`crate::EngineBuilder::deadline`]) elapsed
    /// mid-execution.
    DeadlineExceeded {
        /// Morsels fully processed before the deadline tripped.
        morsels_done: usize,
        /// Morsels the execution had scheduled in total.
        morsels_total: usize,
    },
    /// A memory charge would push the query past the session budget
    /// ([`crate::EngineBuilder::memory_budget`]).
    BudgetExceeded {
        /// Bytes the failing allocation site asked for.
        requested: usize,
        /// Bytes already charged when the request was made.
        used: usize,
        /// The session budget in bytes (0 for an injected allocation
        /// failure).
        budget: usize,
    },
    /// The query stopped making progress: no morsel completed within the
    /// configured watchdog window ([`crate::EngineBuilder::stall_window`]),
    /// so the engine cancelled it rather than let it wedge an execution
    /// slot. Not retryable — a stalled plan would stall again.
    Stalled {
        /// Morsels fully processed before the stall was detected.
        morsels_done: usize,
        /// Morsels the execution had scheduled in total.
        morsels_total: usize,
        /// The watchdog window that elapsed without progress, in ms.
        window_ms: u64,
    },
    /// The engine is shutting down: either admission refused the query at
    /// the front door, or an in-flight query was hard-aborted after the
    /// drain deadline passed (see [`crate::Engine::shutdown`]). Retry
    /// against a different (or restarted) engine, not this one.
    Shutdown {
        /// Morsels fully processed before the abort took effect (0 when
        /// rejected at admission).
        morsels_done: usize,
        /// Morsels the execution had scheduled in total.
        morsels_total: usize,
    },
    /// Admission control rejected the query before execution started: all
    /// execution slots were busy and the bounded wait queue was full, or
    /// the query's deadline expired before a slot freed up (see
    /// [`crate::EngineBuilder::admission`]). Not retryable — retrying
    /// through the fallback would bypass the very limit that rejected it.
    Admission(AdmissionError),
    /// `i64` overflow was detected while aggregating. Pullup strategies do
    /// wasted work on filtered tuples, so the overflow may be spurious; the
    /// engine retries such queries under the data-centric strategy.
    Overflow(String),
    /// Parameter binding failed: wrong number of values for a prepared
    /// statement's placeholders, a value of a type the slot cannot accept
    /// (e.g. a string in arithmetic), or executing a plan that still
    /// contains unbound placeholders.
    BindMismatch(String),
    /// SQL text handed to [`crate::Engine::prepare_sql`] failed to parse.
    Sql {
        /// What the parser objected to.
        message: String,
        /// Byte offset into the SQL text.
        position: usize,
    },
    /// The composed physical plan failed static verification
    /// ([`crate::EngineBuilder::verify`]). Not retryable: the plan itself is
    /// ill-formed, so re-running it cannot help.
    Verification(swole_verify::VerifyError),
}

impl PlanError {
    /// `true` for runtime failures the engine may retry once under the
    /// data-centric fallback strategy (worker panics, budget exhaustion,
    /// detected overflow). Cancellation and deadline expiry are *not*
    /// retryable: the caller asked execution to stop. Neither are
    /// [`PlanError::Stalled`] (a stalled plan would stall again) or
    /// [`PlanError::Shutdown`] (the engine is going away).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            PlanError::ExecutionFailed(_)
                | PlanError::BudgetExceeded { .. }
                | PlanError::Overflow(_)
        )
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            PlanError::UnknownColumn { table, column } => {
                write!(f, "unknown column {column} in table {table}")
            }
            PlanError::Unsupported(what) => write!(f, "unsupported plan shape: {what}"),
            PlanError::InvalidExpr(what) => write!(f, "invalid expression: {what}"),
            PlanError::MissingFkIndex { child, fk_column } => {
                write!(f, "no foreign-key index registered for {child}.{fk_column}")
            }
            PlanError::NotScalar { rows } => {
                write!(f, "result is not scalar: {rows} rows (expected exactly 1)")
            }
            PlanError::UnknownResultColumn(c) => {
                write!(f, "no column named {c} in the result")
            }
            PlanError::IndexOutOfRange { axis, index, len } => {
                write!(f, "{axis} index {index} out of range (result has {len})")
            }
            PlanError::ExecutionFailed(msg) => {
                write!(f, "execution failed: {msg}")
            }
            PlanError::Cancelled {
                morsels_done,
                morsels_total,
            } => write!(
                f,
                "query cancelled after {morsels_done}/{morsels_total} morsels"
            ),
            PlanError::DeadlineExceeded {
                morsels_done,
                morsels_total,
            } => write!(
                f,
                "deadline exceeded after {morsels_done}/{morsels_total} morsels"
            ),
            PlanError::Stalled {
                morsels_done,
                morsels_total,
                window_ms,
            } => write!(
                f,
                "query stalled: no morsel completed within {window_ms} ms \
                 ({morsels_done}/{morsels_total} morsels done)"
            ),
            PlanError::Shutdown {
                morsels_done,
                morsels_total,
            } => write!(
                f,
                "query aborted by engine shutdown after \
                 {morsels_done}/{morsels_total} morsels"
            ),
            PlanError::BudgetExceeded {
                requested,
                used,
                budget,
            } => write!(
                f,
                "memory budget exceeded: requested {requested} B with {used} B \
                 charged of a {budget} B budget"
            ),
            PlanError::Admission(err) => write!(f, "admission rejected: {err}"),
            PlanError::Overflow(what) => write!(f, "i64 overflow detected: {what}"),
            PlanError::BindMismatch(what) => write!(f, "bind mismatch: {what}"),
            PlanError::Sql { message, position } => {
                write!(f, "sql error at {position}: {message}")
            }
            PlanError::Verification(err) => {
                write!(f, "plan verification failed: {err}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Lift a shared-runtime failure into the engine's error space. Worker
/// panics surface as [`PlanError::ExecutionFailed`]; everything else maps
/// onto its structurally identical variant.
impl From<RuntimeError> for PlanError {
    fn from(e: RuntimeError) -> PlanError {
        match e {
            RuntimeError::Cancelled {
                morsels_done,
                morsels_total,
            } => PlanError::Cancelled {
                morsels_done,
                morsels_total,
            },
            RuntimeError::DeadlineExceeded {
                morsels_done,
                morsels_total,
            } => PlanError::DeadlineExceeded {
                morsels_done,
                morsels_total,
            },
            RuntimeError::BudgetExceeded {
                requested,
                used,
                budget,
            } => PlanError::BudgetExceeded {
                requested,
                used,
                budget,
            },
            RuntimeError::Stalled {
                morsels_done,
                morsels_total,
                window_ms,
            } => PlanError::Stalled {
                morsels_done,
                morsels_total,
                window_ms,
            },
            RuntimeError::Shutdown {
                morsels_done,
                morsels_total,
            } => PlanError::Shutdown {
                morsels_done,
                morsels_total,
            },
            RuntimeError::Admission(err) => PlanError::Admission(err),
            RuntimeError::Panic(msg) => PlanError::ExecutionFailed(msg),
            RuntimeError::Stopped => {
                PlanError::ExecutionFailed("execution stopped by an earlier failure".into())
            }
        }
    }
}
