//! Expressions with vectorized (tile-wise) and row-wise evaluation.
//!
//! The vectorized evaluators are what the engine's generated pipelines use:
//! masks are `u8` 0/1 arrays (the `cmp` arrays of the paper's figures) and
//! values are widened `i64`. The row-wise evaluator backs the naive
//! reference interpreter.

use crate::error::PlanError;
use swole_storage::{like_match, ColumnData, Table};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `<>`
    Ne,
}

impl CmpOp {
    fn apply(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }
}

/// Aggregate functions.
///
/// `Sum`/`Count` compose with value masking (a masked contribution is 0);
/// `Min`/`Max` "may require minor additional bookkeeping" (§ III-A), which
/// the planner realises by forcing the hybrid path for them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `sum(expr)`
    Sum,
    /// `count(*)`
    Count,
    /// `min(expr)`
    Min,
    /// `max(expr)`
    Max,
}

/// A scalar expression over one table's columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Col(String),
    /// Integer literal (dates/decimals are integers in this storage model).
    Lit(i64),
    /// A prepared-statement placeholder (`?` / `$n` in SQL), identified by
    /// its 0-based ordinal. Plans containing parameters cannot be planned or
    /// executed directly — [`crate::PreparedStatement::bind`] substitutes
    /// every placeholder with a bound value first.
    Param(usize),
    /// Comparison producing a boolean.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic: `+`.
    Add(Box<Expr>, Box<Expr>),
    /// Arithmetic: `-`.
    Sub(Box<Expr>, Box<Expr>),
    /// Arithmetic: `*`.
    Mul(Box<Expr>, Box<Expr>),
    /// Arithmetic: `/` (integer).
    Div(Box<Expr>, Box<Expr>),
    /// Boolean conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Boolean disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Boolean negation.
    Not(Box<Expr>),
    /// `col LIKE pattern` over a dictionary-encoded string column; the
    /// pattern is evaluated once per dictionary entry.
    Like {
        /// Dictionary column name.
        col: String,
        /// SQL LIKE pattern (`%`, `_`).
        pattern: String,
    },
    /// `col IN (values...)` over a dictionary-encoded string column.
    InList {
        /// Dictionary column name.
        col: String,
        /// String values.
        values: Vec<String>,
    },
    /// `case when <cond> then <a> else <b> end`. The engine evaluates it
    /// with value masking (§ III-A: "we can unconditionally evaluate all
    /// cases and then mask the non-qualifying results").
    Case {
        /// Condition.
        when: Box<Expr>,
        /// Value when true.
        then: Box<Expr>,
        /// Value when false.
        otherwise: Box<Expr>,
    },
}

impl Expr {
    /// Convenience: `col(name)`.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    /// Convenience: literal.
    pub fn lit(v: i64) -> Expr {
        Expr::Lit(v)
    }

    /// Convenience: `self < other` etc.
    pub fn cmp(self, op: CmpOp, other: Expr) -> Expr {
        Expr::Cmp(op, Box::new(self), Box::new(other))
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `self * other`.
    #[allow(clippy::should_implement_trait)] // builder DSL, not arithmetic on Expr values
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(other))
    }

    /// Column names referenced by this expression, in first-appearance
    /// order without duplicates (feeds the cost model's `n_cols`).
    pub fn columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        let mut push = |name: &String| {
            if !out.contains(name) {
                out.push(name.clone());
            }
        };
        match self {
            Expr::Col(name) => push(name),
            Expr::Lit(_) | Expr::Param(_) => {}
            Expr::Like { col, .. } | Expr::InList { col, .. } => push(col),
            Expr::Cmp(_, a, b)
            | Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Not(a) => a.collect_columns(out),
            Expr::Case {
                when,
                then,
                otherwise,
            } => {
                when.collect_columns(out);
                then.collect_columns(out);
                otherwise.collect_columns(out);
            }
        }
    }

    /// Estimated computation cycles per tuple (the `comp` introspection of
    /// § III-A), using `swole-cost`'s per-operator costs.
    pub fn comp_cycles(&self) -> f64 {
        use swole_cost::comp::ArithOp;
        match self {
            Expr::Col(_) | Expr::Lit(_) | Expr::Param(_) => 0.0,
            Expr::Cmp(_, a, b) => ArithOp::Cmp.cycles() + a.comp_cycles() + b.comp_cycles(),
            Expr::Add(a, b) | Expr::Sub(a, b) => {
                ArithOp::AddSub.cycles() + a.comp_cycles() + b.comp_cycles()
            }
            Expr::Mul(a, b) => ArithOp::Mul.cycles() + a.comp_cycles() + b.comp_cycles(),
            Expr::Div(a, b) => ArithOp::Div.cycles() + a.comp_cycles() + b.comp_cycles(),
            Expr::And(a, b) | Expr::Or(a, b) => {
                ArithOp::Cmp.cycles() + a.comp_cycles() + b.comp_cycles()
            }
            Expr::Not(a) => ArithOp::Cmp.cycles() + a.comp_cycles(),
            // Dictionary predicates cost one table load per row.
            Expr::Like { .. } | Expr::InList { .. } => ArithOp::Cmp.cycles(),
            Expr::Case {
                when,
                then,
                otherwise,
            } => when.comp_cycles() + then.comp_cycles() + otherwise.comp_cycles(),
        }
    }

    /// Placeholder ordinals referenced by this expression, in appearance
    /// order with duplicates kept.
    pub fn params(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_params(&mut out);
        out
    }

    fn collect_params(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Param(i) => out.push(*i),
            Expr::Col(_) | Expr::Lit(_) | Expr::Like { .. } | Expr::InList { .. } => {}
            Expr::Cmp(_, a, b)
            | Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b) => {
                a.collect_params(out);
                b.collect_params(out);
            }
            Expr::Not(a) => a.collect_params(out),
            Expr::Case {
                when,
                then,
                otherwise,
            } => {
                when.collect_params(out);
                then.collect_params(out);
                otherwise.collect_params(out);
            }
        }
    }

    /// Validate column references and dictionary requirements against a
    /// table.
    pub fn validate(&self, table: &Table) -> Result<(), PlanError> {
        if let Some(i) = self.params().first() {
            return Err(PlanError::BindMismatch(format!(
                "plan still contains unbound placeholder ${} — bind it through \
                 a prepared statement",
                i + 1
            )));
        }
        for name in self.columns() {
            if table.column(&name).is_none() {
                return Err(PlanError::UnknownColumn {
                    table: table.name().to_string(),
                    column: name,
                });
            }
        }
        self.validate_dicts(table)
    }

    fn validate_dicts(&self, table: &Table) -> Result<(), PlanError> {
        match self {
            Expr::Like { col, .. } | Expr::InList { col, .. } => match table.column(col) {
                Some(ColumnData::Dict(_)) => Ok(()),
                Some(_) => Err(PlanError::InvalidExpr(format!(
                    "LIKE/IN requires a dictionary column, {col} is not"
                ))),
                None => Err(PlanError::UnknownColumn {
                    table: table.name().to_string(),
                    column: col.clone(),
                }),
            },
            Expr::Cmp(_, a, b)
            | Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b) => {
                a.validate_dicts(table)?;
                b.validate_dicts(table)
            }
            Expr::Not(a) => a.validate_dicts(table),
            Expr::Case {
                when,
                then,
                otherwise,
            } => {
                when.validate_dicts(table)?;
                then.validate_dicts(table)?;
                otherwise.validate_dicts(table)
            }
            _ => Ok(()),
        }
    }

    /// Row-wise evaluation (interpreter / sampling). Booleans are 0/1.
    pub fn eval_row(&self, table: &Table, row: usize) -> i64 {
        match self {
            Expr::Col(name) => table.column_required(name).get_i64(row),
            Expr::Lit(v) => *v,
            // Unreachable after validation; evaluate defensively as 0.
            Expr::Param(_) => 0,
            Expr::Cmp(op, a, b) => op.apply(a.eval_row(table, row), b.eval_row(table, row)) as i64,
            // Explicit wrapping arithmetic: identical results in debug and
            // release builds (division by zero still panics; the engine's
            // isolation domain converts that into a typed error).
            Expr::Add(a, b) => a.eval_row(table, row).wrapping_add(b.eval_row(table, row)),
            Expr::Sub(a, b) => a.eval_row(table, row).wrapping_sub(b.eval_row(table, row)),
            Expr::Mul(a, b) => a.eval_row(table, row).wrapping_mul(b.eval_row(table, row)),
            Expr::Div(a, b) => a.eval_row(table, row).wrapping_div(b.eval_row(table, row)),
            Expr::And(a, b) => (a.eval_row(table, row) != 0 && b.eval_row(table, row) != 0) as i64,
            Expr::Or(a, b) => (a.eval_row(table, row) != 0 || b.eval_row(table, row) != 0) as i64,
            Expr::Not(a) => (a.eval_row(table, row) == 0) as i64,
            Expr::Like { col, pattern } => {
                let dict = table
                    .column_required(col)
                    .as_dict()
                    .expect("validated dictionary column");
                like_match(pattern, dict.value(row)) as i64
            }
            Expr::InList { col, values } => {
                let dict = table
                    .column_required(col)
                    .as_dict()
                    .expect("validated dictionary column");
                values.iter().any(|v| v == dict.value(row)) as i64
            }
            Expr::Case {
                when,
                then,
                otherwise,
            } => {
                if when.eval_row(table, row) != 0 {
                    then.eval_row(table, row)
                } else {
                    otherwise.eval_row(table, row)
                }
            }
        }
    }

    /// Vectorized boolean evaluation over rows `[start, start+out.len())`
    /// into a 0/1 mask — the prepass loop of the generated code.
    pub fn eval_mask(&self, table: &Table, start: usize, out: &mut [u8]) {
        let len = out.len();
        match self {
            Expr::And(a, b) => {
                a.eval_mask(table, start, out);
                let mut rhs = vec![0u8; len];
                b.eval_mask(table, start, &mut rhs);
                swole_kernels::predicate::and_into(out, &rhs);
            }
            Expr::Or(a, b) => {
                a.eval_mask(table, start, out);
                let mut rhs = vec![0u8; len];
                b.eval_mask(table, start, &mut rhs);
                swole_kernels::predicate::or_into(out, &rhs);
            }
            Expr::Not(a) => {
                a.eval_mask(table, start, out);
                swole_kernels::predicate::not_inplace(out);
            }
            Expr::Cmp(op, a, b) => {
                let mut av = vec![0i64; len];
                let mut bv = vec![0i64; len];
                a.eval_values(table, start, &mut av);
                b.eval_values(table, start, &mut bv);
                for j in 0..len {
                    out[j] = op.apply(av[j], bv[j]) as u8;
                }
            }
            Expr::Like { col, pattern } => {
                let dict = table
                    .column_required(col)
                    .as_dict()
                    .expect("validated dictionary column");
                // "Computed on the fly": one match per dictionary entry,
                // then a sequential code-table scan.
                let matches = dict.matching_codes(|v| like_match(pattern, v));
                swole_kernels::predicate::in_code_table(
                    &dict.codes()[start..start + len],
                    &matches,
                    out,
                );
            }
            Expr::InList { col, values } => {
                let dict = table
                    .column_required(col)
                    .as_dict()
                    .expect("validated dictionary column");
                let matches = dict.matching_codes(|v| values.iter().any(|x| x == v));
                swole_kernels::predicate::in_code_table(
                    &dict.codes()[start..start + len],
                    &matches,
                    out,
                );
            }
            other => {
                // Generic: nonzero value ⇒ true.
                let mut vals = vec![0i64; len];
                other.eval_values(table, start, &mut vals);
                for j in 0..len {
                    out[j] = (vals[j] != 0) as u8;
                }
            }
        }
    }

    /// Vectorized value evaluation over rows `[start, start+out.len())`.
    ///
    /// CASE is evaluated with **value masking** (§ III-A): both branches run
    /// unconditionally and the mask selects per row, keeping the access
    /// pattern sequential.
    pub fn eval_values(&self, table: &Table, start: usize, out: &mut [i64]) {
        let len = out.len();
        match self {
            Expr::Col(name) => copy_column(table.column_required(name), start, out),
            Expr::Lit(v) => out.fill(*v),
            // Unreachable after validation; evaluate defensively as 0.
            Expr::Param(_) => out.fill(0),
            // Arithmetic wraps explicitly — same results under debug,
            // release, and `-C overflow-checks=on` builds.
            Expr::Add(a, b) => {
                a.eval_values(table, start, out);
                let mut rhs = vec![0i64; len];
                b.eval_values(table, start, &mut rhs);
                for j in 0..len {
                    out[j] = out[j].wrapping_add(rhs[j]);
                }
            }
            Expr::Sub(a, b) => {
                a.eval_values(table, start, out);
                let mut rhs = vec![0i64; len];
                b.eval_values(table, start, &mut rhs);
                for j in 0..len {
                    out[j] = out[j].wrapping_sub(rhs[j]);
                }
            }
            Expr::Mul(a, b) => {
                a.eval_values(table, start, out);
                let mut rhs = vec![0i64; len];
                b.eval_values(table, start, &mut rhs);
                for j in 0..len {
                    out[j] = out[j].wrapping_mul(rhs[j]);
                }
            }
            Expr::Div(a, b) => {
                a.eval_values(table, start, out);
                let mut rhs = vec![0i64; len];
                b.eval_values(table, start, &mut rhs);
                for j in 0..len {
                    out[j] = out[j].wrapping_div(rhs[j]);
                }
            }
            Expr::Case {
                when,
                then,
                otherwise,
            } => {
                let mut mask = vec![0u8; len];
                when.eval_mask(table, start, &mut mask);
                then.eval_values(table, start, out);
                let mut other = vec![0i64; len];
                otherwise.eval_values(table, start, &mut other);
                for j in 0..len {
                    // 0/1 blend: neither product nor their sum can overflow.
                    let m = mask[j] as i64;
                    out[j] = out[j] * m + other[j] * (1 - m);
                }
            }
            boolean => {
                let mut mask = vec![0u8; len];
                boolean.eval_mask(table, start, &mut mask);
                for j in 0..len {
                    out[j] = mask[j] as i64;
                }
            }
        }
    }
}

/// Widen a column slice into the `i64` working buffer.
fn copy_column(col: &ColumnData, start: usize, out: &mut [i64]) {
    let len = out.len();
    match col {
        ColumnData::I8(v) => {
            for (o, &x) in out.iter_mut().zip(&v[start..start + len]) {
                *o = x as i64;
            }
        }
        ColumnData::I16(v) => {
            for (o, &x) in out.iter_mut().zip(&v[start..start + len]) {
                *o = x as i64;
            }
        }
        ColumnData::I32(v) => {
            for (o, &x) in out.iter_mut().zip(&v[start..start + len]) {
                *o = x as i64;
            }
        }
        ColumnData::I64(v) => out.copy_from_slice(&v[start..start + len]),
        ColumnData::U32(v) => {
            for (o, &x) in out.iter_mut().zip(&v[start..start + len]) {
                *o = x as i64;
            }
        }
        ColumnData::Dict(d) => {
            for (o, &x) in out.iter_mut().zip(&d.codes()[start..start + len]) {
                *o = x as i64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swole_storage::DictColumn;

    fn table() -> Table {
        Table::new("t")
            .with_column("x", ColumnData::I32(vec![1, 5, 13, 20, -3]))
            .with_column("a", ColumnData::I64(vec![10, 20, 30, 40, 50]))
            .with_column(
                "s",
                ColumnData::Dict(DictColumn::encode(&[
                    "PROMO A", "STD", "PROMO B", "STD", "X",
                ])),
            )
    }

    fn mask_of(e: &Expr, t: &Table) -> Vec<u8> {
        let mut out = vec![0u8; t.len()];
        e.eval_mask(t, 0, &mut out);
        out
    }

    fn values_of(e: &Expr, t: &Table) -> Vec<i64> {
        let mut out = vec![0i64; t.len()];
        e.eval_values(t, 0, &mut out);
        out
    }

    #[test]
    fn comparisons_and_boolean_logic() {
        let t = table();
        let e = Expr::col("x").cmp(CmpOp::Lt, Expr::lit(13));
        assert_eq!(mask_of(&e, &t), vec![1, 1, 0, 0, 1]);
        let e2 = e.clone().and(Expr::col("x").cmp(CmpOp::Gt, Expr::lit(0)));
        assert_eq!(mask_of(&e2, &t), vec![1, 1, 0, 0, 0]);
        let e3 = Expr::Not(Box::new(e2.clone()));
        assert_eq!(mask_of(&e3, &t), vec![0, 0, 1, 1, 1]);
        let e4 = e2.or(Expr::col("x").cmp(CmpOp::Eq, Expr::lit(13)));
        assert_eq!(mask_of(&e4, &t), vec![1, 1, 1, 0, 0]);
    }

    #[test]
    fn arithmetic_and_case() {
        let t = table();
        let e = Expr::col("a").mul(Expr::lit(2));
        assert_eq!(values_of(&e, &t), vec![20, 40, 60, 80, 100]);
        let case = Expr::Case {
            when: Box::new(Expr::col("x").cmp(CmpOp::Lt, Expr::lit(13))),
            then: Box::new(Expr::col("a")),
            otherwise: Box::new(Expr::lit(0)),
        };
        assert_eq!(values_of(&case, &t), vec![10, 20, 0, 0, 50]);
    }

    #[test]
    fn like_and_in_over_dictionary() {
        let t = table();
        let like = Expr::Like {
            col: "s".into(),
            pattern: "PROMO%".into(),
        };
        assert_eq!(mask_of(&like, &t), vec![1, 0, 1, 0, 0]);
        let inlist = Expr::InList {
            col: "s".into(),
            values: vec!["STD".into(), "X".into()],
        };
        assert_eq!(mask_of(&inlist, &t), vec![0, 1, 0, 1, 1]);
    }

    #[test]
    fn row_eval_matches_vectorized() {
        let t = table();
        let exprs = vec![
            Expr::col("x").cmp(CmpOp::Ge, Expr::lit(5)),
            Expr::col("a").mul(Expr::col("x")),
            Expr::Case {
                when: Box::new(Expr::col("x").cmp(CmpOp::Lt, Expr::lit(10))),
                then: Box::new(Expr::col("a").mul(Expr::lit(3))),
                otherwise: Box::new(Expr::Sub(Box::new(Expr::col("a")), Box::new(Expr::lit(1)))),
            },
        ];
        for e in exprs {
            let vec = values_of(&e, &t);
            for (row, v) in vec.iter().enumerate() {
                assert_eq!(*v, e.eval_row(&t, row), "{e:?} row {row}");
            }
        }
    }

    #[test]
    fn columns_and_comp_introspection() {
        let e = Expr::col("a")
            .mul(Expr::col("x"))
            .and(Expr::col("a").cmp(CmpOp::Lt, Expr::lit(5)));
        assert_eq!(e.columns(), vec!["a".to_string(), "x".to_string()]);
        assert!(e.comp_cycles() > 0.0);
        let div = Expr::Div(Box::new(Expr::col("a")), Box::new(Expr::col("x")));
        assert!(div.comp_cycles() > e.comp_cycles());
    }

    #[test]
    fn validation_catches_errors() {
        let t = table();
        assert!(Expr::col("missing").validate(&t).is_err());
        let bad_like = Expr::Like {
            col: "x".into(),
            pattern: "%".into(),
        };
        assert!(matches!(
            bad_like.validate(&t),
            Err(PlanError::InvalidExpr(_))
        ));
        assert!(Expr::col("x").validate(&t).is_ok());
    }

    #[test]
    fn tiled_evaluation_with_offset() {
        let t = table();
        let e = Expr::col("a");
        let mut out = vec![0i64; 2];
        e.eval_values(&t, 2, &mut out);
        assert_eq!(out, vec![30, 40]);
        let p = Expr::col("x").cmp(CmpOp::Lt, Expr::lit(13));
        let mut m = vec![0u8; 2];
        p.eval_mask(&t, 3, &mut m);
        assert_eq!(m, vec![0, 1]);
    }
}
