//! Sampling-based statistics for the planner.
//!
//! The cost models need σ (predicate selectivity) and the group-key
//! cardinality. A real optimizer would use catalog statistics; here the
//! planner samples a bounded number of rows — deterministic (stride
//! sampling) so plans are reproducible.

use std::collections::BTreeMap;

use crate::expr::Expr;
use swole_storage::Table;

/// Rows examined per estimate.
pub const SAMPLE_SIZE: usize = 2048;

/// Row-count threshold below which NDV is computed exactly (full scan with a
/// hash set) instead of extrapolated from a sample.
const NDV_EXACT_LIMIT: usize = 65_536;

/// How the engine collects and maintains table statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StatsMode {
    /// No catalog statistics: the planner falls back to per-query sampling.
    Off,
    /// Collect statistics when a table is registered or reloaded; refresh
    /// lazily when a table's generation counter moves.
    #[default]
    OnLoad,
    /// [`StatsMode::OnLoad`] plus feedback: observed selectivities from
    /// `EXPLAIN ANALYZE` / metered runs are folded back into the stats so
    /// later plans are costed against reality.
    Adaptive,
}

impl StatsMode {
    /// Short name used by `EXPLAIN` decisions.
    pub fn name(self) -> &'static str {
        match self {
            StatsMode::Off => "off",
            StatsMode::OnLoad => "on-load",
            StatsMode::Adaptive => "adaptive",
        }
    }
}

/// Per-column statistics: value bounds, distinct count, dictionary size.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Minimum value (dictionary columns: minimum code). Exact.
    pub min: i64,
    /// Maximum value (dictionary columns: maximum code). Exact.
    pub max: i64,
    /// Number of distinct values; exact iff [`ColumnStats::ndv_exact`].
    pub ndv: usize,
    /// `true` when `ndv` was computed by full scan (small tables and
    /// dictionary columns), `false` when extrapolated from a sample.
    pub ndv_exact: bool,
    /// Dictionary size for dictionary-encoded columns, `None` otherwise.
    pub dict_cardinality: Option<usize>,
}

/// Table-level statistics snapshot, tied to a table generation.
///
/// Collected by [`collect_table_stats`] at load time (see
/// [`StatsMode::OnLoad`]), refreshed when the generation counter moves, and
/// — under [`StatsMode::Adaptive`] — annotated with observed filter
/// selectivities from metered executions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TableStats {
    /// Exact row count at collection time.
    pub rows: usize,
    /// Generation of the table contents these stats describe.
    pub generation: u64,
    /// Per-column statistics, keyed by column name.
    pub columns: BTreeMap<String, ColumnStats>,
    /// Most recent observed filter selectivity over this table, fed back
    /// from executed plans under [`StatsMode::Adaptive`].
    pub observed_selectivity: Option<f64>,
}

impl TableStats {
    /// Statistics for one column, if collected.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.get(name)
    }

    /// `true` when these stats describe `generation` exactly — the
    /// precondition for answering aggregates straight from the catalog.
    pub fn fresh_for(&self, generation: u64) -> bool {
        self.generation == generation
    }
}

/// Collect a full [`TableStats`] snapshot: exact min/max per column (one
/// sequential scan), exact NDV for small tables and dictionary columns,
/// sampled NDV otherwise.
pub fn collect_table_stats(table: &Table) -> TableStats {
    let n = table.len();
    let mut columns = BTreeMap::new();
    for name in table.column_names() {
        let col = table.column_required(name);
        let dict_cardinality = col.as_dict().map(|d| d.cardinality());
        let (mut min, mut max) = (i64::MAX, i64::MIN);
        for i in 0..n {
            let v = col.get_i64(i);
            min = min.min(v);
            max = max.max(v);
        }
        if n == 0 {
            min = 0;
            max = 0;
        }
        let (ndv, ndv_exact) = match dict_cardinality {
            Some(card) => (card, true),
            None if n <= NDV_EXACT_LIMIT => {
                let mut seen = std::collections::HashSet::new();
                for i in 0..n {
                    seen.insert(col.get_i64(i));
                }
                (seen.len(), true)
            }
            None => (estimate_distinct(table, name), false),
        };
        columns.insert(
            name.to_string(),
            ColumnStats {
                min,
                max,
                ndv,
                ndv_exact,
                dict_cardinality,
            },
        );
    }
    TableStats {
        rows: n,
        generation: table.generation(),
        columns,
        observed_selectivity: None,
    }
}

/// Estimate the selectivity of `predicate` over `table` by evaluating it on
/// an evenly-strided sample. Returns a value in `[0, 1]`; an empty table
/// estimates 0.
pub fn estimate_selectivity(table: &Table, predicate: &Expr) -> f64 {
    let n = table.len();
    if n == 0 {
        return 0.0;
    }
    let mut sampled = 0usize;
    let mut hits = 0usize;
    for row in sample_rows(n) {
        if predicate.eval_row(table, row) != 0 {
            hits += 1;
        }
        sampled += 1;
    }
    hits as f64 / sampled as f64
}

/// Deterministic pseudo-random sample of up to [`SAMPLE_SIZE`] row ids.
///
/// Multiplicative (Fibonacci) hashing of the sample index decorrelates the
/// sample from any periodic structure in the data — a fixed stride would
/// alias badly with, e.g., a `i % k` key column.
fn sample_rows(n: usize) -> impl Iterator<Item = usize> {
    let take = SAMPLE_SIZE.min(n);
    (0..take).map(move |k| {
        if n <= SAMPLE_SIZE {
            k
        } else {
            ((k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % n as u64) as usize
        }
    })
}

/// Estimate the number of distinct values in `column` from a strided
/// sample.
///
/// If the sample's distinct count saturates well below the sample size the
/// column is low-cardinality and the sample count is (approximately) the
/// answer; otherwise distinct values keep appearing and we extrapolate
/// linearly — crude, but it only needs to land the hash table in the right
/// cache level for the cost model.
pub fn estimate_distinct(table: &Table, column: &str) -> usize {
    let col = table.column_required(column);
    let n = col.len();
    if n == 0 {
        return 0;
    }
    let mut seen = std::collections::HashSet::new();
    let mut sampled = 0usize;
    for row in sample_rows(n) {
        seen.insert(col.get_i64(row));
        sampled += 1;
    }
    let d = seen.len();
    if d * 2 < sampled {
        // Saturated: low cardinality.
        d
    } else {
        // Still growing: extrapolate the distinct ratio to the full table.
        ((d as f64 / sampled as f64) * n as f64).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use swole_storage::ColumnData;

    fn table(n: usize, card: i64) -> Table {
        Table::new("t").with_column(
            "x",
            ColumnData::I64((0..n as i64).map(|i| i % card).collect()),
        )
    }

    #[test]
    fn selectivity_estimates_are_close() {
        let t = table(100_000, 100);
        for lit in [0i64, 25, 50, 100] {
            let pred = Expr::col("x").cmp(CmpOp::Lt, Expr::lit(lit));
            let est = estimate_selectivity(&t, &pred);
            let truth = lit as f64 / 100.0;
            assert!((est - truth).abs() < 0.05, "lit={lit} est={est}");
        }
    }

    #[test]
    fn empty_table_is_zero() {
        let t = table(0, 1);
        let pred = Expr::col("x").cmp(CmpOp::Lt, Expr::lit(5));
        assert_eq!(estimate_selectivity(&t, &pred), 0.0);
        assert_eq!(estimate_distinct(&t, "x"), 0);
    }

    #[test]
    fn distinct_low_cardinality_is_exactish() {
        let t = table(100_000, 10);
        let d = estimate_distinct(&t, "x");
        assert!((8..=12).contains(&d), "d={d}");
    }

    #[test]
    fn distinct_high_cardinality_extrapolates() {
        // All-distinct column: the estimate must land near n, certainly the
        // right order of magnitude for cache-level decisions.
        let t = Table::new("t").with_column("x", ColumnData::I64((0..100_000i64).collect()));
        let d = estimate_distinct(&t, "x");
        assert!(d > 50_000, "d={d}");
    }

    #[test]
    fn collected_stats_are_exact_on_small_tables() {
        let t = Table::new("t")
            .with_column("x", ColumnData::I64(vec![5, -3, 9, 5, 0]))
            .with_column("y", ColumnData::I8(vec![1, 1, 2, 2, 2]));
        let s = collect_table_stats(&t);
        assert_eq!(s.rows, 5);
        let x = s.column("x").unwrap();
        assert_eq!((x.min, x.max, x.ndv, x.ndv_exact), (-3, 9, 4, true));
        let y = s.column("y").unwrap();
        assert_eq!((y.min, y.max, y.ndv), (1, 2, 2));
        assert!(y.dict_cardinality.is_none());
        assert!(s.fresh_for(0));
        assert!(!s.fresh_for(1));
    }

    #[test]
    fn collected_stats_cover_dict_columns() {
        use swole_storage::DictColumn;
        let t = Table::new("t").with_column(
            "tag",
            ColumnData::Dict(DictColumn::encode(&["a", "b", "a", "c"])),
        );
        let s = collect_table_stats(&t);
        let tag = s.column("tag").unwrap();
        assert_eq!(tag.dict_cardinality, Some(3));
        assert_eq!(tag.ndv, 3);
        assert!(tag.ndv_exact);
    }

    #[test]
    fn collected_stats_sample_large_ndv() {
        let t = Table::new("t").with_column("x", ColumnData::I64((0..100_000i64).collect()));
        let s = collect_table_stats(&t);
        let x = s.column("x").unwrap();
        assert_eq!((x.min, x.max), (0, 99_999));
        assert!(!x.ndv_exact);
        assert!(x.ndv > 50_000, "ndv={}", x.ndv);
    }

    #[test]
    fn empty_table_stats_are_sane() {
        let t = Table::new("t").with_column("x", ColumnData::I64(vec![]));
        let s = collect_table_stats(&t);
        assert_eq!(s.rows, 0);
        let x = s.column("x").unwrap();
        assert_eq!((x.min, x.max, x.ndv), (0, 0, 0));
    }

    #[test]
    fn small_table_sampled_fully() {
        let t = table(100, 7);
        assert_eq!(estimate_distinct(&t, "x"), 7);
        let pred = Expr::col("x").cmp(CmpOp::Lt, Expr::lit(3));
        let est = estimate_selectivity(&t, &pred);
        assert!((est - 3.0 / 7.0).abs() < 0.02);
    }
}
