//! Sampling-based statistics for the planner.
//!
//! The cost models need σ (predicate selectivity) and the group-key
//! cardinality. A real optimizer would use catalog statistics; here the
//! planner samples a bounded number of rows — deterministic (stride
//! sampling) so plans are reproducible.

use crate::expr::Expr;
use swole_storage::Table;

/// Rows examined per estimate.
pub const SAMPLE_SIZE: usize = 2048;

/// Estimate the selectivity of `predicate` over `table` by evaluating it on
/// an evenly-strided sample. Returns a value in `[0, 1]`; an empty table
/// estimates 0.
pub fn estimate_selectivity(table: &Table, predicate: &Expr) -> f64 {
    let n = table.len();
    if n == 0 {
        return 0.0;
    }
    let mut sampled = 0usize;
    let mut hits = 0usize;
    for row in sample_rows(n) {
        if predicate.eval_row(table, row) != 0 {
            hits += 1;
        }
        sampled += 1;
    }
    hits as f64 / sampled as f64
}

/// Deterministic pseudo-random sample of up to [`SAMPLE_SIZE`] row ids.
///
/// Multiplicative (Fibonacci) hashing of the sample index decorrelates the
/// sample from any periodic structure in the data — a fixed stride would
/// alias badly with, e.g., a `i % k` key column.
fn sample_rows(n: usize) -> impl Iterator<Item = usize> {
    let take = SAMPLE_SIZE.min(n);
    (0..take).map(move |k| {
        if n <= SAMPLE_SIZE {
            k
        } else {
            ((k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % n as u64) as usize
        }
    })
}

/// Estimate the number of distinct values in `column` from a strided
/// sample.
///
/// If the sample's distinct count saturates well below the sample size the
/// column is low-cardinality and the sample count is (approximately) the
/// answer; otherwise distinct values keep appearing and we extrapolate
/// linearly — crude, but it only needs to land the hash table in the right
/// cache level for the cost model.
pub fn estimate_distinct(table: &Table, column: &str) -> usize {
    let col = table.column_required(column);
    let n = col.len();
    if n == 0 {
        return 0;
    }
    let mut seen = std::collections::HashSet::new();
    let mut sampled = 0usize;
    for row in sample_rows(n) {
        seen.insert(col.get_i64(row));
        sampled += 1;
    }
    let d = seen.len();
    if d * 2 < sampled {
        // Saturated: low cardinality.
        d
    } else {
        // Still growing: extrapolate the distinct ratio to the full table.
        ((d as f64 / sampled as f64) * n as f64).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use swole_storage::ColumnData;

    fn table(n: usize, card: i64) -> Table {
        Table::new("t").with_column(
            "x",
            ColumnData::I64((0..n as i64).map(|i| i % card).collect()),
        )
    }

    #[test]
    fn selectivity_estimates_are_close() {
        let t = table(100_000, 100);
        for lit in [0i64, 25, 50, 100] {
            let pred = Expr::col("x").cmp(CmpOp::Lt, Expr::lit(lit));
            let est = estimate_selectivity(&t, &pred);
            let truth = lit as f64 / 100.0;
            assert!((est - truth).abs() < 0.05, "lit={lit} est={est}");
        }
    }

    #[test]
    fn empty_table_is_zero() {
        let t = table(0, 1);
        let pred = Expr::col("x").cmp(CmpOp::Lt, Expr::lit(5));
        assert_eq!(estimate_selectivity(&t, &pred), 0.0);
        assert_eq!(estimate_distinct(&t, "x"), 0);
    }

    #[test]
    fn distinct_low_cardinality_is_exactish() {
        let t = table(100_000, 10);
        let d = estimate_distinct(&t, "x");
        assert!((8..=12).contains(&d), "d={d}");
    }

    #[test]
    fn distinct_high_cardinality_extrapolates() {
        // All-distinct column: the estimate must land near n, certainly the
        // right order of magnitude for cache-level decisions.
        let t = Table::new("t").with_column("x", ColumnData::I64((0..100_000i64).collect()));
        let d = estimate_distinct(&t, "x");
        assert!(d > 50_000, "d={d}");
    }

    #[test]
    fn small_table_sampled_fully() {
        let t = table(100, 7);
        assert_eq!(estimate_distinct(&t, "x"), 7);
        let pred = Expr::col("x").cmp(CmpOp::Lt, Expr::lit(3));
        let est = estimate_selectivity(&t, &pred);
        assert!((est - 3.0 / 7.0).abs() < 0.02);
    }
}
