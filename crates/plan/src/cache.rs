//! Bounded, cost-keyed plan cache behind prepared statements.
//!
//! Planning is not free: the planner samples base tables to estimate
//! selectivities and group counts before pricing strategies, so repeating a
//! query re-pays the sampling pass every time. The cache memoizes the chosen
//! [`PhysicalPlan`] keyed on the *canonicalized* logical plan plus the
//! strategy-relevant execution parameters (thread count), under a byte
//! budget enforced with the same [`MemGauge`] machinery that hardens
//! execution.
//!
//! Entries are invalidated two ways:
//!
//! - **Generation counters** — every table carries a load generation that
//!   [`crate::Database::load_table`] bumps. A cached plan remembers the
//!   generations of the tables it touches; a mismatch at lookup drops the
//!   entry (the data changed, so the sampled statistics are void).
//! - **Observed drift** — after a metered execution the engine compares the
//!   planner's estimated selectivity against the measured one (the same
//!   observed-vs-predicted signal `EXPLAIN ANALYZE` reports). Past the
//!   drift threshold the entry is marked stale; the next lookup misses and
//!   re-plans with the observed selectivity as an override, so one skewed
//!   load cannot make the cache thrash between plan and re-plan.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use swole_verify::{PlanCertificate, VerifyLevel};

use crate::physical::PhysicalPlan;
use swole_runtime::MemGauge;

/// Relative-error threshold past which an observed selectivity invalidates
/// a cached plan (|predicted − observed| / observed). Generous on purpose:
/// strategy break-evens are shallow near the observed point, and a small
/// mis-estimate rarely changes the winning strategy.
pub(crate) const DRIFT_REL_THRESHOLD: f64 = 0.5;

/// Absolute floor on |predicted − observed| before drift can trigger.
/// Keeps tiny selectivities (where relative error is noisy) from churning
/// the cache.
pub(crate) const DRIFT_ABS_THRESHOLD: f64 = 0.02;

/// Default byte budget for a session's plan cache (see
/// [`crate::EngineBuilder::plan_cache_bytes`]).
pub(crate) const DEFAULT_PLAN_CACHE_BYTES: usize = 64 * 1024;

/// Consecutive interpreter-fallback executions of one plan fingerprint
/// after which its circuit opens: the engine then skips the doomed primary
/// strategy and goes straight to the data-centric interpreter, so a
/// persistently failing query class stops paying double execution cost.
pub(crate) const BREAKER_OPEN_AFTER: u32 = 3;

/// While a circuit is open, every Nth arrival probes the primary strategy
/// again (half-open); a probe success closes the circuit.
pub(crate) const BREAKER_PROBE_EVERY: u64 = 8;

/// Cap on tracked failing fingerprints; closed entries are swept when the
/// map would grow past this.
const BREAKER_MAX_TRACKED: usize = 256;

/// Verdict for one query arriving at its plan's fallback circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BreakerDecision {
    /// Circuit closed: run the primary strategy normally.
    Closed,
    /// Circuit open: skip the primary, go straight to the interpreter.
    Open,
    /// Circuit open, but this arrival re-tries the primary (half-open
    /// probe); success closes the circuit.
    Probe,
}

/// Per-fingerprint circuit state. Only *failing* fingerprints are tracked:
/// a plan that has never fallen back carries no entry.
#[derive(Debug, Default, Clone)]
struct BreakerState {
    consecutive_fallbacks: u32,
    open: bool,
    /// Arrivals since the circuit opened (drives the probe cadence).
    open_hits: u64,
}

/// Activity of the interpreter-fallback circuit breaker, from
/// [`crate::Engine::fallback_breaker_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FallbackBreakerStats {
    /// Plan fingerprints whose circuit is currently open.
    pub open_circuits: usize,
    /// Executions that skipped their primary strategy because the circuit
    /// was open (probes not included).
    pub short_circuits: u64,
}

/// Cost-model inputs captured when a plan was cached, so invalidation can
/// reason about what the planner believed at planning time.
#[derive(Debug, Clone, Default)]
pub(crate) struct CostSnapshot {
    /// Estimated selectivity of the probe/filter predicate, when the shape
    /// has one (the drift check compares this against measurements).
    pub est_selectivity: Option<f64>,
    /// Estimated number of distinct group keys, for group-by shapes.
    pub group_keys: Option<usize>,
    /// Row counts of every table the plan touches, at planning time.
    pub cardinalities: Vec<(String, usize)>,
}

/// One cached plan.
struct CacheEntry {
    key: String,
    plan: Arc<PhysicalPlan>,
    snapshot: CostSnapshot,
    /// `(table, generation)` for every table the plan reads.
    generations: Vec<(String, u64)>,
    /// Bytes charged against the cache gauge for this entry.
    bytes: usize,
    /// `Some(observed)` once drift marked the entry stale; the next lookup
    /// evicts it and hands the observed selectivity to the re-plan.
    stale: Option<f64>,
    /// Strongest [`VerifyLevel`] this plan has passed. Verification runs
    /// once per fingerprint: a hit at or below this level skips it, a hit
    /// above re-verifies and upgrades via [`PlanCache::note_verified`].
    verified: VerifyLevel,
    /// Admission certificate derived from the same statistics generations
    /// as `generations` — the generation check that invalidates the plan
    /// therefore invalidates its certificate with it (the stale-stats
    /// soundness edge).
    certificate: Option<Arc<PlanCertificate>>,
}

/// Counters behind [`PlanCacheStats`].
#[derive(Debug, Default, Clone)]
struct Counters {
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
}

/// A point-in-time snapshot of plan-cache activity, from
/// [`crate::Engine::plan_cache_stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to plan fresh.
    pub misses: u64,
    /// Entries dropped to make room under the byte budget.
    pub evictions: u64,
    /// Entries dropped because a table generation changed or observed
    /// selectivity drifted past the threshold.
    pub invalidations: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Bytes currently charged against the cache budget.
    pub bytes: usize,
}

/// Result of a cache probe.
pub(crate) enum CacheLookup {
    /// A valid entry: reuse its plan. Carries the strongest verification
    /// level the plan has already passed and the cached admission
    /// certificate (valid because the generation check just passed).
    Hit(Arc<PhysicalPlan>, VerifyLevel, Option<Arc<PlanCertificate>>),
    /// No usable entry; plan fresh. `drift_hint` carries the observed
    /// selectivity when the miss was caused by drift invalidation, so the
    /// re-plan can substitute measurement for estimation.
    Miss {
        /// Observed selectivity from the drift-invalidated entry, if any.
        drift_hint: Option<f64>,
    },
}

/// The bounded LRU plan cache. One per [`crate::Engine`]; shared by all
/// clones of the engine and all prepared statements.
pub(crate) struct PlanCache {
    /// Byte budget, enforced with the hardened-execution gauge (quiet
    /// charges: cache bookkeeping must not consume injected faults).
    gauge: MemGauge,
    /// `entries` is LRU-ordered: front = least recent, back = most recent.
    inner: Mutex<Inner>,
    enabled: bool,
    /// Fallback circuit breakers, keyed by plan fingerprint. Independent
    /// of the plan entries (and of `enabled`): breaker state must survive
    /// cache eviction, or an evicted-but-broken plan would re-pay the
    /// doomed primary on every execution.
    breakers: Mutex<HashMap<String, BreakerState>>,
    short_circuits: std::sync::atomic::AtomicU64,
}

#[derive(Default)]
struct Inner {
    entries: Vec<CacheEntry>,
    counters: Counters,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("PlanCache")
            .field("enabled", &self.enabled)
            .field("entries", &stats.entries)
            .field("bytes", &stats.bytes)
            .finish()
    }
}

impl PlanCache {
    /// A cache with the given byte budget; `0` disables caching entirely
    /// (every lookup misses, inserts are dropped).
    pub(crate) fn new(budget_bytes: usize) -> PlanCache {
        PlanCache {
            gauge: MemGauge::new(Some(budget_bytes.max(1))),
            inner: Mutex::new(Inner::default()),
            enabled: budget_bytes > 0,
            breakers: Mutex::new(HashMap::new()),
            short_circuits: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Probe for `key`, validating table generations. A hit moves the entry
    /// to the back of the LRU order.
    pub(crate) fn lookup(&self, key: &str, generations: &[(String, u64)]) -> CacheLookup {
        if !self.enabled {
            return CacheLookup::Miss { drift_hint: None };
        }
        let mut inner = self.lock();
        let Some(idx) = inner.entries.iter().position(|e| e.key == key) else {
            inner.counters.misses += 1;
            return CacheLookup::Miss { drift_hint: None };
        };
        let entry = &inner.entries[idx];
        if entry.generations != generations {
            let dead = inner.entries.remove(idx);
            self.gauge.release(dead.bytes);
            inner.counters.invalidations += 1;
            inner.counters.misses += 1;
            return CacheLookup::Miss { drift_hint: None };
        }
        if let Some(observed) = entry.stale {
            let dead = inner.entries.remove(idx);
            self.gauge.release(dead.bytes);
            inner.counters.invalidations += 1;
            inner.counters.misses += 1;
            return CacheLookup::Miss {
                drift_hint: Some(observed),
            };
        }
        let entry = inner.entries.remove(idx);
        let plan = Arc::clone(&entry.plan);
        let verified = entry.verified;
        let certificate = entry.certificate.clone();
        inner.entries.push(entry);
        inner.counters.hits += 1;
        CacheLookup::Hit(plan, verified, certificate)
    }

    /// Non-mutating probe: would `lookup` hit? Used by `EXPLAIN` to report
    /// `plan: cached` without perturbing LRU order or counters.
    pub(crate) fn peek(&self, key: &str, generations: &[(String, u64)]) -> bool {
        if !self.enabled {
            return false;
        }
        let inner = self.lock();
        inner
            .entries
            .iter()
            .any(|e| e.key == key && e.generations == generations && e.stale.is_none())
    }

    /// Insert a freshly planned entry, evicting least-recently-used entries
    /// until it fits the byte budget. An entry bigger than the whole budget
    /// is silently not cached.
    pub(crate) fn insert(
        &self,
        key: String,
        plan: Arc<PhysicalPlan>,
        snapshot: CostSnapshot,
        generations: Vec<(String, u64)>,
        verified: VerifyLevel,
        certificate: Option<Arc<PlanCertificate>>,
    ) {
        if !self.enabled {
            return;
        }
        let bytes = entry_bytes(&key, &plan, &snapshot)
            + certificate
                .as_ref()
                .map_or(0, |c| 64 + c.per_op_bounds.len() * 96);
        let mut inner = self.lock();
        // Replace any existing entry for the key (e.g. a racing clone of the
        // engine planned the same statement).
        if let Some(idx) = inner.entries.iter().position(|e| e.key == key) {
            let dead = inner.entries.remove(idx);
            self.gauge.release(dead.bytes);
        }
        while self.gauge.try_charge_quiet(bytes).is_err() {
            if inner.entries.is_empty() {
                return; // larger than the whole budget: skip caching
            }
            let dead = inner.entries.remove(0);
            self.gauge.release(dead.bytes);
            inner.counters.evictions += 1;
        }
        inner.entries.push(CacheEntry {
            key,
            plan,
            snapshot,
            generations,
            bytes,
            stale: None,
            verified,
            certificate,
        });
    }

    /// Record that the plan cached under `key` has now passed verification
    /// at `level`. Levels only ratchet upward.
    pub(crate) fn note_verified(&self, key: &str, level: VerifyLevel) {
        if !self.enabled {
            return;
        }
        let mut inner = self.lock();
        if let Some(entry) = inner.entries.iter_mut().find(|e| e.key == key) {
            entry.verified = entry.verified.max(level);
        }
    }

    /// Feed a measured selectivity back into the cache. If it diverges from
    /// the entry's planning-time estimate past the drift thresholds, the
    /// entry is marked stale; the next lookup misses and re-plans with
    /// `observed` as a hint.
    pub(crate) fn observe(&self, key: &str, observed: f64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.lock();
        let Some(entry) = inner.entries.iter_mut().find(|e| e.key == key) else {
            return;
        };
        let Some(estimated) = entry.snapshot.est_selectivity else {
            return;
        };
        let abs = (estimated - observed).abs();
        let drifted = match swole_cost::observed::relative_error(estimated, observed) {
            Some(rel) => rel > DRIFT_REL_THRESHOLD && abs > DRIFT_ABS_THRESHOLD,
            // observed ≤ 0 (planner expected rows, none qualified): drift
            // iff the estimate was materially non-zero.
            None => abs > DRIFT_ABS_THRESHOLD,
        };
        if drifted {
            entry.stale = Some(observed);
        }
    }

    /// Consult the fallback circuit for `key` before running its primary
    /// strategy. An untracked (never-fallen-back) fingerprint is `Closed`
    /// without allocating an entry.
    pub(crate) fn breaker_check(&self, key: &str) -> BreakerDecision {
        let mut map = self.breakers.lock().unwrap_or_else(|e| e.into_inner());
        let Some(st) = map.get_mut(key) else {
            return BreakerDecision::Closed;
        };
        if !st.open {
            return BreakerDecision::Closed;
        }
        st.open_hits += 1;
        if st.open_hits % BREAKER_PROBE_EVERY == 0 {
            BreakerDecision::Probe
        } else {
            self.short_circuits
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            BreakerDecision::Open
        }
    }

    /// The primary strategy succeeded for `key`: close (and forget) its
    /// circuit. A successful half-open probe lands here too.
    pub(crate) fn breaker_primary_ok(&self, key: &str) {
        let mut map = self.breakers.lock().unwrap_or_else(|e| e.into_inner());
        map.remove(key);
    }

    /// The query fell back to the interpreter (the primary failed a
    /// retryable runtime precondition). Returns `true` when this consecutive
    /// failure is the one that opened the circuit.
    pub(crate) fn breaker_fallback_ran(&self, key: &str) -> bool {
        let mut map = self.breakers.lock().unwrap_or_else(|e| e.into_inner());
        if !map.contains_key(key) && map.len() >= BREAKER_MAX_TRACKED {
            map.retain(|_, st| st.open);
        }
        let st = map.entry(key.to_string()).or_default();
        st.consecutive_fallbacks += 1;
        if !st.open && st.consecutive_fallbacks >= BREAKER_OPEN_AFTER {
            st.open = true;
            return true;
        }
        false
    }

    /// Point-in-time breaker activity.
    pub(crate) fn breaker_stats(&self) -> FallbackBreakerStats {
        let map = self.breakers.lock().unwrap_or_else(|e| e.into_inner());
        FallbackBreakerStats {
            open_circuits: map.values().filter(|s| s.open).count(),
            short_circuits: self
                .short_circuits
                .load(std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Current counters plus residency.
    pub(crate) fn stats(&self) -> PlanCacheStats {
        let inner = self.lock();
        PlanCacheStats {
            hits: inner.counters.hits,
            misses: inner.counters.misses,
            evictions: inner.counters.evictions,
            invalidations: inner.counters.invalidations,
            entries: inner.entries.len(),
            bytes: self.gauge.used(),
        }
    }
}

/// Estimated resident size of a cache entry. The plan's `Debug` rendering
/// tracks its structural size (shape, decision strings, cost terms) closely
/// enough for budget accounting, without a hand-maintained `size_of` walk;
/// the snapshot's tables and estimates are charged alongside.
fn entry_bytes(key: &str, plan: &PhysicalPlan, snapshot: &CostSnapshot) -> usize {
    let snapshot_bytes: usize = snapshot
        .cardinalities
        .iter()
        .map(|(name, _)| name.len() + 8)
        .sum::<usize>()
        + snapshot.group_keys.map_or(0, |_| 8);
    key.len() + format!("{plan:?}").len() + snapshot_bytes + 128
}

/// Tracks per-table load generations for cache keying; a thin wrapper so
/// the engine can collect `(table, generation)` pairs in one pass.
pub(crate) fn generations_of(db: &crate::catalog::Database, tables: &[&str]) -> Vec<(String, u64)> {
    let mut seen: HashMap<&str, ()> = HashMap::new();
    let mut out = Vec::new();
    for t in tables {
        if seen.insert(t, ()).is_none() {
            out.push((t.to_string(), db.generation(t).unwrap_or(0)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::{PhysicalPlan, Shape};
    use swole_cost::AggStrategy;

    fn plan() -> Arc<PhysicalPlan> {
        Arc::new(PhysicalPlan {
            shape: Shape::ScanAgg {
                table: "T".into(),
                filter: None,
                group_by: None,
                aggs: Vec::new(),
                strategy: AggStrategy::Hybrid,
            },
            post: Vec::new(),
            decisions: vec!["test".into()],
            cost_terms: Vec::new(),
            shortcut: None,
        })
    }

    fn gens(g: u64) -> Vec<(String, u64)> {
        vec![("T".to_string(), g)]
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = PlanCache::new(1 << 20);
        assert!(matches!(
            cache.lookup("q1", &gens(0)),
            CacheLookup::Miss { drift_hint: None }
        ));
        cache.insert(
            "q1".into(),
            plan(),
            CostSnapshot::default(),
            gens(0),
            VerifyLevel::Off,
            None,
        );
        assert!(matches!(cache.lookup("q1", &gens(0)), CacheLookup::Hit(..)));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn generation_mismatch_invalidates() {
        let cache = PlanCache::new(1 << 20);
        cache.insert(
            "q1".into(),
            plan(),
            CostSnapshot::default(),
            gens(0),
            VerifyLevel::Off,
            None,
        );
        assert!(matches!(
            cache.lookup("q1", &gens(1)),
            CacheLookup::Miss { drift_hint: None }
        ));
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn drift_marks_stale_and_hints_replan() {
        let cache = PlanCache::new(1 << 20);
        let snapshot = CostSnapshot {
            est_selectivity: Some(0.5),
            ..CostSnapshot::default()
        };
        cache.insert(
            "q1".into(),
            plan(),
            snapshot,
            gens(0),
            VerifyLevel::Off,
            None,
        );
        cache.observe("q1", 0.49); // within threshold: still a hit
        assert!(matches!(cache.lookup("q1", &gens(0)), CacheLookup::Hit(..)));
        cache.observe("q1", 0.05); // way off: stale
        match cache.lookup("q1", &gens(0)) {
            CacheLookup::Miss {
                drift_hint: Some(h),
            } => assert!((h - 0.05).abs() < 1e-12),
            _ => panic!("expected drift miss"),
        }
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn lru_eviction_under_tiny_budget() {
        let one = entry_bytes("a", &plan(), &CostSnapshot::default());
        let cache = PlanCache::new(one + one / 2); // room for one entry only
        cache.insert(
            "a".into(),
            plan(),
            CostSnapshot::default(),
            gens(0),
            VerifyLevel::Off,
            None,
        );
        cache.insert(
            "b".into(),
            plan(),
            CostSnapshot::default(),
            gens(0),
            VerifyLevel::Off,
            None,
        );
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 1);
        assert!(matches!(
            cache.lookup("a", &gens(0)),
            CacheLookup::Miss { .. }
        ));
        assert!(matches!(cache.lookup("b", &gens(0)), CacheLookup::Hit(..)));
    }

    #[test]
    fn zero_budget_disables() {
        let cache = PlanCache::new(0);
        cache.insert(
            "a".into(),
            plan(),
            CostSnapshot::default(),
            gens(0),
            VerifyLevel::Off,
            None,
        );
        assert!(matches!(
            cache.lookup("a", &gens(0)),
            CacheLookup::Miss { .. }
        ));
        assert_eq!(cache.stats().entries, 0);
        assert!(!cache.peek("a", &gens(0)));
    }

    #[test]
    fn breaker_opens_after_consecutive_fallbacks_probes_and_closes() {
        let cache = PlanCache::new(1 << 20);
        assert_eq!(cache.breaker_check("q"), BreakerDecision::Closed);
        for _ in 0..BREAKER_OPEN_AFTER - 1 {
            assert!(!cache.breaker_fallback_ran("q"));
            assert_eq!(cache.breaker_check("q"), BreakerDecision::Closed);
        }
        assert!(cache.breaker_fallback_ran("q"), "third failure opens");
        let mut probes = 0;
        for i in 1..=(2 * BREAKER_PROBE_EVERY) {
            match cache.breaker_check("q") {
                BreakerDecision::Probe => {
                    probes += 1;
                    assert_eq!(i % BREAKER_PROBE_EVERY, 0);
                }
                BreakerDecision::Open => {}
                BreakerDecision::Closed => panic!("open circuit reported closed"),
            }
        }
        assert_eq!(probes, 2);
        let stats = cache.breaker_stats();
        assert_eq!(stats.open_circuits, 1);
        assert_eq!(stats.short_circuits, 2 * BREAKER_PROBE_EVERY - 2);
        // A primary success (e.g. a half-open probe) closes the circuit.
        cache.breaker_primary_ok("q");
        assert_eq!(cache.breaker_check("q"), BreakerDecision::Closed);
        assert_eq!(cache.breaker_stats().open_circuits, 0);
        // Other fingerprints were never affected.
        assert_eq!(cache.breaker_check("other"), BreakerDecision::Closed);
    }

    #[test]
    fn peek_does_not_perturb() {
        let cache = PlanCache::new(1 << 20);
        cache.insert(
            "a".into(),
            plan(),
            CostSnapshot::default(),
            gens(0),
            VerifyLevel::Off,
            None,
        );
        assert!(cache.peek("a", &gens(0)));
        assert!(!cache.peek("a", &gens(9)));
        assert!(!cache.peek("zzz", &gens(0)));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
    }
}
