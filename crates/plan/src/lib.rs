//! # swole-plan — the access-aware query engine
//!
//! The declarative layer on top of the kernel substrate: build a logical
//! plan with [`QueryBuilder`], hand it to an [`Engine`], and the planner
//! will
//!
//! 1. estimate predicate selectivities and group-key cardinalities by
//!    sampling ([`stats`]),
//! 2. estimate the aggregation's `comp` term by expression introspection,
//! 3. consult the `swole-cost` choosers (the paper's Fig. 2 matrix) to pick
//!    hybrid / value masking / key masking / positional bitmap / eager
//!    aggregation per pipeline, and
//! 4. execute tile-at-a-time through the `swole-kernels` loop bodies.
//!
//! [`Engine::explain`] shows the chosen techniques with the cost-model
//! evidence; [`interp`] provides a deliberately naive row-at-a-time
//! interpreter used by the test suite to cross-check every result.
//!
//! The plan shapes supported are exactly the ones the paper optimizes:
//! scan → filter → (scalar | group-by) aggregation, FK semijoin +
//! aggregation, and FK groupjoin. Unsupported shapes return
//! [`PlanError::Unsupported`] rather than silently falling back.
//!
//! Execution is hardened: morsel workers run under panic isolation, a
//! session can set [`EngineBuilder::deadline`] and
//! [`EngineBuilder::memory_budget`], in-flight queries can be cancelled
//! through an [`ExecHandle`], and a pullup strategy that fails a runtime
//! precondition (panic, budget, detected overflow) is retried once under
//! the data-centric interpreter — recorded in [`Explain`]. The [`faults`]
//! module injects such failures for tests.

#![warn(missing_docs)]

mod cache;
mod catalog;
mod engine;
mod error;
pub mod expr;
pub mod faults;
pub mod interp;
mod logical;
pub mod metrics;
pub mod physical;
mod prepared;
mod session;
pub mod sql;
pub mod stats;
mod value;
mod verify;

pub use cache::{FallbackBreakerStats, PlanCacheStats};
pub use catalog::Database;
pub use engine::{
    Engine, EngineBuilder, Explain, JoinEdgeExplain, QueryResult, ShutdownReport, StrategyOverrides,
};
pub use error::PlanError;
pub use expr::{AggFunc, CmpOp, Expr};
pub use logical::{
    limit, order_by, AggSpec, FrameSpec, LogicalPlan, QueryBuilder, SortKey, WindowFnSpec,
    WindowFunc,
};
pub use metrics::{MetricsLevel, OpMetrics, QueryMetrics};
pub use prepared::{BoundStatement, PreparedStatement};
pub use session::{QueryOptions, Session};
pub use sql::{parse as parse_sql, ExplainMode, ParamSlot, SqlError};
pub use stats::{ColumnStats, StatsMode, TableStats};
pub use swole_runtime::{
    AdmissionConfig, AdmissionError, ExecHandle, MemGauge, MemoryPolicy, MemoryPoolStats, Priority,
};
pub use swole_verify::{
    OpBounds, PlanCertificate, VerifyError, VerifyErrorKind, VerifyLevel, VerifyReport,
};
pub use value::{Params, Value};
