//! Sessions: per-client scopes over one shared [`Engine`].
//!
//! An [`Engine`] is already safe to share across threads, but everything
//! issued directly on it shares one cancellation scope and the builder's
//! option defaults. A [`Session`] carves out a client-sized scope: its own
//! sticky cancellation flag (cancelling one client never touches another)
//! and its own [`QueryOptions`] defaults, while the database, plan cache,
//! worker pool, global memory budget, and admission controller stay shared
//! engine-wide.

use std::sync::Arc;
use std::time::Duration;

use crate::engine::{Engine, QueryResult};
use crate::error::PlanError;
use crate::logical::LogicalPlan;
use crate::metrics::MetricsLevel;
use crate::physical::PhysicalPlan;
use crate::prepared::PreparedStatement;
use crate::value::Params;
use swole_runtime::{CancelState, ExecHandle, Priority};
use swole_verify::VerifyLevel;

/// Per-query execution options. Every field is optional: `None` falls back
/// to the session's defaults ([`Session::with_defaults`]), which in turn
/// fall back to the engine builder's settings. Construct with the builder
/// methods:
///
/// ```
/// # use std::time::Duration;
/// # use swole_plan::{MetricsLevel, QueryOptions};
/// let opts = QueryOptions::new()
///     .deadline(Duration::from_millis(50))
///     .metrics(MetricsLevel::Counters);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryOptions {
    /// Wall-clock deadline for this query, measured from submission —
    /// queue time under admission control counts against it.
    pub deadline: Option<Duration>,
    /// Per-query memory budget in bytes (its charges still also draw from
    /// the engine-wide pool, when one is configured).
    pub memory_budget: Option<usize>,
    /// Metrics collection level for this query.
    pub metrics: Option<MetricsLevel>,
    /// Static-verification level for this query's plan.
    pub verify: Option<VerifyLevel>,
    /// Admission and scheduling priority class for this query.
    pub priority: Option<Priority>,
    /// Watchdog window for this query: if no morsel completes within it,
    /// the query fails with [`PlanError::Stalled`] instead of wedging an
    /// execution slot.
    pub stall_window: Option<Duration>,
}

impl QueryOptions {
    /// Options with every field unset (all session defaults apply).
    pub fn new() -> QueryOptions {
        QueryOptions::default()
    }

    /// Set the wall-clock deadline.
    pub fn deadline(mut self, deadline: Duration) -> QueryOptions {
        self.deadline = Some(deadline);
        self
    }

    /// Set the per-query memory budget in bytes.
    pub fn memory_budget(mut self, bytes: usize) -> QueryOptions {
        self.memory_budget = Some(bytes);
        self
    }

    /// Set the metrics collection level.
    pub fn metrics(mut self, level: MetricsLevel) -> QueryOptions {
        self.metrics = Some(level);
        self
    }

    /// Set the static-verification level.
    pub fn verify(mut self, level: VerifyLevel) -> QueryOptions {
        self.verify = Some(level);
        self
    }

    /// Set the priority class.
    pub fn priority(mut self, priority: Priority) -> QueryOptions {
        self.priority = Some(priority);
        self
    }

    /// Set the watchdog stall window.
    pub fn stall_window(mut self, window: Duration) -> QueryOptions {
        self.stall_window = Some(window);
        self
    }

    /// Field-wise fallback: every field set in `self` wins, every unset
    /// field takes `base`'s value. Used to resolve per-call options
    /// against session defaults.
    pub fn or(self, base: &QueryOptions) -> QueryOptions {
        QueryOptions {
            deadline: self.deadline.or(base.deadline),
            memory_budget: self.memory_budget.or(base.memory_budget),
            metrics: self.metrics.or(base.metrics),
            verify: self.verify.or(base.verify),
            priority: self.priority.or(base.priority),
            stall_window: self.stall_window.or(base.stall_window),
        }
    }
}

/// A per-client scope over a shared [`Engine`]: its own cancellation flag
/// and its own [`QueryOptions`] defaults, with everything else — database,
/// plan cache, worker pool, global memory budget, admission — shared.
///
/// Sessions are cheap to create (one allocation) and cheap to clone;
/// clones share the *same* scope. Create one per client/connection:
///
/// ```
/// # use swole_plan::{Database, Engine};
/// let engine = Engine::builder(Database::new()).build();
/// let alice = engine.session();
/// let bob = engine.session();
/// // Cancelling alice's queries leaves bob (and the engine scope) alone.
/// alice.handle().cancel();
/// ```
#[derive(Clone)]
pub struct Session {
    engine: Engine,
    cancel: Arc<CancelState>,
    defaults: QueryOptions,
}

impl Engine {
    /// Open a new session: an independent cancellation scope with its own
    /// per-query option defaults. See [`Session`].
    pub fn session(&self) -> Session {
        Session {
            engine: self.clone(),
            cancel: Arc::new(CancelState::default()),
            defaults: QueryOptions::default(),
        }
    }
}

impl Session {
    /// Replace this session's option defaults (fields left `None` still
    /// fall back to the engine builder's settings).
    pub fn with_defaults(mut self, defaults: QueryOptions) -> Session {
        self.defaults = defaults;
        self
    }

    /// This session's option defaults.
    pub fn defaults(&self) -> &QueryOptions {
        &self.defaults
    }

    /// The shared engine this session scopes.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// A cancellation token for *this session's* scope. Cancellation is
    /// sticky within the scope — in-flight and future queries of this
    /// session fail with [`PlanError::Cancelled`] until
    /// [`ExecHandle::reset`] — and invisible outside it: other sessions
    /// and the engine-wide scope keep running.
    pub fn handle(&self) -> ExecHandle {
        ExecHandle::new(self.cancel.clone())
    }

    /// [`Engine::query`] under this session's scope and defaults.
    pub fn query(&self, plan: &LogicalPlan) -> Result<QueryResult, PlanError> {
        self.query_with(plan, &QueryOptions::default())
    }

    /// [`Session::query`] with per-call overrides (fields left `None`
    /// fall back to the session defaults, then the engine's).
    pub fn query_with(
        &self,
        plan: &LogicalPlan,
        opts: &QueryOptions,
    ) -> Result<QueryResult, PlanError> {
        let merged = opts.or(&self.defaults);
        let inner = self.engine.inner();
        let db = inner.read_db();
        inner.query_leveled(&db, plan, &self.cancel, &merged, None)
    }

    /// [`Engine::execute`] under this session's scope and defaults.
    pub fn execute(&self, plan: &PhysicalPlan) -> Result<QueryResult, PlanError> {
        self.execute_with(plan, &QueryOptions::default())
    }

    /// [`Session::execute`] with per-call overrides.
    pub fn execute_with(
        &self,
        plan: &PhysicalPlan,
        opts: &QueryOptions,
    ) -> Result<QueryResult, PlanError> {
        let merged = opts.or(&self.defaults);
        let inner = self.engine.inner();
        let db = inner.read_db();
        inner.execute_physical(&db, plan, &self.cancel, &merged)
    }

    /// [`Engine::explain_analyze`] under this session's scope and
    /// defaults.
    pub fn explain_analyze(&self, plan: &LogicalPlan) -> Result<crate::engine::Explain, PlanError> {
        self.explain_analyze_with(plan, &QueryOptions::default())
    }

    /// [`Session::explain_analyze`] with per-call overrides.
    pub fn explain_analyze_with(
        &self,
        plan: &LogicalPlan,
        opts: &QueryOptions,
    ) -> Result<crate::engine::Explain, PlanError> {
        let merged = opts.or(&self.defaults);
        let inner = self.engine.inner();
        let db = inner.read_db();
        let res = inner.query_leveled(
            &db,
            plan,
            &self.cancel,
            &merged,
            Some(MetricsLevel::Timings),
        )?;
        let mut ex = inner.explain_for(&db, plan)?;
        ex.analyze = res.metrics;
        Ok(ex)
    }

    /// [`Engine::prepare`] scoped to this session: statements bound from
    /// the returned handle execute under the session's cancellation scope
    /// and option defaults.
    pub fn prepare(&self, template: &LogicalPlan) -> Result<PreparedStatement, PlanError> {
        PreparedStatement::compile(
            &self.engine,
            template,
            Arc::clone(&self.cancel),
            self.defaults,
        )
    }

    /// [`Engine::prepare_sql`] scoped to this session.
    pub fn prepare_sql(&self, sql: &str) -> Result<PreparedStatement, PlanError> {
        PreparedStatement::compile_sql(&self.engine, sql, Arc::clone(&self.cancel), self.defaults)
    }

    /// Convenience: prepare, bind `params`, and execute in one call, all
    /// under this session's scope.
    pub fn query_sql(&self, sql: &str, params: &Params) -> Result<QueryResult, PlanError> {
        self.prepare_sql(sql)?.bind(params)?.execute()
    }
}
