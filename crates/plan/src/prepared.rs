//! Prepared statements: plan once, bind many.
//!
//! [`Engine::prepare`] (or [`Engine::prepare_sql`] for the SQL frontend's
//! `?` / `$n` placeholders) captures a logical-plan template against an
//! engine session. Binding typed [`Params`] substitutes every
//! [`Expr::Param`] with its value and yields a [`BoundStatement`], whose
//! `execute` runs through the session's plan cache — so the strategy
//! choice, sampling, and cost-model work happen once per distinct plan
//! shape, not once per execution.
//!
//! ```
//! use swole_plan::{Engine, Params};
//! # use swole_plan::Database;
//! # use swole_storage::{ColumnData, Table};
//! # let mut db = Database::new();
//! # db.add_table(
//! #     Table::new("R")
//! #         .with_column("r_a", ColumnData::I32((0..8).collect()))
//! #         .with_column("r_x", ColumnData::I32((0..8).map(|i| i % 4).collect())),
//! # );
//! let e = Engine::builder(db).build();
//! let stmt = e.prepare_sql("select sum(r_a) as s from R where r_x < ?")?;
//! let one = stmt.bind(&Params::new().int(2))?.execute()?;
//! let two = stmt.bind(&Params::new().int(3))?.execute()?;
//! assert!(two.rows[0][0] >= one.rows[0][0]);
//! # Ok::<(), swole_plan::PlanError>(())
//! ```

use std::sync::Arc;

use crate::engine::{Engine, Explain, QueryResult};
use crate::error::PlanError;
use crate::expr::{CmpOp, Expr};
use crate::logical::{AggSpec, LogicalPlan};
use crate::session::QueryOptions;
use crate::value::{Params, Value};
use swole_runtime::CancelState;

/// A planned statement template bound to an [`Engine`] session.
///
/// A prepared statement carries the cancellation scope and
/// [`QueryOptions`] defaults of whoever prepared it: [`Engine::prepare`]
/// uses the engine-wide scope, [`crate::Session::prepare`] the session's.
///
/// Cloning is cheap (the template is shared per clone's `Vec` costs only;
/// the engine handle is an `Arc`), and a prepared statement may be used
/// from any thread — executions are bit-identical regardless of which
/// clone or thread runs them.
#[derive(Clone)]
pub struct PreparedStatement {
    engine: Engine,
    template: LogicalPlan,
    param_count: usize,
    scope: Arc<CancelState>,
    defaults: QueryOptions,
}

/// A [`PreparedStatement`] with every placeholder substituted, ready to
/// execute (repeatedly, if desired) against the session's plan cache.
#[derive(Clone)]
pub struct BoundStatement {
    engine: Engine,
    plan: LogicalPlan,
    scope: Arc<CancelState>,
    defaults: QueryOptions,
}

impl Engine {
    /// Prepare a logical-plan template for repeated execution.
    ///
    /// Placeholder ordinals ([`Expr::Param`]) must be contiguous from 0 —
    /// a template that mentions `$3` but never `$2` fails with
    /// [`PlanError::BindMismatch`]. A template without placeholders is
    /// planned immediately, seeding the session's plan cache; templates
    /// with placeholders are planned on first execution of each bound
    /// variant (bound literals feed predicate sampling, so different
    /// bindings may legitimately choose different strategies).
    pub fn prepare(&self, plan: &LogicalPlan) -> Result<PreparedStatement, PlanError> {
        PreparedStatement::compile(
            self,
            plan,
            Arc::clone(self.cancel_scope()),
            QueryOptions::default(),
        )
    }

    /// Prepare a SQL statement with `?` or `$n` placeholders.
    ///
    /// The text is parsed once; `EXPLAIN` prefixes are rejected (call
    /// [`BoundStatement::explain`] / [`BoundStatement::explain_analyze`]
    /// on the bound statement instead).
    pub fn prepare_sql(&self, sql: &str) -> Result<PreparedStatement, PlanError> {
        PreparedStatement::compile_sql(
            self,
            sql,
            Arc::clone(self.cancel_scope()),
            QueryOptions::default(),
        )
    }
}

impl PreparedStatement {
    /// Validate the template and (for placeholder-free templates) seed the
    /// plan cache. Shared by the engine- and session-level `prepare`.
    pub(crate) fn compile(
        engine: &Engine,
        plan: &LogicalPlan,
        scope: Arc<CancelState>,
        defaults: QueryOptions,
    ) -> Result<PreparedStatement, PlanError> {
        let mut ordinals = Vec::new();
        plan_params(plan, &mut ordinals);
        ordinals.sort_unstable();
        ordinals.dedup();
        let param_count = ordinals.last().map(|m| m + 1).unwrap_or(0);
        for (expect, got) in ordinals.iter().enumerate() {
            if expect != *got {
                return Err(PlanError::BindMismatch(format!(
                    "placeholder ${} is never used (placeholders must be contiguous)",
                    expect + 1
                )));
            }
        }
        if param_count == 0 {
            // No placeholders: plan now, so the first execute() is a hit.
            let inner = engine.inner();
            let db = inner.read_db();
            let verify = defaults.verify.unwrap_or_else(|| inner.verify_level());
            let fallback_bytes = crate::engine::plan_rows(&db, plan).saturating_mul(8) as u64;
            inner.plan_cached(&db, plan, verify, fallback_bytes)?;
        }
        Ok(PreparedStatement {
            engine: engine.clone(),
            template: plan.clone(),
            param_count,
            scope,
            defaults,
        })
    }

    /// [`PreparedStatement::compile`] from SQL text (rejecting `EXPLAIN`
    /// prefixes).
    pub(crate) fn compile_sql(
        engine: &Engine,
        sql: &str,
        scope: Arc<CancelState>,
        defaults: QueryOptions,
    ) -> Result<PreparedStatement, PlanError> {
        let parsed = crate::sql::parse(sql).map_err(|e| PlanError::Sql {
            message: e.message,
            position: e.position,
        })?;
        if parsed.explain.is_some() {
            return Err(PlanError::Unsupported(
                "EXPLAIN cannot be prepared — prepare the bare query and call \
                 explain() on the bound statement"
                    .into(),
            ));
        }
        PreparedStatement::compile(engine, &parsed.plan, scope, defaults)
    }

    /// Number of placeholders the template expects.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// The captured logical-plan template (placeholders intact).
    pub fn template(&self) -> &LogicalPlan {
        &self.template
    }

    /// Substitute placeholders with `params`, in ordinal order.
    ///
    /// Fails with [`PlanError::BindMismatch`] on an arity mismatch, or
    /// when a [`Value::Str`] binds anywhere other than an `=` / `<>`
    /// comparison against a column (strings live in dictionary columns and
    /// have no integer encoding the kernels could compare).
    pub fn bind(&self, params: &Params) -> Result<BoundStatement, PlanError> {
        if params.len() != self.param_count {
            return Err(PlanError::BindMismatch(format!(
                "statement expects {} parameter(s), got {}",
                self.param_count,
                params.len()
            )));
        }
        let plan = subst_plan(&self.template, params.values())?;
        Ok(BoundStatement {
            engine: self.engine.clone(),
            plan,
            scope: Arc::clone(&self.scope),
            defaults: self.defaults,
        })
    }

    /// Convenience for statements without placeholders:
    /// `bind(&Params::new())?.execute()`.
    pub fn execute(&self) -> Result<QueryResult, PlanError> {
        self.bind(&Params::new())?.execute()
    }
}

impl BoundStatement {
    /// The fully bound logical plan.
    pub fn plan(&self) -> &LogicalPlan {
        &self.plan
    }

    /// Execute through the session's plan cache with hardened-execution
    /// supervision — semantics identical to [`Engine::query`] on the bound
    /// plan, under the scope and option defaults this statement was
    /// prepared with.
    pub fn execute(&self) -> Result<QueryResult, PlanError> {
        self.execute_with(&QueryOptions::default())
    }

    /// [`BoundStatement::execute`] with per-call option overrides (fields
    /// left `None` fall back to the preparing scope's defaults, then the
    /// engine's).
    pub fn execute_with(&self, opts: &QueryOptions) -> Result<QueryResult, PlanError> {
        let merged = opts.or(&self.defaults);
        let inner = self.engine.inner();
        let db = inner.read_db();
        inner.query_leveled(&db, &self.plan, &self.scope, &merged, None)
    }

    /// EXPLAIN the bound plan (reports `plan: cached` once this statement
    /// has executed and nothing invalidated the entry).
    pub fn explain(&self) -> Result<Explain, PlanError> {
        self.engine.explain(&self.plan)
    }

    /// EXPLAIN ANALYZE the bound plan: execute once with metrics and
    /// return the report, under this statement's scope and defaults.
    pub fn explain_analyze(&self) -> Result<Explain, PlanError> {
        self.explain_analyze_with(&QueryOptions::default())
    }

    /// [`BoundStatement::explain_analyze`] with per-call option overrides.
    pub fn explain_analyze_with(&self, opts: &QueryOptions) -> Result<Explain, PlanError> {
        let merged = opts.or(&self.defaults);
        let inner = self.engine.inner();
        let db = inner.read_db();
        let res = inner.query_leveled(
            &db,
            &self.plan,
            &self.scope,
            &merged,
            Some(crate::metrics::MetricsLevel::Timings),
        )?;
        let mut ex = inner.explain_for(&db, &self.plan)?;
        ex.analyze = res.metrics;
        Ok(ex)
    }
}

/// Collect every placeholder ordinal a plan mentions (filters and
/// aggregate expressions alike).
fn plan_params(plan: &LogicalPlan, out: &mut Vec<usize>) {
    match plan {
        LogicalPlan::Scan { .. } => {}
        LogicalPlan::Filter { input, predicate } => {
            out.extend(predicate.params());
            plan_params(input, out);
        }
        LogicalPlan::SemiJoin { input, build, .. } => {
            plan_params(input, out);
            plan_params(build, out);
        }
        LogicalPlan::Aggregate { input, aggs, .. } => {
            for a in aggs {
                out.extend(a.expr.params());
            }
            plan_params(input, out);
        }
        LogicalPlan::Window { input, funcs, .. } => {
            for f in funcs {
                if let Some(e) = &f.expr {
                    out.extend(e.params());
                }
            }
            plan_params(input, out);
        }
        LogicalPlan::OrderBy { input, .. } | LogicalPlan::Limit { input, .. } => {
            plan_params(input, out);
        }
    }
}

/// Rebuild a plan with every [`Expr::Param`] substituted.
fn subst_plan(plan: &LogicalPlan, vals: &[Value]) -> Result<LogicalPlan, PlanError> {
    Ok(match plan {
        LogicalPlan::Scan { table } => LogicalPlan::Scan {
            table: table.clone(),
        },
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(subst_plan(input, vals)?),
            predicate: subst_expr(predicate, vals)?,
        },
        LogicalPlan::SemiJoin {
            input,
            build,
            fk_col,
        } => LogicalPlan::SemiJoin {
            input: Box::new(subst_plan(input, vals)?),
            build: Box::new(subst_plan(build, vals)?),
            fk_col: fk_col.clone(),
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            input: Box::new(subst_plan(input, vals)?),
            group_by: group_by.clone(),
            aggs: aggs
                .iter()
                .map(|a| {
                    Ok(AggSpec {
                        func: a.func,
                        expr: subst_expr(&a.expr, vals)?,
                        name: a.name.clone(),
                    })
                })
                .collect::<Result<Vec<_>, PlanError>>()?,
        },
        LogicalPlan::Window {
            input,
            partition_by,
            order_by,
            frame,
            funcs,
            select,
        } => LogicalPlan::Window {
            input: Box::new(subst_plan(input, vals)?),
            partition_by: partition_by.clone(),
            order_by: order_by.clone(),
            frame: *frame,
            funcs: funcs
                .iter()
                .map(|w| {
                    Ok(crate::logical::WindowFnSpec {
                        func: w.func,
                        expr: w.expr.as_ref().map(|e| subst_expr(e, vals)).transpose()?,
                        name: w.name.clone(),
                    })
                })
                .collect::<Result<Vec<_>, PlanError>>()?,
            select: select.clone(),
        },
        LogicalPlan::OrderBy { input, keys } => LogicalPlan::OrderBy {
            input: Box::new(subst_plan(input, vals)?),
            keys: keys.clone(),
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(subst_plan(input, vals)?),
            n: *n,
        },
    })
}

/// Substitute placeholders inside one expression.
///
/// Integer-encodable values ([`Value::Int`], [`Value::Decimal`],
/// [`Value::Date`]) become [`Expr::Lit`] of their raw encoding.
/// [`Value::Str`] has no raw encoding; it is only accepted as
/// `col = ?` / `col <> ?` (either operand order), which rewrite to the
/// dictionary predicates `col IN (value)` / `NOT (col IN (value))`.
fn subst_expr(e: &Expr, vals: &[Value]) -> Result<Expr, PlanError> {
    Ok(match e {
        Expr::Param(i) => Expr::Lit(param_raw(*i, vals)?),
        Expr::Col(_) | Expr::Lit(_) | Expr::Like { .. } | Expr::InList { .. } => e.clone(),
        Expr::Cmp(op, a, b) => {
            // String bindings: rewrite `col = $n` (or the mirrored form)
            // into a one-element dictionary IN-list before the generic
            // substitution can reject the string.
            let col_param = match (&**a, &**b) {
                (Expr::Col(c), Expr::Param(i)) | (Expr::Param(i), Expr::Col(c)) => Some((c, *i)),
                _ => None,
            };
            if let Some((col, i)) = col_param {
                if let Some(Value::Str(s)) = vals.get(i) {
                    let in_list = Expr::InList {
                        col: col.clone(),
                        values: vec![s.clone()],
                    };
                    return match op {
                        CmpOp::Eq => Ok(in_list),
                        CmpOp::Ne => Ok(Expr::Not(Box::new(in_list))),
                        _ => Err(PlanError::BindMismatch(format!(
                            "string parameter ${} only supports = or <> against \
                             a dictionary column",
                            i + 1
                        ))),
                    };
                }
            }
            Expr::Cmp(
                *op,
                Box::new(subst_expr(a, vals)?),
                Box::new(subst_expr(b, vals)?),
            )
        }
        Expr::Add(a, b) => bin(Expr::Add, a, b, vals)?,
        Expr::Sub(a, b) => bin(Expr::Sub, a, b, vals)?,
        Expr::Mul(a, b) => bin(Expr::Mul, a, b, vals)?,
        Expr::Div(a, b) => bin(Expr::Div, a, b, vals)?,
        Expr::And(a, b) => bin(Expr::And, a, b, vals)?,
        Expr::Or(a, b) => bin(Expr::Or, a, b, vals)?,
        Expr::Not(a) => Expr::Not(Box::new(subst_expr(a, vals)?)),
        Expr::Case {
            when,
            then,
            otherwise,
        } => Expr::Case {
            when: Box::new(subst_expr(when, vals)?),
            then: Box::new(subst_expr(then, vals)?),
            otherwise: Box::new(subst_expr(otherwise, vals)?),
        },
    })
}

fn bin(
    ctor: fn(Box<Expr>, Box<Expr>) -> Expr,
    a: &Expr,
    b: &Expr,
    vals: &[Value],
) -> Result<Expr, PlanError> {
    Ok(ctor(
        Box::new(subst_expr(a, vals)?),
        Box::new(subst_expr(b, vals)?),
    ))
}

/// The raw `i64` encoding of the value bound to ordinal `i`, or a
/// [`PlanError::BindMismatch`] for strings (which never reach this path
/// through the supported rewrites).
fn param_raw(i: usize, vals: &[Value]) -> Result<i64, PlanError> {
    let v = vals.get(i).ok_or_else(|| {
        PlanError::BindMismatch(format!("no value bound for placeholder ${}", i + 1))
    })?;
    v.raw_i64().ok_or_else(|| {
        PlanError::BindMismatch(format!(
            "string parameter ${} only supports = or <> against a dictionary \
             column",
            i + 1
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::QueryBuilder;
    use swole_storage::{ColumnData, DictColumn, Table};

    fn db() -> crate::Database {
        let mut db = crate::Database::new();
        db.add_table(
            Table::new("R")
                .with_column("r_a", ColumnData::I32((0..64).collect()))
                .with_column("r_x", ColumnData::I32((0..64).map(|i| i % 8).collect()))
                .with_column(
                    "r_s",
                    ColumnData::Dict(DictColumn::encode(
                        &(0..64)
                            .map(|i| if i % 2 == 0 { "even" } else { "odd" })
                            .collect::<Vec<_>>(),
                    )),
                ),
        );
        db
    }

    fn sum_below(cutoff: Expr) -> LogicalPlan {
        QueryBuilder::scan("R")
            .filter(Expr::col("r_x").cmp(CmpOp::Lt, cutoff))
            .aggregate(None, vec![AggSpec::sum(Expr::col("r_a"), "s")])
    }

    #[test]
    fn int_binding_matches_literal_query() {
        let e = Engine::builder(db()).build();
        let stmt = e
            .prepare_sql("select sum(r_a) as s from R where r_x < ?")
            .unwrap();
        let bound = stmt.bind(&Params::new().int(3)).unwrap();
        let direct = e.query(&sum_below(Expr::Lit(3))).unwrap();
        assert_eq!(bound.execute().unwrap(), direct);
    }

    #[test]
    fn str_binding_rewrites_to_dict_predicate() {
        let e = Engine::builder(db()).build();
        let stmt = e
            .prepare_sql("select count(*) as n from R where r_s = $1")
            .unwrap();
        let n = stmt
            .bind(&Params::new().str("even"))
            .unwrap()
            .execute()
            .unwrap();
        assert_eq!(n.rows[0][0], 32);
        let ne = e
            .prepare_sql("select count(*) as n from R where r_s <> $1")
            .unwrap()
            .bind(&Params::new().str("even"))
            .unwrap()
            .execute()
            .unwrap();
        assert_eq!(ne.rows[0][0], 32);
    }

    #[test]
    fn arity_and_type_mismatches_are_typed_errors() {
        let e = Engine::builder(db()).build();
        let stmt = e
            .prepare_sql("select sum(r_a) as s from R where r_x < ?")
            .unwrap();
        assert!(matches!(
            stmt.bind(&Params::new()),
            Err(PlanError::BindMismatch(_))
        ));
        assert!(matches!(
            stmt.bind(&Params::new().int(1).int(2)),
            Err(PlanError::BindMismatch(_))
        ));
        // A string bound into an ordered comparison cannot encode.
        assert!(matches!(
            stmt.bind(&Params::new().str("even")),
            Err(PlanError::BindMismatch(_))
        ));
    }

    #[test]
    fn unbound_template_cannot_execute_directly() {
        let e = Engine::builder(db()).build();
        let plan = sum_below(Expr::Param(0));
        assert!(matches!(e.query(&plan), Err(PlanError::BindMismatch(_))));
        let stmt = e.prepare(&plan).unwrap();
        assert_eq!(stmt.param_count(), 1);
        assert!(stmt.bind(&Params::new().int(4)).unwrap().execute().is_ok());
    }

    #[test]
    fn noncontiguous_ordinals_are_rejected() {
        let e = Engine::builder(db()).build();
        let plan = sum_below(Expr::Param(2));
        assert!(matches!(e.prepare(&plan), Err(PlanError::BindMismatch(_))));
    }

    #[test]
    fn zero_param_prepare_seeds_the_cache() {
        let e = Engine::builder(db()).build();
        let plan = sum_below(Expr::Lit(5));
        let stmt = e.prepare(&plan).unwrap();
        assert_eq!(stmt.param_count(), 0);
        stmt.execute().unwrap();
        let stats = e.plan_cache_stats();
        assert!(stats.hits >= 1, "prepare should have seeded the cache");
    }
}
