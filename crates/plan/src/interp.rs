//! A deliberately naive row-at-a-time reference interpreter.
//!
//! Executes the same [`LogicalPlan`]s as the engine with zero cleverness —
//! Volcano-style row iteration, `BTreeMap` grouping — and the same result
//! conventions. The test suite cross-checks every engine result against it
//! (the role HyPer plays as a sanity baseline in the paper's evaluation).

use crate::catalog::Database;
use crate::engine::QueryResult;
use crate::error::PlanError;
use crate::expr::AggFunc;
use crate::logical::{AggSpec, LogicalPlan};
use crate::metrics::OpMetrics;
use std::collections::BTreeMap;

/// Execute `plan` naively.
pub fn run(db: &Database, plan: &LogicalPlan) -> Result<QueryResult, PlanError> {
    run_metered(db, plan).map(|(res, _)| res)
}

/// Execute `plan` naively, also reporting the interpreter's access
/// counters as a single operator (used when the engine falls back to the
/// data-centric strategy at `MetricsLevel::Counters`+). The interpreter
/// reads attributes conditionally row-at-a-time, so `wasted_lanes` is
/// always 0 and `ht_probes` counts the semijoin membership lookups.
pub fn run_metered(
    db: &Database,
    plan: &LogicalPlan,
) -> Result<(QueryResult, OpMetrics), PlanError> {
    let mut op = OpMetrics::named("data-centric interpreter");
    let res = run_inner(db, plan, &mut op)?;
    Ok((res, op))
}

fn run_inner(
    db: &Database,
    plan: &LogicalPlan,
    op: &mut OpMetrics,
) -> Result<QueryResult, PlanError> {
    let LogicalPlan::Aggregate {
        input,
        group_by,
        aggs,
    } = plan
    else {
        return Err(PlanError::Unsupported(
            "top-level node must be an aggregation".into(),
        ));
    };
    if aggs.is_empty() {
        return Err(PlanError::Unsupported("empty aggregate list".into()));
    }
    let base = input.base_table();
    let table = db.table(base)?;
    let rows = qualifying_rows(db, input, op)?;
    op.access.rows_out = rows.len() as u64;
    match group_by {
        None => {
            let mut acc = vec![0i64; aggs.len()];
            for (i, a) in aggs.iter().enumerate() {
                if a.func == AggFunc::Min {
                    acc[i] = i64::MAX;
                }
                if a.func == AggFunc::Max {
                    acc[i] = i64::MIN;
                }
            }
            for &row in &rows {
                for (i, a) in aggs.iter().enumerate() {
                    accumulate(&mut acc[i], a, table, row);
                }
            }
            if rows.is_empty() {
                acc = vec![0; aggs.len()];
            }
            Ok(QueryResult {
                columns: aggs.iter().map(|a| a.name.clone()).collect(),
                rows: vec![acc],
                metrics: None,
                key_dict: None,
            })
        }
        Some(g) => {
            let key_col = table.column(g).ok_or_else(|| PlanError::UnknownColumn {
                table: base.to_string(),
                column: g.clone(),
            })?;
            let mut groups: BTreeMap<i64, Vec<i64>> = BTreeMap::new();
            for &row in &rows {
                let key = key_col.get_i64(row);
                let acc = groups.entry(key).or_insert_with(|| {
                    aggs.iter()
                        .map(|a| match a.func {
                            AggFunc::Min => i64::MAX,
                            AggFunc::Max => i64::MIN,
                            _ => 0,
                        })
                        .collect()
                });
                for (i, a) in aggs.iter().enumerate() {
                    accumulate(&mut acc[i], a, table, row);
                }
            }
            let mut columns = vec![g.clone()];
            columns.extend(aggs.iter().map(|a| a.name.clone()));
            Ok(QueryResult {
                columns,
                metrics: None,
                key_dict: key_col
                    .as_dict()
                    .map(|d| std::sync::Arc::new(d.dictionary().to_vec())),
                rows: groups
                    .into_iter()
                    .map(|(k, acc)| {
                        let mut row = vec![k];
                        row.extend(acc);
                        row
                    })
                    .collect(),
            })
        }
    }
}

fn accumulate(acc: &mut i64, spec: &AggSpec, table: &swole_storage::Table, row: usize) {
    // Wrapping accumulation matches the engine's kernels exactly, so
    // fallback results stay bit-identical even on wraparound inputs.
    match spec.func {
        AggFunc::Count => *acc = acc.wrapping_add(1),
        AggFunc::Sum => *acc = acc.wrapping_add(spec.expr.eval_row(table, row)),
        AggFunc::Min => *acc = (*acc).min(spec.expr.eval_row(table, row)),
        AggFunc::Max => *acc = (*acc).max(spec.expr.eval_row(table, row)),
    }
}

/// Rows of the plan's base table that survive all filters and semijoins.
/// Counter adds are unconditional — the interpreter is the slow path by
/// design, so a handful of `u64` adds per plan node is noise.
fn qualifying_rows(
    db: &Database,
    plan: &LogicalPlan,
    op: &mut OpMetrics,
) -> Result<Vec<usize>, PlanError> {
    match plan {
        LogicalPlan::Scan { table } => {
            let n = db.table(table)?.len();
            op.access.rows_in += n as u64;
            Ok((0..n).collect())
        }
        LogicalPlan::Filter { input, predicate } => {
            let table = db.table(input.base_table())?;
            predicate.validate(table)?;
            let rows = qualifying_rows(db, input, op)?;
            op.access.predicate_evals += rows.len() as u64;
            Ok(rows
                .into_iter()
                .filter(|&r| predicate.eval_row(table, r) != 0)
                .collect())
        }
        LogicalPlan::SemiJoin {
            input,
            build,
            fk_col,
        } => {
            let child = db.table(input.base_table())?;
            let parent_name = build.base_table();
            let surviving = qualifying_rows(db, build, op)?;
            let parent_set: std::collections::HashSet<usize> = surviving.into_iter().collect();
            let fk = match db.fk_index(input.base_table(), fk_col, parent_name) {
                Some(idx) => idx.positions().to_vec(),
                None => child
                    .column(fk_col)
                    .ok_or_else(|| PlanError::UnknownColumn {
                        table: input.base_table().to_string(),
                        column: fk_col.clone(),
                    })?
                    .as_u32()
                    .ok_or_else(|| PlanError::MissingFkIndex {
                        child: input.base_table().to_string(),
                        fk_column: fk_col.clone(),
                    })?
                    .to_vec(),
            };
            let rows = qualifying_rows(db, input, op)?;
            op.access.ht_probes += rows.len() as u64;
            Ok(rows
                .into_iter()
                .filter(|&r| parent_set.contains(&(fk[r] as usize)))
                .collect())
        }
        LogicalPlan::Aggregate { .. } => Err(PlanError::Unsupported("nested aggregation".into())),
    }
}
