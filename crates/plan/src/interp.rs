//! A deliberately naive row-at-a-time reference interpreter.
//!
//! Executes the same [`LogicalPlan`]s as the engine with zero cleverness —
//! Volcano-style row iteration, `BTreeMap` grouping — and the same result
//! conventions. The test suite cross-checks every engine result against it
//! (the role HyPer plays as a sanity baseline in the paper's evaluation).

use crate::catalog::Database;
use crate::engine::QueryResult;
use crate::error::PlanError;
use crate::expr::{AggFunc, Expr};
use crate::logical::{AggSpec, FrameSpec, LogicalPlan, SortKey, WindowFunc};
use crate::metrics::OpMetrics;
use std::collections::BTreeMap;

/// Execute `plan` naively.
pub fn run(db: &Database, plan: &LogicalPlan) -> Result<QueryResult, PlanError> {
    run_metered(db, plan).map(|(res, _)| res)
}

/// Execute `plan` naively, also reporting the interpreter's access
/// counters as a single operator (used when the engine falls back to the
/// data-centric strategy at `MetricsLevel::Counters`+). The interpreter
/// reads attributes conditionally row-at-a-time, so `wasted_lanes` is
/// always 0 and `ht_probes` counts the semijoin membership lookups.
pub fn run_metered(
    db: &Database,
    plan: &LogicalPlan,
) -> Result<(QueryResult, OpMetrics), PlanError> {
    let mut op = OpMetrics::named("data-centric interpreter");
    let res = run_inner(db, plan, &mut op)?;
    Ok((res, op))
}

/// Result-level post-operators peeled off the top of the plan, mirroring
/// the engine's `PostOp` handling so fallback results stay bit-identical.
enum Post {
    Sort(Vec<SortKey>),
    Limit(usize),
}

fn run_inner(
    db: &Database,
    plan: &LogicalPlan,
    op: &mut OpMetrics,
) -> Result<QueryResult, PlanError> {
    // Peel ORDER BY / LIMIT wrappers, innermost-first after the reverse.
    let mut node = plan;
    let mut post = Vec::new();
    loop {
        match node {
            LogicalPlan::Limit { input, n } => {
                post.push(Post::Limit(*n));
                node = input;
            }
            LogicalPlan::OrderBy { input, keys } => {
                if keys.is_empty() {
                    return Err(PlanError::Unsupported(
                        "ORDER BY needs at least one key".into(),
                    ));
                }
                post.push(Post::Sort(keys.clone()));
                node = input;
            }
            _ => break,
        }
    }
    post.reverse();
    let mut res = run_core(db, node, op)?;
    for p in &post {
        match p {
            Post::Sort(keys) => {
                let mut key_idx = Vec::with_capacity(keys.len());
                for k in keys {
                    key_idx.push((res.column_index(&k.column)?, k.desc));
                }
                let mut perm: Vec<u32> = (0..res.rows.len() as u32).collect();
                perm.sort_by(|&a, &b| {
                    let (ra, rb) = (&res.rows[a as usize], &res.rows[b as usize]);
                    for &(i, desc) in &key_idx {
                        let ord = ra[i].cmp(&rb[i]);
                        let ord = if desc { ord.reverse() } else { ord };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    a.cmp(&b) // deterministic tie-break: pre-sort position
                });
                res.rows = perm
                    .into_iter()
                    .map(|i| std::mem::take(&mut res.rows[i as usize]))
                    .collect();
            }
            Post::Limit(n) => res.rows.truncate(*n),
        }
    }
    Ok(res)
}

fn run_core(
    db: &Database,
    plan: &LogicalPlan,
    op: &mut OpMetrics,
) -> Result<QueryResult, PlanError> {
    if let LogicalPlan::Window { .. } = plan {
        return run_window(db, plan, op);
    }
    let LogicalPlan::Aggregate {
        input,
        group_by,
        aggs,
    } = plan
    else {
        return Err(PlanError::Unsupported(
            "top-level node must be an aggregation or window".into(),
        ));
    };
    if aggs.is_empty() {
        return Err(PlanError::Unsupported("empty aggregate list".into()));
    }
    let base = input.base_table();
    let table = db.table(base)?;
    for a in aggs {
        a.expr.validate(table)?;
    }
    let rows = qualifying_rows(db, input, op)?;
    op.access.rows_out = rows.len() as u64;
    match group_by {
        None => {
            let mut acc = vec![0i64; aggs.len()];
            for (i, a) in aggs.iter().enumerate() {
                if a.func == AggFunc::Min {
                    acc[i] = i64::MAX;
                }
                if a.func == AggFunc::Max {
                    acc[i] = i64::MIN;
                }
            }
            for &row in &rows {
                for (i, a) in aggs.iter().enumerate() {
                    accumulate(&mut acc[i], a, table, row);
                }
            }
            if rows.is_empty() {
                acc = vec![0; aggs.len()];
            }
            Ok(QueryResult {
                columns: aggs.iter().map(|a| a.name.clone()).collect(),
                rows: vec![acc],
                metrics: None,
                key_dict: None,
            })
        }
        Some(g) => {
            // Mirror the engine's surface: grouped aggregation over more
            // than one join edge is unsupported everywhere, so rejection
            // stays uniform across all differential runners.
            if semijoin_count(input) > 1 {
                return Err(PlanError::Unsupported(format!(
                    "group by {g} over a multi-way join"
                )));
            }
            let key_col = table.column(g).ok_or_else(|| PlanError::UnknownColumn {
                table: base.to_string(),
                column: g.clone(),
            })?;
            let mut groups: BTreeMap<i64, Vec<i64>> = BTreeMap::new();
            for &row in &rows {
                let key = key_col.get_i64(row);
                let acc = groups.entry(key).or_insert_with(|| {
                    aggs.iter()
                        .map(|a| match a.func {
                            AggFunc::Min => i64::MAX,
                            AggFunc::Max => i64::MIN,
                            _ => 0,
                        })
                        .collect()
                });
                for (i, a) in aggs.iter().enumerate() {
                    accumulate(&mut acc[i], a, table, row);
                }
            }
            let mut columns = vec![g.clone()];
            columns.extend(aggs.iter().map(|a| a.name.clone()));
            Ok(QueryResult {
                columns,
                metrics: None,
                key_dict: key_col
                    .as_dict()
                    .map(|d| std::sync::Arc::new(d.dictionary().to_vec())),
                rows: groups
                    .into_iter()
                    .map(|(k, acc)| {
                        let mut row = vec![k];
                        row.extend(acc);
                        row
                    })
                    .collect(),
            })
        }
    }
}

/// Naive window execution: sort the qualifying rows by (partition, order
/// keys, row id), then re-scan every frame per output row with wrapping
/// arithmetic. Wrapping addition is associative and its subtraction an
/// exact inverse (mod 2^64), so this matches both engine frame strategies
/// bit-for-bit.
fn run_window(
    db: &Database,
    plan: &LogicalPlan,
    op: &mut OpMetrics,
) -> Result<QueryResult, PlanError> {
    let LogicalPlan::Window {
        input,
        partition_by,
        order_by,
        frame,
        funcs,
        select,
    } = plan
    else {
        unreachable!("run_window called on a non-window plan");
    };
    let base = input.base_table();
    let table = db.table(base)?;
    for c in select
        .iter()
        .map(String::as_str)
        .chain(order_by.iter().map(|k| k.column.as_str()))
        .chain(partition_by.as_deref())
    {
        if table.column(c).is_none() {
            return Err(PlanError::UnknownColumn {
                table: base.to_string(),
                column: c.to_string(),
            });
        }
    }
    let mut names: Vec<&str> = select.iter().map(String::as_str).collect();
    names.extend(funcs.iter().map(|f| f.name.as_str()));
    for (i, n) in names.iter().enumerate() {
        if names[..i].contains(n) {
            return Err(PlanError::Unsupported(format!(
                "duplicate output column name {n}"
            )));
        }
    }
    for f in funcs {
        if let Some(e) = &f.expr {
            e.validate(table)?;
        }
    }
    let rows = qualifying_rows(db, input, op)?;
    op.access.rows_out = rows.len() as u64;
    let m = rows.len();
    let eval_col = |name: &str| -> Vec<i64> {
        let e = Expr::col(name);
        rows.iter().map(|&r| e.eval_row(table, r)).collect()
    };
    let part: Vec<i64> = match partition_by {
        Some(p) => eval_col(p),
        None => vec![0; m],
    };
    let ord: Vec<Vec<i64>> = order_by.iter().map(|k| eval_col(&k.column)).collect();
    let sel_cols: Vec<Vec<i64>> = select.iter().map(|c| eval_col(c)).collect();
    let inputs: Vec<Vec<i64>> = funcs
        .iter()
        .map(|f| match &f.expr {
            Some(e) => rows.iter().map(|&r| e.eval_row(table, r)).collect(),
            None => vec![1; m],
        })
        .collect();
    // Window order: (partition, order keys, base row id) — the same total
    // order the engine sorts by.
    let mut perm: Vec<usize> = (0..m).collect();
    perm.sort_by(|&a, &b| {
        let mut o = part[a].cmp(&part[b]);
        if o != std::cmp::Ordering::Equal {
            return o;
        }
        for (k, key) in order_by.iter().zip(&ord) {
            o = key[a].cmp(&key[b]);
            if k.desc {
                o = o.reverse();
            }
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        rows[a].cmp(&rows[b])
    });
    let mut outputs: Vec<Vec<i64>> = funcs.iter().map(|_| vec![0i64; m]).collect();
    let mut run_start = 0;
    while run_start < m {
        let mut run_end = run_start + 1;
        while run_end < m && part[perm[run_end]] == part[perm[run_start]] {
            run_end += 1;
        }
        let len = run_end - run_start;
        for (fi, f) in funcs.iter().enumerate() {
            match f.func {
                WindowFunc::RowNumber => {
                    for i in 0..len {
                        outputs[fi][run_start + i] = (i + 1) as i64;
                    }
                }
                WindowFunc::Rank => {
                    let mut rank = 1i64;
                    for i in 0..len {
                        let peer = i > 0
                            && ord
                                .iter()
                                .all(|k| k[perm[run_start + i - 1]] == k[perm[run_start + i]]);
                        if i > 0 && !peer {
                            rank = (i + 1) as i64;
                        }
                        outputs[fi][run_start + i] = rank;
                    }
                }
                WindowFunc::Sum | WindowFunc::Count => {
                    for i in 0..len {
                        let (lo, hi) = match frame {
                            FrameSpec::WholePartition => (0, len - 1),
                            FrameSpec::UnboundedPreceding => (0, i),
                            FrameSpec::Preceding(k) => (i.saturating_sub(*k), i),
                        };
                        let mut acc = 0i64;
                        for j in lo..=hi {
                            acc = acc.wrapping_add(match f.func {
                                WindowFunc::Sum => inputs[fi][perm[run_start + j]],
                                _ => 1,
                            });
                        }
                        outputs[fi][run_start + i] = acc;
                    }
                }
            }
        }
        run_start = run_end;
    }
    let mut out_rows = Vec::with_capacity(m);
    for i in 0..m {
        let src = perm[i];
        let mut row = Vec::with_capacity(select.len() + funcs.len());
        for c in &sel_cols {
            row.push(c[src]);
        }
        for o in &outputs {
            row.push(o[i]);
        }
        out_rows.push(row);
    }
    let mut columns: Vec<String> = select.clone();
    columns.extend(funcs.iter().map(|f| f.name.clone()));
    Ok(QueryResult {
        columns,
        rows: out_rows,
        metrics: None,
        key_dict: select
            .first()
            .and_then(|c| table.column(c))
            .and_then(|c| c.as_dict())
            .map(|d| std::sync::Arc::new(d.dictionary().to_vec())),
    })
}

/// Number of semijoin edges anywhere in the tree (filters are
/// transparent; both the probe spine and build sides count).
fn semijoin_count(plan: &LogicalPlan) -> usize {
    match plan {
        LogicalPlan::Filter { input, .. } => semijoin_count(input),
        LogicalPlan::SemiJoin { input, build, .. } => {
            1 + semijoin_count(input) + semijoin_count(build)
        }
        _ => 0,
    }
}

fn accumulate(acc: &mut i64, spec: &AggSpec, table: &swole_storage::Table, row: usize) {
    // Wrapping accumulation matches the engine's kernels exactly, so
    // fallback results stay bit-identical even on wraparound inputs.
    match spec.func {
        AggFunc::Count => *acc = acc.wrapping_add(1),
        AggFunc::Sum => *acc = acc.wrapping_add(spec.expr.eval_row(table, row)),
        AggFunc::Min => *acc = (*acc).min(spec.expr.eval_row(table, row)),
        AggFunc::Max => *acc = (*acc).max(spec.expr.eval_row(table, row)),
    }
}

/// Rows of the plan's base table that survive all filters and semijoins.
/// Counter adds are unconditional — the interpreter is the slow path by
/// design, so a handful of `u64` adds per plan node is noise.
fn qualifying_rows(
    db: &Database,
    plan: &LogicalPlan,
    op: &mut OpMetrics,
) -> Result<Vec<usize>, PlanError> {
    match plan {
        LogicalPlan::Scan { table } => {
            let n = db.table(table)?.len();
            op.access.rows_in += n as u64;
            Ok((0..n).collect())
        }
        LogicalPlan::Filter { input, predicate } => {
            let table = db.table(input.base_table())?;
            predicate.validate(table)?;
            let rows = qualifying_rows(db, input, op)?;
            op.access.predicate_evals += rows.len() as u64;
            Ok(rows
                .into_iter()
                .filter(|&r| predicate.eval_row(table, r) != 0)
                .collect())
        }
        LogicalPlan::SemiJoin {
            input,
            build,
            fk_col,
        } => {
            let child = db.table(input.base_table())?;
            let parent_name = build.base_table();
            let surviving = qualifying_rows(db, build, op)?;
            let parent_set: std::collections::HashSet<usize> = surviving.into_iter().collect();
            let fk = match db.fk_index(input.base_table(), fk_col, parent_name) {
                Some(idx) => idx.positions().to_vec(),
                None => child
                    .column(fk_col)
                    .ok_or_else(|| PlanError::UnknownColumn {
                        table: input.base_table().to_string(),
                        column: fk_col.clone(),
                    })?
                    .as_u32()
                    .ok_or_else(|| PlanError::MissingFkIndex {
                        child: input.base_table().to_string(),
                        fk_column: fk_col.clone(),
                    })?
                    .to_vec(),
            };
            let rows = qualifying_rows(db, input, op)?;
            op.access.ht_probes += rows.len() as u64;
            Ok(rows
                .into_iter()
                .filter(|&r| parent_set.contains(&(fk[r] as usize)))
                .collect())
        }
        LogicalPlan::Aggregate { .. }
        | LogicalPlan::Window { .. }
        | LogicalPlan::OrderBy { .. }
        | LogicalPlan::Limit { .. } => Err(PlanError::Unsupported(
            "nested aggregation or window".into(),
        )),
    }
}
