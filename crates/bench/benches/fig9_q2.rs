//! Fig. 9 — microbenchmark Q2 (key masking):
//! `r_c, sum(r_a * r_b) ... group by r_c`, |r_c| swept across four
//! cardinalities (paper: 10 / 1 K / 100 K / 10 M).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use swole_bench::{q2_cardinalities, r_rows, s_small};
use swole_micro::{generate, q2, MicroParams};

fn bench(c: &mut Criterion) {
    for (sub, card) in ["9a", "9b", "9c", "9d"].iter().zip(q2_cardinalities()) {
        let db = generate(MicroParams {
            r_rows: r_rows(),
            s_rows: s_small(),
            r_c_cardinality: card,
            seed: 9,
        });
        let mut g = c.benchmark_group(format!("fig{sub}_q2_card{card}"));
        g.sample_size(10);
        g.measurement_time(std::time::Duration::from_millis(800));
        g.warm_up_time(std::time::Duration::from_millis(200));
        for sel in [10i8, 50, 90] {
            g.bench_with_input(BenchmarkId::new("datacentric", sel), &sel, |b, &sel| {
                b.iter(|| black_box(q2::checksum(&q2::datacentric(&db.r, sel))))
            });
            g.bench_with_input(BenchmarkId::new("hybrid", sel), &sel, |b, &sel| {
                b.iter(|| black_box(q2::checksum(&q2::hybrid(&db.r, sel))))
            });
            g.bench_with_input(BenchmarkId::new("value-masking", sel), &sel, |b, &sel| {
                b.iter(|| black_box(q2::checksum(&q2::value_masking(&db.r, sel))))
            });
            g.bench_with_input(BenchmarkId::new("key-masking", sel), &sel, |b, &sel| {
                b.iter(|| black_box(q2::checksum(&q2::key_masking(&db.r, sel))))
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
